"""Contract-layer tests: corrupted objects are rejected, valid ones pass,
and the REPRO_CONTRACTS gate actually controls the facade's checks."""

import pytest

from repro.api import approx_mcm, sparsify
from repro.contracts import (
    CONTRACTS_ENV,
    ContractViolation,
    check_matching,
    check_replay_fingerprints,
    check_sparsifier_degree,
    check_stream_fingerprints,
    check_subgraph,
    contracts_enabled,
)
from repro.instrument.rng import RngFingerprint
from repro.core.sparsifier import SparsifierResult, build_sparsifier
from repro.graphs.builder import from_edges
from repro.graphs.generators import clique_union
from repro.matching.matching import Matching


def _path_graph(n):
    return from_edges(n, [(i, i + 1) for i in range(n - 1)])


@pytest.mark.fast
class TestGate:
    @pytest.mark.parametrize("value", ["1", "true", "YES", " on "])
    def test_truthy_values_enable(self, monkeypatch, value):
        monkeypatch.setenv(CONTRACTS_ENV, value)
        assert contracts_enabled()

    @pytest.mark.parametrize("value", ["", "0", "false", "off", "2"])
    def test_other_values_disable(self, monkeypatch, value):
        monkeypatch.setenv(CONTRACTS_ENV, value)
        assert not contracts_enabled()

    def test_unset_disables(self, monkeypatch):
        monkeypatch.delenv(CONTRACTS_ENV, raising=False)
        assert not contracts_enabled()


@pytest.mark.fast
class TestCheckMatching:
    def test_valid_matching_passes_through(self):
        g = _path_graph(4)
        m = Matching.from_edges(4, [(0, 1), (2, 3)])
        assert check_matching(g, m) is m

    def test_nonexistent_edge_rejected(self):
        g = _path_graph(4)
        phantom = Matching.from_edges(4, [(0, 3)])  # not a path edge
        with pytest.raises(ContractViolation, match=r"\(0, 3\)"):
            check_matching(g, phantom)

    def test_size_mismatch_rejected(self):
        g = _path_graph(4)
        with pytest.raises(ContractViolation, match="vertices"):
            check_matching(g, Matching.empty(5))


@pytest.mark.fast
class TestCheckSubgraph:
    def test_valid_subgraph_passes(self):
        g = _path_graph(5)
        sub = from_edges(5, [(1, 2)])
        assert check_subgraph(sub, g) is sub

    def test_foreign_edge_rejected(self):
        g = _path_graph(5)
        with pytest.raises(ContractViolation, match="absent"):
            check_subgraph(from_edges(5, [(0, 4)]), g)

    def test_vertex_count_mismatch_rejected(self):
        g = _path_graph(5)
        with pytest.raises(ContractViolation, match="vertices"):
            check_subgraph(from_edges(4, []), g)


@pytest.mark.fast
class TestCheckSparsifierDegree:
    def test_real_construction_passes(self):
        g = clique_union(6, 12)
        result = build_sparsifier(g, 4, seed=0)
        assert check_sparsifier_degree(result, 4, graph=g) is result

    def test_overfull_marking_rejected(self):
        g = _path_graph(6)
        honest = build_sparsifier(g, 2, seed=0)
        corrupt = SparsifierResult(
            subgraph=honest.subgraph,
            marked_by=((1, 2, 3),) + honest.marked_by[1:],  # 3 marks > delta
            delta=2,
        )
        with pytest.raises(ContractViolation, match="marking bound"):
            check_sparsifier_degree(corrupt, 2)

    def test_duplicate_mark_rejected(self):
        g = _path_graph(6)
        honest = build_sparsifier(g, 2, seed=0)
        corrupt = SparsifierResult(
            subgraph=honest.subgraph,
            marked_by=((1, 1),) + honest.marked_by[1:],
            delta=2,
        )
        with pytest.raises(ContractViolation, match="twice"):
            check_sparsifier_degree(corrupt, 2)

    def test_non_neighbor_mark_rejected_with_graph(self):
        g = _path_graph(6)
        honest = build_sparsifier(g, 2, seed=0)
        corrupt = SparsifierResult(
            subgraph=honest.subgraph,
            marked_by=((5,),) + honest.marked_by[1:],  # 5 not adjacent to 0
            delta=2,
        )
        with pytest.raises(ContractViolation, match="non-neighbor"):
            check_sparsifier_degree(corrupt, 2, graph=g)

    def test_bounded_degree_graph_form(self):
        star = from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert check_sparsifier_degree(star, 3) is star
        with pytest.raises(ContractViolation, match="max degree"):
            check_sparsifier_degree(star, 2)

    def test_invalid_delta_rejected(self):
        with pytest.raises(ContractViolation, match="delta"):
            check_sparsifier_degree(_path_graph(3), 0)


@pytest.mark.fast
class TestCheckStreamFingerprints:
    def test_distinct_streams_pass(self):
        fps = [RngFingerprint("7/0", 3), None, RngFingerprint("7/1", 2)]
        assert check_stream_fingerprints(fps) == fps

    def test_shared_stream_with_draws_rejected(self):
        fps = [RngFingerprint("7/0", 1), RngFingerprint("7/0", 0)]
        with pytest.raises(ContractViolation, match="one RNG stream"):
            check_stream_fingerprints(fps)

    def test_shared_but_undrawn_stream_tolerated(self):
        fps = [RngFingerprint("7/0", 0), RngFingerprint("7/0", 0)]
        assert check_stream_fingerprints(fps) == fps

    def test_empty_and_all_none_pass(self):
        assert check_stream_fingerprints([]) == []
        assert check_stream_fingerprints([None, None]) == [None, None]


@pytest.mark.fast
class TestCheckReplayFingerprints:
    """Retries must replay each task's *assigned* stream (engine retry
    contract under REPRO_RNG_SANITIZE=1)."""

    def test_matching_streams_pass(self):
        fps = [RngFingerprint("a/0", 2), RngFingerprint("a/1", 1)]
        assert check_replay_fingerprints(fps, ["a/0", "a/1"]) == fps

    def test_wrong_stream_rejected(self):
        fps = [RngFingerprint("a/0", 2), RngFingerprint("a/7", 1)]
        with pytest.raises(ContractViolation, match="wrong RngSpec"):
            check_replay_fingerprints(fps, ["a/0", "a/1"])

    def test_none_entries_skipped(self):
        fps = [None, RngFingerprint("a/1", 1)]
        assert check_replay_fingerprints(fps, [None, None]) == fps
        assert check_replay_fingerprints(fps, ["a/9", "a/1"]) == fps


@pytest.mark.fast
class TestFacadeGating:
    """REPRO_CONTRACTS=1 makes the facade self-check; unset skips."""

    def test_sparsify_checked_and_clean(self, monkeypatch):
        monkeypatch.setenv(CONTRACTS_ENV, "1")
        g = clique_union(6, 10)
        result = sparsify(g, beta=1, epsilon=0.3, seed=0)
        assert result.delta >= 1  # checks ran and did not raise

    def test_approx_mcm_checked_and_clean(self, monkeypatch):
        monkeypatch.setenv(CONTRACTS_ENV, "1")
        g = clique_union(6, 10)
        run = approx_mcm(g, beta=1, epsilon=0.3, seed=0)
        assert run.matching.is_valid_for(g)

    def test_facade_check_actually_executes(self, monkeypatch):
        calls = []

        def spy(graph, matching):
            calls.append(matching)
            return matching

        monkeypatch.setenv(CONTRACTS_ENV, "1")
        monkeypatch.setattr("repro.api.check_matching", spy)
        g = clique_union(4, 8)
        approx_mcm(g, beta=1, epsilon=0.5, seed=0)
        assert len(calls) == 1

    def test_facade_skips_when_disabled(self, monkeypatch):
        calls = []
        monkeypatch.delenv(CONTRACTS_ENV, raising=False)
        monkeypatch.setattr(
            "repro.api.check_matching",
            lambda graph, matching: calls.append(matching),
        )
        g = clique_union(4, 8)
        approx_mcm(g, beta=1, epsilon=0.5, seed=0)
        assert calls == []

    def test_corrupted_backend_result_rejected(self, monkeypatch):
        """If a backend ever emitted an invalid matching, the gate trips."""
        monkeypatch.setenv(CONTRACTS_ENV, "1")
        g = clique_union(4, 8)
        phantom = Matching.from_edges(g.num_vertices, [])
        mate = phantom.mate.copy()
        # Force a matched pair across cliques (no such edge in the graph).
        mate[0], mate[g.num_vertices - 1] = g.num_vertices - 1, 0
        bad = Matching(mate)
        assert not g.has_edge(0, g.num_vertices - 1)
        with pytest.raises(ContractViolation):
            check_matching(g, bad)
