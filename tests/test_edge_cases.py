"""Cross-module failure injection and degenerate-input tests.

Every pipeline must behave sensibly on: empty graphs, single edges,
isolated vertices, extreme ε, and adversarial structures — the inputs
that break implementations whose happy paths all pass.
"""

import pytest

from repro.core.delta import DeltaPolicy
from repro.core.sparsifier import build_sparsifier
from repro.distributed.pipeline import distributed_approx_matching
from repro.dynamic.lazy_rebuild import LazyRebuildMatching
from repro.graphs.builder import from_edges
from repro.mpc.matching import mpc_approx_matching
from repro.sequential.pipeline import approximate_matching
from repro.streaming.matching import streaming_approx_matching
from repro.streaming.stream import EdgeStream


EMPTY = from_edges(0, [])
ISOLATED = from_edges(6, [])
SINGLE_EDGE = from_edges(2, [(0, 1)])
STAR = from_edges(6, [(0, i) for i in range(1, 6)])
WITH_ISOLATED = from_edges(8, [(0, 1), (2, 3)])


class TestSequentialDegenerate:
    @pytest.mark.parametrize("graph", [ISOLATED, SINGLE_EDGE, WITH_ISOLATED])
    def test_runs_and_valid(self, graph):
        res = approximate_matching(graph, beta=1, epsilon=0.5, seed=0)
        assert res.matching.is_valid_for(graph)

    def test_empty_vertex_set(self):
        res = approximate_matching(EMPTY, beta=1, epsilon=0.5, seed=0)
        assert res.matching.size == 0

    def test_extreme_epsilon_small(self):
        res = approximate_matching(SINGLE_EDGE, beta=1, epsilon=0.01, seed=0)
        assert res.matching.size == 1

    def test_extreme_epsilon_large(self):
        res = approximate_matching(STAR, beta=5, epsilon=0.99, seed=0)
        assert res.matching.size == 1

    def test_epsilon_out_of_range(self):
        with pytest.raises(ValueError):
            approximate_matching(STAR, beta=1, epsilon=0.0)
        with pytest.raises(ValueError):
            approximate_matching(STAR, beta=1, epsilon=1.0)


class TestSparsifierDegenerate:
    def test_star_keeps_structure(self):
        res = build_sparsifier(STAR, 2, seed=0)
        # Leaves have degree 1 and mark their only edge: everything stays.
        assert res.subgraph.num_edges == 5

    def test_delta_one(self):
        res = build_sparsifier(SINGLE_EDGE, 1, seed=0)
        assert res.subgraph.num_edges == 1

    def test_policy_cap_on_tiny_graph(self):
        delta = DeltaPolicy(constant=1000.0).delta(1, 0.5, num_vertices=3)
        assert delta == 2


class TestDistributedDegenerate:
    def test_isolated_network(self):
        rep = distributed_approx_matching(ISOLATED, beta=1, epsilon=0.5, seed=0)
        assert rep.matching.size == 0

    def test_single_edge_network(self):
        rep = distributed_approx_matching(SINGLE_EDGE, beta=1, epsilon=0.5,
                                          seed=0)
        assert rep.matching.size == 1

    def test_star_network(self):
        rep = distributed_approx_matching(STAR, beta=5, epsilon=0.5, seed=1)
        assert rep.matching.size == 1


class TestDynamicDegenerate:
    def test_insert_then_delete_everything(self):
        alg = LazyRebuildMatching(4, beta=1, epsilon=0.5, seed=0)
        alg.insert(0, 1)
        alg.insert(2, 3)
        alg.delete(0, 1)
        alg.delete(2, 3)
        assert alg.matching.size == 0
        assert alg.graph.num_edges == 0

    def test_double_insert_rejected_cleanly(self):
        alg = LazyRebuildMatching(4, beta=1, epsilon=0.5, seed=0)
        alg.insert(0, 1)
        with pytest.raises(ValueError):
            alg.insert(0, 1)
        # The algorithm remains usable afterwards.
        alg.delete(0, 1)
        assert alg.graph.num_edges == 0


class TestStreamingDegenerate:
    def test_single_edge_stream(self):
        res = streaming_approx_matching(EdgeStream(2, [(0, 1)]),
                                        beta=1, epsilon=0.5, seed=0)
        assert res.matching.size == 1

    def test_duplicate_edges_in_stream(self):
        """A stream replaying the same edge inflates reservoirs but must
        not create invalid output."""
        stream = EdgeStream(3, [(0, 1), (0, 1), (1, 2)])
        res = streaming_approx_matching(stream, beta=1, epsilon=0.5, seed=0)
        g = from_edges(3, [(0, 1), (1, 2)])
        assert res.matching.is_valid_for(g)


class TestMPCDegenerate:
    def test_empty_input(self):
        res = mpc_approx_matching(ISOLATED, beta=1, epsilon=0.5,
                                  num_machines=2, seed=0)
        assert res.matching.size == 0
        assert res.rounds == 3

    def test_more_machines_than_edges(self):
        res = mpc_approx_matching(SINGLE_EDGE, beta=1, epsilon=0.5,
                                  num_machines=8, seed=0)
        assert res.matching.size == 1
