"""Tests for serialization (graphs, matchings, result tables)."""

import numpy as np
import pytest

from repro.experiments.tables import Table
from repro.graphs.generators import clique_union
from repro.io import (
    load_graph,
    load_matching,
    save_graph,
    save_matching,
    save_table,
    table_from_json,
    table_to_json,
)
from repro.matching.greedy import greedy_maximal_matching


class TestGraphRoundtrip:
    def test_roundtrip(self, tmp_path):
        g = clique_union(3, 8)
        path = tmp_path / "g.npz"
        save_graph(path, g)
        g2 = load_graph(path)
        assert np.array_equal(g.indptr, g2.indptr)
        assert np.array_equal(g.indices, g2.indices)

    def test_bad_file(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, something=np.arange(3))
        with pytest.raises(ValueError, match="not a saved graph"):
            load_graph(path)


class TestMatchingRoundtrip:
    def test_roundtrip(self, tmp_path):
        g = clique_union(2, 6)
        m = greedy_maximal_matching(g)
        path = tmp_path / "m.npz"
        save_matching(path, m)
        assert load_matching(path) == m

    def test_bad_file(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, nope=np.arange(3))
        with pytest.raises(ValueError, match="not a saved matching"):
            load_matching(path)


class TestTableSerialization:
    def _table(self):
        t = Table(title="T", headers=["a", "ok", "x"], notes=["note"])
        t.add_row(1, True, 2.5)
        t.add_row(np.int64(3), np.bool_(False), np.float64(0.125))
        return t

    def test_json_roundtrip(self):
        t = self._table()
        t2 = table_from_json(table_to_json(t))
        assert t2.title == t.title
        assert t2.headers == t.headers
        assert t2.rows == [[1, True, 2.5], [3, False, 0.125]]
        assert t2.notes == ["note"]

    def test_save_json(self, tmp_path):
        path = tmp_path / "t.json"
        save_table(path, self._table())
        assert "\"title\": \"T\"" in path.read_text()

    def test_save_csv(self, tmp_path):
        path = tmp_path / "t.csv"
        save_table(path, self._table())
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "a,ok,x"
        assert len(lines) == 3

    def test_unsupported_format(self, tmp_path):
        with pytest.raises(ValueError, match="unsupported"):
            save_table(tmp_path / "t.xlsx", self._table())
