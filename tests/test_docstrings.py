"""Documentation quality gate: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import repro

EXEMPT_MODULES = set()


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", "").startswith("repro"):
            yield name, obj


def _iter_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in EXEMPT_MODULES:
            continue
        yield importlib.import_module(info.name)


def test_every_module_has_docstring():
    missing = [m.__name__ for m in _iter_modules() if not m.__doc__]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_item_has_docstring():
    missing = []
    for module in _iter_modules():
        for name, obj in _public_members(module):
            if not inspect.getdoc(obj):
                missing.append(f"{module.__name__}.{name}")
    assert not missing, f"public items without docstrings: {missing}"


def test_public_methods_have_docstrings():
    missing = []
    for module in _iter_modules():
        for name, obj in _public_members(module):
            if not inspect.isclass(obj):
                continue
            for meth_name, meth in vars(obj).items():
                if meth_name.startswith("_"):
                    continue
                if inspect.isfunction(meth) and not inspect.getdoc(meth):
                    missing.append(f"{module.__name__}.{name}.{meth_name}")
    assert not missing, f"methods without docstrings: {missing}"
