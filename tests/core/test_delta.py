"""Tests for the Δ(β, ε) policy."""

import math

import pytest

from repro.core.delta import (
    DeltaPolicy,
    PAPER_CONSTANT,
    PRACTICAL_CONSTANT,
    beta_regime_ok,
    delta_paper,
    delta_practical,
)


class TestDeltaFormulas:
    def test_paper_value(self):
        # 20 * (1/0.5) * ln(48) = 154.8... -> 155
        assert delta_paper(1, 0.5) == math.ceil(20 * 2 * math.log(48))

    def test_practical_smaller_than_paper(self):
        assert delta_practical(3, 0.3) < delta_paper(3, 0.3)

    def test_monotone_in_beta(self):
        assert delta_practical(2, 0.3) <= delta_practical(4, 0.3)

    def test_monotone_in_epsilon(self):
        assert delta_practical(2, 0.2) >= delta_practical(2, 0.4)

    def test_minimum_one(self):
        assert delta_practical(1, 0.9, constant=1e-9) == 1

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            delta_practical(0, 0.5)

    @pytest.mark.parametrize("eps", [0.0, 1.0, -0.1, 2.0])
    def test_invalid_epsilon(self, eps):
        with pytest.raises(ValueError):
            delta_practical(1, eps)

    def test_constants_exposed(self):
        assert PAPER_CONSTANT == 20.0
        assert PRACTICAL_CONSTANT == 2.0


class TestBetaRegime:
    def test_small_beta_ok(self):
        assert beta_regime_ok(10_000, 3, 0.3)

    def test_huge_beta_not_ok(self):
        assert not beta_regime_ok(100, 90, 0.1)

    def test_tiny_graph(self):
        assert beta_regime_ok(1, 1, 0.5)
        assert not beta_regime_ok(1, 2, 0.5)


class TestDeltaPolicy:
    def test_cap_to_n(self):
        policy = DeltaPolicy(constant=100.0)
        assert policy.delta(5, 0.1, num_vertices=20) == 19

    def test_no_cap_without_n(self):
        policy = DeltaPolicy(constant=100.0)
        assert policy.delta(5, 0.1) > 1000

    def test_cap_disabled(self):
        policy = DeltaPolicy(constant=100.0, cap_to_n=False)
        assert policy.delta(5, 0.1, num_vertices=20) > 1000

    def test_named_constructors(self):
        assert DeltaPolicy.paper().constant == PAPER_CONSTANT
        assert DeltaPolicy.practical().constant == PRACTICAL_CONSTANT

    def test_frozen(self):
        with pytest.raises(Exception):
            DeltaPolicy().constant = 5.0
