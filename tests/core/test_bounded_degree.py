"""Tests for Solomon's bounded-degree sparsifier (ITCS'18)."""

import pytest

from repro.core.bounded_degree import solomon_degree_bound, solomon_sparsifier
from repro.graphs.builder import from_edges
from repro.graphs.generators import erdos_renyi
from repro.matching.blossom import mcm_exact


class TestDegreeBound:
    def test_formula(self):
        assert solomon_degree_bound(3, 0.5, constant=4.0) == 24

    def test_validation(self):
        with pytest.raises(ValueError):
            solomon_degree_bound(0, 0.5)
        with pytest.raises(ValueError):
            solomon_degree_bound(2, 0.0)


class TestSparsifier:
    def test_max_degree_respected(self):
        g = erdos_renyi(40, 0.5, seed=0)
        bound = 5
        # Pass arboricity/eps that produce exactly this bound.
        sp = solomon_sparsifier(g, arboricity=5, epsilon=1 - 1e-9, constant=1.0)
        assert sp.max_degree() <= solomon_degree_bound(5, 1 - 1e-9, 1.0)
        del bound

    def test_subgraph(self):
        g = erdos_renyi(30, 0.4, seed=1)
        sp = solomon_sparsifier(g, arboricity=4, epsilon=0.5)
        for u, v in sp.edges():
            assert g.has_edge(u, v)

    def test_deterministic(self):
        g = erdos_renyi(30, 0.4, seed=2)
        a = solomon_sparsifier(g, 4, 0.5)
        b = solomon_sparsifier(g, 4, 0.5)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_quality_on_bounded_arboricity(self):
        """On a genuinely sparse graph the deterministic marks preserve
        the matching — the contrast with Lemma 2.13 (see E11)."""
        # Union of paths: arboricity 1.
        edges = []
        for s in range(10):
            base = 4 * s
            edges += [(base, base + 1), (base + 1, base + 2), (base + 2, base + 3)]
        g = from_edges(40, edges)
        sp = solomon_sparsifier(g, arboricity=1, epsilon=0.3)
        assert mcm_exact(sp).size == mcm_exact(g).size

    def test_mutual_only(self):
        """Edges kept only when both endpoints mark them."""
        # Star: center marks `bound` leaves, each leaf marks the center.
        g = from_edges(9, [(0, i) for i in range(1, 9)])
        sp = solomon_sparsifier(g, arboricity=1, epsilon=0.5, constant=2.0)
        bound = solomon_degree_bound(1, 0.5, 2.0)
        assert sp.num_edges == min(bound, 8)
