"""Tests for the random sparsifier G_Δ — the paper's core object."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.sparsifier import RandomSparsifier, build_sparsifier
from repro.graphs.builder import from_edges
from repro.graphs.generators import clique, clique_union, erdos_renyi
from repro.instrument.counters import Counter
from repro.matching.blossom import mcm_exact

pytestmark = pytest.mark.fast


class TestConstruction:
    def test_subgraph_of_input(self, rng):
        g = erdos_renyi(30, 0.5, rng=rng)
        res = build_sparsifier(g, 4, rng=rng)
        for u, v in res.subgraph.edges():
            assert g.has_edge(u, v)

    def test_mark_counts(self, rng):
        g = erdos_renyi(30, 0.4, rng=rng)
        delta = 5
        res = build_sparsifier(g, delta, rng=rng)
        for v, marks in enumerate(res.marked_by):
            assert len(marks) == min(delta, g.degree(v))
            assert len(set(marks)) == len(marks)  # no repetitions
            for u in marks:
                assert g.has_edge(v, u)

    def test_low_degree_marks_everything(self):
        g = from_edges(4, [(0, 1), (0, 2), (0, 3)])
        res = build_sparsifier(g, 10, seed=0)
        assert res.subgraph.num_edges == 3

    def test_union_semantics(self):
        """An edge is in G_Δ iff at least one endpoint marked it."""
        g = clique(20)
        res = build_sparsifier(g, 3, seed=1)
        marked_pairs = {
            (min(v, u), max(v, u))
            for v, marks in enumerate(res.marked_by)
            for u in marks
        }
        assert set(res.subgraph.edges()) == marked_pairs

    def test_invalid_delta(self, rng):
        with pytest.raises(ValueError):
            build_sparsifier(clique(4), 0, rng=rng)

    def test_unknown_sampler(self, rng):
        with pytest.raises(ValueError, match="unknown sampler"):
            build_sparsifier(clique(4), 2, rng=rng, sampler="bogus")

    def test_reproducible_with_seed(self):
        g = clique(25)
        a = build_sparsifier(g, 4, rng=np.random.default_rng(7))
        b = build_sparsifier(g, 4, rng=np.random.default_rng(7))
        assert sorted(a.subgraph.edges()) == sorted(b.subgraph.edges())
        assert a.marked_by == b.marked_by

    def test_empty_graph(self):
        res = build_sparsifier(from_edges(5, []), 3, seed=0)
        assert res.subgraph.num_edges == 0
        assert all(m == () for m in res.marked_by)


class TestVectorizedSampler:
    def test_same_marking_law(self):
        """Mark counts equal min(delta, deg) and marks are valid."""
        g = erdos_renyi(40, 0.4, seed=0)
        res = build_sparsifier(g, 5, seed=1, sampler="vectorized")
        for v, marks in enumerate(res.marked_by):
            assert len(marks) == min(5, g.degree(v))
            assert len(set(marks)) == len(marks)
            for u in marks:
                assert g.has_edge(v, u)

    def test_uniformity_on_star(self):
        g = from_edges(21, [(0, i) for i in range(1, 21)])
        counts = np.zeros(21)
        root = np.random.default_rng(2)
        trials = 400
        for _ in range(trials):
            res = build_sparsifier(g, 5, rng=root.spawn(1)[0],
                                   sampler="vectorized")
            for u in res.marked_by[0]:
                counts[u] += 1
        expected = trials * 5 / 20
        assert np.all(counts[1:] > expected * 0.6)
        assert np.all(counts[1:] < expected * 1.4)

    def test_probe_counter_rejected(self):
        from repro.instrument.counters import Counter

        with pytest.raises(ValueError, match="probe-counted"):
            build_sparsifier(clique(5), 2, seed=0, sampler="vectorized",
                             probe_counter=Counter("p"))

    def test_skip_marks(self):
        g = clique(20)
        res = build_sparsifier(g, 3, seed=3, sampler="vectorized",
                               materialize_marks=False)
        assert all(m == () for m in res.marked_by)
        assert res.subgraph.num_edges > 0

    def test_empty_graph(self):
        res = build_sparsifier(from_edges(4, []), 3, seed=4,
                               sampler="vectorized")
        assert res.subgraph.num_edges == 0

    def test_quality_matches_scalar_samplers(self):
        g = clique_union(3, 24)
        opt = mcm_exact(g).size
        res = build_sparsifier(g, 6, seed=5, sampler="vectorized")
        assert opt <= 1.35 * mcm_exact(res.subgraph).size


class TestSamplers:
    @pytest.mark.parametrize("sampler", ["pos_array", "rejection"])
    def test_both_samplers_valid(self, sampler, rng):
        g = clique(30)
        res = build_sparsifier(g, 4, rng=rng, sampler=sampler)
        for v, marks in enumerate(res.marked_by):
            assert len(set(marks)) == len(marks)
            for u in marks:
                assert g.has_edge(v, u)

    def test_rejection_marks_all_below_2delta(self, rng):
        """The §3.1 tweak: deg <= 2Δ vertices mark every neighbor."""
        g = clique(9)  # deg = 8 = 2*4
        res = build_sparsifier(g, 4, rng=rng, sampler="rejection")
        assert res.subgraph.num_edges == g.num_edges

    def test_pos_array_probe_bound_deterministic(self):
        """pos_array: exactly one degree probe + min(Δ, deg) neighbor
        probes per vertex — the deterministic O(n·Δ) of Theorem 3.1."""
        g = clique(40)
        delta = 6
        for seed in range(5):
            counter = Counter("probes")
            build_sparsifier(g, delta, seed=seed, probe_counter=counter)
            expected = g.num_vertices * (1 + delta)
            assert counter.value == expected

    def test_pos_array_uniformity(self):
        """Each neighbor is marked with probability ~Δ/deg (chi-square
        style sanity check on a star center)."""
        g = from_edges(21, [(0, i) for i in range(1, 21)])  # star, deg 20
        delta = 5
        counts = np.zeros(21)
        trials = 400
        root = np.random.default_rng(42)
        for _ in range(trials):
            res = build_sparsifier(g, delta, rng=root.spawn(1)[0])
            for u in res.marked_by[0]:
                counts[u] += 1
        expected = trials * delta / 20
        # Each leaf should be marked ~100 times; allow generous slack.
        assert np.all(counts[1:] > expected * 0.6)
        assert np.all(counts[1:] < expected * 1.4)


class TestBoundsProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=25),
        p=st.floats(min_value=0.1, max_value=1.0),
        delta=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_structural_invariants(self, n, p, delta, seed):
        rng = np.random.default_rng(seed)
        g = erdos_renyi(n, p, rng=rng)
        res = build_sparsifier(g, delta, rng=rng)
        # Subgraph property.
        for u, v in res.subgraph.edges():
            assert g.has_edge(u, v)
        # Naive size bound (always, deterministically).
        assert res.subgraph.num_edges <= g.num_vertices * delta
        # Mark counts.
        for v, marks in enumerate(res.marked_by):
            assert len(marks) == min(delta, g.degree(v))


class TestRandomSparsifierFrontEnd:
    def test_delta_for(self):
        s = RandomSparsifier(beta=1, epsilon=0.5, seed=0)
        g = clique_union(2, 10)
        assert s.delta_for(g) == s.policy.delta(1, 0.5, g.num_vertices)

    def test_sparsify_quality(self):
        s = RandomSparsifier(beta=1, epsilon=0.3, seed=0)
        g = clique_union(3, 20)
        res = s.sparsify(g)
        opt = mcm_exact(g).size
        got = mcm_exact(res.subgraph).size
        assert opt <= (1 + 0.3) * got

    def test_fresh_rng_each_call(self):
        s = RandomSparsifier(beta=1, epsilon=0.5, seed=0)
        g = clique(30)
        a = s.sparsify(g)
        b = s.sparsify(g)
        assert sorted(a.subgraph.edges()) != sorted(b.subgraph.edges())
