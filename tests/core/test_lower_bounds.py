"""Tests for the executable lower bounds (Lemma 2.13 / Observation 2.14)."""

import numpy as np
import pytest

from repro.core.lower_bounds import (
    adversarial_clique_ordering,
    deterministic_first_delta_sparsifier,
    empirical_exact_preservation,
    exact_preservation_probability,
    run_deterministic_lower_bound,
)
from repro.matching.blossom import mcm_exact


class TestAdversarialOrdering:
    def test_decoys_first(self):
        arrays = adversarial_clique_ordering(20, 4)
        for v, arr in enumerate(arrays):
            assert len(arr) == 19
            head = set(int(u) for u in arr[:4])
            expected_decoys = {u for u in range(4) if u != v}
            assert expected_decoys <= head

    def test_delta_too_large(self):
        with pytest.raises(ValueError, match="delta < n/2"):
            adversarial_clique_ordering(10, 5)


class TestDeterministicFailure:
    def test_all_edges_touch_decoys(self):
        sp = deterministic_first_delta_sparsifier(30, 3)
        for u, v in sp.edges():
            assert u < 3 or v < 3

    def test_ratio_matches_paper_bound(self):
        report = run_deterministic_lower_bound(60, 5)
        assert report.mcm_graph == 30
        assert report.mcm_sparsifier <= 5
        assert report.ratio >= report.paper_bound

    @pytest.mark.parametrize("n,delta", [(20, 2), (40, 4), (80, 8)])
    def test_sparsifier_mcm_at_most_delta(self, n, delta):
        sp = deterministic_first_delta_sparsifier(n, delta)
        assert mcm_exact(sp).size <= delta


class TestExactPreservation:
    def test_closed_form_range(self):
        assert exact_preservation_probability(5, 1) == pytest.approx(
            1 - (1 - 1 / 5) ** 2
        )
        assert exact_preservation_probability(5, 5) == 1.0
        assert exact_preservation_probability(5, 10) == 1.0  # clamped

    def test_validation(self):
        with pytest.raises(ValueError):
            exact_preservation_probability(4, 1)  # even half
        with pytest.raises(ValueError):
            exact_preservation_probability(0, 1)

    def test_empirical_tracks_closed_form(self):
        half, delta, trials = 25, 5, 300
        closed = exact_preservation_probability(half, delta)
        emp = empirical_exact_preservation(half, delta, trials, seed=0)
        assert abs(emp - closed) < 0.12  # 3+ sigma slack at 300 trials

    def test_full_mcm_check_at_most_bridge_rate(self):
        """Exact preservation implies the bridge survived (Obs 2.14)."""
        half, delta, trials = 9, 2, 60
        rng = np.random.default_rng(1)
        full = empirical_exact_preservation(half, delta, trials, rng=rng,
                                            check_full_mcm=True)
        rng = np.random.default_rng(1)
        bridge = empirical_exact_preservation(half, delta, trials, rng=rng,
                                              check_full_mcm=False)
        assert full <= bridge + 1e-9
