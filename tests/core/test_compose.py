"""Tests for the composed bounded-degree sparsifier G̃_Δ (§3.2)."""

from repro.core.compose import composed_sparsifier
from repro.graphs.generators import clique_union
from repro.matching.blossom import mcm_exact


class TestComposition:
    def test_degree_bound_holds(self):
        g = clique_union(3, 30)
        comp = composed_sparsifier(g, beta=1, epsilon=0.3, seed=0)
        assert comp.subgraph.max_degree() <= comp.degree_bound

    def test_subgraph_chain(self):
        g = clique_union(3, 30)
        comp = composed_sparsifier(g, beta=1, epsilon=0.3, seed=1)
        for u, v in comp.subgraph.edges():
            assert comp.intermediate.has_edge(u, v)
        for u, v in comp.intermediate.edges():
            assert g.has_edge(u, v)

    def test_quality(self):
        g = clique_union(3, 30)
        opt = mcm_exact(g).size
        comp = composed_sparsifier(g, beta=1, epsilon=0.3, seed=2)
        got = mcm_exact(comp.subgraph).size
        assert opt <= (1 + 0.3) * got

    def test_rescale_flag(self):
        g = clique_union(2, 20)
        scaled = composed_sparsifier(g, 1, 0.3, seed=3, rescale=True)
        unscaled = composed_sparsifier(g, 1, 0.3, seed=3, rescale=False)
        # Rescaling runs stages at eps/3, hence a larger delta.
        assert scaled.delta >= unscaled.delta
