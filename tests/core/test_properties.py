"""Tests for the Section 2.2 property checkers."""


from repro.core.properties import (
    QualityReport,
    arboricity_bound_holds,
    size_bound_holds,
    sparsifier_quality,
)
from repro.core.sparsifier import build_sparsifier
from repro.graphs.builder import from_edges
from repro.graphs.generators import clique_union
from repro.matching.blossom import mcm_exact


class TestQualityReport:
    def test_ratio(self):
        assert QualityReport(10, 8).ratio == 1.25
        assert QualityReport(0, 0).ratio == 1.0
        assert QualityReport(5, 0).ratio == float("inf")

    def test_within(self):
        assert QualityReport(11, 10).within(0.1)
        assert not QualityReport(12, 10).within(0.1)


class TestBounds:
    def test_size_bound_on_family(self, rng):
        g = clique_union(3, 20)
        res = build_sparsifier(g, 5, rng=rng)
        assert size_bound_holds(g, res.subgraph, 5, beta=1)

    def test_size_bound_precomputed_mcm(self, rng):
        g = clique_union(2, 12)
        res = build_sparsifier(g, 3, rng=rng)
        opt = mcm_exact(g).size
        assert size_bound_holds(g, res.subgraph, 3, 1, mcm_size=opt)

    def test_arboricity_bound(self, rng):
        g = clique_union(3, 20)
        res = build_sparsifier(g, 5, rng=rng)
        assert arboricity_bound_holds(res.subgraph, 5)

    def test_arboricity_trivial_graphs(self):
        assert arboricity_bound_holds(from_edges(1, []), 1)
        assert arboricity_bound_holds(from_edges(0, []), 1)


class TestSparsifierQuality:
    def test_matches_manual(self, rng):
        g = clique_union(2, 16)
        res = build_sparsifier(g, 4, rng=rng)
        report = sparsifier_quality(g, res.subgraph)
        assert report.mcm_graph == mcm_exact(g).size
        assert report.mcm_sparsifier == mcm_exact(res.subgraph).size
        assert report.ratio >= 1.0
