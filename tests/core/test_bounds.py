"""Tests for the paper-bounds calculator."""

import pytest

from repro.core.bounds import PaperBounds
from repro.core.delta import delta_paper, delta_practical


class TestPaperBounds:
    def test_delta_variants(self):
        b = PaperBounds(n=1000, beta=2, epsilon=0.3)
        assert b.delta == delta_practical(2, 0.3)
        assert b.delta_proven == delta_paper(2, 0.3)
        assert b.delta < b.delta_proven

    def test_mcm_lower_bound(self):
        assert PaperBounds(100, 2, 0.5).mcm_lower_bound == 25.0

    def test_size_bounds(self):
        b = PaperBounds(100, 1, 0.5, mcm_size=50)
        assert b.sparsifier_size_naive == 100 * b.delta
        assert b.sparsifier_size_sharp == 2 * 50 * (b.delta + 1)

    def test_size_bound_without_mcm(self):
        b = PaperBounds(100, 1, 0.5)
        assert b.sparsifier_size_sharp == 2 * 50 * (b.delta + 1)

    def test_arboricity_and_probes(self):
        b = PaperBounds(64, 1, 0.5)
        assert b.arboricity_bound == 2 * b.delta
        assert b.sequential_probe_bound == 64 * (b.delta + 1)

    def test_messages_bound(self):
        b = PaperBounds(64, 1, 0.5)
        assert b.messages_bound(3) == 3 * 64 * b.delta
        with pytest.raises(ValueError):
            b.messages_bound(-1)

    def test_lower_bounds(self):
        b = PaperBounds(200, 2, 0.5)
        assert b.deterministic_ratio_lower_bound == 200 / (2 * b.delta)
        assert 0 < b.exact_preservation_upper_bound() <= 1.0

    def test_summary_keys(self):
        summary = PaperBounds(50, 1, 0.4).summary()
        assert set(summary) == {
            "delta", "delta_proven", "mcm_lower_bound",
            "sparsifier_size_naive", "sparsifier_size_sharp",
            "arboricity_bound", "sequential_probe_bound",
            "dynamic_update_bound", "deterministic_ratio_lower_bound",
            "exact_preservation_upper_bound",
        }

    def test_consistency_with_measured_experiments(self):
        """The calculator's bounds hold on a real instance."""
        from repro.core.sparsifier import build_sparsifier
        from repro.graphs.generators import clique_union
        from repro.matching.blossom import mcm_exact

        g = clique_union(3, 20)
        opt = mcm_exact(g).size
        b = PaperBounds(g.num_vertices, 1, 0.4, mcm_size=opt)
        res = build_sparsifier(g, b.delta, seed=0)
        assert opt >= b.mcm_lower_bound
        assert res.subgraph.num_edges <= b.sparsifier_size_sharp
        assert res.subgraph.num_edges <= b.sparsifier_size_naive
