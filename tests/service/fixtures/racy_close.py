"""A :class:`MatchingService` with the pre-hardening close/update race.

This reintroduces, verbatim in shape, the bug the service shipped with
before the close path was hardened:

* ``_handle_close`` pops the batcher, **awaits the drain**, and only
  then unregisters the session — so for the whole drain the session
  name is still visible in ``self.sessions`` while ``self.batchers``
  has no entry for it;
* ``_batcher`` indexes ``self.batchers`` directly instead of raising
  ``no-such-session`` on a missing entry.

An update racing the close therefore passes the ``_session`` lookup,
lands in ``_batcher``, and dies with a ``KeyError`` that surfaces to
the client as the ``internal`` error code.  The sanitizer test suite
uses seeded schedule perturbation to re-discover this interleaving,
and the R10 interleaving-hazard rule flags ``_handle_close`` statically
(read of shared dict state before an await, mutation after it).
"""

from __future__ import annotations

from repro.service.batching import MicroBatcher
from repro.service.protocol import ProtocolError, ok_response
from repro.service.server import MatchingService
from repro.service.session import Session


class RacyMatchingService(MatchingService):
    """The matching service with the historical close/update race."""

    def _session(self, request: dict) -> Session:
        # Carried into the subclass verbatim so the whole racy read/
        # await/write cycle lives in one class, as it did historically.
        name = request["session"]
        if name not in self.sessions:
            raise ProtocolError("no-such-session", f"no session {name!r}")
        return self.sessions[name]

    async def _handle_close(self, request: dict) -> dict:
        session = self._session(request)
        batcher = self.batchers.pop(session.name)
        # BUG: the drain suspends while the session is still registered,
        # so a concurrent update can observe the half-closed state.
        await batcher.close()
        del self.sessions[session.name]
        session.close()
        return ok_response(closed=session.name, seq=session.seq)

    def _batcher(self, session: Session) -> MicroBatcher:
        # BUG: no missing-entry handling; racing updates get a KeyError.
        return self.batchers[session.name]
