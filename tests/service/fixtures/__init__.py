"""Deliberately-racy service variants for the sanitizer test suite.

Everything in this directory reintroduces a concurrency bug on purpose
(the lint runner's discovery skips ``fixtures`` directories, so these
files never trip the repository-tree-is-clean gate).
"""
