"""Tests for the deterministic load generator (and its CLI)."""

import json

import pytest

from repro.contracts import check_replay_sessions
from repro.service.client import ServiceClient
from repro.service.journal import replay_journal
from repro.service.loadgen import main as loadgen_main
from repro.service.loadgen import run_load
from repro.service.server import BackgroundServer

pytestmark = pytest.mark.fast


class TestRunLoad:
    def test_unknown_adversary(self):
        with pytest.raises(ValueError, match="unknown adversary"):
            run_load(None, "s", adversary="byzantine")

    def test_oblivious_burst_report(self, tmp_path):
        with BackgroundServer(journal_dir=tmp_path) as srv:
            with ServiceClient(srv.host, srv.port) as cli:
                report = run_load(cli, "burst", adversary="oblivious",
                                  steps=80, seed=3)
        assert report["applied"] == 80
        assert report["errors"] == 0
        assert report["size"] == len(report["matching"])
        assert report["stats"]["seq"] == 80
        assert report["stats"]["latency"]["count"] == 80
        assert report["universe"]["num_vertices"] == 64

    def test_adaptive_is_deterministic_and_adaptive(self, tmp_path):
        # Same seed, two fresh sessions: the full adaptivity loop
        # (observe matching -> attack) must reproduce byte-for-byte.
        reports = []
        for name in ("a", "b"):
            with BackgroundServer(journal_dir=tmp_path / name) as srv:
                with ServiceClient(srv.host, srv.port) as cli:
                    reports.append(run_load(
                        cli, name, adversary="adaptive", steps=150, seed=11
                    ))
        first, second = reports
        assert first["attacks"] > 0  # the adversary really attacked
        assert first["fingerprint"] == second["fingerprint"]
        assert first["matching"] == second["matching"]
        assert first["attacks"] == second["attacks"]

    def test_journal_replays_to_live_state(self, tmp_path):
        with BackgroundServer(journal_dir=tmp_path) as srv:
            with ServiceClient(srv.host, srv.port) as cli:
                report = run_load(cli, "replayed", adversary="adaptive",
                                  steps=120, seed=5)
                live = srv.service.sessions["replayed"]
                replayed = replay_journal(tmp_path / "replayed.jsonl")
                check_replay_sessions(live, replayed)
        assert replayed.fingerprint() == report["fingerprint"]
        assert replayed.matching_payload()["edges"] == report["matching"]


class TestCli:
    def test_cli_writes_report_and_shuts_down(self, tmp_path):
        out = tmp_path / "report.json"
        with BackgroundServer(journal_dir=tmp_path / "journals") as srv:
            code = loadgen_main([
                "--port", str(srv.port), "--host", srv.host,
                "--session", "cli", "--adversary", "oblivious",
                "--steps", "40", "--seed", "2", "--out", str(out),
                "--shutdown",
            ])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["applied"] == 40
        assert report["session"] == "cli"
        # --shutdown implies the session was closed (journal flushed).
        journal = tmp_path / "journals" / "cli.jsonl"
        assert len(journal.read_text().splitlines()) == 41

    def test_cli_prints_to_stdout(self, capsys, tmp_path):
        with BackgroundServer() as srv:
            code = loadgen_main([
                "--port", str(srv.port), "--steps", "10", "--seed", "1",
            ])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["applied"] == 10
