"""Adaptive-adversary soak: quality + replay identity under real load.

The ISSUE-level acceptance test for the service: at least a thousand
adversarial updates through the real TCP stack, after which the served
matching must still be within (1+eps) of the exact maximum matching of
the *current* graph, the journal must replay byte-identically (checked
under ``REPRO_RNG_SANITIZE=1`` so draw counts are compared too), and
every recorded latency sample summary must respect the budget.

Deliberately not marked ``fast`` — this is the slow, thorough leg.
"""

from repro import from_edges, mcm_exact
from repro.contracts import check_replay_sessions
from repro.service.client import ServiceClient
from repro.service.journal import read_journal, replay_journal
from repro.service.loadgen import run_load
from repro.service.server import BackgroundServer

EPSILON = 0.4
STEPS = 1200


def test_adaptive_soak_quality_and_replay(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RNG_SANITIZE", "1")
    with BackgroundServer(journal_dir=tmp_path) as srv:
        with ServiceClient(srv.host, srv.port) as client:
            report = run_load(
                client, "soak", adversary="adaptive", steps=STEPS,
                epsilon=EPSILON, seed=11,
            )
            snapshot = client.snapshot("soak")
            stats = client.stats("soak")
            live = srv.service.sessions["soak"]
            replayed = replay_journal(tmp_path / "soak.jsonl")
            check_replay_sessions(live, replayed)

    # Volume: every requested update was admitted and applied.
    assert report["applied"] >= 1000
    assert report["errors"] == 0
    assert report["attacks"] > 0

    # Quality: served matching within (1+eps) of the exact MCM of the
    # final graph (reconstructed from the server's own snapshot).
    graph = from_edges(
        snapshot["num_vertices"],
        [tuple(edge) for edge in snapshot["graph_edges"]],
    )
    exact = mcm_exact(graph).size
    served = report["size"]
    assert exact <= (1.0 + EPSILON) * served, (
        f"served matching of size {served} vs exact MCM {exact}: "
        f"worse than (1+{EPSILON})"
    )

    # Latency: the percentile summary respects the configured budget.
    latency = stats["latency"]
    assert latency["count"] == report["applied"]
    assert latency["p99_ms"] <= latency["budget_ms"]

    # Replay: same updates, same matching bytes, same fingerprint, and
    # (sanitizer on) the same RNG draw counts.
    assert live.rng_fingerprints() != ()
    assert replayed.fingerprint() == report["fingerprint"]

    # The journal recorded exactly the applied updates, in order.
    _, updates = read_journal(tmp_path / "soak.jsonl")
    assert len(updates) == report["applied"]
