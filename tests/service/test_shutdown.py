"""Graceful signal shutdown for ``repro-experiments serve``.

SIGTERM/SIGINT must: stop accepting connections, drain in-flight
micro-batches, flush and close every journal, and exit 0 — the
contract the cluster supervisor relies on to stop shard workers
without losing journaled updates.
"""

import signal
import subprocess
import sys

import pytest

from repro.cluster.supervisor import _ANNOUNCE_RE, _worker_env
from repro.service.client import ServiceClient
from repro.service.journal import replay_journal


def _start_server(journal_dir):
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--port", "0", "--journal-dir", str(journal_dir)],
        stdout=subprocess.PIPE, text=True, bufsize=1, env=_worker_env(),
    )
    line = process.stdout.readline()
    match = _ANNOUNCE_RE.search(line)
    assert match, f"no announce line, got {line!r}"
    return process, match.group("host"), int(match.group("port"))


@pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
def test_signal_drains_and_exits_zero(tmp_path, signum):
    process, host, port = _start_server(tmp_path)
    try:
        with ServiceClient(host, port) as client:
            client.create("sig", num_vertices=16, beta=1, epsilon=0.4,
                          seed=0)
            for i in range(0, 12, 2):
                client.insert("sig", i, i + 1)
            served = client.snapshot("sig")["fingerprint"]
        process.send_signal(signum)
        code = process.wait(timeout=30)
    finally:
        if process.poll() is None:  # pragma: no cover - hang guard
            process.kill()
            process.wait()
        process.stdout.close()
    assert code == 0
    # The journal was flushed and closed on the way out: offline replay
    # reproduces the served state byte-for-byte.
    replayed = replay_journal(tmp_path / "sig.jsonl")
    assert replayed.seq == 6
    assert replayed.fingerprint() == served


def test_sigterm_refuses_new_connections_while_draining(tmp_path):
    # After the signal the listener closes before sessions drain; a new
    # connect attempt must fail rather than hang half-served.
    process, host, port = _start_server(tmp_path)
    try:
        with ServiceClient(host, port) as client:
            client.create("drain", num_vertices=8, beta=1, epsilon=0.4,
                          seed=0)
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=30) == 0
    finally:
        if process.poll() is None:  # pragma: no cover - hang guard
            process.kill()
            process.wait()
        process.stdout.close()
    with pytest.raises(OSError):
        ServiceClient(host, port)
