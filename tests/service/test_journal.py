"""Tests for the replay journal: format, fault tolerance, determinism."""

import json

import pytest

from repro.contracts import ContractViolation, check_replay_sessions
from repro.service.journal import (
    JOURNAL_FORMAT,
    JournalError,
    ReplayJournal,
    read_journal,
    replay_journal,
)
from repro.service.session import Session

pytestmark = pytest.mark.fast

UPDATES = [("insert", 0, 1), ("insert", 1, 2), ("insert", 2, 3),
           ("delete", 1, 2), ("insert", 4, 5), ("insert", 5, 6),
           ("delete", 0, 1), ("insert", 0, 7)]


def record_session(path, seed=3, updates=UPDATES):
    session = Session(
        "journal-test", num_vertices=8, beta=1, epsilon=0.4,
        seed=seed, journal=ReplayJournal(path),
    )
    for op, u, v in updates:
        session.apply(op, u, v)
    session.flush_journal()
    return session


class TestFormat:
    def test_header_fields(self, tmp_path):
        path = tmp_path / "s.jsonl"
        session = record_session(path)
        header, updates = read_journal(path)
        assert header["format"] == JOURNAL_FORMAT
        assert header["session"] == "journal-test"
        assert header["num_vertices"] == 8
        assert header["backend"] == "lazy_rebuild"
        assert header["rng"]["entropy"] == 3
        assert header["delta"] == session.delta
        assert len(updates) == len(UPDATES)
        assert [u["seq"] for u in updates] == list(range(1, len(UPDATES) + 1))

    def test_rejected_updates_not_journaled(self, tmp_path):
        path = tmp_path / "s.jsonl"
        session = Session("s", num_vertices=4, beta=1, epsilon=0.4,
                          seed=0, journal=ReplayJournal(path))
        session.apply("insert", 0, 1)
        with pytest.raises(Exception):
            session.apply("insert", 0, 1)  # duplicate: rejected
        session.close()
        _, updates = read_journal(path)
        assert len(updates) == 1

    def test_closed_journal_refuses_writes(self, tmp_path):
        journal = ReplayJournal(tmp_path / "s.jsonl")
        journal.close()
        journal.close()  # idempotent
        with pytest.raises(JournalError):
            journal.record(1, "insert", 0, 1)


class TestFaults:
    def test_missing_file(self, tmp_path):
        with pytest.raises(JournalError, match="no such journal"):
            read_journal(tmp_path / "nope.jsonl")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text("")
        with pytest.raises(JournalError, match="empty journal"):
            read_journal(path)

    def test_bad_header(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(JournalError, match="bad header"):
            read_journal(path)

    def test_unknown_format(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('{"format": "not-a-journal"}\n')
        with pytest.raises(JournalError, match="unknown journal format"):
            read_journal(path)

    def test_truncated_tail_is_dropped(self, tmp_path):
        path = tmp_path / "s.jsonl"
        record_session(path)
        with path.open("a") as handle:
            handle.write('{"seq": 99, "op": "ins')  # kill mid-append
        _, updates = read_journal(path)
        assert len(updates) == len(UPDATES)

    def test_corrupt_interior_line_raises(self, tmp_path):
        path = tmp_path / "s.jsonl"
        record_session(path)
        lines = path.read_text().splitlines()
        lines[2] = "garbage"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="bad record"):
            read_journal(path)

    def test_sequence_gap_raises(self, tmp_path):
        path = tmp_path / "s.jsonl"
        record_session(path)
        lines = path.read_text().splitlines()
        del lines[3]  # drop one interior update
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="sequence gap"):
            read_journal(path)

    def test_bad_op_raises(self, tmp_path):
        path = tmp_path / "s.jsonl"
        record_session(path, updates=UPDATES[:2])
        with path.open("a") as handle:
            handle.write(json.dumps(
                {"seq": 3, "op": "upsert", "u": 0, "v": 2}) + "\n")
            handle.write(json.dumps(
                {"seq": 4, "op": "insert", "u": 0, "v": 3}) + "\n")
        with pytest.raises(JournalError, match="bad op"):
            read_journal(path)


class TestReplay:
    def test_replay_is_byte_identical(self, tmp_path):
        path = tmp_path / "s.jsonl"
        recorded = record_session(path)
        replayed = replay_journal(path)
        assert replayed.seq == recorded.seq
        assert (replayed.matching.mate.tobytes()
                == recorded.matching.mate.tobytes())
        assert replayed.fingerprint() == recorded.fingerprint()
        check_replay_sessions(recorded, replayed)

    def test_replay_under_sanitizer_checks_draw_counts(self, tmp_path,
                                                       monkeypatch):
        monkeypatch.setenv("REPRO_RNG_SANITIZE", "1")
        path = tmp_path / "s.jsonl"
        recorded = record_session(path)
        replayed = replay_journal(path)
        assert recorded.rng_fingerprints() != ()
        check_replay_sessions(recorded, replayed)

    def test_contract_catches_divergence(self, tmp_path):
        path = tmp_path / "s.jsonl"
        recorded = record_session(path)
        short = replay_journal(path, upto=3)
        with pytest.raises(ContractViolation):
            check_replay_sessions(recorded, short)

    def test_upto_time_travel(self, tmp_path):
        path = tmp_path / "s.jsonl"
        record_session(path)
        partial = replay_journal(path, upto=2)
        assert partial.seq == 2
        assert sorted(partial.sparsifier.graph.edges()) == [(0, 1), (1, 2)]

    def test_replay_bad_header_fields(self, tmp_path):
        path = tmp_path / "s.jsonl"
        record_session(path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        del header["rng"]["entropy"]
        lines[0] = json.dumps(header)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="bad header fields"):
            replay_journal(path)
