"""End-to-end TCP tests: server, client, error codes, pipelining."""

import asyncio
import json

import pytest

from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import PROTOCOL
from repro.service.server import BackgroundServer

pytestmark = pytest.mark.fast


@pytest.fixture
def server(tmp_path):
    with BackgroundServer(journal_dir=tmp_path / "journals") as srv:
        yield srv


@pytest.fixture
def client(server):
    with ServiceClient(server.host, server.port) as cli:
        yield cli


class TestLifecycle:
    def test_ping(self, client):
        assert client.ping()["protocol"] == PROTOCOL

    def test_create_update_query(self, client):
        created = client.create("s", num_vertices=8, beta=1, epsilon=0.4,
                                seed=0)
        assert created["backend"] == "lazy_rebuild"
        assert created["journaled"] is True
        assert created["work_budget_chunks"] >= 1
        client.insert("s", 0, 1)
        client.insert("s", 2, 3)
        client.delete("s", 0, 1)
        payload = client.query_matching("s")
        assert payload["size"] == len(payload["edges"])
        assert client.sessions() == ["s"]

    def test_batch(self, client):
        client.create("s", num_vertices=8, beta=1, epsilon=0.4, seed=0)
        response = client.batch(
            "s", [("insert", 0, 1), ("insert", 0, 1), ("insert", 2, 3)]
        )
        assert response["applied"] == 2
        assert response["results"][1]["error"] == "bad-update"

    def test_stats_and_snapshot(self, client):
        client.create("s", num_vertices=8, beta=1, epsilon=0.4, seed=0,
                      budget_ms=25.0)
        client.insert("s", 0, 1)
        stats = client.stats("s")
        assert stats["seq"] == 1
        assert stats["latency"]["budget_ms"] == 25.0
        assert stats["latency"]["count"] == 1
        assert stats["counters"]["updates"] == 1
        snapshot = client.snapshot("s")
        assert snapshot["graph_edges"] == [[0, 1]]
        assert snapshot["fingerprint"]

    def test_close_session_flushes_journal(self, server, client, tmp_path):
        client.create("s", num_vertices=8, beta=1, epsilon=0.4, seed=0)
        client.insert("s", 0, 1)
        closed = client.close_session("s")
        assert closed == {"ok": True, "closed": "s", "seq": 1}
        assert client.sessions() == []
        journal = tmp_path / "journals" / "s.jsonl"
        assert len(journal.read_text().splitlines()) == 2  # header + 1

    def test_journal_opt_out(self, client):
        created = client.create("s", num_vertices=8, beta=1, epsilon=0.4,
                                seed=0, journal=False)
        assert created["journaled"] is False

    def test_two_clients_one_session(self, server, client):
        client.create("s", num_vertices=8, beta=1, epsilon=0.4, seed=0)
        with ServiceClient(server.host, server.port) as other:
            other.insert("s", 0, 1)
            client.insert("s", 2, 3)
            assert other.stats("s")["seq"] == 2


class TestErrorCodes:
    def test_no_such_session(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.insert("ghost", 0, 1)
        assert excinfo.value.code == "no-such-session"

    def test_session_exists(self, client):
        client.create("s", num_vertices=8, beta=1, epsilon=0.4, seed=0)
        with pytest.raises(ServiceError) as excinfo:
            client.create("s", num_vertices=8, beta=1, epsilon=0.4, seed=0)
        assert excinfo.value.code == "session-exists"

    def test_bad_update(self, client):
        client.create("s", num_vertices=8, beta=1, epsilon=0.4, seed=0)
        with pytest.raises(ServiceError) as excinfo:
            client.delete("s", 0, 1)
        assert excinfo.value.code == "bad-update"

    def test_unknown_op(self, client):
        response = client.call({"op": "frobnicate"}, check=False)
        assert response["ok"] is False
        assert response["error"] == "unknown-op"

    def test_bad_create_parameters_reported_as_internal_free_code(self, client):
        # Unknown backend is surfaced, not a crashed connection.
        response = client.call(
            {"op": "create", "session": "s", "num_vertices": 8,
             "beta": 1, "epsilon": 0.4, "backend": "quantum"},
            check=False,
        )
        assert response["ok"] is False
        assert client.ping()["ok"] is True  # connection survived

    def test_shutdown_disabled(self):
        with BackgroundServer(allow_shutdown=False) as srv:
            with ServiceClient(srv.host, srv.port) as cli:
                with pytest.raises(ServiceError) as excinfo:
                    cli.shutdown()
                assert excinfo.value.code == "shutdown-disabled"

    def test_backpressure_error_code(self, tmp_path):
        with BackgroundServer(max_queue=4) as srv:
            with ServiceClient(srv.host, srv.port) as cli:
                cli.create("s", num_vertices=32, beta=1, epsilon=0.4, seed=0)
                updates = [("insert", 2 * i, 2 * i + 1) for i in range(8)]
                with pytest.raises(ServiceError) as excinfo:
                    cli.batch("s", updates)
                assert excinfo.value.code == "backpressure"
                assert cli.stats("s")["counters"]["rejected_over_budget"] == 8


class TestWireLevel:
    def run_raw(self, server, payloads):
        """Write raw lines down one connection; return decoded responses."""

        async def scenario():
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            for payload in payloads:
                writer.write(payload)
            await writer.drain()
            responses = []
            for _ in payloads:
                responses.append(json.loads(await reader.readline()))
            writer.close()
            await writer.wait_closed()
            return responses

        return asyncio.run(scenario())

    def test_malformed_line_gets_bad_request(self, server):
        (response,) = self.run_raw(server, [b"not json at all\n"])
        assert response["ok"] is False
        assert response["error"] == "bad-request"

    def test_pipelined_requests_answered_in_order(self, server):
        with ServiceClient(server.host, server.port) as cli:
            cli.create("s", num_vertices=16, beta=1, epsilon=0.4, seed=0)
        requests = [
            {"op": "insert", "session": "s", "u": 2 * i, "v": 2 * i + 1,
             "id": i}
            for i in range(6)
        ]
        payloads = [
            (json.dumps(request) + "\n").encode() for request in requests
        ]
        responses = self.run_raw(server, payloads)
        # In-order responses with echoed ids, even though the six inserts
        # were all in flight at once (and micro-batched server-side).
        assert [r["id"] for r in responses] == [0, 1, 2, 3, 4, 5]
        assert [r["seq"] for r in responses] == [1, 2, 3, 4, 5, 6]
        # Read-your-writes holds once the update responses were read:
        # a *new* exchange observes all six updates.
        (stats,) = self.run_raw(
            server, [b'{"op": "stats", "session": "s"}\n']
        )
        assert stats["seq"] == 6
        # Pipelining actually coalesced: fewer batches than updates.
        assert stats["counters"]["batches"] <= stats["counters"]["updates"]
