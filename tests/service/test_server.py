"""End-to-end TCP tests: server, client, error codes, pipelining."""

import asyncio
import json

import pytest

from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import PROTOCOL
from repro.service.server import BackgroundServer, MatchingService

pytestmark = pytest.mark.fast


@pytest.fixture
def server(tmp_path):
    with BackgroundServer(journal_dir=tmp_path / "journals") as srv:
        yield srv


@pytest.fixture
def client(server):
    with ServiceClient(server.host, server.port) as cli:
        yield cli


class TestLifecycle:
    def test_ping(self, client):
        assert client.ping()["protocol"] == PROTOCOL

    def test_create_update_query(self, client):
        created = client.create("s", num_vertices=8, beta=1, epsilon=0.4,
                                seed=0)
        assert created["backend"] == "lazy_rebuild"
        assert created["journaled"] is True
        assert created["work_budget_chunks"] >= 1
        client.insert("s", 0, 1)
        client.insert("s", 2, 3)
        client.delete("s", 0, 1)
        payload = client.query_matching("s")
        assert payload["size"] == len(payload["edges"])
        assert client.sessions() == ["s"]

    def test_batch(self, client):
        client.create("s", num_vertices=8, beta=1, epsilon=0.4, seed=0)
        response = client.batch(
            "s", [("insert", 0, 1), ("insert", 0, 1), ("insert", 2, 3)]
        )
        assert response["applied"] == 2
        assert response["results"][1]["error"] == "bad-update"

    def test_stats_and_snapshot(self, client):
        client.create("s", num_vertices=8, beta=1, epsilon=0.4, seed=0,
                      budget_ms=25.0)
        client.insert("s", 0, 1)
        stats = client.stats("s")
        assert stats["seq"] == 1
        assert stats["latency"]["budget_ms"] == 25.0
        assert stats["latency"]["count"] == 1
        assert stats["counters"]["updates"] == 1
        snapshot = client.snapshot("s")
        assert snapshot["graph_edges"] == [[0, 1]]
        assert snapshot["fingerprint"]

    def test_close_session_flushes_journal(self, server, client, tmp_path):
        client.create("s", num_vertices=8, beta=1, epsilon=0.4, seed=0)
        client.insert("s", 0, 1)
        closed = client.close_session("s")
        assert closed == {"ok": True, "closed": "s", "seq": 1}
        assert client.sessions() == []
        journal = tmp_path / "journals" / "s.jsonl"
        assert len(journal.read_text().splitlines()) == 2  # header + 1

    def test_journal_opt_out(self, client):
        created = client.create("s", num_vertices=8, beta=1, epsilon=0.4,
                                seed=0, journal=False)
        assert created["journaled"] is False

    def test_two_clients_one_session(self, server, client):
        client.create("s", num_vertices=8, beta=1, epsilon=0.4, seed=0)
        with ServiceClient(server.host, server.port) as other:
            other.insert("s", 0, 1)
            client.insert("s", 2, 3)
            assert other.stats("s")["seq"] == 2


class TestErrorCodes:
    def test_no_such_session(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.insert("ghost", 0, 1)
        assert excinfo.value.code == "no-such-session"

    def test_session_exists(self, client):
        client.create("s", num_vertices=8, beta=1, epsilon=0.4, seed=0)
        with pytest.raises(ServiceError) as excinfo:
            client.create("s", num_vertices=8, beta=1, epsilon=0.4, seed=0)
        assert excinfo.value.code == "session-exists"

    def test_bad_update(self, client):
        client.create("s", num_vertices=8, beta=1, epsilon=0.4, seed=0)
        with pytest.raises(ServiceError) as excinfo:
            client.delete("s", 0, 1)
        assert excinfo.value.code == "bad-update"

    def test_unknown_op(self, client):
        response = client.call({"op": "frobnicate"}, check=False)
        assert response["ok"] is False
        assert response["error"] == "unknown-op"

    def test_bad_create_parameters_reported_as_internal_free_code(self, client):
        # Unknown backend is surfaced, not a crashed connection.
        response = client.call(
            {"op": "create", "session": "s", "num_vertices": 8,
             "beta": 1, "epsilon": 0.4, "backend": "quantum"},
            check=False,
        )
        assert response["ok"] is False
        assert client.ping()["ok"] is True  # connection survived

    def test_shutdown_disabled(self):
        with BackgroundServer(allow_shutdown=False) as srv:
            with ServiceClient(srv.host, srv.port) as cli:
                with pytest.raises(ServiceError) as excinfo:
                    cli.shutdown()
                assert excinfo.value.code == "shutdown-disabled"

    def test_traversal_session_name_rejected(self, client, tmp_path):
        # A path-shaped session name must never reach the filesystem.
        for name in ("../../evil", "/etc/passwd", "a/b", "..", ".hidden", ""):
            response = client.call(
                {"op": "create", "session": name, "num_vertices": 8,
                 "beta": 1, "epsilon": 0.4},
                check=False,
            )
            assert response["error"] == "bad-request", name
        assert client.sessions() == []
        assert not (tmp_path / "evil.jsonl").exists()
        assert not (tmp_path / "journals" / "evil.jsonl").exists()

    def test_journal_path_containment_direct(self, tmp_path):
        # Defense in depth below the wire parser: MatchingService
        # itself refuses names that resolve outside the journal dir.
        service = MatchingService(journal_dir=tmp_path / "journals")
        from repro.service.protocol import ProtocolError

        with pytest.raises(ProtocolError) as excinfo:
            service._journal_path("../escape")
        assert excinfo.value.code == "bad-request"
        assert service._journal_path("fine").parent == (
            tmp_path / "journals"
        ).resolve()

    def test_bad_create_parameters_are_bad_request(self, client):
        base = {"op": "create", "session": "s", "num_vertices": 8,
                "beta": 1, "epsilon": 0.4}
        for overrides in ({"epsilon": 2.0}, {"epsilon": 0.0}, {"beta": 0},
                          {"num_vertices": 0}, {"backend": "quantum"},
                          {"seed": "zero"}, {"budget_ms": -1.0}):
            response = client.call({**base, **overrides}, check=False)
            assert response["error"] == "bad-request", overrides
        assert client.sessions() == []

    def test_failed_create_preserves_existing_journal(self, client, tmp_path):
        client.create("s", num_vertices=8, beta=1, epsilon=0.4, seed=0)
        client.insert("s", 0, 1)
        client.close_session("s")
        journal = tmp_path / "journals" / "s.jsonl"
        before = journal.read_text()
        response = client.call(
            {"op": "create", "session": "s", "num_vertices": 8,
             "beta": 1, "epsilon": 2.0},
            check=False,
        )
        assert response["error"] == "bad-request"
        assert journal.read_text() == before  # not truncated

    def test_update_racing_close_gets_no_such_session(self, tmp_path):
        # An insert dispatched while close() is draining the batcher
        # must surface as no-such-session, not an internal KeyError.
        async def scenario():
            service = MatchingService(journal_dir=tmp_path)
            await service.handle_request(
                {"op": "create", "session": "s", "num_vertices": 8,
                 "beta": 1, "epsilon": 0.4, "seed": 0}
            )
            close_task = asyncio.get_running_loop().create_task(
                service._respond('{"op": "close", "session": "s"}')
            )
            await asyncio.sleep(0)  # let close start awaiting the drain
            update = await service._respond(
                '{"op": "insert", "session": "s", "u": 0, "v": 1}'
            )
            closed = await close_task
            return closed, update

        closed, update = asyncio.run(scenario())
        assert closed["ok"] is True
        assert update["ok"] is False
        assert update["error"] == "no-such-session"

    def test_backpressure_error_code(self, tmp_path):
        with BackgroundServer(max_queue=4) as srv:
            with ServiceClient(srv.host, srv.port) as cli:
                cli.create("s", num_vertices=32, beta=1, epsilon=0.4, seed=0)
                updates = [("insert", 2 * i, 2 * i + 1) for i in range(8)]
                with pytest.raises(ServiceError) as excinfo:
                    cli.batch("s", updates)
                assert excinfo.value.code == "backpressure"
                assert cli.stats("s")["counters"]["rejected_over_budget"] == 8


class TestWireLevel:
    def run_raw(self, server, payloads):
        """Write raw lines down one connection; return decoded responses."""

        async def scenario():
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            for payload in payloads:
                writer.write(payload)
            await writer.drain()
            responses = []
            for _ in payloads:
                responses.append(json.loads(await reader.readline()))
            writer.close()
            await writer.wait_closed()
            return responses

        return asyncio.run(scenario())

    def test_malformed_line_gets_bad_request(self, server):
        (response,) = self.run_raw(server, [b"not json at all\n"])
        assert response["ok"] is False
        assert response["error"] == "bad-request"

    def test_pipelined_requests_answered_in_order(self, server):
        with ServiceClient(server.host, server.port) as cli:
            cli.create("s", num_vertices=16, beta=1, epsilon=0.4, seed=0)
        requests = [
            {"op": "insert", "session": "s", "u": 2 * i, "v": 2 * i + 1,
             "id": i}
            for i in range(6)
        ]
        payloads = [
            (json.dumps(request) + "\n").encode() for request in requests
        ]
        responses = self.run_raw(server, payloads)
        # In-order responses with echoed ids, even though the six inserts
        # were all in flight at once (and micro-batched server-side).
        assert [r["id"] for r in responses] == [0, 1, 2, 3, 4, 5]
        assert [r["seq"] for r in responses] == [1, 2, 3, 4, 5, 6]
        # Read-your-writes holds once the update responses were read:
        # a *new* exchange observes all six updates.
        (stats,) = self.run_raw(
            server, [b'{"op": "stats", "session": "s"}\n']
        )
        assert stats["seq"] == 6
        # Pipelining actually coalesced: fewer batches than updates.
        assert stats["counters"]["batches"] <= stats["counters"]["updates"]

    def test_pipelining_beyond_max_inflight_still_answers_all(self):
        # Far more pipelined requests than the inflight cap: the server
        # pauses reading rather than dropping or deadlocking, so every
        # request is still answered, in order.
        with BackgroundServer(max_inflight=4) as srv:
            with ServiceClient(srv.host, srv.port) as cli:
                cli.create("s", num_vertices=64, beta=1, epsilon=0.4, seed=0)
            requests = [
                {"op": "insert", "session": "s", "u": 2 * i, "v": 2 * i + 1,
                 "id": i}
                for i in range(24)
            ]
            payloads = [
                (json.dumps(request) + "\n").encode() for request in requests
            ]
            responses = self.run_raw(srv, payloads)
            assert [r["id"] for r in responses] == list(range(24))
            assert all(r["ok"] for r in responses)


class TestConnectionLoop:
    """The handle_connection reader/writer machinery, driven with fake
    duck-typed streams so failure injection is deterministic."""

    class FakeReader:
        def __init__(self, lines):
            self._lines = list(lines)

        async def readline(self):
            if self._lines:
                return self._lines.pop(0)
            return b""  # EOF

    class FakeWriter:
        def __init__(self, fail_on_drain=None, reset_on_drain=None):
            self.chunks = []
            self.closed = False
            self.wait_closed_called = False
            self._drains = 0
            self._fail_on_drain = fail_on_drain
            self._reset_on_drain = reset_on_drain

        def write(self, data):
            self.chunks.append(data)

        async def drain(self):
            self._drains += 1
            if self._fail_on_drain == self._drains:
                raise RuntimeError("injected writer failure")
            if self._reset_on_drain == self._drains:
                raise ConnectionResetError("client vanished")

        def close(self):
            self.closed = True

        async def wait_closed(self):
            self.wait_closed_called = True

    def serve_lines(self, lines, writer, **config):
        service = MatchingService(**config)

        async def scenario():
            await service.handle_connection(self.FakeReader(lines), writer)

        asyncio.run(scenario())
        return [json.loads(chunk) for chunk in writer.chunks]

    def test_eof_drains_queued_responses_in_order(self):
        # Pipelined requests followed by an abrupt EOF: every admitted
        # request is still answered, in request order, before cleanup.
        lines = [
            (json.dumps({"op": "ping", "id": i}) + "\n").encode()
            for i in range(5)
        ]
        writer = self.FakeWriter()
        responses = self.serve_lines(lines, writer)
        assert [r["id"] for r in responses] == list(range(5))
        assert writer.closed and writer.wait_closed_called

    def test_writer_failure_propagates_after_cleanup(self):
        # A non-transport writer exception must surface (it is a bug,
        # not client churn) — but only after the connection is closed
        # and the reader loop has been woken off the semaphore.
        lines = [
            (json.dumps({"op": "ping", "id": i}) + "\n").encode()
            for i in range(8)
        ]
        writer = self.FakeWriter(fail_on_drain=1)

        async def scenario():
            service = MatchingService(max_inflight=1)
            await service.handle_connection(self.FakeReader(lines), writer)

        with pytest.raises(RuntimeError, match="injected writer failure"):
            asyncio.run(scenario())
        assert writer.closed and writer.wait_closed_called

    def test_connection_reset_is_swallowed(self):
        # Transport-level resets are routine churn: no exception, no
        # unclosed writer, no stuck tasks.
        lines = [
            (json.dumps({"op": "ping", "id": i}) + "\n").encode()
            for i in range(3)
        ]
        writer = self.FakeWriter(reset_on_drain=1)
        responses = self.serve_lines(lines, writer)
        # The first response was written (its drain failed); nothing
        # after it leaked out of the dead connection.
        assert len(responses) >= 1
        assert writer.closed and writer.wait_closed_called

    def test_semaphore_wakeup_bounds_reader_after_writer_death(self):
        # With the writer dead, the reader must exit promptly instead
        # of consuming the socket forever: at most one extra line is
        # read after the failure (the acquire it was already parked on).
        lines = [
            (json.dumps({"op": "ping", "id": i}) + "\n").encode()
            for i in range(64)
        ]
        reader = self.FakeReader(lines)
        writer = self.FakeWriter(fail_on_drain=1)

        async def scenario():
            service = MatchingService(max_inflight=2)
            await service.handle_connection(reader, writer)

        with pytest.raises(RuntimeError):
            asyncio.run(scenario())
        assert len(reader._lines) >= 60  # almost all input left unread
