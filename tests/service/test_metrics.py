"""Tests for latency percentiles, budgets, and the metrics bundle."""

import pytest

from repro.service.metrics import (
    DEFAULT_BUDGET_MS,
    LatencyRecorder,
    ServiceMetrics,
    percentile,
    percentile_sorted,
)

pytestmark = pytest.mark.fast


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 99.0) == 0.0

    def test_single_sample(self):
        assert percentile([7.0], 50.0) == 7.0
        assert percentile([7.0], 99.0) == 7.0

    def test_nearest_rank(self):
        samples = [float(i) for i in range(1, 101)]  # 1..100
        assert percentile(samples, 50.0) == 50.0
        assert percentile(samples, 95.0) == 95.0
        assert percentile(samples, 99.0) == 99.0
        assert percentile(samples, 100.0) == 100.0

    def test_unsorted_input(self):
        assert percentile([3.0, 1.0, 2.0], 50.0) == 2.0

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)
        with pytest.raises(ValueError):
            percentile([1.0], -1.0)


class TestPercentileEdgeCases:
    """Nearest-rank behavior on degenerate windows (0/1/2 samples,
    all-equal, tiny-window p99): the cases a latency dashboard hits in
    its first seconds of life."""

    @pytest.mark.parametrize("q", [0.0, 50.0, 95.0, 99.0, 100.0])
    def test_empty_window_is_zero_for_every_q(self, q):
        assert percentile([], q) == 0.0

    @pytest.mark.parametrize("q", [0.0, 50.0, 99.0, 100.0])
    def test_single_sample_dominates_every_q(self, q):
        assert percentile([42.0], q) == 42.0

    def test_two_samples_split_at_the_median(self):
        # rank = ceil(q/100 * 2): q<=50 -> first sample, q>50 -> second.
        assert percentile([1.0, 9.0], 50.0) == 1.0
        assert percentile([1.0, 9.0], 51.0) == 9.0
        assert percentile([1.0, 9.0], 95.0) == 9.0
        assert percentile([1.0, 9.0], 99.0) == 9.0

    def test_q_zero_is_the_minimum_not_an_index_error(self):
        # ceil(0) = 0 would index rank-1 = -1; the rank floor of 1
        # clamps q=0 to the smallest sample.
        assert percentile([5.0, 1.0, 3.0], 0.0) == 1.0

    def test_all_equal_samples_any_q(self):
        samples = [2.5] * 7
        for q in (0.0, 50.0, 95.0, 99.0, 100.0):
            assert percentile(samples, q) == 2.5

    def test_p99_tiny_windows_pick_the_max(self):
        # For n < 100, ceil(0.99 n) == n whenever 0.99 n > n - 1,
        # i.e. n < 100 -> p99 is exactly the max of the window.
        for n in (2, 3, 10, 99):
            samples = [float(i) for i in range(1, n + 1)]
            assert percentile(samples, 99.0) == float(n)

    def test_p99_first_distinguishes_at_n_100(self):
        samples = [float(i) for i in range(1, 101)]
        assert percentile(samples, 99.0) == 99.0

    def test_percentile_sorted_matches_percentile(self):
        samples = [9.0, 1.0, 5.0, 3.0, 7.0]
        ordered = sorted(samples)
        for q in (0.0, 25.0, 50.0, 95.0, 99.0, 100.0):
            assert percentile_sorted(ordered, q) == percentile(samples, q)

    def test_percentile_sorted_rejects_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile_sorted([1.0], 100.5)

    def test_snapshot_of_empty_recorder_is_all_zero(self):
        snap = LatencyRecorder().snapshot()
        assert snap["count"] == 0
        assert snap["p50_ms"] == snap["p95_ms"] == snap["p99_ms"] == 0.0
        assert snap["max_ms"] == 0.0

    def test_snapshot_two_sample_window(self):
        recorder = LatencyRecorder(budget_ms=10.0)
        recorder.record(0.001)  # 1 ms
        recorder.record(0.009)  # 9 ms
        snap = recorder.snapshot()
        assert snap["p50_ms"] == 1.0
        assert snap["p95_ms"] == snap["p99_ms"] == snap["max_ms"] == 9.0


class TestLatencyRecorder:
    def test_records_in_ms(self):
        recorder = LatencyRecorder(budget_ms=10.0)
        recorder.record(0.002)  # 2 ms
        assert recorder.samples_ms == [2.0]
        assert recorder.over_budget == 0

    def test_over_budget_counted(self):
        recorder = LatencyRecorder(budget_ms=1.0)
        recorder.record(0.0005)
        recorder.record(0.0020)
        recorder.record(0.0030)
        assert recorder.over_budget == 2

    def test_snapshot_shape(self):
        recorder = LatencyRecorder()
        recorder.record(0.001)
        snap = recorder.snapshot()
        assert snap["count"] == 1
        assert snap["budget_ms"] == DEFAULT_BUDGET_MS
        assert set(snap) == {"count", "p50_ms", "p95_ms", "p99_ms",
                             "max_ms", "budget_ms", "over_budget"}
        assert snap["p50_ms"] == snap["p99_ms"] == snap["max_ms"] == 1.0


class TestServiceMetrics:
    def test_queue_depth_high_water_mark(self):
        metrics = ServiceMetrics()
        metrics.set_queue_depth(3)
        metrics.set_queue_depth(9)
        metrics.set_queue_depth(1)
        assert metrics.queue_depth == 1
        assert metrics.max_queue_depth == 9

    def test_snapshot_shape(self):
        metrics = ServiceMetrics()
        metrics.counters["updates"].increment()
        snap = metrics.snapshot()
        assert snap["counters"] == {"updates": 1}
        assert snap["queue"] == {"depth": 0, "max_depth": 0}
        assert snap["latency"]["count"] == 0
