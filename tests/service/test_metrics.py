"""Tests for latency percentiles, budgets, and the metrics bundle."""

import pytest

from repro.service.metrics import (
    DEFAULT_BUDGET_MS,
    LatencyRecorder,
    ServiceMetrics,
    percentile,
)

pytestmark = pytest.mark.fast


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 99.0) == 0.0

    def test_single_sample(self):
        assert percentile([7.0], 50.0) == 7.0
        assert percentile([7.0], 99.0) == 7.0

    def test_nearest_rank(self):
        samples = [float(i) for i in range(1, 101)]  # 1..100
        assert percentile(samples, 50.0) == 50.0
        assert percentile(samples, 95.0) == 95.0
        assert percentile(samples, 99.0) == 99.0
        assert percentile(samples, 100.0) == 100.0

    def test_unsorted_input(self):
        assert percentile([3.0, 1.0, 2.0], 50.0) == 2.0

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)
        with pytest.raises(ValueError):
            percentile([1.0], -1.0)


class TestLatencyRecorder:
    def test_records_in_ms(self):
        recorder = LatencyRecorder(budget_ms=10.0)
        recorder.record(0.002)  # 2 ms
        assert recorder.samples_ms == [2.0]
        assert recorder.over_budget == 0

    def test_over_budget_counted(self):
        recorder = LatencyRecorder(budget_ms=1.0)
        recorder.record(0.0005)
        recorder.record(0.0020)
        recorder.record(0.0030)
        assert recorder.over_budget == 2

    def test_snapshot_shape(self):
        recorder = LatencyRecorder()
        recorder.record(0.001)
        snap = recorder.snapshot()
        assert snap["count"] == 1
        assert snap["budget_ms"] == DEFAULT_BUDGET_MS
        assert set(snap) == {"count", "p50_ms", "p95_ms", "p99_ms",
                             "max_ms", "budget_ms", "over_budget"}
        assert snap["p50_ms"] == snap["p99_ms"] == snap["max_ms"] == 1.0


class TestServiceMetrics:
    def test_queue_depth_high_water_mark(self):
        metrics = ServiceMetrics()
        metrics.set_queue_depth(3)
        metrics.set_queue_depth(9)
        metrics.set_queue_depth(1)
        assert metrics.queue_depth == 1
        assert metrics.max_queue_depth == 9

    def test_snapshot_shape(self):
        metrics = ServiceMetrics()
        metrics.counters["updates"].increment()
        snap = metrics.snapshot()
        assert snap["counters"] == {"updates": 1}
        assert snap["queue"] == {"depth": 0, "max_depth": 0}
        assert snap["latency"]["count"] == 0
