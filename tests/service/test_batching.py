"""Tests for the micro-batcher: coalescing, backpressure, atomicity."""

import asyncio

import pytest

from repro.service.batching import Backpressure, MicroBatcher
from repro.service.session import Session, UpdateError

pytestmark = pytest.mark.fast


def make_session(**kwargs):
    kwargs.setdefault("num_vertices", 16)
    kwargs.setdefault("beta", 1)
    kwargs.setdefault("epsilon", 0.4)
    kwargs.setdefault("seed", 0)
    return Session("batch-test", **kwargs)


def run(coroutine):
    return asyncio.run(coroutine)


class TestSubmit:
    def test_single_update_applied(self):
        async def scenario():
            session = make_session()
            batcher = MicroBatcher(session)
            record = await batcher.submit("insert", 0, 1)
            await batcher.close()
            return session, record

        session, record = run(scenario())
        assert record == {"seq": 1, "op": "insert", "work": record["work"]}
        assert session.seq == 1
        assert session.sparsifier.graph.has_edge(0, 1)

    def test_update_error_propagates(self):
        async def scenario():
            session = make_session()
            batcher = MicroBatcher(session)
            await batcher.submit("insert", 0, 1)
            try:
                with pytest.raises(UpdateError):
                    await batcher.submit("insert", 0, 1)
            finally:
                await batcher.close()

        run(scenario())

    def test_closed_batcher_rejects(self):
        async def scenario():
            batcher = MicroBatcher(make_session())
            await batcher.close()
            with pytest.raises(Backpressure):
                await batcher.submit("insert", 0, 1)
            with pytest.raises(Backpressure):
                await batcher.submit_batch([("insert", 0, 1)])

        run(scenario())

    def test_requires_running_loop(self):
        with pytest.raises(RuntimeError):
            MicroBatcher(make_session())

    def test_bad_bounds(self):
        async def scenario():
            with pytest.raises(ValueError):
                MicroBatcher(make_session(), max_batch=0)
            with pytest.raises(ValueError):
                MicroBatcher(make_session(), max_queue=0)

        run(scenario())


class TestWorkerRobustness:
    def test_internal_error_fails_future_but_not_worker(self):
        # A non-UpdateError from session.apply must fail that submit's
        # future, yet leave the worker alive for subsequent updates and
        # let close() complete without deadlocking on queue.join().
        async def scenario():
            session = make_session()
            boom = RuntimeError("backend exploded")
            original_apply = session.apply
            failures = [boom]

            def flaky_apply(op, u, v):
                if failures:
                    raise failures.pop()
                return original_apply(op, u, v)

            session.apply = flaky_apply
            batcher = MicroBatcher(session)
            with pytest.raises(RuntimeError, match="backend exploded"):
                await batcher.submit("insert", 0, 1)
            record = await batcher.submit("insert", 2, 3)  # worker survived
            await batcher.close()
            return session, record

        session, record = run(scenario())
        assert record["seq"] == 1
        assert session.sparsifier.graph.has_edge(2, 3)

    def test_journal_flush_error_does_not_wedge_submitters(self):
        async def scenario():
            session = make_session()
            session.flush_journal = lambda: (_ for _ in ()).throw(
                OSError("disk full")
            )
            batcher = MicroBatcher(session)
            with pytest.raises(OSError, match="disk full"):
                await batcher.submit("insert", 0, 1)
            await batcher.close()  # must not deadlock

        run(scenario())

    def test_dead_worker_fails_queued_and_future_submits(self):
        async def scenario():
            session = make_session()
            batcher = MicroBatcher(session)
            batcher._worker.cancel()
            await asyncio.sleep(0)  # let cancellation + done-callback run
            with pytest.raises(Backpressure):
                await batcher.submit("insert", 0, 1)
            await batcher.close()  # idempotent, no hang

        run(scenario())
    def test_coalescing_into_bounded_batches(self):
        # submit_batch enqueues synchronously, so the worker sees all ten
        # updates at once and must split them into ceil(10/4) = 3 batches.
        async def scenario():
            session = make_session()
            batcher = MicroBatcher(session, max_batch=4)
            updates = [("insert", 2 * i, 2 * i + 1) for i in range(8)]
            updates += [("delete", 0, 1), ("insert", 0, 1)]
            outcomes = await batcher.submit_batch(updates)
            await batcher.close()
            return session, outcomes

        session, outcomes = run(scenario())
        assert len(outcomes) == 10
        assert all("error" not in outcome for outcome in outcomes)
        assert session.metrics.counters.value("batches") == 3
        assert session.metrics.counters.value("updates") == 10
        assert session.metrics.latency.snapshot()["count"] == 10
        assert session.metrics.max_queue_depth == 10

    def test_bad_update_does_not_poison_batch(self):
        async def scenario():
            session = make_session()
            batcher = MicroBatcher(session)
            outcomes = await batcher.submit_batch([
                ("insert", 0, 1),
                ("insert", 0, 1),   # duplicate: rejected
                ("insert", 2, 3),
            ])
            await batcher.close()
            return session, outcomes

        session, outcomes = run(scenario())
        assert "error" not in outcomes[0]
        assert outcomes[1]["error"] == "bad-update"
        assert "error" not in outcomes[2]
        assert session.seq == 2
        assert session.sparsifier.graph.has_edge(0, 1)
        assert session.sparsifier.graph.has_edge(2, 3)

    def test_batch_admission_is_all_or_nothing(self):
        async def scenario():
            session = make_session()
            batcher = MicroBatcher(session, max_queue=4)
            updates = [("insert", 2 * i, 2 * i + 1) for i in range(6)]
            with pytest.raises(Backpressure):
                await batcher.submit_batch(updates)
            await batcher.close()
            return session

        session = run(scenario())
        # Nothing was applied and the rejection was counted in full.
        assert session.seq == 0
        assert session.metrics.counters.value("rejected_over_budget") == 6

    def test_updates_applied_in_submission_order(self):
        async def scenario():
            session = make_session()
            batcher = MicroBatcher(session, max_batch=3)
            outcomes = await batcher.submit_batch([
                ("insert", 0, 1), ("delete", 0, 1), ("insert", 0, 1),
                ("delete", 0, 1), ("insert", 0, 1),
            ])
            await batcher.close()
            return session, outcomes

        session, outcomes = run(scenario())
        # Only valid if applied strictly in order across batch boundaries.
        assert [outcome["seq"] for outcome in outcomes] == [1, 2, 3, 4, 5]
        assert session.sparsifier.graph.has_edge(0, 1)
