"""Tests for the repro-service-v1 wire protocol layer."""

import json

import pytest

from repro.service.protocol import (
    OPS,
    PROTOCOL,
    ProtocolError,
    encode,
    error_response,
    ok_response,
    parse_request,
)

pytestmark = pytest.mark.fast


class TestParseRequest:
    def test_valid_ping(self):
        assert parse_request('{"op": "ping"}') == {"op": "ping"}

    def test_valid_create(self):
        request = parse_request(json.dumps({
            "op": "create", "session": "s", "num_vertices": 8,
            "beta": 1, "epsilon": 0.4,
        }))
        assert request["session"] == "s"

    def test_epsilon_accepts_int(self):
        # float-typed fields accept JSON integers.
        parse_request(json.dumps({
            "op": "create", "session": "s", "num_vertices": 8,
            "beta": 1, "epsilon": 1,
        }))

    def test_not_json(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request("this is not json")
        assert excinfo.value.code == "bad-request"

    def test_not_an_object(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request("[1, 2, 3]")
        assert excinfo.value.code == "bad-request"

    def test_missing_op(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request('{"session": "s"}')
        assert excinfo.value.code == "bad-request"

    def test_unknown_op(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request('{"op": "frobnicate"}')
        assert excinfo.value.code == "unknown-op"

    def test_missing_required_field(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request('{"op": "insert", "session": "s", "u": 0}')
        assert excinfo.value.code == "bad-request"
        assert "'v'" in str(excinfo.value)

    def test_wrong_field_type(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request('{"op": "insert", "session": "s", "u": "x", "v": 1}')
        assert excinfo.value.code == "bad-request"

    def test_bool_is_not_int(self):
        with pytest.raises(ProtocolError):
            parse_request('{"op": "insert", "session": "s", "u": true, "v": 1}')

    def test_batch_triples_validated(self):
        good = {"op": "batch", "session": "s",
                "updates": [["insert", 0, 1], ["delete", 0, 1]]}
        assert len(parse_request(json.dumps(good))["updates"]) == 2
        for bad_updates in (
            [["insert", 0]],            # wrong arity
            [["upsert", 0, 1]],         # bad op
            [["insert", 0.5, 1]],       # non-int endpoint
            ["insert"],                 # not a triple at all
        ):
            bad = {"op": "batch", "session": "s", "updates": bad_updates}
            with pytest.raises(ProtocolError) as excinfo:
                parse_request(json.dumps(bad))
            assert excinfo.value.code == "bad-request"

    def test_every_op_has_requirements_entry(self):
        from repro.service.protocol import _REQUIRED

        assert set(_REQUIRED) == set(OPS)


class TestEnvelopes:
    def test_encode_round_trips(self):
        line = encode({"ok": True, "b": 2, "a": 1})
        assert line.endswith(b"\n")
        assert json.loads(line) == {"ok": True, "a": 1, "b": 2}

    def test_encode_is_canonical(self):
        # Sorted keys + compact separators: byte-identical for equal dicts.
        assert encode({"b": 2, "a": 1}) == encode({"a": 1, "b": 2})

    def test_ok_response(self):
        assert ok_response(size=3) == {"ok": True, "size": 3}

    def test_error_response(self):
        response = error_response("bad-update", "nope")
        assert response == {"ok": False, "error": "bad-update",
                            "message": "nope"}

    def test_protocol_banner(self):
        assert PROTOCOL == "repro-service-v1"
