"""The deterministic interleaving sanitizer (REPRO_ASYNC_SANITIZE).

The headline scenario: seeded schedule perturbation re-discovers the
historical close/update race from the racy fixture
(:mod:`tests.service.fixtures.racy_close`) within a fixed seed budget,
the failing schedule replays byte-identically, and the hardened
service stays clean across every one of the same schedules.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.contracts import ContractViolation, check_interleaving_replay
from repro.lint import RULES, lint_file
from repro.service.sanitizer import (
    DeterministicScheduler,
    InterleavingTrace,
    ScheduleDivergence,
    async_sanitize_enabled,
    run_deterministic,
    run_sanitized,
    seed_from_env,
)
from repro.service.server import BackgroundServer, MatchingService
from tests.service.fixtures.racy_close import RacyMatchingService

pytestmark = pytest.mark.fast

#: The perturbation budget the race must fall within (acceptance bound).
SEED_BUDGET = 10

FIXTURE = "tests/service/fixtures/racy_close.py"


def close_update_scenario(service_cls):
    """Race one insert against one close on a fresh single-session
    service, exactly the PR-5 regression shape, and return both
    responses."""

    async def main():
        service = service_cls()
        await service.handle_request(
            {"op": "create", "session": "s", "num_vertices": 8,
             "beta": 1, "epsilon": 0.4, "seed": 0}
        )
        loop = asyncio.get_running_loop()
        update = loop.create_task(
            service._respond('{"op": "insert", "session": "s", '
                             '"u": 0, "v": 1}')
        )
        close = loop.create_task(
            service._respond('{"op": "close", "session": "s"}')
        )
        return await asyncio.gather(update, close)

    return main


def find_racy_seed():
    """First seed within budget whose schedule exposes the race."""
    for seed in range(SEED_BUDGET):
        (update, _close), _trace = run_deterministic(
            close_update_scenario(RacyMatchingService)(), seed=seed
        )
        if update.get("error") == "internal":
            return seed
    return None


class TestRaceRediscovery:
    def test_fifo_schedule_masks_the_race(self):
        # The bug needs an adversarial interleaving: plain FIFO order
        # (= what a quiet event loop does) never exposes it, which is
        # exactly why the perturbation mode exists.
        (update, close), _trace = run_deterministic(
            close_update_scenario(RacyMatchingService)()
        )
        assert update.get("ok") is True
        assert close.get("ok") is True

    def test_seeded_perturbation_rediscovers_the_race(self):
        assert find_racy_seed() is not None, (
            f"no seed in 0..{SEED_BUDGET - 1} exposed the close/update "
            "race on the racy fixture"
        )

    def test_hardened_service_is_clean_on_every_schedule(self):
        # The shipped close path (unregister before awaiting the drain)
        # must survive every schedule the racy one fails under: racing
        # updates either win or get no-such-session — never internal.
        for seed in range(SEED_BUDGET):
            (update, close), _trace = run_deterministic(
                close_update_scenario(MatchingService)(), seed=seed
            )
            assert close.get("ok") is True
            assert update.get("error", "") != "internal", (
                f"hardened service errored internally under seed {seed}"
            )

    def test_failing_schedule_replays_byte_identically(self):
        seed = find_racy_seed()
        assert seed is not None
        responses_a, trace_a = run_deterministic(
            close_update_scenario(RacyMatchingService)(), seed=seed
        )
        responses_b, trace_b = run_deterministic(
            close_update_scenario(RacyMatchingService)(), schedule=trace_a
        )
        assert responses_b == responses_a
        assert responses_b[0].get("error") == "internal"
        assert check_interleaving_replay(trace_a, trace_b) is trace_b
        assert trace_a.to_json() == trace_b.to_json()

    def test_static_rule_flags_the_fixture(self):
        # The static half: R10 pins the read/await/write cycle without
        # running anything.
        violations = lint_file(FIXTURE, [RULES["R10"]])
        assert violations, "R10 did not flag the racy fixture"
        assert all(v.rule == "R10" for v in violations)


class TestTrace:
    def test_json_roundtrip_and_save_load(self, tmp_path):
        _result, trace = run_deterministic(
            close_update_scenario(MatchingService)(), seed=3
        )
        assert trace.seed == 3
        assert [e.seq for e in trace.entries] == list(range(len(trace.entries)))
        again = InterleavingTrace.from_json(trace.to_json())
        assert again.to_json() == trace.to_json()
        path = tmp_path / "trace.json"
        trace.save(path)
        assert InterleavingTrace.load(path).to_json() == trace.to_json()

    def test_from_json_rejects_other_formats(self):
        with pytest.raises(ValueError, match="repro-async-trace-v1"):
            InterleavingTrace.from_json(json.dumps({"format": "nope"}))

    def test_divergence_is_detected_not_ignored(self):
        # Replaying one program's schedule against a different program
        # must fail loudly instead of exploring a third interleaving.
        _result, trace = run_deterministic(
            close_update_scenario(RacyMatchingService)(), seed=3
        )

        async def different_program():
            await asyncio.gather(asyncio.sleep(0), asyncio.sleep(0))

        with pytest.raises(ScheduleDivergence):
            run_deterministic(different_program(), schedule=trace)

    def test_contract_names_the_first_divergent_step(self):
        a = InterleavingTrace(seed=1)
        a.append(0, "t0:main")
        a.append(1, "t1:worker")
        b = InterleavingTrace(seed=1)
        b.append(0, "t0:main")
        b.append(0, "t0:main")
        with pytest.raises(ContractViolation, match="step 1"):
            check_interleaving_replay(a, b)

    def test_scheduler_rejects_seed_plus_schedule(self):
        with pytest.raises(ValueError, match="not both"):
            DeterministicScheduler(seed=1, schedule=InterleavingTrace())


class TestEnvGating:
    def test_enabled_flag(self, monkeypatch):
        monkeypatch.delenv("REPRO_ASYNC_SANITIZE", raising=False)
        assert not async_sanitize_enabled()
        for value in ("1", "true", "YES", " on "):
            monkeypatch.setenv("REPRO_ASYNC_SANITIZE", value)
            assert async_sanitize_enabled()
        monkeypatch.setenv("REPRO_ASYNC_SANITIZE", "0")
        assert not async_sanitize_enabled()

    def test_seed_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_ASYNC_SEED", raising=False)
        assert seed_from_env() is None
        monkeypatch.setenv("REPRO_ASYNC_SEED", "17")
        assert seed_from_env() == 17
        monkeypatch.setenv("REPRO_ASYNC_SEED", "not-a-seed")
        with pytest.raises(ValueError, match="REPRO_ASYNC_SEED"):
            seed_from_env()

    def test_run_sanitized_dumps_trace(self, monkeypatch, tmp_path):
        trace_path = tmp_path / "dump.json"
        monkeypatch.setenv("REPRO_ASYNC_SEED", "5")
        monkeypatch.setenv("REPRO_ASYNC_TRACE", str(trace_path))

        async def main():
            await asyncio.gather(asyncio.sleep(0), asyncio.sleep(0))
            return "done"

        assert run_sanitized(main()) == "done"
        trace = InterleavingTrace.load(trace_path)
        assert trace.seed == 5
        assert trace.entries

    def test_background_server_runs_under_sanitizer(self, monkeypatch):
        # End to end: the real TCP server on the deterministic loop.
        monkeypatch.setenv("REPRO_ASYNC_SANITIZE", "1")
        from repro.service.client import ServiceClient

        with BackgroundServer() as server:
            with ServiceClient(server.host, server.port) as client:
                client.create("s", num_vertices=16, beta=2, epsilon=0.5,
                              seed=0, journal=False)
                for u, v in [(0, 1), (2, 3), (4, 5)]:
                    client.insert("s", u, v)
                assert client.query_matching("s")["size"] == 1
                assert client.close_session("s")["closed"] == "s"
