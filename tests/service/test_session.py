"""Tests for the served Session: backends, validation, determinism."""

import pytest

from repro.service.session import BACKENDS, Session, UpdateError, theorem_work_budget

pytestmark = pytest.mark.fast

PATH_UPDATES = [("insert", 0, 1), ("insert", 1, 2), ("insert", 2, 3),
                ("delete", 1, 2), ("insert", 4, 5)]


def make_session(backend="lazy_rebuild", seed=0, **kwargs):
    kwargs.setdefault("num_vertices", 8)
    kwargs.setdefault("beta", 1)
    kwargs.setdefault("epsilon", 0.4)
    return Session("t", backend=backend, seed=seed, **kwargs)


class TestWorkBudget:
    def test_matches_theorem_shape(self):
        import math

        beta, eps = 2, 0.25
        expected = math.ceil(8.0 * beta / eps**3 * math.log(1 / eps))
        assert theorem_work_budget(beta, eps) == expected

    def test_monotone_in_beta(self):
        assert theorem_work_budget(4, 0.3) >= theorem_work_budget(1, 0.3)

    def test_floors_at_one(self):
        # Huge epsilon → tiny bound, still at least one chunk of progress.
        assert theorem_work_budget(1, 0.99) >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            theorem_work_budget(0, 0.4)
        with pytest.raises(ValueError):
            theorem_work_budget(1, 0.0)
        with pytest.raises(ValueError):
            theorem_work_budget(1, 1.0)


class TestConstruction:
    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_session(backend="quantum")

    def test_bad_num_vertices(self):
        with pytest.raises(ValueError):
            make_session(num_vertices=0)

    def test_all_backends_construct_and_update(self):
        for backend in BACKENDS:
            session = make_session(backend=backend)
            for op, u, v in PATH_UPDATES:
                session.apply(op, u, v)
            assert session.seq == len(PATH_UPDATES)
            assert session.matching.size >= 1

    def test_rng_spec_captured(self):
        session = make_session(seed=42)
        assert session.rng_spec.entropy == 42
        assert session.work_budget == theorem_work_budget(1, 0.4)
        assert session.delta >= 1


class TestValidation:
    def test_out_of_range(self):
        with pytest.raises(UpdateError, match="out of range"):
            make_session().apply("insert", 0, 99)

    def test_self_loop(self):
        with pytest.raises(UpdateError, match="self-loop"):
            make_session().apply("insert", 3, 3)

    def test_duplicate_insert(self):
        session = make_session()
        session.apply("insert", 0, 1)
        with pytest.raises(UpdateError, match="already present"):
            session.apply("insert", 0, 1)

    def test_delete_missing(self):
        with pytest.raises(UpdateError, match="not present"):
            make_session().apply("delete", 0, 1)

    def test_unknown_op(self):
        with pytest.raises(UpdateError, match="unknown update op"):
            make_session().apply("upsert", 0, 1)

    def test_rejected_update_changes_nothing(self):
        session = make_session()
        session.apply("insert", 0, 1)
        before = session.fingerprint()
        with pytest.raises(UpdateError):
            session.apply("insert", 0, 1)
        assert session.seq == 1
        assert session.fingerprint() == before

    def test_error_code_is_stable(self):
        with pytest.raises(UpdateError) as excinfo:
            make_session().apply("insert", 1, 1)
        assert excinfo.value.code == "bad-update"


class TestDeterminism:
    def test_same_seed_same_fingerprint(self):
        prints = set()
        for _ in range(2):
            session = make_session(seed=7)
            for op, u, v in PATH_UPDATES:
                session.apply(op, u, v)
            prints.add(session.fingerprint())
        assert len(prints) == 1

    def test_fingerprint_tracks_state(self):
        session = make_session(seed=7)
        empty = session.fingerprint()
        session.apply("insert", 0, 1)
        assert session.fingerprint() != empty

    def test_rng_fingerprints_empty_without_sanitizer(self, monkeypatch):
        monkeypatch.delenv("REPRO_RNG_SANITIZE", raising=False)
        assert make_session().rng_fingerprints() == ()

    def test_rng_fingerprints_under_sanitizer(self, monkeypatch):
        monkeypatch.setenv("REPRO_RNG_SANITIZE", "1")
        session = make_session()
        prints = session.rng_fingerprints()
        assert len(prints) == 2  # sparsifier stream + matcher stream
        assert prints[0].stream != prints[1].stream


class TestPayloads:
    def test_matching_payload_sorted(self):
        session = make_session()
        for op, u, v in PATH_UPDATES:
            session.apply(op, u, v)
        payload = session.matching_payload()
        assert payload["size"] == len(payload["edges"])
        assert payload["edges"] == sorted(payload["edges"])

    def test_snapshot_payload(self):
        session = make_session()
        session.apply("insert", 0, 1)
        snap = session.snapshot_payload()
        assert snap["num_vertices"] == 8
        assert snap["seq"] == 1
        assert [0, 1] in snap["graph_edges"]
        assert set(map(tuple, snap["sparsifier_edges"])) <= set(
            map(tuple, snap["graph_edges"])
        )
        assert snap["fingerprint"] == session.fingerprint()

    def test_stats_payload(self):
        session = make_session()
        for op, u, v in PATH_UPDATES:
            session.apply(op, u, v)
        stats = session.stats_payload()
        assert stats["seq"] == len(PATH_UPDATES)
        assert stats["counters"]["updates"] == len(PATH_UPDATES)
        assert stats["counters"]["inserts"] == 4
        assert stats["counters"]["deletes"] == 1
        assert stats["work_budget_chunks"] == session.work_budget
        assert stats["matching_size"] == session.matching.size
        factor = stats["certified_factor"]
        assert factor is None or factor >= 1.0

    def test_baseline_has_no_certificate(self):
        session = make_session(backend="baseline")
        session.apply("insert", 0, 1)
        assert session.certified_factor() is None
