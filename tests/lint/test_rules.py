"""Per-rule fixture tests: every rule fires on its failing snippet and
stays silent on the conforming twin."""

from pathlib import Path

import pytest

from repro.lint import RULES, lint_source

FIXTURES = Path(__file__).parent / "fixtures"

# R4 only applies inside the repro package and R5's set-iteration half
# only near tables, so those fixtures are linted under synthetic paths.
SYNTHETIC_PATHS = {
    "R4": "src/repro/synthetic_module.py",
    "R5": "src/repro/experiments/synthetic_module.py",
}


def _lint_fixture(rule_code: str, kind: str):
    path = FIXTURES / f"{rule_code.lower()}_{kind}.py"
    synthetic = SYNTHETIC_PATHS.get(rule_code, str(path))
    return lint_source(
        path.read_text(encoding="utf-8"),
        path=synthetic,
        rules=[RULES[rule_code]],
    )


@pytest.mark.fast
@pytest.mark.parametrize("rule_code", sorted(RULES))
def test_failing_fixture_fires(rule_code):
    violations = _lint_fixture(rule_code, "fail")
    assert violations, f"{rule_code} did not fire on its failing fixture"
    assert all(v.rule == rule_code for v in violations)


@pytest.mark.fast
@pytest.mark.parametrize("rule_code", sorted(RULES))
def test_passing_fixture_clean(rule_code):
    assert _lint_fixture(rule_code, "pass") == []


@pytest.mark.fast
def test_r1_flags_each_shape():
    messages = "\n".join(v.message for v in _lint_fixture("R1", "fail"))
    assert "np.random.rand" in messages
    assert "default_rng" in messages
    assert "stdlib `random`" in messages


@pytest.mark.fast
def test_r2_exempts_timers_module():
    source = "import time\n\ndef f():\n    return time.perf_counter()\n"
    inside = lint_source(
        source, path="src/repro/instrument/timers.py", rules=[RULES["R2"]]
    )
    outside = lint_source(
        source, path="src/repro/instrument/counters.py", rules=[RULES["R2"]]
    )
    assert inside == []
    assert len(outside) == 1


@pytest.mark.fast
def test_r3_flags_both_shapes():
    violations = _lint_fixture("R3", "fail")
    messages = "\n".join(v.message for v in violations)
    assert "lambda" in messages
    assert "local_trial" in messages


@pytest.mark.fast
def test_r4_is_scoped_to_the_repro_package():
    source = (FIXTURES / "r4_fail.py").read_text(encoding="utf-8")
    outside = lint_source(source, path="tests/helpers.py", rules=[RULES["R4"]])
    assert outside == []


@pytest.mark.fast
def test_r4_accepts_kwonly_rng_with_default():
    source = (
        "def draw(n, *, seed=None, rng=None):\n"
        '    """Doc."""\n'
        "    return n\n"
    )
    assert lint_source(
        source, path="src/repro/mod.py", rules=[RULES["R4"]]
    ) == []


@pytest.mark.fast
def test_r5_set_iteration_only_near_tables():
    source = "def rows(edges):\n    return [e for e in set(edges)]\n"
    near = lint_source(
        source, path="src/repro/experiments/e0.py", rules=[RULES["R5"]]
    )
    far = lint_source(
        source, path="src/repro/matching/greedy.py", rules=[RULES["R5"]]
    )
    assert len(near) == 1
    assert far == []


@pytest.mark.fast
def test_rule_registry_is_complete():
    assert sorted(RULES, key=lambda c: int(c[1:])) == [
        "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9",
        "R10", "R11", "R12", "R13", "R14",
        "R15", "R16", "R17", "R18", "R19",
    ]
    for code, rule in RULES.items():
        assert rule.code == code
        assert rule.summary
        assert sum((rule.flow, rule.concurrency, rule.perf)) <= 1
    assert [c for c, r in RULES.items() if r.flow] == ["R6", "R7", "R8", "R9"]
    assert [c for c, r in RULES.items() if r.concurrency] == [
        "R10", "R11", "R12", "R13", "R14",
    ]
    assert [c for c, r in RULES.items() if r.perf] == [
        "R15", "R16", "R17", "R18", "R19",
    ]
