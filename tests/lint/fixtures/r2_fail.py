"""R2 failing fixture: wall-clock and OS-entropy reads."""

import os
import time
from time import perf_counter  # banned from-import


def stamp():
    """Wall-clock read outside the timers module."""
    return time.time()


def token():
    """OS entropy is nondeterministic by construction."""
    return os.urandom(8)
