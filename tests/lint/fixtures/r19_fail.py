"""R19 failing fixture: loop-invariant work redone every iteration."""


def pair_up(vertices, graph):
    pairs = []
    for v in vertices:
        if len(vertices) > 2 and v < len(vertices) - 1:
            pairs.append((v, graph.stats.degree_sum))
        elif graph.stats.degree_sum > 0:
            pairs.append((v, 0))
    return pairs


def drain(queue, items):
    moved = 0
    while moved < len(items):
        queue.push(items[moved])
        moved += 1
    return moved
