"""R16 failing fixture: quadratic membership on the hot update path."""


class DynamicSparsifier:
    def __init__(self):
        self.seen = []

    def update(self, ops):
        seen = list(self.seen)
        pending = sorted(ops)
        for op in ops:
            if op in seen:
                continue
            seen.append(op)
            pending.remove(op)
        return seen
