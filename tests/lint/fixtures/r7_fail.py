"""R7 failing fixture: generator escape in three shapes."""

import numpy as np

GLOBAL_RNG = np.random.default_rng(0)


class Sampler:
    """Hosts a class-attribute generator shared by every instance."""

    rng = np.random.default_rng(1)


def make_sampler(rng):
    """Return a closure that captures a live generator."""
    def sample():
        return rng.integers(10)
    return sample
