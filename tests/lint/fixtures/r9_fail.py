"""R9 failing fixture: one stream drawn inside set iteration."""


def mark_vertices(vertices, rng):
    """Hash order decides the draw sequence."""
    marks = {}
    for v in set(vertices):
        marks[v] = rng.integers(2)
    return marks
