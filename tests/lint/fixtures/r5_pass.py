"""R5 passing fixture: None defaults and sorted iteration."""


def accumulate(row, bucket=None):
    """Container created per call."""
    if bucket is None:
        bucket = []
    bucket.append(row)
    return bucket


def table_rows(edges):
    """Deterministic row order via sorted()."""
    return [(u, v) for u, v in sorted(set(edges))]
