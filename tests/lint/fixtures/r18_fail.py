"""R18 failing fixture: unbudgeted while loops on the update path."""


class Session:
    def apply(self, op, queue):
        while queue:
            item = queue.pop()
            self._chase(item)
        return op

    def _chase(self, v):
        while v != -1:
            v = self._parent(v)
        return v

    def _parent(self, v):
        return v - 1
