"""R13 fail fixture: lock-and-queue discipline breaches.

An unbounded asyncio queue, a sync lock held across an await, a bare
blocking acquire, and a future nobody will ever resolve — four
findings.
"""
import asyncio
import threading


class Pipeline:
    def __init__(self):
        self.queue = asyncio.Queue()
        self._lock = threading.Lock()

    async def locked_flush(self, sink):
        with self._lock:
            await sink.flush()

    async def bare_acquire(self):
        self._lock.acquire()
        return True

    async def stranded(self):
        fut = asyncio.get_running_loop().create_future()
        await fut
        return True
