"""R3 passing fixture: module-top-level task functions."""

from repro.engine import TrialTask, fanout


def trial(x, *, rng):
    """A picklable module-level trial function."""
    return x


def build_tasks(rng):
    """Engine submissions referencing only top-level callables."""
    single = TrialTask(fn=trial, args=(1,))
    batch = fanout(trial, rng, [{"x": 1}, {"x": 2}])
    return single, batch
