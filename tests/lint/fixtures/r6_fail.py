"""R6 failing fixture: stream reuse in both shapes."""

from repro.engine import TrialTask
from repro.instrument.rng import resolve_rng, spawn_rngs


def reuse_after_spawn(seed=None, rng=None):
    """Draw from a parent that already spawned children."""
    root = resolve_rng(seed=seed, rng=rng)
    children = spawn_rngs(root, 2)
    return root.integers(10), children


def sibling_tasks(fn, rng):
    """Thread one generator into two sibling tasks."""
    first = TrialTask(fn=fn, rng=rng)
    second = TrialTask(fn=fn, rng=rng)
    return first, second
