"""R8 failing fixture: live generators in task payloads."""

from repro.engine import TrialTask, fanout


def ship_generators(fn, rng):
    """Both payload channels smuggle a live generator."""
    task = TrialTask(fn=fn, kwargs={"rng_worker": rng})
    tasks = fanout(fn, 123, [{"gen": rng}])
    return task, tasks
