"""R12 pass fixture: every coroutine awaited, every handle retained."""
import asyncio


async def tick():
    await asyncio.sleep(0)


async def supervised():
    await tick()
    task = asyncio.create_task(tick())
    try:
        return await task
    finally:
        task.cancel()


async def registered(tasks):
    tasks.append(asyncio.create_task(tick()))
