"""R4 failing fixture: rng-accepting signatures off the convention.

Linted by the tests under a synthetic ``src/repro/...`` path, since R4
only applies inside the ``repro`` package.
"""

import numpy as np


def sample_edges(graph, rng: np.random.Generator):
    """Bare required rng, no seed= twin."""
    return rng.integers(10)


class Widget:
    """Public class whose constructor misses the seed/rng pair."""

    def __init__(self, size, *, rng: np.random.Generator, seed=None):
        self.size = size
        self.rng = rng
