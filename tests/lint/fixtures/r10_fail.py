"""R10 fail fixture: stale read-modify-write spanning an await.

Each async def below reads shared state, suspends, then mutates based
on the stale read — the close/update race class.  Three findings.
"""
import asyncio


class Registry:
    def __init__(self):
        self.sessions = {}
        self.counts = {}

    def _lookup(self, name):
        return self.sessions[name]

    async def close_session(self, name):
        session = self._lookup(name)
        await session.drain()
        del self.sessions[name]

    async def bump(self, name):
        count = self.counts.get(name, 0)
        await asyncio.sleep(0)
        self.counts[name] = count + 1


async def apply_delta(state, delta):
    seq = state.seq
    await asyncio.sleep(0)
    state.seq = seq + delta
