"""R4 passing fixture: the uniform seed=/rng= pair, rng defaulted."""

import numpy as np

from repro.instrument.rng import resolve_rng


def sample_edges(
    graph,
    rng: np.random.Generator | int | None = None,
    *,
    seed: int | None = None,
):
    """Conforming public signature."""
    gen = resolve_rng(seed=seed, rng=rng, owner="sample_edges")
    return gen.integers(10)


def _internal_probe(rng):
    """Private helpers may thread a raw generator."""
    return rng.integers(2)
