"""R14 pass fixture: queues, bound methods, and per-iteration payloads.

Sharing through an asyncio queue, spawning bound methods of the owner,
and handing each task loop-fresh state are all sanctioned.
"""
import asyncio


async def process(tag):
    await asyncio.sleep(0)
    return tag


async def queue_worker(jobs):
    while True:
        item = await jobs.get()
        if item is None:
            return
        jobs.task_done()


async def per_task(tags):
    tasks = [asyncio.create_task(process(tag)) for tag in tags]
    await asyncio.gather(*tasks)


async def queue_fanout(items):
    jobs = asyncio.Queue(maxsize=64)
    workers = [asyncio.create_task(queue_worker(jobs)) for _ in range(4)]
    for item in items:
        await jobs.put(item)
    for _ in workers:
        await jobs.put(None)
    await asyncio.gather(*workers)


class Responder:
    async def serve(self, reader, outbox):
        while True:
            line = await reader.readline()
            if not line:
                return
            outbox.put_nowait(asyncio.create_task(self._reply(line)))

    async def _reply(self, line):
        await asyncio.sleep(0)
        return line
