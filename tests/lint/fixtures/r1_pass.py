"""R1 passing fixture: all randomness flows through the convention."""

import numpy as np

from repro.instrument.rng import resolve_rng


def noisy_vector(n, rng=None, *, seed=None):
    """Seeded Generator draw via the uniform keyword pair."""
    gen = resolve_rng(seed=seed, rng=rng, owner="noisy_vector")
    return gen.random(n)


def explicit_seed():
    """An explicitly seeded default_rng is reproducible, hence fine."""
    return np.random.default_rng(1234)
