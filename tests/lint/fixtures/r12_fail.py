"""R12 fail fixture: lost coroutines and lost task handles.

An un-awaited coroutine call, a dropped ``create_task`` handle, and a
handle assigned but never touched again — three findings.
"""
import asyncio


async def tick():
    await asyncio.sleep(0)


async def fire_and_forget():
    tick()
    asyncio.create_task(tick())
    task = asyncio.create_task(tick())
    return None
