"""R8 passing fixture: specs cross the boundary, not generators."""

from repro.engine import TrialTask
from repro.instrument.rng import resolve_rng, rng_spec, spawn_rngs


def ship_specs(fn, seed=None, rng=None):
    """Payloads carry RngSpec records; the rng= channel carries a child."""
    root = resolve_rng(seed=seed, rng=rng)
    alg, adv = spawn_rngs(root, 2)
    return TrialTask(
        fn=fn,
        kwargs={"spec_adv": rng_spec(adv), "seed": 7},
        rng=alg,
    )
