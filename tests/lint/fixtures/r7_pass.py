"""R7 passing fixture: per-instance and per-call generators."""

from repro.instrument.rng import resolve_rng


class Sampler:
    """Owns a per-instance generator (the sanctioned idiom)."""

    def __init__(self, seed=None, rng=None):
        """Resolve the uniform pair once per instance."""
        self._rng = resolve_rng(seed=seed, rng=rng)

    def sample(self):
        """Draw from the instance's own stream."""
        return int(self._rng.integers(10))


def local_closure(rng):
    """A closure that never escapes may reference the local generator."""
    def peek():
        return rng.integers(10)
    return int(peek())
