"""R19 passing fixture: hoisted invariants, genuinely varying state."""


def pair_up(vertices, graph):
    pairs = []
    count = len(vertices)
    degree_sum = graph.stats.degree_sum
    for v in vertices:
        if count > 2 and v < count - 1:
            pairs.append((v, degree_sum))
        elif degree_sum > 0:
            pairs.append((v, 0))
    return pairs


def accumulate(rows):
    out = []
    for row in rows:
        if len(out) > 4 and len(out) < 32:
            out.pop()
        out.append(row)
    return out
