"""R14 fail fixture: mutable state escaping into sibling tasks.

The same mutable object handed to two gathered workers, and a loop
spawning tasks that all capture one object from outside the loop —
two findings.
"""
import asyncio


class SessionState:
    def __init__(self):
        self.updates = []


async def worker(state, tag):
    state.updates.append(tag)
    await asyncio.sleep(0)


async def fan_out(state):
    await asyncio.gather(worker(state, "a"), worker(state, "b"))


async def spawn_loop(state, tags):
    tasks = []
    for tag in tags:
        tasks.append(asyncio.create_task(worker(state, tag)))
    await asyncio.gather(*tasks)
