"""R6 passing fixture: every consumer owns its spawned child."""

from repro.engine import TrialTask
from repro.instrument.rng import resolve_rng, spawn_rngs


def fan(fn, seed=None, rng=None):
    """One spawned child per task; the parent is never drawn from."""
    root = resolve_rng(seed=seed, rng=rng)
    return [TrialTask(fn=fn, rng=child) for child in spawn_rngs(root, 4)]


def draw_then_spawn(seed=None, rng=None):
    """Drawing *before* spawning is fine — spawn keys are draw-independent."""
    root = resolve_rng(seed=seed, rng=rng)
    value = int(root.integers(10))
    return value, spawn_rngs(root, 2)
