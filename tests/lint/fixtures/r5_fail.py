"""R5 failing fixture: mutable defaults and set-order table rows.

Linted by the tests under a synthetic ``experiments/`` path for the
set-iteration half of the rule.
"""


def accumulate(row, bucket=[]):
    """Classic mutable-default bug."""
    bucket.append(row)
    return bucket


def table_rows(edges):
    """Row order here depends on set iteration order."""
    rows = []
    for u, v in set(edges):
        rows.append((u, v))
    return rows
