"""R17 passing fixture: hoisted buffers on the hot path, cold allocs."""


class LazyRebuildMatching:
    def __init__(self):
        self._scratch = []

    def update(self, ops):
        buffer = self._scratch
        buffer.clear()
        for op in ops:
            buffer.append(op)
            self._note(op)
        return tuple(buffer)

    def _note(self, op):
        self._last = op


def render_report(rows):
    lines = []
    for row in rows:
        lines.append(f"row={row}")
    return lines
