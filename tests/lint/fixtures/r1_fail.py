"""R1 failing fixture: three flavors of global-state randomness."""

import numpy as np
from random import shuffle  # from-import of stdlib random


def noisy_vector(n):
    """Legacy numpy global-state draw."""
    return np.random.rand(n)


def unseeded():
    """default_rng with no seed outside resolve_rng."""
    return np.random.default_rng()
