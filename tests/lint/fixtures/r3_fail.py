"""R3 failing fixture: lambdas and nested defs as engine tasks."""

from repro.engine import TrialTask, fanout


def build_tasks(rng):
    """Both shapes the purity rule bans."""
    def local_trial(x, *, rng):  # closes over enclosing scope
        return x

    bad_lambda = TrialTask(fn=lambda x: x, args=(1,))
    bad_nested = fanout(local_trial, rng, [{"x": 1}])
    return bad_lambda, bad_nested
