"""R15 passing fixture: vectorized work and pure-python loop bodies."""

import numpy as np


def prune_stale(graph, mate: np.ndarray):
    matched = np.flatnonzero(mate >= 0)
    lower = matched[matched < mate[matched]]
    partners = mate[lower]
    for v, u in zip(lower.tolist(), partners.tolist()):
        if not graph.has_edge(v, u):
            mate[v] = -1
            mate[u] = -1


def collect_components(graph):
    labels = []
    for u, v in graph.edges():
        if u < v:
            labels.append((u, v))
    return labels


def summarize(rows):
    total = 0
    for row in rows:
        total += np.sum(row)
    return total
