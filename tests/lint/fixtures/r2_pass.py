"""R2 passing fixture: timing goes through repro.instrument.timers."""

from repro.instrument.timers import Timer


def timed_work(fn):
    """Use the sanctioned timer abstraction."""
    with Timer() as t:
        fn()
    return t.elapsed
