"""R18 passing fixture: budget-dominated loops, cold unbounded loops."""


class Session:
    def apply(self, op, queue):
        consumed = 0
        while consumed < self.budget:
            if not queue:
                break
            queue.pop()
            consumed += 1
        return self._drain(queue, op)

    def _drain(self, queue, max_chunks_per_update):
        drained = 0
        while queue:
            if drained >= max_chunks_per_update:
                break
            queue.pop()
            drained += 1
        return drained


def spin_cold(queue):
    while queue:
        queue.pop()
