"""R15 failing fixture: scalar loops over the array substrate."""

import numpy as np


def prune_stale(graph, mate: np.ndarray):
    for v in np.flatnonzero(mate >= 0):
        u = int(mate[v])
        if not graph.has_edge(v, u):
            mate[v] = -1


def degree_histogram(graph):
    counts = np.zeros(graph.num_vertices, dtype=np.int64)
    for u, v in graph.edges():
        counts[u] = np.add(counts[u], 1)
    return counts


def greedy_pass(graph):
    n = graph.num_vertices
    mate = np.full(n, -1)
    matched = 0
    for u in range(n):
        if int(mate[u]) >= 0:
            matched += 1
    return matched
