"""R10 pass fixture: the disciplines that disarm the interleaving check.

Mutate *before* the await, re-read *after* it, or hold one async lock
across both accesses — all clean.
"""
import asyncio


class Registry:
    def __init__(self):
        self.sessions = {}
        self.pending = []
        self._lock = asyncio.Lock()

    async def close_session(self, name):
        session = self.sessions.pop(name)
        await session.drain()
        return session

    async def drain_all(self):
        while self.pending:
            item = self.pending.pop()
            await item.flush()

    async def bump_locked(self, name):
        async with self._lock:
            count = self.sessions.get(name, 0)
            await asyncio.sleep(0)
            self.sessions[name] = count + 1

    async def bump_fresh(self, name):
        await asyncio.sleep(0)
        count = self.sessions.get(name, 0)
        self.sessions[name] = count + 1
