"""R13 pass fixture: bounded queues, async locks, handed-off futures."""
import asyncio


class Pipeline:
    def __init__(self, depth):
        self.queue = asyncio.Queue(maxsize=depth)
        self._lock = asyncio.Lock()

    async def locked_flush(self, sink):
        async with self._lock:
            await sink.flush()

    def handoff(self, op):
        fut = asyncio.get_running_loop().create_future()
        self.queue.put_nowait((op, fut))
        return fut

    async def acquire_await(self):
        await self._lock.acquire()
        try:
            return True
        finally:
            self._lock.release()
