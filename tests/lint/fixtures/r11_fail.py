"""R11 fail fixture: blocking work reachable from async defs.

A direct ``time.sleep``, a sync subprocess reached through a helper,
and an await-free ``while True`` — three findings.
"""
import subprocess
import time


def _sync_probe(host):
    return subprocess.run(["ping", "-c1", host])


async def poll(host):
    time.sleep(0.5)
    return _sync_probe(host)


async def spin(flag):
    while True:
        if flag.is_set():
            return
