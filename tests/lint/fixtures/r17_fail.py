"""R17 failing fixture: per-iteration allocation on the hot path."""


class LazyRebuildMatching:
    def update(self, ops):
        states = []
        for op in ops:
            record = {"op": op, "tick": len(states)}
            states.append(record)
            self._note(op)
        return self.rebuild(states)

    def _note(self, op):
        self._trace = f"op={op}"

    def _sample(self, k):
        return list(range(k))

    def rebuild(self, verts):
        picks = []
        for v in verts:
            picks.append(self._sample(v))
        return picks
