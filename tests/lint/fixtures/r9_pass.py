"""R9 passing fixture: sorted iteration and per-element streams."""

from repro.instrument.rng import resolve_rng, spawn_rngs


def mark_sorted(vertices, seed=None, rng=None):
    """Sorting restores a deterministic draw order."""
    root = resolve_rng(seed=seed, rng=rng)
    return {v: int(root.integers(2)) for v in sorted(set(vertices))}


def per_element(count, seed=None, rng=None):
    """Per-element child streams are order-independent by construction."""
    children = spawn_rngs(resolve_rng(seed=seed, rng=rng), count)
    return {i: int(children[i].integers(2)) for i in set(range(count))}
