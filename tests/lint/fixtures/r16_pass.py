"""R16 passing fixture: set membership on the hot path, cold lists."""


class DynamicSparsifier:
    def __init__(self):
        self.seen = set()

    def update(self, ops):
        seen = set(self.seen)
        pending = {op: True for op in ops}
        for op in ops:
            if op in seen:
                continue
            if op in ("insert", "delete"):
                seen.add(op)
            pending.pop(op, None)
        return seen


def summarize_cold(ops):
    labels = list(ops)
    out = []
    for op in ops:
        if op in labels:
            out.append(op)
    return out
