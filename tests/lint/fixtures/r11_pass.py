"""R11 pass fixture: async-native waiting and suspending loops."""
import asyncio


async def poll(host, probe):
    await asyncio.sleep(0.5)
    return await probe(host)


async def pump(queue):
    while True:
        item = await queue.get()
        if item is None:
            return
