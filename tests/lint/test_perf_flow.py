"""Performance rules R15-R19, the ``perf-audit`` CLI, and baselines.

Each rule gets a pass/fail fixture pair under ``fixtures/`` (asserted
line by line) plus targeted snippet tests for the semantics that keep
the rule quiet on correct code — vectorized substrates, set membership,
hoisted allocations, budget-guarded loops, mutation-aware invariance —
and for the hot-root scoping that confines R16-R18 to the update path.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.lint import PERF_RULES, RULES, lint_file, lint_source
from repro.lint.cli import main as lint_main
from repro.lint.cli import perf_audit_main
from repro.lint import perf_flow

FIXTURES = Path(__file__).parent / "fixtures"

pytestmark = pytest.mark.fast

#: A class whose method suffix-matches a default hot root, so snippet
#: loops inside it are on the hot path without extra --hot-roots setup.
HOT_PREFIX = (
    "class DynamicSparsifier:\n"
    "    def update(self, op, u, v):\n"
)


def _codes(source, *rules, path="snippet.py"):
    selected = [RULES[c] for c in rules] if rules else list(PERF_RULES.values())
    return [v.rule for v in lint_source(source, path=path, rules=selected)]


def _fixture_lines(code, kind):
    path = FIXTURES / f"{code.lower()}_{kind}.py"
    violations = lint_file(path, [RULES[code]])
    assert all(v.rule == code for v in violations)
    return [v.line for v in violations]


class TestFixtures:
    """The acceptance matrix: every rule has a firing and a clean file."""

    @pytest.mark.parametrize("code,lines", [
        ("R15", [7, 15, 24]),
        ("R16", [12, 15]),
        ("R17", [8, 10, 22]),
        ("R18", [6, 12]),
        ("R19", [7, 8, 16]),
    ])
    def test_fail_fixture_fires_on_exact_lines(self, code, lines):
        assert _fixture_lines(code, "fail") == lines

    @pytest.mark.parametrize("code", ["R15", "R16", "R17", "R18", "R19"])
    def test_pass_fixture_is_clean(self, code):
        assert _fixture_lines(code, "pass") == []


class TestR15ScalarLoop:
    def test_loop_over_edges_with_numpy_body_fires(self):
        src = (
            "import numpy as np\n"
            "def walk(graph):\n"
            "    for u, v in graph.edges():\n"
            "        np.add(u, v)\n"
        )
        assert _codes(src, "R15") == ["R15"]

    def test_loop_without_array_work_is_clean(self):
        src = (
            "def walk(graph, out):\n"
            "    for u, v in graph.edges():\n"
            "        out.append((u, v))\n"
        )
        assert _codes(src, "R15") == []

    def test_range_over_vertex_count_with_subscript_read_fires(self):
        src = (
            "import numpy as np\n"
            "def scan(graph, mate: np.ndarray):\n"
            "    n = graph.num_vertices\n"
            "    for u in range(n):\n"
            "        if mate[u] >= 0:\n"
            "            pass\n"
        )
        assert _codes(src, "R15") == ["R15"]

    def test_subscript_store_only_body_is_clean(self):
        # Writes into the array are how a scalar fixup loop ends; only
        # per-element *reads*/calls mark the loop as vectorizable work.
        src = (
            "import numpy as np\n"
            "def clear(items, mate: np.ndarray):\n"
            "    for u in items:\n"
            "        mate[u] = -1\n"
        )
        assert _codes(src, "R15") == []

    def test_zip_of_tolist_is_clean(self):
        # The vectorized-prune idiom: select candidates with flatnonzero,
        # then iterate plain python lists — the loop iterable is a zip,
        # not the substrate.
        src = (
            "import numpy as np\n"
            "def prune(graph, mate: np.ndarray):\n"
            "    lower = np.flatnonzero(mate >= 0)\n"
            "    partners = mate[lower]\n"
            "    for v, u in zip(lower.tolist(), partners.tolist()):\n"
            "        graph.drop(v, u)\n"
        )
        assert _codes(src, "R15") == []

    def test_loop_over_flatnonzero_with_int_conversion_fires(self):
        src = (
            "import numpy as np\n"
            "def collect(mate: np.ndarray):\n"
            "    for v in np.flatnonzero(mate >= 0):\n"
            "        yield int(mate[v])\n"
        )
        assert _codes(src, "R15") == ["R15"]


class TestR16Membership:
    def test_list_membership_in_hot_loop_fires(self):
        src = HOT_PREFIX + (
            "        pending = []\n"
            "        for edge in self.edges:\n"
            "            if edge in pending:\n"
            "                continue\n"
            "            pending.append(edge)\n"
        )
        assert _codes(src, "R16") == ["R16"]

    def test_set_membership_is_clean(self):
        src = HOT_PREFIX + (
            "        pending = set()\n"
            "        for edge in self.edges:\n"
            "            if edge in pending:\n"
            "                continue\n"
            "            pending.add(edge)\n"
        )
        assert _codes(src, "R16") == []

    def test_cold_function_is_out_of_scope(self):
        src = (
            "def report(rows):\n"
            "    shown = []\n"
            "    for row in rows:\n"
            "        if row in shown:\n"
            "            continue\n"
            "        shown.append(row)\n"
        )
        assert _codes(src, "R16") == []

    def test_literal_display_membership_is_exempt(self):
        src = HOT_PREFIX + (
            "        for op in self.ops:\n"
            "            if op in ('insert', 'delete'):\n"
            "                pass\n"
        )
        assert _codes(src, "R16") == []

    def test_list_remove_in_hot_loop_fires(self):
        src = HOT_PREFIX + (
            "        queue = list(self.pending)\n"
            "        for edge in self.edges:\n"
            "            queue.remove(edge)\n"
        )
        assert _codes(src, "R16") == ["R16"]


class TestR17HotAllocation:
    def test_list_literal_per_iteration_fires(self):
        src = HOT_PREFIX + (
            "        for edge in self.edges:\n"
            "            self.log.append([op, edge])\n"
        )
        assert _codes(src, "R17") == ["R17"]

    def test_hoisted_allocation_is_clean(self):
        src = HOT_PREFIX + (
            "        batch = []\n"
            "        for edge in self.edges:\n"
            "            batch.append(edge)\n"
        )
        assert _codes(src, "R17") == []

    def test_cold_function_allocates_freely(self):
        src = (
            "def summarize(rows):\n"
            "    for row in rows:\n"
            "        yield {'row': row}\n"
        )
        assert _codes(src, "R17") == []

    def test_one_hop_callee_allocation_fires(self):
        # update() itself allocates nothing per iteration, but the hot
        # helper it calls in the loop does — the interprocedural case.
        src = (
            "class DynamicSparsifier:\n"
            "    def update(self, op, u, v):\n"
            "        for w in self.touched:\n"
            "            self._resample(w)\n"
            "    def _resample(self, w):\n"
            "        self.marks[w] = set()\n"
        )
        assert _codes(src, "R17") == ["R17"]

    def test_pragma_on_call_line_suppresses(self):
        src = HOT_PREFIX + (
            "        for edge in self.edges:\n"
            "            self.log.append([op, edge])"
            "  # repro-lint: ignore[R17]\n"
        )
        assert _codes(src, "R17") == []


class TestR18UnboundedWork:
    def test_bare_while_true_in_hot_function_fires(self):
        src = HOT_PREFIX + (
            "        while True:\n"
            "            if self.step():\n"
            "                break\n"
        )
        assert _codes(src, "R18") == ["R18"]

    def test_budget_in_condition_is_clean(self):
        src = HOT_PREFIX + (
            "        spent = 0\n"
            "        while spent < self.budget:\n"
            "            spent += self.step()\n"
        )
        assert _codes(src, "R18") == []

    def test_budget_guarded_break_is_clean(self):
        src = HOT_PREFIX + (
            "        while self.pending:\n"
            "            if self.ops > self.chunk_cap:\n"
            "                break\n"
            "            self.step()\n"
        )
        assert _codes(src, "R18") == []

    def test_budget_mention_without_exit_still_fires(self):
        # Reading a budget inside the loop is not the same as letting it
        # terminate the loop.
        src = HOT_PREFIX + (
            "        while self.pending:\n"
            "            self.log(self.budget)\n"
        )
        assert _codes(src, "R18") == ["R18"]

    def test_cold_while_is_out_of_scope(self):
        src = (
            "def drain(queue):\n"
            "    while queue:\n"
            "        queue.pop()\n"
        )
        assert _codes(src, "R18") == []


class TestR19RedundantRecompute:
    def test_repeated_len_fires(self):
        src = (
            "def pad(rows, out):\n"
            "    for row in rows:\n"
            "        out.append(len(rows) - 1)\n"
            "        out.append(len(rows) + 1)\n"
        )
        assert _codes(src, "R19") == ["R19"]

    def test_len_of_mutated_sequence_is_clean(self):
        src = (
            "def drain(rows, out):\n"
            "    for row in list(rows):\n"
            "        rows.pop()\n"
            "        out.append(len(rows))\n"
            "        out.append(len(rows))\n"
        )
        assert _codes(src, "R19") == []

    def test_deep_attribute_chain_twice_fires(self):
        src = (
            "def scan(session, items):\n"
            "    for item in items:\n"
            "        a = session.graph.num_vertices\n"
            "        b = session.graph.num_vertices\n"
            "        item.use(a, b)\n"
        )
        assert _codes(src, "R19") == ["R19"]

    def test_mutated_root_defeats_invariance(self):
        src = (
            "def scan(session, items):\n"
            "    for item in items:\n"
            "        session = item.fork()\n"
            "        a = session.graph.num_vertices\n"
            "        b = session.graph.num_vertices\n"
        )
        assert _codes(src, "R19") == []

    def test_len_in_while_condition_fires(self):
        src = (
            "def spin(rows, out):\n"
            "    while len(rows) > len(out):\n"
            "        out.append(1)\n"
        )
        assert _codes(src, "R19") == ["R19"]


class TestHotRoots:
    def test_custom_root_brings_function_in_scope(self):
        src = (
            "class Walker:\n"
            "    def crawl(self):\n"
            "        while True:\n"
            "            self.step()\n"
        )
        assert _codes(src, "R18") == []
        perf_flow.set_hot_roots(
            perf_flow.DEFAULT_HOT_ROOTS + ("Walker.crawl",)
        )
        try:
            assert _codes(src, "R18") == ["R18"]
        finally:
            perf_flow.set_hot_roots(None)

    def test_set_hot_roots_none_restores_defaults(self):
        perf_flow.set_hot_roots(("Only.this",))
        perf_flow.set_hot_roots(None)
        assert perf_flow.hot_root_specs() == perf_flow.DEFAULT_HOT_ROOTS

    def test_reachability_through_self_attribute(self):
        # Session.apply -> self.matcher.update where self.matcher is a
        # program class: the attribute-type binder makes update() hot.
        src = (
            "class Engine:\n"
            "    def step(self):\n"
            "        while True:\n"
            "            self.tick()\n"
            "class Session:\n"
            "    def __init__(self):\n"
            "        self.engine = Engine()\n"
            "    def apply(self, op):\n"
            "        self.engine.step()\n"
        )
        assert _codes(src, "R18") == ["R18"]


class TestPerfRulesAreOptIn:
    def test_default_lint_skips_perf_rules(self, tmp_path):
        hot = tmp_path / "hot.py"
        hot.write_text(HOT_PREFIX + (
            "        while True:\n"
            "            self.step()\n"
        ))
        assert lint_main([str(hot)]) == 0
        assert perf_audit_main([str(hot)]) == 1

    def test_select_reaches_perf_rules_from_lint(self, tmp_path):
        hot = tmp_path / "hot.py"
        hot.write_text(HOT_PREFIX + (
            "        while True:\n"
            "            self.step()\n"
        ))
        assert lint_main(["--select", "R18", str(hot)]) == 1

    def test_lint_explain_still_lists_perf_rules(self, capsys):
        assert lint_main(["--explain"]) == 0
        out = capsys.readouterr().out
        for code in PERF_RULES:
            assert code in out


class TestPerfAuditCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert perf_audit_main([str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violating_file_exits_one(self, capsys):
        assert perf_audit_main([str(FIXTURES / "r18_fail.py")]) == 1
        assert "R18" in capsys.readouterr().out

    def test_runs_only_perf_rules(self, tmp_path):
        # A file violating syntactic rule R1 is out of perf-audit scope.
        (tmp_path / "r1.py").write_text(
            "import numpy as np\nx = np.random.rand(3)\n"
        )
        assert perf_audit_main([str(tmp_path)]) == 0
        assert lint_main([str(tmp_path)]) == 1

    def test_explain_lists_exactly_the_perf_rules(self, capsys):
        assert perf_audit_main(["--explain"]) == 0
        out = capsys.readouterr().out
        for code in PERF_RULES:
            assert code in out
        assert "R1 " not in out and "R10 " not in out

    def test_non_perf_rule_code_is_usage_error(self, tmp_path):
        assert perf_audit_main(["--select", "R1", str(tmp_path)]) == 2

    def test_json_format(self, capsys):
        assert perf_audit_main(
            ["--format", "json", str(FIXTURES / "r16_fail.py")]
        ) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 2
        assert {v["rule"] for v in payload["violations"]} == {"R16"}

    def test_hot_roots_option_extends_scope(self, tmp_path):
        target = tmp_path / "walker.py"
        target.write_text(
            "class Walker:\n"
            "    def crawl(self):\n"
            "        while True:\n"
            "            self.step()\n"
        )
        assert perf_audit_main([str(target)]) == 0
        assert perf_audit_main(
            ["--hot-roots", "Walker.crawl", str(target)]
        ) == 1
        # The module-level root set is restored afterwards.
        assert perf_flow.hot_root_specs() == perf_flow.DEFAULT_HOT_ROOTS

    def test_empty_hot_roots_is_usage_error(self, tmp_path, capsys):
        assert perf_audit_main(
            ["--hot-roots", " , ", str(tmp_path)]
        ) == 2
        assert "empty" in capsys.readouterr().err

    def test_dispatch_through_repro_experiments(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert cli_main(["perf-audit", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_shipped_dynamic_and_service_trees_are_clean(self):
        # The acceptance gate: the hot paths the repo ships audit clean
        # (true positives fixed or pragma'd with their bound).
        repo_root = Path(__file__).resolve().parents[2]
        assert perf_audit_main([
            str(repo_root / "src" / "repro" / "dynamic"),
            str(repo_root / "src" / "repro" / "service"),
        ]) == 0


class TestHotspotReport:
    def test_report_writes_ranked_hotspots(self, tmp_path, capsys):
        report = tmp_path / "hotspots.json"
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert perf_audit_main([
            "--report", str(report), "--report-steps", "40",
            str(tmp_path / "ok.py"),
        ]) == 0
        assert "hotspot report" in capsys.readouterr().out
        payload = json.loads(report.read_text())
        assert payload["format"] == "repro-hotspots-v1"
        assert payload["updates"] == 40
        assert payload["total_ops"] > 0
        assert payload["per_update"]["max_ops"] > 0
        assert payload["per_update"]["max_observed_constant"] < 4.0
        sites = {row["site"] for row in payload["hotspots"]}
        assert any(site.startswith("incremental_rebuild.")
                   for site in sites)
        assert any(site.startswith("DynamicGraph.") for site in sites)
        counts = [row["count"] for row in payload["hotspots"]]
        assert counts == sorted(counts, reverse=True)
        assert all(row["count"] > 0 for row in payload["hotspots"])

    def test_report_is_deterministic(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        for report in (first, second):
            assert perf_audit_main([
                "--report", str(report), "--report-steps", "25",
                "--report-seed", "7", str(tmp_path / "ok.py"),
            ]) == 0
        assert first.read_text() == second.read_text()

    def test_report_lands_even_when_lint_fails(self, tmp_path):
        report = tmp_path / "hotspots.json"
        assert perf_audit_main([
            "--report", str(report), "--report-steps", "10",
            str(FIXTURES / "r18_fail.py"),
        ]) == 1
        assert report.exists()

    def test_bad_report_steps_is_usage_error(self, tmp_path):
        assert perf_audit_main(
            ["--report", str(tmp_path / "h.json"), "--report-steps", "0"]
        ) == 2


class TestBaseline:
    """Satellite: the shared --baseline / --write-baseline ratchet."""

    def _violating_tree(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(HOT_PREFIX + (
            "        while True:\n"
            "            self.step()\n"
        ))
        return bad

    def test_write_then_suppress_round_trip(self, tmp_path, capsys):
        bad = self._violating_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert perf_audit_main(
            ["--write-baseline", str(baseline), str(bad)]
        ) == 0
        assert "1 finding" in capsys.readouterr().out
        assert perf_audit_main(
            ["--baseline", str(baseline), str(bad)]
        ) == 0
        captured = capsys.readouterr()
        assert "suppressed 1 known finding" in captured.err

    def test_new_finding_still_fails_under_baseline(self, tmp_path):
        bad = self._violating_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert perf_audit_main(
            ["--write-baseline", str(baseline), str(bad)]
        ) == 0
        # A finding in a *new function* has a new message key; a second
        # loop in the same function would share the (path, rule,
        # message) identity and stay suppressed by design.
        bad.write_text(
            "class DynamicSparsifier:\n"
            "    def update(self, op, u, v):\n"
            "        self._chase()\n"
            "        while True:\n"
            "            self.step()\n"
            "    def _chase(self):\n"
            "        while True:\n"
            "            self.step()\n"
        )
        assert perf_audit_main(
            ["--baseline", str(baseline), str(bad)]
        ) == 1

    def test_baseline_survives_line_shifts(self, tmp_path):
        bad = self._violating_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert perf_audit_main(
            ["--write-baseline", str(baseline), str(bad)]
        ) == 0
        bad.write_text("# a comment pushing everything down\n"
                       + bad.read_text())
        assert perf_audit_main(
            ["--baseline", str(baseline), str(bad)]
        ) == 0

    def test_missing_baseline_is_usage_error(self, tmp_path, capsys):
        bad = self._violating_tree(tmp_path)
        assert perf_audit_main(
            ["--baseline", str(tmp_path / "nope.json"), str(bad)]
        ) == 2

    def test_non_baseline_file_is_usage_error(self, tmp_path, capsys):
        bad = self._violating_tree(tmp_path)
        rogue = tmp_path / "rogue.json"
        rogue.write_text("{\"findings\": []}\n")
        assert perf_audit_main(
            ["--baseline", str(rogue), str(bad)]
        ) == 2
        assert "format" in capsys.readouterr().err

    def test_write_baseline_is_byte_stable(self, tmp_path):
        bad = self._violating_tree(tmp_path)
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        for baseline in (first, second):
            assert perf_audit_main(
                ["--write-baseline", str(baseline), str(bad)]
            ) == 0
        assert first.read_text() == second.read_text()

    @pytest.mark.parametrize("entry_args", [
        ["lint"], ["rng-audit"], ["race-audit"], ["perf-audit"],
    ])
    def test_every_audit_cli_accepts_baseline_options(
        self, entry_args, tmp_path, capsys
    ):
        (tmp_path / "ok.py").write_text("x = 1\n")
        baseline = tmp_path / "baseline.json"
        assert cli_main(
            entry_args + ["--write-baseline", str(baseline), str(tmp_path)]
        ) == 0
        assert cli_main(
            entry_args + ["--baseline", str(baseline), str(tmp_path)]
        ) == 0
        capsys.readouterr()


class TestDedupOverlappingTargets:
    """Satellite: overlapping path arguments do not double-report."""

    def test_nested_directory_overlap_reports_once(self, tmp_path, capsys):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "bad.py").write_text(
            "import numpy as np\nx = np.random.rand(3)\n"
        )
        assert lint_main(["--format", "json", str(tmp_path), str(pkg)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1

    def test_relative_and_absolute_spellings_dedupe(
        self, tmp_path, capsys, monkeypatch
    ):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nx = np.random.rand(3)\n")
        monkeypatch.chdir(tmp_path)
        assert lint_main(["--format", "json", "bad.py", str(bad)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1

    def test_discover_files_keeps_first_spelling(self, tmp_path):
        from repro.lint import discover_files

        (tmp_path / "ok.py").write_text("x = 1\n")
        found = discover_files([tmp_path, tmp_path])
        assert len(found) == 1
