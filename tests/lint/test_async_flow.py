"""Async-concurrency rules R10-R14 and the ``race-audit`` CLI.

Each rule gets a pass/fail fixture pair under ``fixtures/`` (asserted
line by line) plus targeted snippet tests for the semantics that keep
the rule quiet on correct code — lock discipline, re-check-after-await,
queue handoff, loop-fresh spawn arguments.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.lint import ASYNC_RULES, RULES, lint_file, lint_source
from repro.lint.cli import audit_main, race_audit_main
from repro.lint.cli import main as lint_main

FIXTURES = Path(__file__).parent / "fixtures"

pytestmark = pytest.mark.fast


def _codes(source, *rules, path="snippet.py"):
    selected = [RULES[c] for c in rules] if rules else list(ASYNC_RULES.values())
    return [v.rule for v in lint_source(source, path=path, rules=selected)]


def _fixture_lines(code, kind):
    path = FIXTURES / f"{code.lower()}_{kind}.py"
    violations = lint_file(path, [RULES[code]])
    assert all(v.rule == code for v in violations)
    return [v.line for v in violations]


class TestFixtures:
    """The acceptance matrix: every rule has a firing and a clean file."""

    @pytest.mark.parametrize("code,lines", [
        ("R10", [20, 25, 31]),
        ("R11", [15, 16, 20]),
        ("R12", [14, 15, 16]),
        ("R13", [13, 17, 21, 25]),
        ("R14", [21, 27]),
    ])
    def test_fail_fixture_fires_on_exact_lines(self, code, lines):
        assert _fixture_lines(code, "fail") == lines

    @pytest.mark.parametrize("code", ["R10", "R11", "R12", "R13", "R14"])
    def test_pass_fixture_is_clean(self, code):
        assert _fixture_lines(code, "pass") == []


class TestR10Interleaving:
    def test_read_await_write_fires(self):
        src = (
            "import asyncio\n"
            "class S:\n"
            "    async def bump(self):\n"
            "        n = self.count\n"
            "        await asyncio.sleep(0)\n"
            "        self.count = n + 1\n"
        )
        assert _codes(src, "R10") == ["R10"]

    def test_common_lock_across_both_accesses_is_clean(self):
        src = (
            "import asyncio\n"
            "class S:\n"
            "    async def bump(self):\n"
            "        async with self._lock:\n"
            "            n = self.count\n"
            "            await asyncio.sleep(0)\n"
            "            self.count = n + 1\n"
        )
        assert _codes(src, "R10") == []

    def test_recheck_after_await_is_clean(self):
        # Re-reading the shared state after the suspension point is the
        # canonical fix; the stale pre-await read no longer feeds the
        # write.
        src = (
            "import asyncio\n"
            "class S:\n"
            "    async def bump(self):\n"
            "        n = self.count\n"
            "        await asyncio.sleep(0)\n"
            "        n = self.count\n"
            "        self.count = n + 1\n"
        )
        assert _codes(src, "R10") == []

    def test_mutate_before_await_is_clean(self):
        src = (
            "import asyncio\n"
            "class S:\n"
            "    async def drain(self):\n"
            "        item = self.pending.pop()\n"
            "        await self.apply(item)\n"
        )
        assert _codes(src, "R10") == []


class TestR11Blocking:
    def test_direct_time_sleep_fires(self):
        src = (
            "import time\n"
            "async def nap():\n"
            "    time.sleep(1)\n"
        )
        assert _codes(src, "R11") == ["R11"]

    def test_asyncio_sleep_is_clean(self):
        src = (
            "import asyncio\n"
            "async def nap():\n"
            "    await asyncio.sleep(1)\n"
        )
        assert _codes(src, "R11") == []

    def test_transitive_blocking_through_helper_fires(self):
        src = (
            "import time\n"
            "def pause():\n"
            "    time.sleep(1)\n"
            "async def nap():\n"
            "    pause()\n"
        )
        assert _codes(src, "R11") == ["R11"]

    def test_await_free_spin_loop_fires(self):
        src = (
            "async def spin(flag):\n"
            "    while True:\n"
            "        if flag.is_set():\n"
            "            return\n"
        )
        assert _codes(src, "R11") == ["R11"]


class TestR12LostTask:
    def test_bare_coroutine_call_fires(self):
        src = (
            "async def tick():\n"
            "    pass\n"
            "async def main():\n"
            "    tick()\n"
        )
        assert _codes(src, "R12") == ["R12"]

    def test_awaited_coroutine_is_clean(self):
        src = (
            "async def tick():\n"
            "    pass\n"
            "async def main():\n"
            "    await tick()\n"
        )
        assert _codes(src, "R12") == []

    def test_retained_task_handle_is_clean(self):
        src = (
            "import asyncio\n"
            "async def tick():\n"
            "    pass\n"
            "async def main(tasks):\n"
            "    tasks.append(asyncio.create_task(tick()))\n"
        )
        assert _codes(src, "R12") == []


class TestR13LockQueue:
    def test_unbounded_queue_fires(self):
        # The module check only applies to modules with async code in
        # them — an unbounded queue in a sync-only helper file is some
        # other program's problem.
        src = (
            "import asyncio\n"
            "def build():\n"
            "    return asyncio.Queue()\n"
            "async def drain(q):\n"
            "    await q.get()\n"
        )
        assert _codes(src, "R13") == ["R13"]

    def test_bounded_queue_is_clean(self):
        src = (
            "import asyncio\n"
            "def build(n):\n"
            "    return asyncio.Queue(maxsize=n)\n"
            "async def drain(q):\n"
            "    await q.get()\n"
        )
        assert _codes(src, "R13") == []

    def test_sync_only_module_is_out_of_scope(self):
        src = (
            "import asyncio\n"
            "def build():\n"
            "    return asyncio.Queue()\n"
        )
        assert _codes(src, "R13") == []

    def test_sync_lock_held_across_await_fires(self):
        src = (
            "import asyncio\n"
            "class S:\n"
            "    async def work(self):\n"
            "        with self._lock:\n"
            "            await asyncio.sleep(0)\n"
        )
        assert _codes(src, "R13") == ["R13"]


class TestR14Aliasing:
    def test_same_object_into_two_tasks_fires(self):
        src = (
            "import asyncio\n"
            "async def worker(state):\n"
            "    state['hits'] = state.get('hits', 0) + 1\n"
            "async def main(state):\n"
            "    await asyncio.gather(worker(state), worker(state))\n"
        )
        assert _codes(src, "R14") == ["R14"]

    def test_queue_fanout_is_exempt(self):
        src = (
            "import asyncio\n"
            "async def worker(q):\n"
            "    await q.get()\n"
            "async def main():\n"
            "    jobs = asyncio.Queue(maxsize=8)\n"
            "    await asyncio.gather(worker(jobs), worker(jobs))\n"
        )
        assert _codes(src, "R14") == []

    def test_loop_fresh_payload_is_clean(self):
        src = (
            "import asyncio\n"
            "async def handle(item):\n"
            "    pass\n"
            "async def main(items, tasks):\n"
            "    for item in items:\n"
            "        tasks.append(asyncio.create_task(handle(item)))\n"
        )
        assert _codes(src, "R14") == []


class TestRaceAuditCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(
            "import asyncio\nasync def main():\n    await asyncio.sleep(0)\n"
        )
        assert race_audit_main([str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violating_file_exits_one(self, capsys):
        assert race_audit_main([str(FIXTURES / "r10_fail.py")]) == 1
        assert "R10" in capsys.readouterr().out

    def test_runs_only_async_rules(self, tmp_path):
        # A file violating syntactic rule R1 is out of race-audit scope.
        (tmp_path / "r1.py").write_text(
            "import numpy as np\nx = np.random.rand(3)\n"
        )
        assert race_audit_main([str(tmp_path)]) == 0
        assert lint_main([str(tmp_path)]) == 1

    def test_explain_lists_exactly_the_async_rules(self, capsys):
        assert race_audit_main(["--explain"]) == 0
        out = capsys.readouterr().out
        for code in ASYNC_RULES:
            assert code in out
        assert "R1 " not in out and "R6 " not in out

    def test_select_subsets_rules(self):
        target = str(FIXTURES / "r11_fail.py")
        assert race_audit_main(["--select", "R10", target]) == 0
        assert race_audit_main(["--select", "R11", target]) == 1

    def test_non_async_rule_code_is_usage_error(self, tmp_path):
        assert race_audit_main(["--select", "R1", str(tmp_path)]) == 2

    def test_json_format(self, capsys):
        assert race_audit_main(
            ["--format", "json", str(FIXTURES / "r14_fail.py")]
        ) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 2
        assert {v["rule"] for v in payload["violations"]} == {"R14"}

    def test_dispatch_through_repro_experiments(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert cli_main(["race-audit", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_shipped_service_tree_is_clean(self, capsys):
        # The acceptance gate: the service the repo ships audits clean.
        repo_root = Path(__file__).resolve().parents[2]
        assert race_audit_main([str(repo_root / "src" / "repro")]) == 0


class TestSelectValidation:
    """Satellite: every audit front-end rejects degenerate selections."""

    @pytest.mark.parametrize("entry", [lint_main, audit_main, race_audit_main])
    def test_empty_select_is_usage_error(self, entry, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert entry(["--select", ",,", str(tmp_path)]) == 2
        assert "empty" in capsys.readouterr().err

    @pytest.mark.parametrize("entry", [lint_main, audit_main, race_audit_main])
    def test_unknown_code_is_usage_error(self, entry, tmp_path, capsys):
        assert entry(["--select", "R99", str(tmp_path)]) == 2
        assert "unknown rule codes" in capsys.readouterr().err
