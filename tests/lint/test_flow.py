"""Interprocedural flow rules R6-R9: tracking behaviors, cross-module
summaries, pragma suppression, and the ``rng-audit`` CLI."""

import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.lint import FLOW_RULES, RULES, lint_paths, lint_source
from repro.lint.cli import audit_main
from repro.lint.cli import main as lint_main

FIXTURES = Path(__file__).parent / "fixtures"

#: A deliberately racy module: one generator threaded into two sibling
#: trial tasks (the stream race the audit exists to catch).
RACY = """\
import numpy as np

from repro.engine import TrialTask


def submit(fn):
    rng = np.random.default_rng(0)
    return [TrialTask(fn=fn, rng=rng), TrialTask(fn=fn, rng=rng)]
"""

CLEAN = """\
from repro.instrument.rng import resolve_rng


def draw(seed=None, rng=None):
    gen = resolve_rng(seed=seed, rng=rng)
    return int(gen.integers(10))
"""


def _codes(source, *rules, path="snippet.py"):
    selected = [RULES[c] for c in rules] if rules else None
    return [v.rule for v in lint_source(source, path=path, rules=selected)]


@pytest.mark.fast
class TestR6StreamReuse:
    def test_consume_after_spawn_fires(self):
        src = (
            "import numpy as np\n"
            "from repro.instrument.rng import spawn_rngs\n"
            "def f():\n"
            "    rng = np.random.default_rng(0)\n"
            "    kids = spawn_rngs(rng, 2)\n"
            "    return rng.integers(5), kids\n"
        )
        assert _codes(src, "R6") == ["R6"]

    def test_consume_before_spawn_is_clean(self):
        src = (
            "import numpy as np\n"
            "from repro.instrument.rng import spawn_rngs\n"
            "def f():\n"
            "    rng = np.random.default_rng(0)\n"
            "    burn = rng.integers(5)\n"
            "    return burn, spawn_rngs(rng, 2)\n"
        )
        assert _codes(src, "R6") == []

    def test_spawn_method_is_tracked_like_spawn_rngs(self):
        src = (
            "import numpy as np\n"
            "def f():\n"
            "    rng = np.random.default_rng(0)\n"
            "    kids = rng.spawn(2)\n"
            "    return rng.integers(5), kids\n"
        )
        assert _codes(src, "R6") == ["R6"]

    def test_alias_through_resolve_rng_shares_the_stream(self):
        src = (
            "from repro.instrument.rng import resolve_rng, spawn_rngs\n"
            "def f(rng):\n"
            "    gen = resolve_rng(rng=rng)\n"
            "    kids = spawn_rngs(gen, 2)\n"
            "    return rng.integers(5), kids\n"
        )
        assert _codes(src, "R6") == ["R6"]

    def test_task_rng_also_consumed_locally_fires(self):
        src = (
            "import numpy as np\n"
            "from repro.engine import TrialTask\n"
            "def f(fn):\n"
            "    rng = np.random.default_rng(0)\n"
            "    task = TrialTask(fn=fn, rng=rng)\n"
            "    return task, rng.integers(5)\n"
        )
        assert _codes(src, "R6") == ["R6"]

    def test_sibling_tasks_with_distinct_children_are_clean(self):
        src = (
            "import numpy as np\n"
            "from repro.engine import TrialTask\n"
            "from repro.instrument.rng import spawn_rngs\n"
            "def f(fn):\n"
            "    kids = spawn_rngs(np.random.default_rng(0), 2)\n"
            "    return [TrialTask(fn=fn, rng=kids[0]),\n"
            "            TrialTask(fn=fn, rng=kids[1])]\n"
        )
        assert _codes(src, "R6") == []


@pytest.mark.fast
class TestR7GeneratorEscape:
    def test_module_level_generator_fires(self):
        src = "import numpy as np\nRNG = np.random.default_rng(0)\n"
        assert _codes(src, "R7") == ["R7"]

    def test_function_local_generator_is_clean(self):
        src = (
            "import numpy as np\n"
            "def f():\n"
            "    rng = np.random.default_rng(0)\n"
            "    return int(rng.integers(5))\n"
        )
        assert _codes(src, "R7") == []

    def test_escaping_closure_fires(self):
        src = (
            "import numpy as np\n"
            "def make():\n"
            "    rng = np.random.default_rng(0)\n"
            "    def sample():\n"
            "        return rng.integers(5)\n"
            "    return sample\n"
        )
        assert _codes(src, "R7") == ["R7"]


@pytest.mark.fast
class TestR8BoundaryCrossing:
    def test_generator_in_kwargs_fires(self):
        src = (
            "import numpy as np\n"
            "from repro.engine import TrialTask\n"
            "def f(fn):\n"
            "    rng = np.random.default_rng(0)\n"
            '    return TrialTask(fn=fn, kwargs={"gen": rng})\n'
        )
        assert _codes(src, "R8") == ["R8"]

    def test_spawn_list_element_in_payload_fires(self):
        src = (
            "import numpy as np\n"
            "from repro.engine import TrialTask\n"
            "from repro.instrument.rng import spawn_rngs\n"
            "def f(fn):\n"
            "    kids = spawn_rngs(np.random.default_rng(0), 2)\n"
            '    return TrialTask(fn=fn, kwargs={"gen": kids[0]})\n'
        )
        assert _codes(src, "R8") == ["R8"]

    def test_rng_spec_call_in_payload_is_sanctioned(self):
        # The call runs before pickling; only its (picklable) result
        # crosses the boundary, so rng_spec(child) must not be flagged.
        src = (
            "import numpy as np\n"
            "from repro.engine import TrialTask\n"
            "from repro.instrument.rng import rng_spec, spawn_rngs\n"
            "def f(fn):\n"
            "    kids = spawn_rngs(np.random.default_rng(0), 2)\n"
            '    return TrialTask(fn=fn, kwargs={"spec": rng_spec(kids[0])},\n'
            "                     rng=kids[1])\n"
        )
        assert _codes(src, "R8") == []


@pytest.mark.fast
class TestR9DrawOrderHazard:
    def test_draw_inside_set_loop_fires(self):
        src = (
            "def f(vertices, rng):\n"
            "    return {v: rng.integers(2) for v in set(vertices)}\n"
        )
        assert _codes(src, "R9") == ["R9"]

    def test_sorted_iteration_is_clean(self):
        src = (
            "def f(vertices, rng):\n"
            "    return {v: rng.integers(2) for v in sorted(set(vertices))}\n"
        )
        assert _codes(src, "R9") == []

    def test_per_element_child_stream_is_exempt(self):
        src = (
            "from repro.instrument.rng import resolve_rng, spawn_rngs\n"
            "def f(count, seed=None, rng=None):\n"
            "    kids = spawn_rngs(resolve_rng(seed=seed, rng=rng), count)\n"
            "    return {i: kids[i].integers(2) for i in set(range(count))}\n"
        )
        assert _codes(src, "R9") == []


@pytest.mark.fast
class TestCrossModule:
    def _write_pair(self, tmp_path):
        (tmp_path / "helpers.py").write_text(
            "import numpy as np\n"
            "def make_gen():\n"
            "    return np.random.default_rng(0)\n"
        )
        (tmp_path / "use.py").write_text(
            "from helpers import make_gen\n"
            "from repro.instrument.rng import spawn_rngs\n"
            "def bad():\n"
            "    rng = make_gen()\n"
            "    kids = spawn_rngs(rng, 2)\n"
            "    return rng.integers(5), kids\n"
        )

    def test_imported_factory_is_summarized(self, tmp_path):
        self._write_pair(tmp_path)
        violations = lint_paths([tmp_path], rules=[RULES["R6"]])
        assert [v.rule for v in violations] == ["R6"]
        assert violations[0].path.endswith("use.py")

    def test_single_file_view_cannot_see_the_factory(self, tmp_path):
        self._write_pair(tmp_path)
        source = (tmp_path / "use.py").read_text()
        assert lint_source(source, rules=[RULES["R6"]]) == []


@pytest.mark.fast
class TestFlowPragmas:
    def test_rule_specific_ignore_suppresses(self):
        src = (
            "import numpy as np\n"
            "RNG = np.random.default_rng(0)  # repro-lint: ignore[R7]\n"
        )
        assert _codes(src, "R7") == []

    def test_bare_ignore_suppresses(self):
        src = (
            "import numpy as np\n"
            "RNG = np.random.default_rng(0)  # repro-lint: ignore\n"
        )
        assert _codes(src) == []


@pytest.mark.fast
class TestAuditCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN)
        assert audit_main([str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_stream_race_reported_in_text(self, tmp_path, capsys):
        bad = tmp_path / "racy.py"
        bad.write_text(RACY)
        assert audit_main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "R6" in out and "racy.py" in out

    def test_stream_race_reported_in_json(self, tmp_path, capsys):
        bad = tmp_path / "racy.py"
        bad.write_text(RACY)
        assert audit_main(["--format", "json", str(bad)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] >= 1
        assert {v["rule"] for v in payload["violations"]} == {"R6"}

    def test_audit_ignores_syntactic_rules(self, tmp_path):
        # np.random.rand is an R1 finding; the audit runs R6-R9 only.
        (tmp_path / "legacy.py").write_text(
            "import numpy as np\nx = np.random.rand(3)\n"
        )
        assert audit_main([str(tmp_path)]) == 0

    def test_explain_lists_exactly_the_flow_rules(self, capsys):
        assert audit_main(["--explain"]) == 0
        out = capsys.readouterr().out
        for code in FLOW_RULES:
            assert code in out
        assert "R1" not in out

    def test_dispatch_through_repro_experiments(self, tmp_path, capsys):
        bad = tmp_path / "racy.py"
        bad.write_text(RACY)
        assert cli_main(["rng-audit", str(bad)]) == 1
        assert "R6" in capsys.readouterr().out


@pytest.mark.fast
class TestGithubFormat:
    def test_lint_emits_error_annotations(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nx = np.random.rand(3)\n")
        assert lint_main(["--format", "github", str(bad)]) == 1
        out = capsys.readouterr().out
        assert f"::error file={bad}" in out
        assert "title=R1" in out

    def test_audit_emits_error_annotations(self, tmp_path, capsys):
        bad = tmp_path / "racy.py"
        bad.write_text(RACY)
        assert audit_main(["--format", "github", str(bad)]) == 1
        assert "title=R6" in capsys.readouterr().out

    def test_clean_run_emits_no_annotations(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN)
        assert lint_main(["--format", "github", str(tmp_path)]) == 0
        assert "::error" not in capsys.readouterr().out
