"""Runner/CLI behavior: pragmas, discovery skips, formats, exit codes."""

import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.lint import RULES, discover_files, lint_paths, lint_source
from repro.lint.cli import main as lint_main

FIXTURES = Path(__file__).parent / "fixtures"

VIOLATING = "import numpy as np\nx = np.random.rand(3)\n"


@pytest.mark.fast
class TestPragmas:
    def test_rule_specific_ignore_suppresses(self):
        src = "import numpy as np\nx = np.random.rand(3)  # repro-lint: ignore[R1]\n"
        assert lint_source(src, rules=[RULES["R1"]]) == []

    def test_bare_ignore_suppresses_all(self):
        src = "import numpy as np\nx = np.random.rand(3)  # repro-lint: ignore\n"
        assert lint_source(src) == []

    def test_other_rule_pragma_does_not_suppress(self):
        src = "import numpy as np\nx = np.random.rand(3)  # repro-lint: ignore[R2]\n"
        assert len(lint_source(src, rules=[RULES["R1"]])) == 1

    def test_pragma_on_other_line_does_not_suppress(self):
        src = "# repro-lint: ignore[R1]\nimport numpy as np\nx = np.random.rand(3)\n"
        assert len(lint_source(src, rules=[RULES["R1"]])) == 1


@pytest.mark.fast
class TestSkipFilePragma:
    def test_bare_skip_file_suppresses_everything(self):
        src = "# repro-lint: skip-file\n" + VIOLATING
        assert lint_source(src) == []

    def test_bracketed_skip_file_suppresses_named_rule(self):
        src = "# repro-lint: skip-file[R1]\n" + VIOLATING
        assert lint_source(src, rules=[RULES["R1"]]) == []

    def test_other_rule_skip_does_not_suppress(self):
        src = "# repro-lint: skip-file[R2]\n" + VIOLATING
        assert len(lint_source(src, rules=[RULES["R1"]])) == 1

    def test_skip_file_works_from_any_line(self):
        src = VIOLATING + "# repro-lint: skip-file[R1]\n"
        assert lint_source(src, rules=[RULES["R1"]]) == []

    def test_multiple_skip_lists_union(self):
        src = ("# repro-lint: skip-file[R1]\n"
               "# repro-lint: skip-file[R2]\n"
               "import datetime\n"
               + VIOLATING)
        assert lint_source(src, rules=[RULES["R1"], RULES["R2"]]) == []


@pytest.mark.fast
class TestGithubFormat:
    def violation(self, message, path="src/mod.py", rule="R1"):
        from repro.lint import Violation

        return Violation(path=path, line=3, col=4, rule=rule, message=message)

    def render(self, *violations):
        from repro.lint import format_github

        return format_github(list(violations))

    def test_basic_annotation_shape(self):
        out = self.render(self.violation("plain message"))
        assert out.splitlines()[0] == (
            "::error file=src/mod.py,line=3,col=5,title=R1::plain message"
        )

    def test_newlines_in_message_are_escaped(self):
        # A raw newline would truncate the annotation at the first line.
        out = self.render(self.violation("first\nsecond\rthird"))
        line = out.splitlines()[0]
        assert "first%0Asecond%0Dthird" in line
        assert len(out.splitlines()) == 2  # annotation + summary

    def test_percent_is_escaped_first(self):
        out = self.render(self.violation("50% done\n"))
        assert "50%25 done%0A" in out.splitlines()[0]

    def test_double_colon_in_message_survives(self):
        # `::` inside the data portion must not start a new command.
        out = self.render(self.violation("dict::value mismatch"))
        assert out.splitlines()[0].endswith("::dict::value mismatch")

    def test_property_escapes_colon_and_comma(self):
        out = self.render(
            self.violation("msg", path="weird,name::x.py")
        )
        assert "file=weird%2Cname%3A%3Ax.py," in out.splitlines()[0]


@pytest.mark.fast
class TestDiscovery:
    def test_fixture_directories_are_skipped(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "fixtures").mkdir()
        (tmp_path / "pkg" / "ok.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "fixtures" / "bad.py").write_text(VIOLATING)
        found = discover_files([tmp_path])
        assert [p.name for p in found] == ["ok.py"]

    def test_explicit_file_path_always_linted(self):
        violations = lint_paths([FIXTURES / "r1_fail.py"], rules=[RULES["R1"]])
        assert violations

    def test_tree_lint_skips_this_suites_fixtures(self):
        assert lint_paths([Path(__file__).parent]) == []

    def test_non_python_target_rejected(self, tmp_path):
        target = tmp_path / "notes.txt"
        target.write_text("hello")
        with pytest.raises(FileNotFoundError):
            discover_files([target])


@pytest.mark.fast
class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert lint_main([str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violations_exit_one_text(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(VIOLATING)
        assert lint_main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "R1" in out and "bad.py:2" in out

    def test_json_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(VIOLATING)
        assert lint_main(["--format", "json", str(bad)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        assert payload["violations"][0]["rule"] == "R1"

    def test_select_filters_rules(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(VIOLATING)
        assert lint_main(["--select", "R2", str(bad)]) == 0
        assert lint_main(["--select", "R1", str(bad)]) == 1

    def test_unknown_rule_code_is_usage_error(self, tmp_path):
        assert lint_main(["--select", "R99", str(tmp_path)]) == 2

    def test_missing_target_is_usage_error(self, tmp_path):
        assert lint_main([str(tmp_path / "nope.txt")]) == 2

    def test_syntax_error_is_usage_error(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        assert lint_main([str(bad)]) == 2

    def test_explain_lists_all_rules(self, capsys):
        assert lint_main(["--explain"]) == 0
        out = capsys.readouterr().out
        for code in RULES:
            assert code in out

    def test_dispatch_through_repro_experiments(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert cli_main(["lint", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out


@pytest.mark.fast
def test_repository_tree_is_clean():
    """The enforced gate: src and tests lint clean (fixtures excepted).

    Mirrors the default ``lint`` CLI: the correctness rules R1-R14.
    The perf rules R15-R19 are opt-in advisories gated separately —
    ``perf-audit`` over the hot trees must be clean
    (``tests/lint/test_perf_flow.py``), while known findings elsewhere
    ratchet down via ``results/perf_baseline.json``.
    """
    repo_root = Path(__file__).resolve().parents[2]
    rules = [rule for rule in RULES.values() if not rule.perf]
    assert lint_paths([repo_root / "src", repo_root / "tests"], rules) == []
