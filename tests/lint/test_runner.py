"""Runner/CLI behavior: pragmas, discovery skips, formats, exit codes."""

import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.lint import RULES, discover_files, lint_paths, lint_source
from repro.lint.cli import main as lint_main

FIXTURES = Path(__file__).parent / "fixtures"

VIOLATING = "import numpy as np\nx = np.random.rand(3)\n"


@pytest.mark.fast
class TestPragmas:
    def test_rule_specific_ignore_suppresses(self):
        src = "import numpy as np\nx = np.random.rand(3)  # repro-lint: ignore[R1]\n"
        assert lint_source(src, rules=[RULES["R1"]]) == []

    def test_bare_ignore_suppresses_all(self):
        src = "import numpy as np\nx = np.random.rand(3)  # repro-lint: ignore\n"
        assert lint_source(src) == []

    def test_other_rule_pragma_does_not_suppress(self):
        src = "import numpy as np\nx = np.random.rand(3)  # repro-lint: ignore[R2]\n"
        assert len(lint_source(src, rules=[RULES["R1"]])) == 1

    def test_pragma_on_other_line_does_not_suppress(self):
        src = "# repro-lint: ignore[R1]\nimport numpy as np\nx = np.random.rand(3)\n"
        assert len(lint_source(src, rules=[RULES["R1"]])) == 1


@pytest.mark.fast
class TestDiscovery:
    def test_fixture_directories_are_skipped(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "fixtures").mkdir()
        (tmp_path / "pkg" / "ok.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "fixtures" / "bad.py").write_text(VIOLATING)
        found = discover_files([tmp_path])
        assert [p.name for p in found] == ["ok.py"]

    def test_explicit_file_path_always_linted(self):
        violations = lint_paths([FIXTURES / "r1_fail.py"], rules=[RULES["R1"]])
        assert violations

    def test_tree_lint_skips_this_suites_fixtures(self):
        assert lint_paths([Path(__file__).parent]) == []

    def test_non_python_target_rejected(self, tmp_path):
        target = tmp_path / "notes.txt"
        target.write_text("hello")
        with pytest.raises(FileNotFoundError):
            discover_files([target])


@pytest.mark.fast
class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert lint_main([str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violations_exit_one_text(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(VIOLATING)
        assert lint_main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "R1" in out and "bad.py:2" in out

    def test_json_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(VIOLATING)
        assert lint_main(["--format", "json", str(bad)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        assert payload["violations"][0]["rule"] == "R1"

    def test_select_filters_rules(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(VIOLATING)
        assert lint_main(["--select", "R2", str(bad)]) == 0
        assert lint_main(["--select", "R1", str(bad)]) == 1

    def test_unknown_rule_code_is_usage_error(self, tmp_path):
        assert lint_main(["--select", "R99", str(tmp_path)]) == 2

    def test_missing_target_is_usage_error(self, tmp_path):
        assert lint_main([str(tmp_path / "nope.txt")]) == 2

    def test_syntax_error_is_usage_error(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        assert lint_main([str(bad)]) == 2

    def test_explain_lists_all_rules(self, capsys):
        assert lint_main(["--explain"]) == 0
        out = capsys.readouterr().out
        for code in RULES:
            assert code in out

    def test_dispatch_through_repro_experiments(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert cli_main(["lint", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out


@pytest.mark.fast
def test_repository_tree_is_clean():
    """The enforced gate: src and tests lint clean (fixtures excepted)."""
    repo_root = Path(__file__).resolve().parents[2]
    assert lint_paths([repo_root / "src", repo_root / "tests"]) == []
