"""The derive_rng deprecation is finished: only the shim remains.

The pre-1.3 ``derive_rng`` helper survives solely as a warning-emitting
alias in ``repro.instrument.rng`` for external callers.  These tests
pin the end state: no module under ``src/repro`` references it (by
import or by name) outside that one shim, it is not re-exported from
the ``repro.instrument`` package, and the shim itself still works and
still warns.
"""

import ast
import warnings
from pathlib import Path

import numpy as np
import pytest

pytestmark = pytest.mark.fast

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"
SHIM = SRC / "instrument" / "rng.py"


def referenced_names(tree: ast.AST) -> set[str]:
    """Every identifier a module references: names, attributes, imports."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.ImportFrom):
            names.update(alias.name for alias in node.names)
        elif isinstance(node, ast.Import):
            names.update(alias.name.split(".")[-1] for alias in node.names)
    return names


class TestRetirement:
    def test_no_module_references_derive_rng(self):
        offenders = []
        for path in sorted(SRC.rglob("*.py")):
            if path == SHIM:
                continue  # the shim's own definition
            tree = ast.parse(path.read_text(), filename=str(path))
            if "derive_rng" in referenced_names(tree):
                offenders.append(str(path.relative_to(SRC)))
        assert offenders == [], (
            "derive_rng is deprecated; these modules still reference it: "
            f"{offenders}"
        )

    def test_not_reexported_from_instrument_package(self):
        import repro.instrument as instrument

        assert "derive_rng" not in instrument.__all__
        assert "derive_rng" not in vars(instrument)

    def test_shim_still_importable(self):
        from repro.instrument.rng import derive_rng  # noqa: F401

    def test_shim_warns_and_works(self):
        from repro.instrument.rng import derive_rng

        with pytest.warns(DeprecationWarning, match="resolve_rng"):
            rng = derive_rng(7)
        assert isinstance(rng, np.random.Generator)
        generator = np.random.default_rng(0)
        with pytest.warns(DeprecationWarning):
            assert derive_rng(generator) is generator

    def test_internal_suite_emits_no_deprecation_warning(self):
        # Importing the whole public facade must not trip the shim.
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            import repro.api  # noqa: F401
            import repro.service  # noqa: F401
