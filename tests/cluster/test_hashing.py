"""Rendezvous placement: determinism, stability, spread, edge cases."""

import pytest

from repro.cluster.hashing import place, placement_map, rendezvous_score

pytestmark = pytest.mark.fast


class TestDeterminism:
    def test_pure_function(self):
        # Same inputs, same answer — across calls and across "processes"
        # (sha256, not the salted builtin hash).
        assert [place("alpha", 5)] * 3 == [place("alpha", 5) for _ in range(3)]

    def test_known_range(self):
        for num_shards in (1, 2, 3, 8, 16):
            for i in range(50):
                assert 0 <= place(f"s{i}", num_shards) < num_shards

    def test_single_shard_fast_path(self):
        assert place("anything", 1) == 0

    def test_score_is_64_bit(self):
        score = rendezvous_score("session", 3)
        assert 0 <= score < 2**64

    def test_rejects_empty_cluster(self):
        with pytest.raises(ValueError):
            place("s", 0)


class TestStability:
    def test_resize_only_moves_to_the_new_shard(self):
        # The HRW property: growing K -> K+1 never shuffles sessions
        # among surviving shards; movers all land on the new shard.
        sessions = [f"sess-{i}" for i in range(300)]
        for k in (1, 2, 4, 7):
            for name in sessions:
                before, after = place(name, k), place(name, k + 1)
                if before != after:
                    assert after == k

    def test_resize_moves_roughly_one_over_k(self):
        sessions = [f"sess-{i}" for i in range(1000)]
        moved = sum(1 for s in sessions if place(s, 4) != place(s, 5))
        # Expectation is 1000/5 = 200; generous deterministic bounds.
        assert 100 <= moved <= 320


class TestSpread:
    def test_all_shards_get_work(self):
        groups = placement_map([f"job-{i}" for i in range(400)], 8)
        assert sorted(groups) == list(range(8))
        assert all(len(names) > 10 for names in groups.values())

    def test_placement_map_includes_empty_shards(self):
        groups = placement_map(["only-one"], 4)
        assert sorted(groups) == [0, 1, 2, 3]
        assert sum(len(v) for v in groups.values()) == 1

    def test_placement_map_agrees_with_place(self):
        sessions = [f"x{i}" for i in range(64)]
        groups = placement_map(sessions, 3)
        for shard, names in groups.items():
            assert all(place(name, 3) == shard for name in names)
