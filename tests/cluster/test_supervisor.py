"""Worker lifecycle: spawn, announce, health, journal layout, stop."""

import signal

import pytest

from repro.cluster.supervisor import (
    _ANNOUNCE_RE,
    ClusterSupervisor,
    shard_journal_dir,
)


class TestAnnounceParsing:
    @pytest.mark.fast
    def test_matches_the_server_banner(self):
        match = _ANNOUNCE_RE.search(
            "repro-service listening on 127.0.0.1:8931\n"
        )
        assert match is not None
        assert match.group("host") == "127.0.0.1"
        assert match.group("port") == "8931"

    @pytest.mark.fast
    def test_shard_journal_dir_layout(self, tmp_path):
        assert shard_journal_dir(tmp_path, 3) == tmp_path / "shard-3"

    @pytest.mark.fast
    def test_rejects_empty_cluster(self):
        with pytest.raises(ValueError):
            ClusterSupervisor(shards=0)


class TestLifecycle:
    def test_start_health_stop_exits_zero(self, tmp_path):
        supervisor = ClusterSupervisor(shards=2, journal_dir=tmp_path)
        supervisor.start()
        try:
            addresses = supervisor.addresses()
            assert len(addresses) == 2
            assert all(port > 0 for _, port in addresses)
            # Ephemeral ports must be distinct workers.
            assert len({port for _, port in addresses}) == 2
            supervisor.health_check()
            assert supervisor.dead_shards() == []
            # Eager journal layout: every shard dir exists even before
            # any session is created (records the true cluster size).
            for shard in range(2):
                assert (tmp_path / f"shard-{shard}").is_dir()
        finally:
            codes = supervisor.stop()
        # SIGTERM is the graceful path: drained and exited 0.
        assert codes == [0, 0]

    def test_dead_shards_detects_a_killed_worker(self, tmp_path):
        supervisor = ClusterSupervisor(shards=2, journal_dir=tmp_path)
        supervisor.start()
        try:
            supervisor.workers[1].process.send_signal(signal.SIGKILL)
            supervisor.workers[1].process.wait(timeout=10)
            assert supervisor.dead_shards() == [1]
        finally:
            supervisor.stop()

    def test_stop_is_idempotent_for_already_dead_workers(self, tmp_path):
        supervisor = ClusterSupervisor(shards=1, journal_dir=tmp_path)
        supervisor.start()
        first = supervisor.stop()
        assert first == [0]
        assert supervisor.stop() == [0]
