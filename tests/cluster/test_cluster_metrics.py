"""Cross-shard aggregation: exact percentile merge, counter sums, edges."""

import pytest

from repro.cluster.metrics import (
    aggregate_cluster_stats,
    merge_counters,
    merge_latency,
    merge_sorted_samples,
)
from repro.service.metrics import percentile_sorted

pytestmark = pytest.mark.fast


def _latency_payload(samples, budget_ms=5.0, over_budget=0):
    return {
        "samples_sorted_ms": sorted(samples),
        "budget_ms": budget_ms,
        "over_budget": over_budget,
    }


class TestCounters:
    def test_sums_across_shards(self):
        merged = merge_counters([
            {"updates": 10, "inserts": 7},
            {"updates": 5, "deletes": 2},
            {},
        ])
        assert merged == {"updates": 15, "inserts": 7, "deletes": 2}

    def test_missing_keys_count_as_zero(self):
        assert merge_counters([{"a": 1}, {"b": 1}]) == {"a": 1, "b": 1}

    def test_no_shards(self):
        assert merge_counters([]) == {}


class TestSampleMerge:
    def test_union_is_sorted(self):
        merged = merge_sorted_samples([[1.0, 4.0], [2.0, 3.0], []])
        assert merged == [1.0, 2.0, 3.0, 4.0]

    def test_empty_everywhere(self):
        assert merge_sorted_samples([[], []]) == []
        assert merge_sorted_samples([]) == []


class TestPercentileMerge:
    def test_matches_single_server_over_the_union(self):
        # The defining property: the cluster percentile equals what one
        # server holding every sample would report.
        shard_a = [0.1 * i for i in range(1, 60)]
        shard_b = [5.0 + 0.2 * i for i in range(40)]
        shard_c = [0.05]
        union = sorted(shard_a + shard_b + shard_c)
        merged = merge_latency([
            _latency_payload(shard_a),
            _latency_payload(shard_b),
            _latency_payload(shard_c),
        ])
        for key, q in (("p50_ms", 50.0), ("p95_ms", 95.0), ("p99_ms", 99.0)):
            assert merged[key] == round(percentile_sorted(union, q), 4)
        assert merged["max_ms"] == round(union[-1], 4)
        assert merged["count"] == len(union)

    def test_union_beats_averaged_percentiles_on_skewed_tails(self):
        # One fast shard, one slow shard: averaging per-shard p99s
        # under-reports the real tail; the union does not.
        fast = [0.1] * 99
        slow = [10.0] * 99
        merged = merge_latency([
            _latency_payload(fast), _latency_payload(slow),
        ])
        averaged_p99 = (percentile_sorted(fast, 99.0)
                        + percentile_sorted(slow, 99.0)) / 2
        union = sorted(fast + slow)
        assert merged["p99_ms"] == round(percentile_sorted(union, 99.0), 4)
        assert merged["p99_ms"] == 10.0
        assert averaged_p99 == pytest.approx(5.05)  # the wrong answer

    def test_over_budget_sums_and_budget_takes_the_min(self):
        merged = merge_latency([
            _latency_payload([1.0], budget_ms=5.0, over_budget=2),
            _latency_payload([2.0], budget_ms=3.0, over_budget=1),
        ])
        assert merged["over_budget"] == 3
        assert merged["budget_ms"] == 3.0

    def test_empty_shards_report_zeros(self):
        merged = merge_latency([_latency_payload([]), _latency_payload([])])
        assert merged["count"] == 0
        assert merged["p50_ms"] == merged["p99_ms"] == merged["max_ms"] == 0.0

    def test_mixed_empty_and_loaded_shards(self):
        samples = [1.0, 2.0, 3.0]
        merged = merge_latency([
            _latency_payload([]), _latency_payload(samples),
        ])
        assert merged["count"] == 3
        assert merged["p50_ms"] == round(percentile_sorted(samples, 50.0), 4)


class TestAggregateClusterStats:
    def _shard(self, sessions, counters, samples, depth=0, max_depth=0):
        return {
            "sessions": sessions,
            "counters": counters,
            "latency": _latency_payload(samples),
            "queue": {"depth": depth, "max_depth": max_depth},
        }

    def test_merges_everything(self):
        merged = aggregate_cluster_stats([
            self._shard(["b", "a"], {"updates": 3}, [1.0], depth=1,
                        max_depth=4),
            self._shard(["c"], {"updates": 2, "queries": 1}, [0.5, 2.0],
                        depth=2, max_depth=3),
        ])
        assert merged["shards"] == 2
        assert merged["sessions"] == ["a", "b", "c"]
        assert merged["per_shard_sessions"] == [2, 1]
        assert merged["counters"] == {"updates": 5, "queries": 1}
        assert merged["latency"]["count"] == 3
        assert merged["queue"] == {"depth": 3, "max_depth": 4}

    def test_zero_shards(self):
        merged = aggregate_cluster_stats([])
        assert merged["shards"] == 0
        assert merged["sessions"] == []
        assert merged["counters"] == {}
        assert merged["latency"]["count"] == 0
        assert merged["queue"] == {"depth": 0, "max_depth": 0}

    def test_empty_shard_payloads(self):
        # A shard that has served nothing exports minimal payloads.
        merged = aggregate_cluster_stats([{}, self._shard([], {}, [])])
        assert merged["shards"] == 2
        assert merged["sessions"] == []
        assert merged["per_shard_sessions"] == [0, 0]
