"""End-to-end cluster tests: routing, cluster ops, failure surfacing.

These spawn real shard worker processes (no ``fast`` marker); the
happy-path tests share one module-scoped cluster to amortize startup.
"""

import signal

import pytest

from repro.cluster.hashing import place
from repro.cluster.runner import BackgroundCluster
from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import PROTOCOL
from repro.service.server import BackgroundServer

SHARDS = 2


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    journal_root = tmp_path_factory.mktemp("cluster-journals")
    with BackgroundCluster(shards=SHARDS, journal_dir=journal_root) as cl:
        yield cl


@pytest.fixture
def client(cluster):
    with ServiceClient(cluster.host, cluster.port) as cli:
        yield cli


def _spread_names(prefix, count=16):
    """Session names that land on both shards (deterministic)."""
    names = [f"{prefix}-{i}" for i in range(count)]
    assert {place(name, SHARDS) for name in names} == set(range(SHARDS))
    return names


class TestRouting:
    def test_ping_carries_the_cluster_banner(self, client):
        response = client.ping()
        assert response["protocol"] == PROTOCOL
        assert response["cluster"] == {"shards": SHARDS}

    def test_create_update_query_through_the_router(self, client):
        names = _spread_names("route", 4)
        for name in names:
            client.create(name, num_vertices=16, beta=1, epsilon=0.4, seed=0)
            client.insert(name, 0, 1)
            client.insert(name, 2, 3)
        payloads = [client.query_matching(name) for name in names]
        for payload in payloads:
            assert payload["size"] == len(payload["edges"])
        # Same stream + same seed => same served state on every shard.
        assert len({str(p["edges"]) for p in payloads}) == 1

    def test_id_echo_passes_through_verbatim(self, client):
        client.create("echo-check", num_vertices=8, beta=1, epsilon=0.4,
                      seed=0)
        response = client.call({"op": "stats", "session": "echo-check",
                                "id": "req-77"})
        assert response["id"] == "req-77"

    def test_shard_error_codes_pass_through(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.query_matching("never-created")
        assert excinfo.value.code == "no-such-session"

    def test_router_local_protocol_errors(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.call({"op": "frobnicate"})
        assert excinfo.value.code == "unknown-op"
        with pytest.raises(ServiceError) as excinfo:
            client.call({"op": "insert"})  # missing session
        assert excinfo.value.code == "bad-request"

    def test_sessions_merges_all_shards_sorted(self, client):
        names = _spread_names("merge", 6)
        for name in names:
            client.create(name, num_vertices=8, beta=1, epsilon=0.4, seed=0)
        listed = client.sessions()
        assert [n for n in listed if n.startswith("merge-")] == sorted(names)

    def test_routed_session_matches_single_server_byte_for_byte(
        self, client
    ):
        # The determinism anchor: the same update stream with the same
        # seed produces the identical fingerprint whether it flows
        # through the router or straight into a single-process server.
        updates = [("insert", i, i + 1) for i in range(0, 30, 2)]
        updates += [("delete", i, i + 1) for i in range(0, 10, 2)]
        client.create("ordered", num_vertices=32, beta=1, epsilon=0.4, seed=5)
        for op, u, v in updates:
            client.call({"op": op, "session": "ordered", "u": u, "v": v})
        routed = client.snapshot("ordered")["fingerprint"]

        with BackgroundServer() as server:
            with ServiceClient(server.host, server.port) as direct:
                direct.create("ordered", num_vertices=32, beta=1,
                              epsilon=0.4, seed=5)
                for op, u, v in updates:
                    direct.call({"op": op, "session": "ordered",
                                 "u": u, "v": v})
                assert direct.snapshot("ordered")["fingerprint"] == routed


class TestClusterStats:
    def test_shard_stats_reports_every_shard(self, client):
        response = client.shard_stats()
        assert [entry["shard"] for entry in response["shards"]] == [0, 1]
        assert response["unreachable"] == []
        for entry in response["shards"]:
            assert "counters" in entry
            assert "samples_sorted_ms" in entry["latency"]

    def test_cluster_stats_counters_sum_over_shards(self, client):
        names = _spread_names("stats", 6)
        for name in names:
            client.create(name, num_vertices=8, beta=1, epsilon=0.4, seed=0)
            client.insert(name, 0, 1)
        per_shard = client.shard_stats()["shards"]
        merged = client.cluster_stats()
        assert merged["shards"] == SHARDS
        total = sum(entry["counters"].get("updates", 0)
                    for entry in per_shard)
        assert merged["counters"]["updates"] == total
        assert merged["latency"]["count"] == sum(
            len(entry["latency"]["samples_sorted_ms"]) for entry in per_shard
        )
        assert len(merged["per_shard_sessions"]) == SHARDS

    def test_single_server_answers_cluster_stats_as_one_shard(self, cluster):
        # Shape parity: the same op straight at a shard worker reports
        # a one-shard cluster, so `stats` tooling works against either.
        host, port = cluster.supervisor.addresses()[0]
        with ServiceClient(host, port) as direct:
            merged = direct.cluster_stats()
        assert merged["shards"] == 1
        assert set(merged) >= {"sessions", "counters", "latency", "queue"}


class TestShardFailure:
    def test_dead_shard_surfaces_as_shard_unavailable(self, tmp_path):
        with BackgroundCluster(shards=2, journal_dir=tmp_path) as cl:
            with ServiceClient(cl.host, cl.port) as cli:
                names = [f"fail-{i}" for i in range(8)]
                on_zero = [n for n in names if place(n, 2) == 0]
                on_one = [n for n in names if place(n, 2) == 1]
                assert on_zero and on_one
                for name in names:
                    cli.create(name, num_vertices=8, beta=1, epsilon=0.4,
                               seed=0)
                victim = cl.supervisor.workers[0]
                victim.process.send_signal(signal.SIGKILL)
                victim.process.wait(timeout=10)
                assert cl.supervisor.dead_shards() == [0]
                with pytest.raises((ServiceError, ConnectionError)) as exc:
                    for name in on_zero:
                        cli.query_matching(name)
                if isinstance(exc.value, ServiceError):
                    assert exc.value.code == "shard-unavailable"
            # The surviving shard keeps serving on a fresh connection.
            with ServiceClient(cl.host, cl.port) as cli2:
                for name in on_one:
                    assert cli2.query_matching(name)["size"] == 0
