"""Shard-aware replay: byte-identity per shard, placement checks, layout."""

import shutil

import pytest

from repro.cluster.hashing import place
from repro.cluster.replay import (
    ClusterReplayError,
    discover_shards,
    replay_shard,
    shard_sessions,
    verify_cluster,
    verify_shard,
)
from repro.cluster.runner import BackgroundCluster
from repro.service.client import ServiceClient

SHARDS = 2


@pytest.fixture(scope="module")
def journaled_cluster_root(tmp_path_factory):
    """Run real multi-session traffic through a cluster; return journals."""
    root = tmp_path_factory.mktemp("replay-journals")
    fingerprints = {}
    with BackgroundCluster(shards=SHARDS, journal_dir=root) as cluster:
        with ServiceClient(cluster.host, cluster.port) as client:
            names = [f"rp-{i}" for i in range(8)]
            for index, name in enumerate(names):
                client.create(name, num_vertices=24, beta=1, epsilon=0.4,
                              seed=index)
                for i in range(0, 20, 2):
                    client.insert(name, i, i + 1)
                client.delete(name, 0, 1)
                fingerprints[name] = client.snapshot(name)["fingerprint"]
    assert cluster.worker_exit_codes == [0] * SHARDS
    return root, fingerprints


class TestDiscovery:
    def test_discovers_contiguous_shards(self, journaled_cluster_root):
        root, _ = journaled_cluster_root
        shards = discover_shards(root)
        assert sorted(shards) == list(range(SHARDS))

    @pytest.mark.fast
    def test_rejects_empty_root(self, tmp_path):
        with pytest.raises(ClusterReplayError, match="no shard-K"):
            discover_shards(tmp_path)

    @pytest.mark.fast
    def test_rejects_non_contiguous_layout(self, tmp_path):
        (tmp_path / "shard-0").mkdir()
        (tmp_path / "shard-2").mkdir()
        with pytest.raises(ClusterReplayError, match="not contiguous"):
            discover_shards(tmp_path)

    @pytest.mark.fast
    def test_ignores_foreign_directories(self, tmp_path):
        (tmp_path / "shard-0").mkdir()
        (tmp_path / "not-a-shard").mkdir()
        assert sorted(discover_shards(tmp_path)) == [0]


class TestVerification:
    def test_verify_cluster_replays_every_session(
        self, journaled_cluster_root
    ):
        root, fingerprints = journaled_cluster_root
        report = verify_cluster(root)
        assert report["shards"] == SHARDS
        assert report["sessions"] == len(fingerprints)
        replayed = {
            entry["session"]: entry["fingerprint"]
            for reports in report["per_shard"].values()
            for entry in reports
        }
        # Byte-level oracle: offline replay lands on the exact served
        # fingerprints.
        assert replayed == fingerprints

    def test_replay_and_verify_agree(self, journaled_cluster_root):
        root, _ = journaled_cluster_root
        shards = discover_shards(root)
        for shard_dir in shards.values():
            once = replay_shard(shard_dir)
            twice = verify_shard(shard_dir)
            assert once == twice

    def test_sessions_live_on_their_placed_shard(
        self, journaled_cluster_root
    ):
        root, _ = journaled_cluster_root
        for shard_id, shard_dir in discover_shards(root).items():
            for journal in shard_sessions(shard_dir):
                assert place(journal.stem, SHARDS) == shard_id

    def test_misplaced_journal_fails_the_placement_check(
        self, journaled_cluster_root, tmp_path
    ):
        root, _ = journaled_cluster_root
        # Copy the layout, then move one journal to the wrong shard.
        bad_root = tmp_path / "bad"
        shutil.copytree(root, bad_root)
        moved = None
        for shard_id, shard_dir in discover_shards(bad_root).items():
            for journal in shard_sessions(shard_dir):
                target = bad_root / f"shard-{(shard_id + 1) % SHARDS}"
                moved = target / journal.name
                journal.rename(moved)
                break
            if moved:
                break
        assert moved is not None
        with pytest.raises(ClusterReplayError, match="rendezvous-places"):
            verify_cluster(bad_root)

    @pytest.mark.fast
    def test_empty_shard_verifies_to_nothing(self, tmp_path):
        (tmp_path / "shard-0").mkdir()
        assert verify_shard(tmp_path / "shard-0") == []
        report = verify_cluster(tmp_path)
        assert report == {
            "shards": 1, "sessions": 0, "updates": 0, "per_shard": {0: []},
        }
