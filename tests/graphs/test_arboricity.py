"""Tests for degeneracy and arboricity bounds."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graphs.arboricity import (
    arboricity_exact_small,
    arboricity_lower_bound,
    arboricity_upper_bound,
    degeneracy,
)
from repro.graphs.builder import from_edges
from repro.graphs.generators import clique, clique_union


class TestDegeneracy:
    def test_tree_is_one(self):
        tree = from_edges(6, [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)])
        assert degeneracy(tree)[0] == 1

    def test_clique(self):
        assert degeneracy(clique(7))[0] == 6

    def test_cycle_is_two(self):
        cycle = from_edges(5, [(i, (i + 1) % 5) for i in range(5)])
        assert degeneracy(cycle)[0] == 2

    def test_empty(self):
        assert degeneracy(from_edges(4, []))[0] == 0
        assert degeneracy(from_edges(0, []))[0] == 0

    def test_order_property(self):
        """Every vertex has <= d neighbors later in the peel order."""
        g = clique_union(2, 5)
        d, order = degeneracy(g)
        position = {int(v): i for i, v in enumerate(order)}
        for v in range(g.num_vertices):
            later = sum(
                1 for u in g.neighbors_array(v)
                if position[int(u)] > position[v]
            )
            assert later <= d


class TestArboricityBounds:
    def test_clique_exact(self):
        # alpha(K_n) = ceil(n/2); for K_6 that is 3.
        g = clique(6)
        exact = arboricity_exact_small(g)
        assert exact == 3
        assert arboricity_lower_bound(g) <= exact <= arboricity_upper_bound(g)

    def test_tree_is_one(self):
        tree = from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        assert arboricity_exact_small(tree) == 1

    def test_tiny_graphs(self):
        assert arboricity_exact_small(from_edges(1, [])) == 0
        assert arboricity_exact_small(from_edges(2, [(0, 1)])) == 1

    def test_exact_guard(self):
        import pytest

        with pytest.raises(ValueError, match="too large"):
            arboricity_exact_small(clique(20))

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=9),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_sandwich(self, n, seed):
        rng = np.random.default_rng(seed)
        edges = [
            (u, v) for u in range(n) for v in range(u + 1, n)
            if rng.random() < 0.5
        ]
        g = from_edges(n, edges)
        exact = arboricity_exact_small(g)
        assert arboricity_lower_bound(g) <= exact
        assert exact <= max(1, arboricity_upper_bound(g)) or exact == 0
