"""Tests for graph construction and NetworkX interop."""

import networkx as nx
import numpy as np
import pytest

from repro.graphs.builder import (
    from_edges,
    from_networkx,
    subgraph_from_edges,
    to_networkx,
    validate_edge_list,
)


class TestValidate:
    def test_normalizes_orientation(self):
        out = validate_edge_list([(2, 1), (1, 2)], 3)
        assert out.tolist() == [[1, 2]]

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            validate_edge_list([(1, 1)], 3)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            validate_edge_list([(0, 3)], 3)
        with pytest.raises(ValueError, match="out of range"):
            validate_edge_list([(-1, 0)], 3)

    def test_empty(self):
        assert validate_edge_list([], 3).shape == (0, 2)

    def test_bad_shape(self):
        with pytest.raises(ValueError, match="shaped"):
            validate_edge_list(np.array([[1, 2, 3]]), 5)


class TestFromEdges:
    def test_dedupes_parallel(self):
        g = from_edges(3, [(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_negative_vertices(self):
        with pytest.raises(ValueError):
            from_edges(-1, [])

    def test_neighbor_lists_sorted(self):
        g = from_edges(4, [(0, 3), (0, 1), (0, 2)])
        assert list(g.neighbors_array(0)) == [1, 2, 3]

    def test_numpy_input(self):
        g = from_edges(4, np.array([[0, 1], [2, 3]]))
        assert g.num_edges == 2


class TestNetworkx:
    def test_roundtrip(self):
        nxg = nx.petersen_graph()
        g, index = from_networkx(nxg)
        assert g.num_vertices == 10
        assert g.num_edges == 15
        back = to_networkx(g)
        assert nx.is_isomorphic(back, nxg)

    def test_relabeling(self):
        nxg = nx.Graph([("a", "b"), ("b", "c")])
        g, index = from_networkx(nxg)
        assert g.num_vertices == 3
        assert g.has_edge(index["a"], index["b"])
        assert not g.has_edge(index["a"], index["c"])

    def test_isolated_preserved(self):
        nxg = nx.Graph()
        nxg.add_nodes_from([0, 1, 2])
        nxg.add_edge(0, 1)
        g, _ = from_networkx(nxg)
        assert g.num_vertices == 3
        assert to_networkx(g).number_of_nodes() == 3


class TestSubgraph:
    def test_keeps_vertex_set(self):
        g = from_edges(5, [(0, 1), (1, 2), (3, 4)])
        sub = subgraph_from_edges(g, [(0, 1)])
        assert sub.num_vertices == 5
        assert sub.num_edges == 1

    def test_rejects_foreign_edge(self):
        g = from_edges(3, [(0, 1)])
        with pytest.raises(ValueError, match="not present"):
            subgraph_from_edges(g, [(1, 2)])
