"""Tests for the workload generators and their β certificates."""

import numpy as np
import pytest

from repro.graphs.generators import (
    beta_controlled_graph,
    bounded_diversity_graph,
    clique,
    clique_minus_edge,
    clique_union,
    erdos_renyi,
    grid_power_graph,
    interval_graph,
    line_graph,
    overlapping_cliques,
    quasi_unit_disk_graph,
    random_bipartite,
    random_line_graph,
    two_cliques_with_bridge,
    unit_disk_graph,
)
from repro.graphs.neighborhood import (
    is_beta_at_most,
    neighborhood_independence_exact,
)
from repro.matching.blossom import mcm_exact


class TestCliques:
    def test_clique_counts(self):
        g = clique(6)
        assert g.num_vertices == 6
        assert g.num_edges == 15

    def test_clique_zero_and_one(self):
        assert clique(0).num_vertices == 0
        assert clique(1).num_edges == 0

    def test_clique_minus_edge(self):
        g = clique_minus_edge(6, missing=(2, 4))
        assert g.num_edges == 14
        assert not g.has_edge(2, 4)
        assert neighborhood_independence_exact(g) == 2

    def test_clique_minus_edge_validation(self):
        with pytest.raises(ValueError):
            clique_minus_edge(1)
        with pytest.raises(ValueError):
            clique_minus_edge(5, missing=(1, 1))
        with pytest.raises(ValueError):
            clique_minus_edge(5, missing=(0, 9))

    def test_clique_union(self):
        g = clique_union(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 6
        assert neighborhood_independence_exact(g) == 1
        assert mcm_exact(g).size == 6

    def test_two_cliques_with_bridge_structure(self):
        g = two_cliques_with_bridge(5)
        assert g.num_vertices == 10
        assert g.has_edge(0, 5)
        assert mcm_exact(g).size == 5
        # Without the bridge, one vertex per odd clique stays free.
        from repro.graphs.builder import from_edges

        no_bridge = from_edges(
            10, [e for e in g.edges() if e != (0, 5)]
        )
        assert mcm_exact(no_bridge).size == 4

    def test_bridge_requires_odd(self):
        with pytest.raises(ValueError):
            two_cliques_with_bridge(4)
        with pytest.raises(ValueError):
            two_cliques_with_bridge(0)

    def test_overlapping_cliques(self):
        g = overlapping_cliques(3, 5, 2)
        assert g.num_vertices == 5 + 2 * 3
        assert is_beta_at_most(g, 2)
        with pytest.raises(ValueError):
            overlapping_cliques(2, 4, 4)


class TestLineGraphs:
    def test_triangle_line_graph(self):
        lg, labels = line_graph(3, [(0, 1), (1, 2), (0, 2)])
        assert lg.num_vertices == 3
        assert lg.num_edges == 3  # L(K3) = K3
        assert labels == [(0, 1), (0, 2), (1, 2)]

    def test_star_line_graph_is_clique(self):
        lg, _ = line_graph(5, [(0, i) for i in range(1, 5)])
        assert lg.num_edges == 6  # K4

    def test_random_line_graph_beta(self):
        g = random_line_graph(12, 0.5, seed=0)
        assert neighborhood_independence_exact(g, max_neighborhood=80) <= 2

    def test_bad_probability(self):
        with pytest.raises(ValueError):
            random_line_graph(5, 1.5)


class TestGeometric:
    def test_unit_disk_edges_respect_radius(self):
        g, pts = unit_disk_graph(50, 4.0, radius=1.0, seed=1)
        for u, v in g.edges():
            assert np.linalg.norm(pts[u] - pts[v]) <= 1.0 + 1e-9
        assert neighborhood_independence_exact(g, max_neighborhood=100) <= 5

    def test_unit_disk_validation(self):
        with pytest.raises(ValueError):
            unit_disk_graph(-1, 1.0)
        with pytest.raises(ValueError):
            unit_disk_graph(5, 0.0)

    def test_quasi_udg(self):
        g, pts = quasi_unit_disk_graph(60, 4.0, 0.7, 1.0, seed=2)
        for u, v in g.edges():
            assert np.linalg.norm(pts[u] - pts[v]) <= 1.0 + 1e-9
        with pytest.raises(ValueError):
            quasi_unit_disk_graph(10, 4.0, 1.2, 1.0)


class TestGrowth:
    def test_interval_graph_beta(self):
        g = interval_graph(40, 1.0, 10.0, seed=3)
        assert neighborhood_independence_exact(g, max_neighborhood=80) <= 2

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            interval_graph(5, -1.0, 2.0)

    def test_grid_power(self):
        g = grid_power_graph(4, 1)
        assert g.num_vertices == 16
        assert g.num_edges == 24  # 4x4 grid
        g2 = grid_power_graph(4, 2)
        assert g2.num_edges > g.num_edges
        with pytest.raises(ValueError):
            grid_power_graph(0, 1)

    def test_bounded_diversity_beta(self):
        g = bounded_diversity_graph(10, 6, 3, seed=4)
        assert neighborhood_independence_exact(g, max_neighborhood=80) <= 3
        with pytest.raises(ValueError):
            bounded_diversity_graph(0, 6, 3)


class TestRandomFamilies:
    def test_erdos_renyi_bounds(self):
        g = erdos_renyi(20, 0.5, seed=5)
        assert g.num_vertices == 20
        assert 0 < g.num_edges < 190
        assert erdos_renyi(10, 0.0, seed=5).num_edges == 0
        assert erdos_renyi(10, 1.0, seed=5).num_edges == 45
        with pytest.raises(ValueError):
            erdos_renyi(5, 1.5)

    def test_random_bipartite_is_bipartite(self):
        from repro.matching.hopcroft_karp import bipartition

        g = random_bipartite(8, 9, 0.4, seed=6)
        left, right = bipartition(g)
        assert len(left) + len(right) == 17
        with pytest.raises(ValueError):
            random_bipartite(2, 2, -0.1)

    def test_claw_free_complement_beta(self):
        from repro.graphs.generators import claw_free_complement

        g = claw_free_complement(30, seed=8)
        assert g.num_edges > 2 * ((15 * 14) // 2)  # both halves are cliques
        assert neighborhood_independence_exact(g, max_neighborhood=40) <= 2

    def test_claw_free_complement_edge_cases(self):
        from repro.graphs.generators import claw_free_complement

        assert claw_free_complement(0, seed=9).num_vertices == 0
        assert claw_free_complement(1, seed=9).num_edges == 0
        with pytest.raises(ValueError):
            claw_free_complement(-1)

    @pytest.mark.parametrize("beta", [1, 2, 3, 4])
    def test_beta_controlled_exact(self, beta):
        g = beta_controlled_graph(6, 8, beta, seed=7)
        assert neighborhood_independence_exact(g, max_neighborhood=80) == beta

    def test_beta_controlled_validation(self):
        with pytest.raises(ValueError):
            beta_controlled_graph(2, 8, 3)  # num_blocks < beta
        with pytest.raises(ValueError):
            beta_controlled_graph(6, 2, 3)  # block_size < beta
