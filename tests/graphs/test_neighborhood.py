"""Tests for the neighborhood independence number β(G)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.builder import from_edges
from repro.graphs.generators import (
    clique,
    clique_minus_edge,
    clique_union,
    line_graph,
)
from repro.graphs.neighborhood import (
    is_beta_at_most,
    neighborhood_independence_exact,
    neighborhood_independence_greedy,
    neighborhood_independence_upper,
)


class TestKnownValues:
    def test_clique_is_one(self):
        assert neighborhood_independence_exact(clique(8)) == 1

    def test_clique_union_is_one(self):
        assert neighborhood_independence_exact(clique_union(3, 5)) == 1

    def test_clique_minus_edge_is_two(self):
        assert neighborhood_independence_exact(clique_minus_edge(8)) == 2

    def test_star_is_leaf_count(self):
        star = from_edges(6, [(0, i) for i in range(1, 6)])
        assert neighborhood_independence_exact(star) == 5

    def test_path_is_two(self):
        path = from_edges(5, [(i, i + 1) for i in range(4)])
        assert neighborhood_independence_exact(path) == 2

    def test_line_graph_at_most_two(self):
        host_edges = [(0, 1), (0, 2), (0, 3), (1, 2), (2, 3), (3, 4)]
        lg, _ = line_graph(5, host_edges)
        assert neighborhood_independence_exact(lg) <= 2

    def test_edgeless_is_zero(self):
        assert neighborhood_independence_exact(from_edges(4, [])) == 0

    def test_single_edge(self):
        assert neighborhood_independence_exact(from_edges(2, [(0, 1)])) == 1


class TestBoundsAgree:
    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=14),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_greedy_le_exact_le_upper(self, n, seed):
        rng = np.random.default_rng(seed)
        edges = [
            (u, v) for u in range(n) for v in range(u + 1, n)
            if rng.random() < 0.4
        ]
        g = from_edges(n, edges)
        exact = neighborhood_independence_exact(g)
        assert neighborhood_independence_greedy(g) <= exact
        assert exact <= neighborhood_independence_upper(g)

    def test_greedy_with_rng(self):
        g = clique_union(2, 6)
        assert neighborhood_independence_greedy(
            g, rng=np.random.default_rng(0)
        ) == 1


class TestIsBetaAtMost:
    def test_true_and_false(self):
        star = from_edges(5, [(0, i) for i in range(1, 5)])
        assert is_beta_at_most(star, 4)
        assert not is_beta_at_most(star, 3)

    def test_skips_small_degrees(self):
        path = from_edges(3, [(0, 1), (1, 2)])
        assert is_beta_at_most(path, 2)

    def test_guard_raises(self):
        star = from_edges(8, [(0, i) for i in range(1, 8)])
        with pytest.raises(ValueError, match="max_neighborhood"):
            is_beta_at_most(star, 1, max_neighborhood=5)


def test_exact_guard_raises():
    star = from_edges(10, [(0, i) for i in range(1, 10)])
    with pytest.raises(ValueError, match="max_neighborhood"):
        neighborhood_independence_exact(star, max_neighborhood=5)


class TestSampledEstimate:
    def test_lower_bound_property(self):
        from repro.graphs.neighborhood import neighborhood_independence_sampled

        g = clique_union(3, 8)
        est = neighborhood_independence_sampled(g, seed=0)
        assert est <= neighborhood_independence_exact(g) == 1
        assert est >= 1

    def test_finds_true_beta_on_star(self):
        from repro.graphs.neighborhood import neighborhood_independence_sampled

        star = from_edges(9, [(0, i) for i in range(1, 9)])
        # Degree bias makes the center near-certain to be sampled.
        assert neighborhood_independence_sampled(star, seed=1) == 8

    def test_empty_graphs(self):
        from repro.graphs.neighborhood import neighborhood_independence_sampled

        assert neighborhood_independence_sampled(from_edges(0, []), seed=2) == 0
        assert neighborhood_independence_sampled(from_edges(4, []), seed=3) == 0

    def test_guard(self):
        from repro.graphs.neighborhood import neighborhood_independence_sampled

        star = from_edges(12, [(0, i) for i in range(1, 12)])
        with pytest.raises(ValueError, match="max_neighborhood"):
            neighborhood_independence_sampled(star, seed=4, max_neighborhood=5)
