"""Tests for the adjacency-array graph (the sublinear data model)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.adjacency import AdjacencyArrayGraph
from repro.graphs.builder import from_edges
from repro.instrument.counters import Counter


@pytest.fixture
def small():
    return from_edges(5, [(0, 1), (0, 2), (1, 2), (3, 4)])


class TestAccessors:
    def test_counts(self, small):
        assert small.num_vertices == 5
        assert small.num_edges == 4

    def test_degree(self, small):
        assert small.degree(0) == 2
        assert small.degree(3) == 1

    def test_degrees_bulk(self, small):
        assert list(small.degrees()) == [2, 2, 2, 1, 1]

    def test_neighbor_indexing(self, small):
        nbrs = {small.neighbor(0, i) for i in range(small.degree(0))}
        assert nbrs == {1, 2}

    def test_neighbor_out_of_range(self, small):
        with pytest.raises(IndexError):
            small.neighbor(0, 2)
        with pytest.raises(IndexError):
            small.neighbor(0, -1)

    def test_has_edge(self, small):
        assert small.has_edge(0, 1)
        assert small.has_edge(4, 3)
        assert not small.has_edge(0, 3)
        assert not small.has_edge(2, 2)

    def test_edges_sorted_unique(self, small):
        assert sorted(small.edges()) == [(0, 1), (0, 2), (1, 2), (3, 4)]

    def test_edge_array_matches_edges(self, small):
        arr = small.edge_array()
        assert sorted(map(tuple, arr.tolist())) == sorted(small.edges())

    def test_max_degree(self, small):
        assert small.max_degree() == 2

    def test_non_isolated_count(self):
        g = from_edges(6, [(0, 1)])
        assert g.non_isolated_count() == 2

    def test_empty_graph(self):
        g = from_edges(3, [])
        assert g.num_edges == 0
        assert list(g.edges()) == []
        assert g.edge_array().shape == (0, 2)
        assert g.max_degree() == 0

    def test_zero_vertices(self):
        g = from_edges(0, [])
        assert g.num_vertices == 0
        assert g.max_degree() == 0


class TestProbeCounting:
    def test_degree_and_neighbor_charge(self, small):
        counter = Counter("probes")
        g = small.with_probe_counter(counter)
        g.degree(0)
        g.neighbor(0, 0)
        g.neighbor(0, 1)
        assert counter.value == 3

    def test_bulk_not_charged(self, small):
        counter = Counter("probes")
        g = small.with_probe_counter(counter)
        list(g.edges())
        g.degrees()
        g.neighbors_array(0)
        g.edge_array()
        assert counter.value == 0

    def test_with_probe_counter_shares_storage(self, small):
        counter = Counter("probes")
        g = small.with_probe_counter(counter)
        assert g.indices is small.indices
        assert g.indptr is small.indptr


class TestValidation:
    def test_bad_indptr_start(self):
        with pytest.raises(ValueError):
            AdjacencyArrayGraph(np.array([1, 2]), np.array([0, 1]))

    def test_indptr_indices_mismatch(self):
        with pytest.raises(ValueError):
            AdjacencyArrayGraph(np.array([0, 3]), np.array([1]))

    def test_decreasing_indptr(self):
        with pytest.raises(ValueError):
            AdjacencyArrayGraph(np.array([0, 2, 1]), np.array([1, 0]))

    def test_wrong_dims(self):
        with pytest.raises(ValueError):
            AdjacencyArrayGraph(np.zeros((2, 2)), np.array([]))


@settings(max_examples=40)
@given(
    n=st.integers(min_value=1, max_value=20),
    edge_seed=st.integers(min_value=0, max_value=2**31),
)
def test_edge_roundtrip(n, edge_seed):
    """from_edges(edges(g)) reproduces the same graph."""
    rng = np.random.default_rng(edge_seed)
    edges = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if rng.random() < 0.3
    ]
    g = from_edges(n, edges)
    g2 = from_edges(n, list(g.edges()))
    assert np.array_equal(g.indptr, g2.indptr)
    assert np.array_equal(g.indices, g2.indices)
    assert sorted(g.edges()) == sorted(set(edges))
