"""Unit and property tests for the O(1)-init sparse array."""

import pytest
from hypothesis import given, strategies as st

from repro.graphs.sparse_array import SparseArray


class TestBasics:
    def test_initial_default(self):
        a = SparseArray(5, default=7)
        assert all(a[i] == 7 for i in range(5))

    def test_set_get(self):
        a = SparseArray(10)
        a[3] = 42
        assert a[3] == 42
        assert a[4] == 0

    def test_len(self):
        assert len(SparseArray(17)) == 17

    def test_zero_length(self):
        a = SparseArray(0)
        assert len(a) == 0
        with pytest.raises(IndexError):
            a[0]

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            SparseArray(-1)

    def test_negative_index_wraps(self):
        a = SparseArray(5)
        a[-1] = 9
        assert a[4] == 9

    def test_out_of_range(self):
        a = SparseArray(3)
        with pytest.raises(IndexError):
            a[3]
        with pytest.raises(IndexError):
            a[-4] = 1

    def test_is_written(self):
        a = SparseArray(4)
        assert not a.is_written(2)
        a[2] = 0  # writing the default value still counts as written
        assert a.is_written(2)

    def test_written_count(self):
        a = SparseArray(10)
        a[1] = 5
        a[1] = 6
        a[2] = 7
        assert a.written_count() == 2

    def test_clear(self):
        a = SparseArray(4, default=3)
        a[0] = 1
        a.clear()
        assert a[0] == 3
        assert a.written_count() == 0

    def test_iter(self):
        a = SparseArray(3, default=1)
        a[1] = 5
        assert list(a) == [1, 5, 1]

    def test_overwrite(self):
        a = SparseArray(2)
        a[0] = 1
        a[0] = 2
        assert a[0] == 2


@given(
    length=st.integers(min_value=1, max_value=50),
    ops=st.lists(
        st.tuples(st.integers(min_value=0, max_value=49), st.integers()),
        max_size=60,
    ),
    default=st.integers(),
)
def test_matches_dict_reference(length, ops, default):
    """SparseArray behaves exactly like a default-dict-backed array."""
    arr = SparseArray(length, default=default)
    model: dict[int, int] = {}
    for index, value in ops:
        index %= length
        arr[index] = value
        model[index] = value
    for i in range(length):
        assert arr[i] == model.get(i, default)
    assert arr.written_count() == len(model)
