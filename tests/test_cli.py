"""Tests for the repro-experiments CLI."""

import pytest

from repro.cli import main

pytestmark = pytest.mark.fast


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "e1" in out and "e12" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "e1" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["e99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_e4(self, capsys):
        assert main(["e4"]) == 0
        out = capsys.readouterr().out
        assert "Lemma 2.2" in out

    def test_seed_flag(self, capsys):
        assert main(["e4", "--seed", "3"]) == 0
        assert "Lemma 2.2" in capsys.readouterr().out

    def test_markdown_flag(self, capsys):
        assert main(["e4", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("### ")
        assert "|---" in out

    def test_output_dir(self, capsys, tmp_path):
        assert main(["e4", "--output", str(tmp_path / "results")]) == 0
        assert (tmp_path / "results" / "e4.json").exists()
        assert (tmp_path / "results" / "e4.csv").exists()
