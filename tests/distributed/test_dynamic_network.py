"""Tests for dynamic distributed maintenance of G_Δ."""

import pytest

from repro.distributed.dynamic_network import DynamicDistributedSparsifier
from repro.dynamic.adversaries import ObliviousAdversary
from repro.graphs.generators import clique_union


class TestDynamicDistributedSparsifier:
    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            DynamicDistributedSparsifier(4, 0)

    def test_marks_track_topology(self):
        net = DynamicDistributedSparsifier(5, delta=2, seed=0)
        net.insert(0, 1)
        net.insert(0, 2)
        net.insert(0, 3)
        assert len(net.marks_by_me[0]) == 2
        assert all(net.graph.has_edge(0, u) for u in net.marks_by_me[0])

    def test_local_views_consistent_under_churn(self):
        host = clique_union(2, 8)
        net = DynamicDistributedSparsifier(host.num_vertices, 3, seed=1)
        adv = ObliviousAdversary(list(host.edges()), 0.4, seed=2)
        for _ in range(300):
            upd = adv.next_update()
            if upd is None:
                break
            net.update(upd.op, upd.u, upd.v)
            assert net.local_view_consistent()
        for u, v in net.sparsifier_edges():
            assert net.graph.has_edge(u, v)

    def test_message_bound_per_update(self):
        host = clique_union(2, 20)
        delta = 4
        net = DynamicDistributedSparsifier(host.num_vertices, delta, seed=3)
        adv = ObliviousAdversary(list(host.edges()), 0.3, seed=4)
        for upd in adv.stream(400):
            net.update(upd.op, upd.u, upd.v)
        assert net.max_messages_per_update() <= 4 * delta + 2

    def test_local_memory_bound(self):
        """Own marks ≤ Δ; received marks ≤ current degree."""
        host = clique_union(2, 10)
        net = DynamicDistributedSparsifier(host.num_vertices, 3, seed=5)
        for u, v in host.edges():
            net.insert(u, v)
        for v in range(host.num_vertices):
            assert len(net.marks_by_me[v]) <= 3
            assert net.local_memory(v) <= 3 + net.graph.degree(v)

    def test_deleted_link_carries_no_message(self):
        """After delete(u,v), neither side's sets reference the other
        unless a *current* edge re-marks them."""
        net = DynamicDistributedSparsifier(4, delta=5, seed=6)
        net.insert(0, 1)
        net.delete(0, 1)
        assert 1 not in net.marks_by_me[0]
        assert 0 not in net.marked_me[1]

    def test_quality_after_churn(self):
        from repro.matching.blossom import mcm_exact

        host = clique_union(3, 12)
        net = DynamicDistributedSparsifier(host.num_vertices, 8, seed=7)
        adv = ObliviousAdversary(list(host.edges()), 0.3, seed=8)
        adv.preload(list(host.edges()))
        for u, v in host.edges():
            net.insert(u, v)
        for upd in adv.stream(300):
            net.update(upd.op, upd.u, upd.v)
        live = net.graph.snapshot()
        opt = mcm_exact(live).size
        got = mcm_exact(net.sparsifier()).size
        assert opt <= 1.5 * max(1, got)

    def test_metrics_accumulate(self):
        net = DynamicDistributedSparsifier(4, delta=2, seed=9)
        net.insert(0, 1)
        assert net.metrics.value("messages") > 0
        assert net.metrics.value("bits") == net.metrics.value("messages")
