"""Tests for the one-round distributed sparsifier protocol."""


from repro.distributed.network import SyncNetwork
from repro.distributed.sparsify_round import SparsifierProtocol
from repro.graphs.generators import clique, clique_union


class TestSparsifierProtocol:
    def test_single_round(self):
        g = clique(20)
        net = SyncNetwork(g)
        proto = SparsifierProtocol(delta=3, seed=0)
        rounds = net.run(proto, max_rounds=3)
        assert rounds == 1

    def test_edges_are_graph_edges(self):
        g = clique_union(2, 15)
        net = SyncNetwork(g)
        proto = SparsifierProtocol(delta=4, seed=1)
        net.run(proto, max_rounds=3)
        for u, v in proto.edges:
            assert g.has_edge(u, v)
            assert u < v

    def test_message_budget(self):
        """Exactly sum_v min(delta, deg v) 1-bit messages."""
        g = clique(30)  # deg 29
        delta = 5
        net = SyncNetwork(g)
        proto = SparsifierProtocol(delta=delta, seed=2)
        net.run(proto, max_rounds=3)
        assert net.metrics.value("messages") == 30 * delta
        assert net.metrics.value("bits") == 30 * delta

    def test_low_degree_marks_all(self):
        g = clique(4)  # deg 3 < delta
        net = SyncNetwork(g)
        proto = SparsifierProtocol(delta=10, seed=3)
        net.run(proto, max_rounds=3)
        assert proto.edges == set(g.edges())

    def test_both_endpoints_know(self):
        g = clique(12)
        net = SyncNetwork(g)
        proto = SparsifierProtocol(delta=2, seed=4)
        net.run(proto, max_rounds=3)
        for u, v in proto.edges:
            assert v in proto.known_by[u] or u in proto.known_by[v]
            # Union knowledge covers the edge from at least the marker's
            # side AND the receiver's side after finalize:
            assert (v in proto.known_by[u]) and (u in proto.known_by[v])

    def test_matches_quality_of_central_construction(self):
        from repro.matching.blossom import mcm_exact
        from repro.graphs.builder import from_edges

        g = clique_union(3, 20)
        net = SyncNetwork(g)
        proto = SparsifierProtocol(delta=8, seed=5)
        net.run(proto, max_rounds=3)
        sp = from_edges(g.num_vertices, sorted(proto.edges))
        assert mcm_exact(g).size <= 1.5 * mcm_exact(sp).size

    def test_invalid_delta(self):
        import pytest

        with pytest.raises(ValueError):
            SparsifierProtocol(delta=0)


class TestBroadcastVariant:
    def test_single_round_same_edge_law(self):
        from repro.distributed.sparsify_round import BroadcastSparsifierProtocol

        g = clique(20)
        net = SyncNetwork(g)
        proto = BroadcastSparsifierProtocol(delta=3, seed=0)
        assert net.run(proto, max_rounds=3) == 1
        for u, v in proto.edges:
            assert g.has_edge(u, v)
        # Mark-count law: |edges| between n*delta/2 (all mutual) and n*delta.
        assert 20 * 3 / 2 <= len(proto.edges) <= 20 * 3

    def test_cost_contrast_with_unicast(self):
        from repro.distributed.sparsify_round import BroadcastSparsifierProtocol

        g = clique(16)  # 2m = 240 directed edges
        net_b = SyncNetwork(g)
        net_b.run(BroadcastSparsifierProtocol(delta=2, seed=1), max_rounds=3)
        net_u = SyncNetwork(g)
        net_u.run(SparsifierProtocol(delta=2, seed=1), max_rounds=3)
        # Broadcast: one message per directed edge, multi-bit payloads.
        assert net_b.metrics.value("messages") == 2 * g.num_edges
        assert net_b.metrics.value("bits") > net_u.metrics.value("bits")
        # Unicast: one 1-bit message per mark.
        assert net_u.metrics.value("messages") == 16 * 2
        assert net_u.metrics.value("bits") == 16 * 2

    def test_receiver_learns_from_payload(self):
        from repro.distributed.sparsify_round import BroadcastSparsifierProtocol

        g = clique(10)
        net = SyncNetwork(g)
        proto = BroadcastSparsifierProtocol(delta=9, seed=2)
        net.run(proto, max_rounds=3)
        assert proto.edges == set(g.edges())  # delta >= deg: everything

    def test_invalid_delta(self):
        import pytest

        from repro.distributed.sparsify_round import BroadcastSparsifierProtocol

        with pytest.raises(ValueError):
            BroadcastSparsifierProtocol(delta=0)
