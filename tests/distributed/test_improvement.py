"""Tests for the augmenting-path elimination protocol and its path search."""

import numpy as np
import pytest

from repro.distributed.improvement import (
    AugmentingPathEliminationProtocol,
    find_short_augmenting_path,
)
from repro.distributed.network import SyncNetwork
from repro.graphs.builder import from_edges
from repro.matching.blossom import mcm_exact
from repro.matching.greedy import greedy_maximal_matching
from repro.matching.matching import Matching


def _mate_dict(matching: Matching) -> dict[int, int]:
    return {v: int(matching.mate[v]) for v in range(matching.mate.size)}


class TestPathSearch:
    def test_p4_middle_matched(self):
        """0-1-2-3 with (1,2) matched: augmenting path of length 3."""
        edges = {(0, 1): False, (1, 2): True, (2, 3): False}
        mate = {0: -1, 1: 2, 2: 1, 3: -1}
        path = find_short_augmenting_path(edges, 0, mate, max_len=3)
        assert path == [0, 1, 2, 3]

    def test_length_limit_respected(self):
        edges = {(0, 1): False, (1, 2): True, (2, 3): False}
        mate = {0: -1, 1: 2, 2: 1, 3: -1}
        assert find_short_augmenting_path(edges, 0, mate, max_len=1) is None

    def test_single_free_edge(self):
        edges = {(0, 1): False}
        mate = {0: -1, 1: -1}
        assert find_short_augmenting_path(edges, 0, mate, max_len=1) == [0, 1]

    def test_no_path_when_saturated(self):
        edges = {(0, 1): True, (0, 2): False}
        mate = {0: 1, 1: 0, 2: -1}
        # start must be free; from 2 the only neighbor 0 is matched and the
        # continuation leads back to no free vertex.
        assert find_short_augmenting_path(edges, 2, mate, max_len=3) is None

    def test_alternation_through_triangle(self):
        """Odd structure: 0-1 free, 1-2 matched, 2-0 free: from 0 the walk
        0-(1)-(2)-0 is not simple; no augmenting path exists."""
        edges = {(0, 1): False, (1, 2): True, (0, 2): False}
        mate = {0: -1, 1: 2, 2: 1}
        assert find_short_augmenting_path(edges, 0, mate, max_len=3) is None


def _p4_traps(k: int):
    edges = []
    for i in range(k):
        b = 4 * i
        edges += [(b, b + 1), (b + 1, b + 2), (b + 2, b + 3)]
    return from_edges(4 * k, edges)


class TestProtocol:
    def test_repairs_p4_traps(self):
        g = _p4_traps(6)
        # Deliberately bad maximal matching: all middle edges.
        mate = {v: -1 for v in range(g.num_vertices)}
        for i in range(6):
            b = 4 * i
            mate[b + 1], mate[b + 2] = b + 2, b + 1
        proto = AugmentingPathEliminationProtocol(2, mate, seed=0)
        net = SyncNetwork(g)
        net.run(proto, max_rounds=10_000)
        assert proto.matching.size == 12  # perfect

    def test_result_valid(self):
        g = _p4_traps(3)
        start = greedy_maximal_matching(g, rng=np.random.default_rng(0))
        proto = AugmentingPathEliminationProtocol(2, _mate_dict(start), seed=1)
        net = SyncNetwork(g)
        net.run(proto, max_rounds=10_000)
        m = proto.matching
        assert m.is_valid_for(g)
        assert m.size >= start.size

    def test_k1_no_op_on_maximal(self):
        """k=1 eliminates augmenting paths of length 1 — a maximal
        matching has none, so the protocol stops after one iteration."""
        g = _p4_traps(2)
        start = greedy_maximal_matching(g)
        proto = AugmentingPathEliminationProtocol(1, _mate_dict(start), seed=2)
        net = SyncNetwork(g)
        net.run(proto, max_rounds=1000)
        assert proto.matching.size == start.size
        assert proto.iterations == 1

    def test_hopcroft_karp_certificate(self):
        """After running with k, the matching has no augmenting path of
        length <= 2k-1, hence size >= k/(k+1) * |MCM| (HK lemma)."""
        rng = np.random.default_rng(3)
        edges = [(u, v) for u in range(24) for v in range(u + 1, 24)
                 if rng.random() < 0.15]
        g = from_edges(24, edges)
        start = greedy_maximal_matching(g, rng=rng)
        k = 3
        proto = AugmentingPathEliminationProtocol(k, _mate_dict(start), seed=4)
        net = SyncNetwork(g)
        net.run(proto, max_rounds=100_000)
        opt = mcm_exact(g).size
        assert (k + 1) * proto.matching.size >= k * opt

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            AugmentingPathEliminationProtocol(0, {})
