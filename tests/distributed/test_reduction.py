"""Tests for the Theorem 3.3 black-box reduction combinator."""

from repro.distributed.maximal_matching import RandomizedMatchingProtocol
from repro.distributed.pipeline import reduce_with_sparsifier
from repro.graphs.generators import clique_union
from repro.matching.blossom import mcm_exact


class TestReduction:
    def test_black_box_runs_on_sparsifier(self):
        g = clique_union(3, 20)
        proto, metrics, g_delta = reduce_with_sparsifier(
            g, beta=1, epsilon=0.34,
            protocol_factory=lambda sub: RandomizedMatchingProtocol(seed=0),
            seed=1,
        )
        # The black box computed a maximal matching of the sparsifier...
        m = proto.matching
        assert m.is_valid_for(g_delta)
        assert m.is_maximal_for(g_delta)
        # ...and is therefore a 2(1+eps)-approx of the input's MCM.
        opt = mcm_exact(g).size
        assert opt <= 2 * (1 + 0.34) * m.size

    def test_message_bound_shape(self):
        """Messages <= (T+1) * n * delta-ish, counted end to end."""
        g = clique_union(3, 24)
        proto, metrics, g_delta = reduce_with_sparsifier(
            g, beta=1, epsilon=0.34,
            protocol_factory=lambda sub: RandomizedMatchingProtocol(seed=2),
            seed=3,
        )
        rounds = metrics.value("rounds")
        # Every per-round message count is bounded by 2*|E(G_delta)|.
        assert metrics.value("messages") <= rounds * 2 * g_delta.num_edges + \
            g.num_vertices * 64  # stage-1 marks

    def test_sparsifier_edge_subset(self):
        g = clique_union(2, 16)
        _, _, g_delta = reduce_with_sparsifier(
            g, beta=1, epsilon=0.5,
            protocol_factory=lambda sub: RandomizedMatchingProtocol(seed=4),
            seed=5,
        )
        for u, v in g_delta.edges():
            assert g.has_edge(u, v)
