"""Tests for the one-round Solomon (mutual-marking) protocol."""

import pytest

from repro.distributed.network import SyncNetwork
from repro.distributed.solomon_round import SolomonProtocol
from repro.graphs.builder import from_edges
from repro.graphs.generators import clique, erdos_renyi


class TestSolomonProtocol:
    def test_single_round(self):
        net = SyncNetwork(clique(10))
        assert net.run(SolomonProtocol(3), max_rounds=3) == 1

    def test_mutual_edges_only(self):
        g = erdos_renyi(25, 0.4, seed=0)
        net = SyncNetwork(g)
        proto = SolomonProtocol(4)
        net.run(proto, max_rounds=3)
        for u, v in proto.edges:
            # Recompute the deterministic marks and verify mutuality.
            u_marks = {int(x) for x in g.neighbors_array(u)[:4]}
            v_marks = {int(x) for x in g.neighbors_array(v)[:4]}
            assert v in u_marks and u in v_marks

    def test_degree_bound(self):
        g = erdos_renyi(30, 0.6, seed=1)
        net = SyncNetwork(g)
        proto = SolomonProtocol(3)
        net.run(proto, max_rounds=3)
        sp = from_edges(g.num_vertices, sorted(proto.edges))
        assert sp.max_degree() <= 3

    def test_message_count(self):
        g = clique(10)  # deg 9
        net = SyncNetwork(g)
        net.run(SolomonProtocol(4), max_rounds=3)
        assert net.metrics.value("messages") == 10 * 4

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            SolomonProtocol(0)
