"""Tests for the synchronous network simulator."""

import pytest

from repro.distributed.network import Message, Protocol, SyncNetwork
from repro.graphs.builder import from_edges


class EchoOnce(Protocol):
    """Every vertex sends one message to each neighbor, once."""

    def __init__(self, bits: int = 1) -> None:
        self.bits = bits
        self._sent = False
        self.received: list[Message] = []

    def round(self, network, v, inbox):
        return [
            Message(src=v, dst=u, payload="hi", bits=self.bits)
            for u in network.neighbors(v)
        ]

    def finished(self, network):
        if not self._sent:
            self._sent = True
            return False
        return True

    def finalize(self, network, v, inbox):
        self.received.extend(inbox)


class Forger(Protocol):
    def round(self, network, v, inbox):
        return [Message(src=v + 1, dst=v, payload=None)] if v == 0 else []

    def finished(self, network):
        if getattr(self, "_done", False):
            return True
        self._done = True
        return False


class NonEdgeSender(Protocol):
    def round(self, network, v, inbox):
        return [Message(src=v, dst=(v + 2) % 4, payload=None)] if v == 0 else []

    def finished(self, network):
        if getattr(self, "_done", False):
            return True
        self._done = True
        return False


class NeverDone(Protocol):
    def round(self, network, v, inbox):
        return []

    def finished(self, network):
        return False


@pytest.fixture
def square():
    return from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])


class TestSimulator:
    def test_round_and_message_counting(self, square):
        net = SyncNetwork(square)
        proto = EchoOnce(bits=3)
        rounds = net.run(proto, max_rounds=5)
        assert rounds == 1
        assert net.metrics.value("rounds") == 1
        assert net.metrics.value("messages") == 8  # 2 per vertex
        assert net.metrics.value("bits") == 24

    def test_finalize_delivers_last_round(self, square):
        net = SyncNetwork(square)
        proto = EchoOnce()
        net.run(proto, max_rounds=5)
        assert len(proto.received) == 8

    def test_forged_src_rejected(self, square):
        with pytest.raises(RuntimeError, match="forged"):
            SyncNetwork(square).run(Forger(), max_rounds=2)

    def test_non_edge_rejected(self, square):
        with pytest.raises(RuntimeError, match="non-edge"):
            SyncNetwork(square).run(NonEdgeSender(), max_rounds=2)

    def test_round_limit(self, square):
        with pytest.raises(RuntimeError, match="exceeded"):
            SyncNetwork(square).run(NeverDone(), max_rounds=3)

    def test_metrics_accumulate_across_runs(self, square):
        net = SyncNetwork(square)
        net.run(EchoOnce(), max_rounds=5)
        net.run(EchoOnce(), max_rounds=5)
        assert net.metrics.value("messages") == 16

    def test_degree_and_neighbors(self, square):
        net = SyncNetwork(square)
        assert net.degree(0) == 2
        assert sorted(net.neighbors(0)) == [1, 3]
