"""Tests for the randomized distributed maximal matching protocol."""

import pytest

from repro.distributed.maximal_matching import RandomizedMatchingProtocol
from repro.distributed.network import SyncNetwork
from repro.graphs.builder import from_edges
from repro.graphs.generators import clique_union, erdos_renyi
from repro.matching.blossom import mcm_exact


class TestRandomizedMatching:
    @pytest.mark.parametrize("seed", range(5))
    def test_maximal_and_valid(self, seed):
        g = erdos_renyi(40, 0.2, seed=seed)
        net = SyncNetwork(g)
        proto = RandomizedMatchingProtocol(seed=seed)
        net.run(proto, max_rounds=500)
        m = proto.matching
        assert m.is_valid_for(g)
        assert m.is_maximal_for(g)

    def test_two_approximation(self):
        g = clique_union(3, 12)
        net = SyncNetwork(g)
        proto = RandomizedMatchingProtocol(seed=0)
        net.run(proto, max_rounds=500)
        assert 2 * proto.matching.size >= mcm_exact(g).size

    def test_empty_graph_immediate(self):
        g = from_edges(5, [])
        net = SyncNetwork(g)
        proto = RandomizedMatchingProtocol(seed=1)
        rounds = net.run(proto, max_rounds=5)
        assert rounds == 0
        assert proto.matching.size == 0

    def test_single_edge(self):
        g = from_edges(2, [(0, 1)])
        net = SyncNetwork(g)
        proto = RandomizedMatchingProtocol(seed=2)
        net.run(proto, max_rounds=200)
        assert proto.matching.size == 1

    def test_round_count_logarithmic_ish(self):
        """Phases grow slowly with n (O(log n) whp)."""
        counts = []
        for k in (2, 8):
            g = clique_union(k, 10)
            net = SyncNetwork(g)
            proto = RandomizedMatchingProtocol(seed=3)
            net.run(proto, max_rounds=1000)
            counts.append(proto.phase_count)
        # 4x more vertices should cost far fewer than 4x more phases.
        assert counts[1] <= 4 * counts[0]
