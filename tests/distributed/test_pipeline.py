"""Integration tests for the distributed pipelines (Theorems 3.2/3.3)."""


from repro.distributed.pipeline import (
    distributed_approx_matching,
    distributed_baseline_matching,
)
from repro.graphs.builder import from_edges
from repro.graphs.generators import clique_union, random_line_graph
from repro.matching.blossom import mcm_exact


class TestApproxPipeline:
    def test_validity_and_quality(self):
        g = clique_union(3, 16)
        opt = mcm_exact(g).size
        rep = distributed_approx_matching(g, beta=1, epsilon=0.34, seed=0)
        assert rep.matching.is_valid_for(g)
        assert opt <= (1 + 0.34) * rep.matching.size

    def test_line_graph_quality(self):
        g = random_line_graph(14, 0.5, seed=1)
        opt = mcm_exact(g).size
        rep = distributed_approx_matching(g, beta=2, epsilon=0.5, seed=2)
        assert opt <= 1.5 * rep.matching.size

    def test_metrics_populated(self):
        g = clique_union(2, 12)
        rep = distributed_approx_matching(g, beta=1, epsilon=0.5, seed=3)
        assert rep.rounds > 0
        assert rep.messages > 0
        assert rep.bits >= rep.messages  # every message >= 1 bit
        assert rep.delta >= 1
        assert rep.improvement_iterations >= 1

    def test_beats_baseline_on_traps(self):
        """With P4 traps, improvement must recover what the baseline drops."""
        edges = []
        for i in range(8):
            b = 4 * i
            edges += [(b, b + 1), (b + 1, b + 2), (b + 2, b + 3)]
        g = from_edges(32, edges)
        ours = distributed_approx_matching(g, beta=2, epsilon=0.34, seed=4)
        base = distributed_baseline_matching(g, beta=2, epsilon=0.34, seed=4)
        assert ours.matching.size >= base.matching.size
        assert ours.matching.size == 16  # perfect after improvement


class TestBaselinePipeline:
    def test_maximality_on_sparsifier_quality(self):
        g = clique_union(3, 16)
        opt = mcm_exact(g).size
        rep = distributed_baseline_matching(g, beta=1, epsilon=0.34, seed=5)
        assert rep.matching.is_valid_for(g)
        # Maximal matching on a (1+eps)-sparsifier: ratio <= 2(1+eps).
        assert opt <= 2 * (1 + 0.34) * rep.matching.size
        assert rep.improvement_iterations == 0

    def test_message_sublinearity_trend(self):
        """Denser graph, similar message budget (Theorem 3.3 shape)."""
        small = clique_union(3, 12)
        large = clique_union(3, 36)  # 9x the edges, 3x the vertices
        rep_s = distributed_baseline_matching(small, 1, 0.34, seed=6)
        rep_l = distributed_baseline_matching(large, 1, 0.34, seed=6)
        ratio_small = rep_s.messages / (2 * small.num_edges)
        ratio_large = rep_l.messages / (2 * large.num_edges)
        assert ratio_large < ratio_small
