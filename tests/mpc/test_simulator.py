"""Tests for the MPC round simulator."""

import pytest

from repro.mpc.simulator import MachineOverflowError, MPCSimulator, _words


class TestWordCounting:
    def test_scalars(self):
        assert _words(None) == 0
        assert _words(5) == 1
        assert _words("x") == 1

    def test_tuples_and_lists(self):
        assert _words(("edge", 1, 2)) == 3
        assert _words([("a", 1), ("b", 2)]) == 4

    def test_dict(self):
        assert _words({1: (2, 3)}) == 3  # key word + 2-word value


class TestSimulator:
    def test_validation(self):
        with pytest.raises(ValueError):
            MPCSimulator(0, 10)
        with pytest.raises(ValueError):
            MPCSimulator(2, 0)

    def test_load_and_state(self):
        sim = MPCSimulator(2, 100)
        sim.load(0, [(1, 2)])
        assert sim.state(0) == [(1, 2)]
        assert sim.state(1) is None

    def test_load_overflow(self):
        sim = MPCSimulator(1, 3)
        with pytest.raises(MachineOverflowError):
            sim.load(0, [(1, 2), (3, 4)])

    def test_round_routing(self):
        sim = MPCSimulator(2, 100)
        sim.load(0, [1, 2, 3])
        sim.load(1, [])

        def forward(machine, state):
            return [(1 - machine, x) for x in state or []]

        sim.round(forward)
        assert sim.state(1) == [1, 2, 3]
        assert sim.state(0) == []
        assert sim.rounds_executed == 1

    def test_round_overflow(self):
        sim = MPCSimulator(2, 2)
        sim.load(0, [1, 2])

        def flood(machine, state):
            return [(1, x) for x in (state or [])] + [(1, 99)]

        with pytest.raises(MachineOverflowError):
            sim.round(flood)

    def test_unknown_destination(self):
        sim = MPCSimulator(2, 100)
        sim.load(0, [1])

        def bad(machine, state):
            return [(5, 1)] if machine == 0 else []

        with pytest.raises(ValueError, match="unknown machine"):
            sim.round(bad)

    def test_max_load_tracked(self):
        sim = MPCSimulator(2, 100)
        sim.load(0, [1, 2, 3, 4])
        assert sim.max_load_seen == 4
