"""Tests for the O(1)-round MPC matching protocol."""

import pytest

from repro.core.delta import DeltaPolicy
from repro.graphs.generators import clique_union, random_line_graph
from repro.matching.blossom import mcm_exact
from repro.mpc.matching import _owner, mpc_approx_matching
from repro.mpc.simulator import MachineOverflowError


class TestOwner:
    def test_partition_covers_all_machines(self):
        owners = {_owner(v, 100, 4) for v in range(100)}
        assert owners == {0, 1, 2, 3}

    def test_monotone(self):
        assert _owner(0, 100, 4) <= _owner(50, 100, 4) <= _owner(99, 100, 4)


class TestMPCMatching:
    def test_three_rounds_and_quality(self):
        g = clique_union(3, 20)
        opt = mcm_exact(g).size
        res = mpc_approx_matching(g, beta=1, epsilon=0.3, num_machines=4,
                                  seed=0)
        assert res.rounds == 3
        assert res.matching.is_valid_for(g)
        assert opt <= 1.3 * res.matching.size

    def test_memory_enforced(self):
        g = clique_union(3, 20)
        res = mpc_approx_matching(g, beta=1, epsilon=0.3, num_machines=4,
                                  seed=1)
        assert res.max_load <= res.memory_per_machine

    def test_too_small_budget_raises(self):
        g = clique_union(3, 20)
        with pytest.raises(MachineOverflowError):
            mpc_approx_matching(g, beta=1, epsilon=0.3, num_machines=2,
                                memory_per_machine=50, seed=2)

    def test_line_graph_workload(self):
        g = random_line_graph(14, 0.5, seed=3)
        opt = mcm_exact(g).size
        res = mpc_approx_matching(g, beta=2, epsilon=0.5, num_machines=4,
                                  seed=4)
        assert opt <= 1.5 * res.matching.size

    def test_single_machine_degenerate(self):
        g = clique_union(1, 8)
        res = mpc_approx_matching(g, beta=1, epsilon=0.5, num_machines=1,
                                  seed=5)
        assert res.matching.size == 4

    def test_reproducible(self):
        g = clique_union(2, 12)
        a = mpc_approx_matching(g, 1, 0.3, 4, seed=6)
        b = mpc_approx_matching(g, 1, 0.3, 4, seed=6)
        assert a.matching == b.matching

    def test_coordinator_load_below_raw_gather(self):
        """The memory story: G_Δ fits where the raw graph would not."""
        g = clique_union(4, 60)
        res = mpc_approx_matching(g, beta=1, epsilon=0.3, num_machines=8,
                                  seed=7, policy=DeltaPolicy(constant=0.6))
        raw_gather_words = 3 * 2 * g.num_edges
        assert res.max_load < raw_gather_words
