"""Tests for the statistical replication helpers."""

import pytest

from repro.experiments.stats import (
    QualityReplication,
    replicate_quality,
    wilson_interval,
)
from repro.graphs.generators import clique_union


class TestWilson:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(80, 100)
        assert low <= 0.8 <= high

    def test_degenerate_all_successes(self):
        low, high = wilson_interval(50, 50)
        assert high == 1.0
        assert low > 0.9

    def test_zero_trials(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError):
            wilson_interval(-1, 3)

    def test_narrows_with_trials(self):
        low1, high1 = wilson_interval(8, 10)
        low2, high2 = wilson_interval(800, 1000)
        assert (high2 - low2) < (high1 - low1)


class TestReplicateQuality:
    def test_basic_replication(self):
        g = clique_union(3, 20)
        rep = replicate_quality(g, delta=6, epsilon=0.3, trials=10, seed=0)
        assert rep.trials == 10
        assert 0 <= rep.successes <= 10
        assert rep.worst_ratio >= 1.0
        assert rep.confidence_low <= rep.successes / 10 <= rep.confidence_high

    def test_high_success_rate_at_sane_delta(self):
        g = clique_union(3, 20)
        rep = replicate_quality(g, delta=8, epsilon=0.3, trials=15, seed=1)
        assert rep.successes == 15
        assert rep.confidence_low > 0.7

    def test_validation(self):
        g = clique_union(1, 4)
        with pytest.raises(ValueError):
            replicate_quality(g, 2, 0.3, trials=0)
