"""Golden-table regression tests: seed-0 table bytes are pinned.

Each golden under ``tests/goldens/`` is the exact ``Table.render()``
output of a small fixed-seed configuration.  Any drift — an RNG
consumption-order change, a formatting tweak, a numeric regression —
fails the diff, turning "the tables quietly changed" into a reviewed
decision.  Regenerate intentionally with::

    PYTHONPATH=src python -m pytest tests/experiments/test_goldens.py \
        --force-regen  # (no such flag: edit REGEN below instead)

i.e. flip ``REGEN = True``, run once, flip it back, and commit the new
bytes alongside the change that explains them.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.engine import FaultPlan
from repro.experiments import e1_quality, e8_distributed, e17_adaptive_separation

pytestmark = pytest.mark.fast

#: Flip to True (locally, never committed) to rewrite the goldens.
REGEN = False

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "goldens"

#: id -> (run fn, small fixed-seed kwargs).  Keep these cheap: the whole
#: module is part of the fast CI tier.
CASES = {
    "e1": (e1_quality.run, dict(epsilons=(0.5, 0.3), trials=3, seed=0)),
    "e8": (e8_distributed.run, dict(sizes=(2, 3), clique_size=8, seed=0)),
    "e17": (
        e17_adaptive_separation.run,
        dict(clique_size=6, num_cliques=2, steps=120, trials=2, seed=0),
    ),
}


@pytest.mark.parametrize("key", sorted(CASES))
def test_table_matches_golden(key):
    """Rendered seed-0 table is byte-identical to the committed golden."""
    fn, kwargs = CASES[key]
    rendered = fn(**kwargs).render() + "\n"
    path = GOLDEN_DIR / f"{key}.txt"
    if REGEN:  # pragma: no cover - manual regeneration path
        path.write_text(rendered)
    assert rendered == path.read_text(), (
        f"{key} table drifted from {path}; if intentional, regenerate the "
        "golden (see module docstring) and commit it with the change"
    )


def test_regen_flag_is_off():
    """Guards against committing the suite in regeneration mode."""
    assert REGEN is False


@pytest.mark.parametrize("key", sorted(CASES))
def test_golden_stable_under_chaos(key, monkeypatch):
    """The pinned bytes also hold with ambient fault injection active —
    the CI chaos leg must not be able to move a table."""
    monkeypatch.setenv("REPRO_FAULTS", "crash:0.2")
    monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
    assert FaultPlan.from_env() is not None  # the chaos plan is active
    fn, kwargs = CASES[key]
    assert fn(**kwargs).render() + "\n" == (GOLDEN_DIR / f"{key}.txt").read_text()
