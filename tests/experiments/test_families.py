"""Tests for the shared experiment workloads: β certificates hold."""

import pytest

from repro.experiments.families import Family, standard_families
from repro.graphs.neighborhood import is_beta_at_most


def test_five_families():
    families = standard_families()
    assert len(families) == 5
    assert all(isinstance(f, Family) for f in families)


@pytest.mark.parametrize("family", standard_families(), ids=lambda f: f.name)
def test_beta_certificate_holds(family):
    graph = family.build(12345)
    assert graph.num_vertices > 0
    assert graph.num_edges > 0
    assert is_beta_at_most(graph, family.beta, max_neighborhood=200)


def test_scale_parameter_grows_instances():
    small = standard_families(scale=1)[0].build(0)
    large = standard_families(scale=2)[0].build(0)
    assert large.num_vertices > small.num_vertices
