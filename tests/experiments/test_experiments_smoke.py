"""Smoke + invariant tests: every experiment runs and its core claim holds.

Each test uses deliberately tiny parameters so the full file stays fast;
the benchmark harness runs the real sizes.
"""


from repro.experiments import REGISTRY
from repro.experiments import (
    e1_quality,
    e2_size_bound,
    e3_arboricity,
    e4_mcm_lower_bound,
    e5_deterministic_lb,
    e6_exactness_lb,
    e7_sequential,
    e8_distributed,
    e9_messages,
    e10_dynamic,
    e11_ablations,
    e12_output_sensitive,
    e13_streaming,
    e14_mpc,
    e15_dynamic_distributed,
    e16_scale,
    e17_adaptive_separation,
)


def test_registry_complete():
    assert sorted(REGISTRY, key=lambda k: int(k[1:])) == [
        f"e{i}" for i in range(1, 18)
    ]
    assert all(callable(fn) for fn in REGISTRY.values())


def test_e1_within_epsilon():
    table = e1_quality.run(epsilons=(0.5,), trials=2, seed=1)
    assert len(table.rows) == 5  # one per family
    for row in table.rows:
        worst, passed = row[5], row[7]
        assert worst <= 1.5
        assert passed == "2/2"


def test_e2_bound_always_holds():
    table = e2_size_bound.run(seed=2)
    assert all(row[-1] for row in table.rows)


def test_e3_bound_always_holds():
    table = e3_arboricity.run(seed=3)
    for row in table.rows:
        lower, upper, holds = row[3], row[4], row[5]
        assert lower <= upper
        assert holds


def test_e4_lemma_holds():
    table = e4_mcm_lower_bound.run(seed=4)
    assert all(row[-1] for row in table.rows)


def test_e5_deterministic_matches_bound():
    table = e5_deterministic_lb.run(sizes=(40,), deltas=(4,), seed=5)
    det_ratio, paper_bound, rand_ratio = table.rows[0][2:5]
    assert det_ratio >= paper_bound
    assert rand_ratio <= 1.25


def test_e6_empirical_tracks_closed_form():
    table = e6_exactness_lb.run(half=25, deltas=(5, 20), trials=150, seed=6)
    for row in table.rows:
        closed, bound, empirical = row[2], row[3], row[4]
        assert closed <= bound + 1e-9
        assert abs(empirical - closed) < 0.15


def test_e7_probe_fraction_falls_when_densifying():
    table = e7_sequential.run(epsilon=0.4, seed=7)
    densify = [row for row in table.rows if row[0] == "densify"]
    assert densify[-1][5] < densify[0][5]  # probe fraction falls
    assert all(row[6] <= 1.4 + 1e-9 for row in table.rows)  # ratio


def test_e8_ours_beats_baseline_quality():
    table = e8_distributed.run(sizes=(3,), clique_size=12, seed=8)
    ours_ratio, base_ratio = table.rows[0][4], table.rows[0][5]
    assert ours_ratio <= 1.34 + 1e-9
    assert ours_ratio <= base_ratio + 1e-9


def test_e9_message_fraction_falls():
    table = e9_messages.run(clique_sizes=(20, 60), num_cliques=3, seed=9)
    pipeline_rows = [row for row in table.rows
                     if not str(row[0]).startswith("[")]
    assert pipeline_rows[-1][4] < pipeline_rows[0][4]
    contrast = {str(row[0]).split("]")[0].strip("["): row[5]
                for row in table.rows if str(row[0]).startswith("[")}
    assert contrast["broadcast round"] > contrast["unicast round"]


def test_e10_ours_cheaper_than_baseline_at_density():
    table = e10_dynamic.run(clique_sizes=(24,), num_cliques=3, steps=250,
                            seed=10)
    for row in table.rows:
        ours_work, base_work, ours_ratio = row[2], row[3], row[4]
        assert ours_work < base_work
        assert ours_ratio <= 1.4 + 0.3


def test_e11_deterministic_mutual_fails():
    table = e11_ablations.run(constants=(0.5,), trials=2, seed=11)
    rows = {row[1]: row for row in table.rows}
    assert rows["mutual first-D (det.)"][3] > 1.5  # collapses
    assert rows["union (ours)"][3] <= 1.31


def test_e12_sharper_bound():
    table = e12_output_sensitive.run(leaf_counts=(8, 16), num_stars=6,
                                     seed=12)
    for row in table.rows:
        edges, sharp, naive, sharper = row[3], row[4], row[5], row[6]
        assert edges <= sharp
        assert sharper


def test_e13_streaming_beats_greedy():
    table = e13_streaming.run(clique_sizes=(16, 32), num_cliques=2, seed=13)
    for row in table.rows:
        ours_ratio, greedy_ratio, passes = row[4], row[5], row[6]
        assert ours_ratio <= 1.31
        assert ours_ratio <= greedy_ratio + 1e-9
        assert passes == 1


def test_e14_mpc_three_rounds_within_budget():
    table = e14_mpc.run(clique_sizes=(20, 40), num_cliques=3, seed=14)
    for row in table.rows:
        rounds, max_load, budget, raw, ratio = row[2:]
        assert rounds == 3
        assert max_load <= budget
        assert ratio <= 1.31


def test_e15_message_bound_flat():
    table = e15_dynamic_distributed.run(clique_sizes=(8, 16), steps=200,
                                        delta=4, seed=15)
    for row in table.rows:
        max_msgs, bound = row[2], row[3]
        assert max_msgs <= bound


def test_e16_quality_and_shape():
    table = e16_scale.run(total_vertices=1200, clique_sizes=(20, 40),
                          delta=8, seed=16)
    for row in table.rows:
        assert row[6] <= 1.15  # ours ratio (greedy on sparsifier)


def test_e17_thm35_safe_everywhere():
    table = e17_adaptive_separation.run(clique_size=10, num_cliques=3,
                                        steps=300, trials=1, seed=17)
    for row in table.rows:
        if row[0].startswith("Thm"):
            assert row[2] <= 1.4 + 0.1


def test_all_tables_render():
    """Rendering never crashes for the tiny-parameter runs."""
    tables = [
        e4_mcm_lower_bound.run(seed=0),
        e5_deterministic_lb.run(sizes=(20,), deltas=(2,), seed=0),
    ]
    for table in tables:
        out = table.render()
        assert table.title in out
