"""Tests for the experiment table renderer."""

import pytest

from repro.experiments.tables import Table


class TestTable:
    def test_add_row_validates_arity(self):
        t = Table(title="t", headers=["a", "b"])
        t.add_row(1, 2)
        with pytest.raises(ValueError, match="cells"):
            t.add_row(1)

    def test_render_contains_everything(self):
        t = Table(title="My Title", headers=["x", "ratio"],
                  notes=["a note"])
        t.add_row(10, 1.23456)
        out = t.render()
        assert "My Title" in out
        assert "ratio" in out
        assert "1.235" in out  # 4 significant digits
        assert "note: a note" in out

    def test_bool_formatting(self):
        t = Table(title="t", headers=["ok"])
        t.add_row(True)
        t.add_row(False)
        out = t.render()
        assert "yes" in out and "no" in out

    def test_special_floats(self):
        t = Table(title="t", headers=["v"])
        t.add_row(float("inf"))
        t.add_row(float("nan"))
        out = t.render()
        assert "inf" in out and "nan" in out

    def test_empty_table_renders(self):
        t = Table(title="empty", headers=["h"])
        assert "h" in t.render()

    def test_str_is_render(self):
        t = Table(title="t", headers=["a"])
        assert str(t) == t.render()

    def test_markdown(self):
        t = Table(title="MD", headers=["x", "ok"], notes=["n1"])
        t.add_row(3, True)
        md = t.to_markdown()
        assert "### MD" in md
        assert "| x | ok |" in md
        assert "| 3 | yes |" in md
        assert "*n1*" in md
