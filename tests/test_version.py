"""Tests for the package version plumbing and the --version CLI flag."""

import re
from pathlib import Path

import pytest

import repro
from repro._version import FALLBACK, _pyproject_version, package_version
from repro.cli import main

pytestmark = pytest.mark.fast

PYPROJECT = Path(__file__).resolve().parents[1] / "pyproject.toml"


def pyproject_version() -> str:
    match = re.search(r'^version\s*=\s*"([^"]+)"', PYPROJECT.read_text(),
                      re.MULTILINE)
    assert match, "pyproject.toml has no version field"
    return match.group(1)


class TestPackageVersion:
    def test_resolves_to_a_version_string(self):
        assert re.fullmatch(r"\d+\.\d+(\.\d+)?.*", package_version())

    def test_matches_pyproject(self):
        # Whether resolved from installed metadata or the pyproject
        # fallback, the reported version is the repo's declared one.
        assert package_version() == pyproject_version()

    def test_fallback_constant_tracks_pyproject(self):
        assert FALLBACK == pyproject_version()

    def test_pyproject_probe_finds_this_repo(self):
        assert _pyproject_version() == pyproject_version()

    def test_dunder_version(self):
        assert repro.__version__ == package_version()


class TestVersionFlag:
    def test_version_flag_prints_and_exits(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out.strip()
        assert out == f"repro-experiments {package_version()}"
