"""Tests for the edge-stream abstraction."""


from repro.graphs.generators import clique_union
from repro.streaming.stream import EdgeStream


class TestEdgeStream:
    def test_length_and_content(self):
        stream = EdgeStream(4, [(0, 1), (2, 3)])
        assert len(stream) == 2
        assert sorted(stream) == [(0, 1), (2, 3)]

    def test_normalizes_orientation(self):
        stream = EdgeStream(4, [(3, 2)])
        assert list(stream) == [(2, 3)]

    def test_pass_counting(self):
        stream = EdgeStream(3, [(0, 1)])
        assert stream.passes == 0
        list(stream)
        list(stream)
        assert stream.passes == 2

    def test_shuffled_order_is_permutation(self):
        edges = [(i, i + 1) for i in range(20)]
        plain = EdgeStream(21, edges)
        shuffled = EdgeStream(21, edges, seed=0)
        assert sorted(shuffled) == sorted(plain)
        assert list(EdgeStream(21, edges, seed=0)) == list(
            EdgeStream(21, edges, seed=0)
        )  # seed-reproducible

    def test_from_graph(self):
        g = clique_union(2, 4)
        stream = EdgeStream.from_graph(g)
        assert len(stream) == g.num_edges
        assert stream.num_vertices == g.num_vertices
