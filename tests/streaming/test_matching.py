"""Tests for the semi-streaming matchers."""


from repro.experiments.e8_distributed import trap_graph
from repro.graphs.generators import clique_union
from repro.matching.blossom import mcm_exact
from repro.streaming.matching import (
    streaming_approx_matching,
    streaming_greedy_matching,
)
from repro.streaming.stream import EdgeStream


class TestGreedyStreaming:
    def test_maximal_and_two_approx(self):
        g = clique_union(3, 10)
        res = streaming_greedy_matching(EdgeStream.from_graph(g, seed=0))
        assert res.matching.is_valid_for(g)
        assert res.matching.is_maximal_for(g)
        assert 2 * res.matching.size >= mcm_exact(g).size
        assert res.passes == 1
        assert res.delta == 0

    def test_memory_is_matching_size(self):
        g = clique_union(2, 6)
        res = streaming_greedy_matching(EdgeStream.from_graph(g))
        assert res.memory == res.matching.size


class TestSparsifierStreaming:
    def test_one_pass_quality(self):
        g = clique_union(3, 20)
        opt = mcm_exact(g).size
        res = streaming_approx_matching(
            EdgeStream.from_graph(g, seed=1), beta=1, epsilon=0.3, seed=2
        )
        assert res.passes == 1
        assert res.matching.is_valid_for(g)
        assert opt <= 1.3 * res.matching.size

    def test_beats_greedy_on_traps(self):
        g = trap_graph(2, 12, num_paths=30)
        opt = mcm_exact(g).size
        ours = streaming_approx_matching(
            EdgeStream.from_graph(g, seed=3), beta=2, epsilon=0.3, seed=4
        )
        # Ours recovers the P4 traps exactly (low-degree edges all kept).
        assert ours.matching.size == opt

    def test_memory_below_stream_on_dense(self):
        g = clique_union(2, 80)
        from repro.core.delta import DeltaPolicy

        res = streaming_approx_matching(
            EdgeStream.from_graph(g, seed=5), beta=1, epsilon=0.3, seed=6,
            policy=DeltaPolicy(constant=0.5),
        )
        assert res.memory < g.num_edges

    def test_empty_stream(self):
        res = streaming_approx_matching(
            EdgeStream(5, []), beta=1, epsilon=0.5, seed=7
        )
        assert res.matching.size == 0
