"""Tests for per-vertex reservoir sampling (one-pass G_Δ)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.generators import clique, clique_union
from repro.streaming.reservoir import VertexReservoir, streaming_sparsifier
from repro.streaming.stream import EdgeStream


class TestVertexReservoir:
    def test_below_capacity_keeps_all(self, rng):
        r = VertexReservoir(5, rng)
        for u in range(3):
            r.offer(u)
        assert sorted(r.sample()) == [0, 1, 2]
        assert r.seen == 3

    def test_capacity_respected(self, rng):
        r = VertexReservoir(3, rng)
        for u in range(50):
            r.offer(u)
        assert len(r.sample()) == 3
        assert len(set(r.sample())) == 3

    def test_invalid_capacity(self, rng):
        with pytest.raises(ValueError):
            VertexReservoir(0, rng)

    def test_uniformity(self):
        """Each of 20 items lands in a 4-slot reservoir ~1/5 of the time."""
        root = np.random.default_rng(0)
        counts = np.zeros(20)
        trials = 600
        for _ in range(trials):
            r = VertexReservoir(4, root.spawn(1)[0])
            for u in range(20):
                r.offer(u)
            for u in r.sample():
                counts[u] += 1
        expected = trials * 4 / 20
        assert np.all(counts > expected * 0.6)
        assert np.all(counts < expected * 1.4)


class TestStreamingSparsifier:
    def test_subgraph_of_stream(self):
        g = clique_union(2, 10)
        stream = EdgeStream.from_graph(g, seed=0)
        sp, memory = streaming_sparsifier(stream, delta=3, seed=1)
        for u, v in sp.edges():
            assert g.has_edge(u, v)

    def test_single_pass(self):
        g = clique(15)
        stream = EdgeStream.from_graph(g)
        streaming_sparsifier(stream, delta=3, seed=2)
        assert stream.passes == 1

    def test_memory_bound(self):
        g = clique(30)  # deg 29
        stream = EdgeStream.from_graph(g)
        _, memory = streaming_sparsifier(stream, delta=4, seed=3)
        assert memory == 30 * 4  # every vertex saturates its reservoir

    def test_low_degree_keeps_everything(self):
        g = clique(4)
        stream = EdgeStream.from_graph(g)
        sp, memory = streaming_sparsifier(stream, delta=10, seed=4)
        assert sp.num_edges == g.num_edges
        assert memory == sum(g.degrees())

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_distribution_matches_offline_sparsifier(self, seed):
        """Same marking law as the offline G_Δ: per-vertex sample sizes
        equal min(delta, deg) regardless of arrival order."""
        g = clique_union(2, 8)
        stream = EdgeStream.from_graph(g, seed=seed)
        sp, memory = streaming_sparsifier(stream, delta=3, seed=seed)
        assert memory == sum(min(3, int(d)) for d in g.degrees())
