"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.builder import from_edges


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic per-test RNG."""
    return np.random.default_rng(12345)


@pytest.fixture
def path4():
    """P4: the smallest augmenting-path trap (0-1-2-3)."""
    return from_edges(4, [(0, 1), (1, 2), (2, 3)])


@pytest.fixture
def triangle():
    """K3: the smallest blossom."""
    return from_edges(3, [(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def petersen():
    """The Petersen graph: classic non-bipartite matching stressor."""
    outer = [(i, (i + 1) % 5) for i in range(5)]
    inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
    spokes = [(i, 5 + i) for i in range(5)]
    return from_edges(10, outer + inner + spokes)


def random_graph_edges(rng: np.random.Generator, n: int, p: float):
    """Helper: edge list of a G(n, p) draw."""
    edges = []
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                edges.append((u, v))
    return edges
