"""Top-level API sanity: imports, __all__, and the quickstart example."""

import importlib

import pytest

import repro

pytestmark = pytest.mark.fast


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        # __version__ is derived (installed metadata or pyproject.toml),
        # never hardcoded; tests/test_version.py pins the mechanics.
        from repro._version import package_version

        assert repro.__version__ == package_version()

    def test_subpackages_importable(self):
        for mod in [
            "repro.core", "repro.graphs", "repro.matching",
            "repro.sequential", "repro.distributed", "repro.dynamic",
            "repro.streaming", "repro.mpc",
            "repro.experiments", "repro.instrument", "repro.cli",
        ]:
            importlib.import_module(mod)

    def test_quickstart_docstring_example(self):
        """The README/module quickstart must keep working verbatim."""
        from repro import build_sparsifier, delta_practical, mcm_exact
        from repro.graphs.generators import clique_union

        g = clique_union(10, 40)
        result = build_sparsifier(g, delta_practical(beta=1, epsilon=0.2),
                                  seed=0)
        assert mcm_exact(result.subgraph).size >= mcm_exact(g).size / 1.2


def test_doctest_module_examples():
    """Run the doctests embedded in key modules."""
    import doctest

    import repro.graphs.sparse_array
    import repro.instrument.counters
    import repro.instrument.timers

    for mod in (repro.graphs.sparse_array, repro.instrument.counters,
                repro.instrument.timers):
        failures, _ = doctest.testmod(mod)
        assert failures == 0
