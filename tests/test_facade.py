"""Tests for the unified ``repro.api`` facade."""

from __future__ import annotations

import inspect

import numpy as np
import pytest

import repro
from repro.api import (
    BACKENDS,
    ApproxMatchingResult,
    Pipeline,
    approx_mcm,
    sparsify,
)
from repro.graphs.generators import clique_union

pytestmark = pytest.mark.fast


@pytest.fixture
def small_graph():
    return clique_union(6, 20)  # beta = 1, dense


class TestSignatures:
    """The facade's call shape is part of its contract — pin it."""

    def test_sparsify_parameters_are_keyword_only(self):
        params = inspect.signature(sparsify).parameters
        for name in ("beta", "epsilon", "seed", "rng", "sampler", "policy"):
            assert params[name].kind is inspect.Parameter.KEYWORD_ONLY

    def test_approx_mcm_parameters_are_keyword_only(self):
        params = inspect.signature(approx_mcm).parameters
        for name in ("beta", "epsilon", "seed", "rng", "backend"):
            assert params[name].kind is inspect.Parameter.KEYWORD_ONLY

    def test_facade_reexported_from_package_root(self):
        assert repro.sparsify is sparsify
        assert repro.approx_mcm is approx_mcm
        assert repro.Pipeline is Pipeline
        assert repro.ApproxMatchingResult is ApproxMatchingResult

    def test_seed_and_rng_mutually_exclusive(self, small_graph):
        gen = np.random.default_rng(0)
        with pytest.raises(ValueError, match="not both"):
            sparsify(small_graph, beta=1, epsilon=0.5, seed=0, rng=gen)
        with pytest.raises(ValueError, match="not both"):
            approx_mcm(small_graph, beta=1, epsilon=0.5, seed=0, rng=gen)


class TestSparsify:
    def test_matches_manual_build(self, small_graph):
        from repro.core.delta import DeltaPolicy
        from repro.core.sparsifier import build_sparsifier

        res = sparsify(small_graph, beta=1, epsilon=0.5, seed=0)
        delta = DeltaPolicy.practical().delta(1, 0.5,
                                              small_graph.num_vertices)
        manual = build_sparsifier(small_graph, delta, seed=0)
        assert res.delta == delta
        assert sorted(res.subgraph.edges()) == sorted(manual.subgraph.edges())

    def test_seed_reproducible(self, small_graph):
        a = sparsify(small_graph, beta=1, epsilon=0.5, seed=11)
        b = sparsify(small_graph, beta=1, epsilon=0.5, seed=11)
        assert sorted(a.subgraph.edges()) == sorted(b.subgraph.edges())


class TestApproxMcm:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_every_backend_returns_valid_matching(self, small_graph, backend):
        run = approx_mcm(small_graph, beta=1, epsilon=0.5, seed=0,
                         backend=backend)
        assert isinstance(run, ApproxMatchingResult)
        assert run.backend == backend
        assert run.delta >= 1
        assert run.report is not None
        # beta=1 clique union of 6 cliques of 20: MCM = 60; a
        # (1+eps)-approximation at eps=0.5 must reach at least 40.
        assert run.matching.size >= 40
        for u, v in run.matching.edges():
            assert small_graph.has_edge(u, v)

    def test_unknown_backend_rejected(self, small_graph):
        with pytest.raises(ValueError, match="unknown backend"):
            approx_mcm(small_graph, beta=1, epsilon=0.5, backend="quantum")

    def test_options_forwarded_to_backend(self, small_graph):
        run = approx_mcm(small_graph, beta=1, epsilon=0.5, seed=0,
                         backend="mpc", num_machines=3)
        assert run.report.rounds == 3


class TestPipeline:
    def test_validates_backend_eagerly(self):
        with pytest.raises(ValueError, match="unknown backend"):
            Pipeline(beta=1, epsilon=0.5, backend="quantum")

    def test_validates_epsilon(self):
        with pytest.raises(ValueError, match="epsilon"):
            Pipeline(beta=1, epsilon=0.0)

    def test_same_seed_same_sequence(self, small_graph):
        pipe_a = Pipeline(beta=1, epsilon=0.5, seed=4)
        pipe_b = Pipeline(beta=1, epsilon=0.5, seed=4)
        seq_a = [sorted(pipe_a.sparsify(small_graph).subgraph.edges())
                 for _ in range(3)]
        seq_b = [sorted(pipe_b.sparsify(small_graph).subgraph.edges())
                 for _ in range(3)]
        assert seq_a == seq_b

    def test_applications_draw_independent_randomness(self, small_graph):
        pipe = Pipeline(beta=1, epsilon=0.5, seed=4)
        first = sorted(pipe.sparsify(small_graph).subgraph.edges())
        second = sorted(pipe.sparsify(small_graph).subgraph.edges())
        assert first != second

    def test_approx_mcm_uses_configured_backend(self, small_graph):
        pipe = Pipeline(beta=1, epsilon=0.5, backend="streaming", seed=0)
        run = pipe.approx_mcm(small_graph)
        assert run.backend == "streaming"
