"""Tests for the parallel experiment engine.

The engine's contract is that ``workers=1`` and ``workers=N`` are
indistinguishable except for wall-clock time: same results, same order,
same counter totals.  These tests pin that contract with real process
pools (small task counts keep them fast even on one core).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    TrialTask,
    execute,
    fanout,
    resolve_workers,
)
from repro.experiments import e1_quality
from repro.experiments.stats import replicate_quality
from repro.graphs.generators import clique
from repro.instrument.counters import CounterSet
from repro.instrument.rng import spawn_rngs

pytestmark = pytest.mark.fast


# Module-level trial functions: the engine's pickling contract requires
# importable callables.
def _draw(lo: int, hi: int, *, rng: np.random.Generator) -> int:
    return int(rng.integers(lo, hi))


def _square(x: int) -> int:
    return x * x


def _context_size(*, context) -> int:
    return context.num_vertices


def _count_probes(amount: int, *, metrics: CounterSet) -> int:
    metrics["probes"].add(amount)
    return amount


def _boom() -> None:
    raise RuntimeError("trial failed")


class TestResolveWorkers:
    def test_auto_is_at_least_one(self):
        assert resolve_workers("auto") >= 1

    def test_int_passthrough(self):
        assert resolve_workers(3) == 3

    @pytest.mark.parametrize("bad", [0, -1])
    def test_non_positive_rejected(self, bad):
        with pytest.raises(ValueError):
            resolve_workers(bad)

    def test_garbage_string_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers("lots")


class TestExecute:
    def test_results_in_task_order(self):
        tasks = [TrialTask(fn=_square, args=(i,)) for i in range(6)]
        assert execute(tasks, workers=1) == [0, 1, 4, 9, 16, 25]
        assert execute(tasks, workers=2) == [0, 1, 4, 9, 16, 25]

    def test_rng_fanout_is_worker_count_independent(self):
        def tasks():
            root = np.random.default_rng(42)
            return fanout(_draw, root, [{"lo": 0, "hi": 10**9}] * 8)

        serial = execute(tasks(), workers=1)
        parallel = execute(tasks(), workers=2)
        assert serial == parallel
        assert len(set(serial)) > 1  # children really are distinct streams

    def test_context_broadcast(self):
        g = clique(17)
        tasks = [TrialTask(fn=_context_size, wants_context=True)] * 3
        assert execute(tasks, workers=1, context=g) == [17, 17, 17]
        assert execute(tasks, workers=2, context=g) == [17, 17, 17]

    def test_metrics_merge_matches_serial(self):
        def run(workers):
            parent = CounterSet()
            tasks = [
                TrialTask(fn=_count_probes, args=(i + 1,), wants_metrics=True)
                for i in range(5)
            ]
            execute(tasks, workers=workers, metrics=parent)
            return parent.snapshot()

        assert run(1) == run(2) == {"probes": 15}

    def test_worker_exception_propagates(self):
        with pytest.raises(RuntimeError, match="trial failed"):
            execute([TrialTask(fn=_boom), TrialTask(fn=_boom)], workers=2)

    def test_empty_task_list(self):
        assert execute([], workers=4) == []


class TestFanout:
    def test_spawn_order_matches_manual_spawns(self):
        root_a = np.random.default_rng(7)
        root_b = np.random.default_rng(7)
        tasks = fanout(_draw, root_a, [{"lo": 0, "hi": 100}] * 4)
        manual = spawn_rngs(root_b, 4)
        for task, child in zip(tasks, manual):
            assert int(task.rng.integers(1000)) == int(child.integers(1000))

    def test_task_options_forwarded(self):
        tasks = fanout(
            _count_probes, np.random.default_rng(0), [{"amount": 1}],
            wants_metrics=True,
        )
        assert tasks[0].wants_metrics


class TestEndToEndDeterminism:
    def test_e1_identical_across_worker_counts(self):
        kwargs = dict(epsilons=(0.5,), trials=2, seed=1)
        serial = e1_quality.run(**kwargs, workers=1)
        parallel = e1_quality.run(**kwargs, workers=2)
        assert serial.rows == parallel.rows
        assert serial.headers == parallel.headers

    def test_replicate_quality_identical_across_worker_counts(self):
        g = clique(30)
        serial = replicate_quality(g, delta=3, epsilon=0.5, trials=6,
                                   seed=3, workers=1)
        parallel = replicate_quality(g, delta=3, epsilon=0.5, trials=6,
                                     seed=3, workers=2)
        assert serial == parallel
