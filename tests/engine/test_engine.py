"""Tests for the parallel experiment engine.

The engine's contract is that ``workers=1`` and ``workers=N`` are
indistinguishable except for wall-clock time: same results, same order,
same counter totals.  These tests pin that contract with real process
pools (small task counts keep them fast even on one core).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.contracts import ContractViolation
from repro.engine import (
    TrialTask,
    execute,
    fanout,
    resolve_workers,
)
from repro.experiments import e1_quality
from repro.experiments.stats import replicate_quality
from repro.graphs.generators import clique
from repro.instrument.counters import CounterSet
from repro.instrument.rng import spawn_rngs

pytestmark = pytest.mark.fast


# Module-level trial functions: the engine's pickling contract requires
# importable callables.
def _draw(lo: int, hi: int, *, rng: np.random.Generator) -> int:
    return int(rng.integers(lo, hi))


def _square(x: int) -> int:
    return x * x


def _context_size(*, context) -> int:
    return context.num_vertices


def _count_probes(amount: int, *, metrics: CounterSet) -> int:
    metrics["probes"].add(amount)
    return amount


def _boom() -> None:
    raise RuntimeError("trial failed")


class TestResolveWorkers:
    def test_auto_is_at_least_one(self):
        assert resolve_workers("auto") >= 1

    def test_int_passthrough(self):
        assert resolve_workers(3) == 3

    @pytest.mark.parametrize("bad", [0, -1])
    def test_non_positive_rejected(self, bad):
        with pytest.raises(ValueError):
            resolve_workers(bad)

    def test_garbage_string_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers("lots")


class TestExecute:
    def test_results_in_task_order(self):
        tasks = [TrialTask(fn=_square, args=(i,)) for i in range(6)]
        assert execute(tasks, workers=1) == [0, 1, 4, 9, 16, 25]
        assert execute(tasks, workers=2) == [0, 1, 4, 9, 16, 25]

    def test_rng_fanout_is_worker_count_independent(self):
        def tasks():
            root = np.random.default_rng(42)
            return fanout(_draw, root, [{"lo": 0, "hi": 10**9}] * 8)

        serial = execute(tasks(), workers=1)
        parallel = execute(tasks(), workers=2)
        assert serial == parallel
        assert len(set(serial)) > 1  # children really are distinct streams

    def test_context_broadcast(self):
        g = clique(17)
        tasks = [TrialTask(fn=_context_size, wants_context=True)] * 3
        assert execute(tasks, workers=1, context=g) == [17, 17, 17]
        assert execute(tasks, workers=2, context=g) == [17, 17, 17]

    def test_metrics_merge_matches_serial(self):
        def run(workers):
            parent = CounterSet()
            tasks = [
                TrialTask(fn=_count_probes, args=(i + 1,), wants_metrics=True)
                for i in range(5)
            ]
            execute(tasks, workers=workers, metrics=parent)
            return parent.snapshot()

        assert run(1) == run(2) == {"probes": 15}

    def test_worker_exception_propagates(self):
        with pytest.raises(RuntimeError, match="trial failed"):
            execute([TrialTask(fn=_boom), TrialTask(fn=_boom)], workers=2)

    def test_empty_task_list(self):
        assert execute([], workers=4) == []


class TestFanout:
    def test_spawn_order_matches_manual_spawns(self):
        root_a = np.random.default_rng(7)
        root_b = np.random.default_rng(7)
        tasks = fanout(_draw, root_a, [{"lo": 0, "hi": 100}] * 4)
        manual = spawn_rngs(root_b, 4)
        for task, child in zip(tasks, manual):
            assert int(task.rng.integers(1000)) == int(child.integers(1000))

    def test_task_options_forwarded(self):
        tasks = fanout(
            _count_probes, np.random.default_rng(0), [{"amount": 1}],
            wants_metrics=True,
        )
        assert tasks[0].wants_metrics


class TestFailurePaths:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_mid_bag_failure_leaves_parent_metrics_unmerged(self, workers):
        parent = CounterSet()
        tasks = [
            TrialTask(fn=_count_probes, args=(5,), wants_metrics=True),
            TrialTask(fn=_boom),
            TrialTask(fn=_count_probes, args=(7,), wants_metrics=True),
        ]
        with pytest.raises(RuntimeError, match="trial failed"):
            execute(tasks, workers=workers, metrics=parent)
        # No partial merge: the parent set is untouched by the failed bag.
        assert parent.snapshot() == {}

    def test_same_seed_rerun_after_failure_is_byte_identical(self):
        def bag():
            return fanout(_draw, seed=11,
                          kwargs_list=[{"lo": 0, "hi": 10**9}] * 6)

        reference = execute(bag(), workers=1)
        with pytest.raises(RuntimeError, match="trial failed"):
            execute([TrialTask(fn=_boom)] + bag(), workers=2)
        assert execute(bag(), workers=2) == reference


class TestSanitizer:
    """REPRO_RNG_SANITIZE=1: fingerprint collection and race detection."""

    def _bag(self, workers, fingerprints=None):
        tasks = fanout(_draw, seed=42,
                       kwargs_list=[{"lo": 0, "hi": 10**9}] * 8)
        return execute(tasks, workers=workers, fingerprints=fingerprints)

    def test_workers_1_vs_4_identical_fingerprints_and_results(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_RNG_SANITIZE", "1")
        serial_fps, parallel_fps = [], []
        serial = self._bag(1, serial_fps)
        parallel = self._bag(4, parallel_fps)
        assert serial == parallel
        assert serial_fps == parallel_fps
        assert len(serial_fps) == 8
        assert all(fp is not None and fp.draws == 1 for fp in serial_fps)
        assert len({fp.stream for fp in serial_fps}) == 8

    def test_stream_race_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_RNG_SANITIZE", "1")
        shared = np.random.default_rng(3)
        tasks = [
            TrialTask(fn=_draw, args=(0, 100), rng=shared),
            # Deliberate race: the stream sharing is the thing under test.
            TrialTask(fn=_draw, args=(0, 100), rng=shared),  # repro-lint: ignore[R6]
        ]
        with pytest.raises(ContractViolation, match="one RNG stream"):
            execute(tasks, workers=1)

    def test_sanitize_off_collects_no_fingerprints(self, monkeypatch):
        monkeypatch.delenv("REPRO_RNG_SANITIZE", raising=False)
        fps = []
        self._bag(1, fps)
        assert fps == [None] * 8

    def test_sanitizer_changes_no_drawn_value(self, monkeypatch):
        monkeypatch.delenv("REPRO_RNG_SANITIZE", raising=False)
        plain = self._bag(1)
        monkeypatch.setenv("REPRO_RNG_SANITIZE", "1")
        assert self._bag(1) == plain

    def test_e1_table_byte_identical_across_worker_counts(self, monkeypatch):
        monkeypatch.setenv("REPRO_RNG_SANITIZE", "1")
        kwargs = dict(epsilons=(0.5,), trials=2, seed=1)
        serial = e1_quality.run(**kwargs, workers=1)
        parallel = e1_quality.run(**kwargs, workers=4)
        assert serial.rows == parallel.rows
        assert serial.headers == parallel.headers


class TestEndToEndDeterminism:
    def test_e1_identical_across_worker_counts(self):
        kwargs = dict(epsilons=(0.5,), trials=2, seed=1)
        serial = e1_quality.run(**kwargs, workers=1)
        parallel = e1_quality.run(**kwargs, workers=2)
        assert serial.rows == parallel.rows
        assert serial.headers == parallel.headers

    def test_replicate_quality_identical_across_worker_counts(self):
        g = clique(30)
        serial = replicate_quality(g, delta=3, epsilon=0.5, trials=6,
                                   seed=3, workers=1)
        parallel = replicate_quality(g, delta=3, epsilon=0.5, trials=6,
                                     seed=3, workers=2)
        assert serial == parallel
