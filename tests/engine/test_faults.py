"""Fault-injection matrix for the engine's retry/recovery machinery.

The contract under test: for any injected failure pattern that leaves
retries a clean attempt, ``execute`` returns results — and, under the
RNG sanitizer, fingerprints — **byte-identical** to a fault-free run, at
any worker count.  Crash-on-task-k, timeout-on-task-k, and
pool-death-mid-run each get serial (`workers=1`) and pool (`workers=4`)
coverage; on the serial path `die` degrades to `crash` and `hang` to
`timeout` by design.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    FaultInjected,
    FaultPlan,
    FaultTimeout,
    RetryPolicy,
    TaskTimeoutError,
    execute,
    fanout,
)
from repro.engine.faults import Fault, FaultRule

pytestmark = pytest.mark.fast

#: Zero-backoff policy so failure paths don't sleep in tests.
FAST = RetryPolicy(backoff=0)

#: Shield reference runs from ambient REPRO_FAULTS (the CI chaos leg).
NO_FAULTS = FaultPlan()


def _draw(lo: int, hi: int, *, rng: np.random.Generator) -> int:
    return int(rng.integers(lo, hi))


def _bag():
    return fanout(_draw, seed=42, kwargs_list=[{"lo": 0, "hi": 10**9}] * 8)


def _reference(fingerprints=None):
    return execute(_bag(), workers=1, faults=NO_FAULTS,
                   fingerprints=fingerprints)


class TestSpecParsing:
    def test_probability_clause(self):
        plan = FaultPlan.parse("crash:0.25")
        assert plan.rules == (FaultRule("crash", probability=0.25),)

    def test_targeted_clause_with_duration(self):
        plan = FaultPlan.parse("hang@3x2.5")
        assert plan.rules == (FaultRule("hang", index=3, duration=2.5),)

    def test_seed_and_attempts_clauses(self):
        plan = FaultPlan.parse("crash:0.1, seed=7, attempts=2")
        assert plan.salt == 7 and plan.max_attempt == 2

    @pytest.mark.parametrize("bad", ["flood:0.1", "crash", "crash:2.0",
                                     "crash@1:0.5", "???"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_empty_plan_never_fires(self):
        assert all(FaultPlan().decide(i, 0) is None for i in range(50))


class TestDeterministicDecisions:
    def test_same_spec_same_pattern(self):
        a = FaultPlan.parse("crash:0.5")
        b = FaultPlan.parse("crash:0.5")
        assert [a.decide(i, 0) for i in range(64)] == \
               [b.decide(i, 0) for i in range(64)]

    def test_salt_changes_pattern(self):
        a = FaultPlan.parse("crash:0.5")
        b = FaultPlan.parse("crash:0.5,seed=1")
        hits = lambda p: [i for i in range(64) if p.decide(i, 0)]  # noqa: E731
        assert hits(a) != hits(b)
        assert 10 < len(hits(a)) < 54  # probability is roughly honored

    def test_faults_clear_after_max_attempt(self):
        plan = FaultPlan.parse("crash@3")
        assert plan.decide(3, 0) is not None
        assert plan.decide(3, 1) is None

    def test_serial_degradation_mapping(self):
        assert Fault("die", task_index=1).degraded_for_serial().kind == "crash"
        assert Fault("hang", 9.0, 1).degraded_for_serial().kind == "timeout"
        assert Fault("delay", 0.01, 1).degraded_for_serial().kind == "delay"


class TestFaultMatrix:
    """crash / timeout / pool-death, each × workers ∈ {1, 4}."""

    @pytest.mark.parametrize("workers", [1, 4])
    def test_crash_on_task_k(self, workers):
        out = execute(_bag(), workers=workers,
                      faults=FaultPlan.parse("crash@3"), retry=FAST)
        assert out == _reference()

    @pytest.mark.parametrize("workers", [1, 4])
    def test_timeout_on_task_k(self, workers):
        # Pool path: task 5 hangs past the 0.4s budget, tripping the
        # real timeout/respawn machinery; serial path: degrades to an
        # injected FaultTimeout, exercising the retry loop.
        out = execute(_bag(), workers=workers,
                      faults=FaultPlan.parse("hang@5x5.0"),
                      retry=RetryPolicy(backoff=0, timeout=0.4))
        assert out == _reference()

    @pytest.mark.parametrize("workers", [1, 4])
    def test_pool_death_mid_run(self, workers):
        out = execute(_bag(), workers=workers,
                      faults=FaultPlan.parse("die@2"), retry=FAST)
        assert out == _reference()

    @pytest.mark.parametrize("workers", [1, 4])
    def test_stochastic_chaos_mix(self, workers):
        out = execute(_bag(), workers=workers,
                      faults=FaultPlan.parse("crash:0.3,delay:0.3x0.01"),
                      retry=FAST)
        assert out == _reference()

    @pytest.mark.parametrize("workers", [1, 4])
    @pytest.mark.parametrize("spec", ["crash@3", "die@2", "crash:0.4"])
    def test_fingerprints_identical_under_sanitizer(
        self, monkeypatch, workers, spec
    ):
        monkeypatch.setenv("REPRO_RNG_SANITIZE", "1")
        ref_fps: list = []
        reference = _reference(ref_fps)
        fps: list = []
        out = execute(_bag(), workers=workers, faults=FaultPlan.parse(spec),
                      retry=FAST, fingerprints=fps)
        assert out == reference
        assert fps == ref_fps
        assert all(fp is not None and fp.draws == 1 for fp in fps)

    def test_metrics_identical_under_faults(self):
        def totals(faults):
            from repro.instrument.counters import CounterSet

            parent = CounterSet()
            tasks = fanout(_count, seed=5,
                           kwargs_list=[{"amount": k + 1} for k in range(6)],
                           wants_metrics=True)
            execute(tasks, workers=4, faults=faults, retry=FAST,
                    metrics=parent)
            return parent.snapshot()

        assert totals(NO_FAULTS) == totals(FaultPlan.parse("crash:0.5")) \
            == {"events": 21}


def _count(amount: int, *, rng, metrics) -> int:
    metrics["events"].add(amount)
    return amount


class TestExhaustionAndDegradation:
    def test_persistent_crash_exhausts_retries(self):
        plan = FaultPlan.parse("crash@0,attempts=99")
        with pytest.raises(FaultInjected):
            execute(_bag(), workers=1, faults=plan,
                    retry=RetryPolicy(max_retries=1, backoff=0))

    def test_persistent_serial_timeout_raises_fault_timeout(self):
        plan = FaultPlan.parse("hang@0,attempts=99")
        with pytest.raises(FaultTimeout):
            execute(_bag(), workers=1, faults=plan,
                    retry=RetryPolicy(max_retries=1, backoff=0))

    def test_persistent_pool_timeout_raises_task_timeout(self):
        plan = FaultPlan.parse("hang@0x5.0,attempts=99")
        with pytest.raises(TaskTimeoutError):
            execute(_bag(), workers=4, faults=plan,
                    retry=RetryPolicy(max_retries=1, backoff=0, timeout=0.3))

    def test_repeated_pool_death_degrades_to_serial(self):
        # Every pool round dies twice (attempts=2), blowing the respawn
        # budget; the serial fallback (die -> crash, then a clean
        # attempt) must still complete with identical results.
        plan = FaultPlan.parse("die:1.0,attempts=2")
        out = execute(_bag(), workers=4, faults=plan,
                      retry=RetryPolicy(max_retries=4, backoff=0,
                                        max_pool_respawns=1))
        assert out == _reference()


class TestAmbientEnv:
    def test_repro_faults_env_is_picked_up(self, monkeypatch):
        reference = _reference()
        monkeypatch.setenv("REPRO_FAULTS", "crash@1,crash@4")
        assert execute(_bag(), workers=1, retry=FAST) == reference

    def test_explicit_plan_overrides_env(self, monkeypatch):
        # An always-crashing ambient spec must be ignored when the call
        # passes its own (empty) plan.
        monkeypatch.setenv("REPRO_FAULTS", "crash:1.0,attempts=99")
        assert execute(_bag(), workers=1, faults=NO_FAULTS,
                       retry=FAST) == _reference()
