"""Checkpoint/resume tests: interrupted sweeps lose no completed work.

The contract: a run journaled to ``checkpoint=`` and killed mid-bag can
be rerun over the same task bag and (a) skips every journaled task, (b)
produces results, counter totals, and fingerprints byte-identical to an
uninterrupted run.  A checkpoint written for a different bag is refused.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.engine import (
    CheckpointMismatch,
    FaultPlan,
    RetryPolicy,
    execute,
    fanout,
)
from repro.engine.checkpoint import Checkpoint, run_key_for
from repro.engine.faults import FaultInjected
from repro.experiments import e1_quality
from repro.instrument.counters import CounterSet

pytestmark = pytest.mark.fast

FAST = RetryPolicy(backoff=0)
NO_FAULTS = FaultPlan()


def _draw(lo: int, hi: int, *, rng: np.random.Generator) -> int:
    return int(rng.integers(lo, hi))


def _logged_draw(lo: int, hi: int, log: str, *, rng) -> int:
    with open(log, "a") as handle:
        handle.write("x\n")
    return int(rng.integers(lo, hi))


def _counted(amount: int, *, rng, metrics) -> int:
    metrics["events"].add(amount)
    return amount


def _bag(log: str | None = None):
    kwargs: dict = {"lo": 0, "hi": 10**9}
    if log is not None:
        kwargs["log"] = log
    fn = _draw if log is None else _logged_draw
    return fanout(fn, seed=42, kwargs_list=[dict(kwargs)] * 6)


class TestRoundTrip:
    def test_resume_skips_completed_tasks(self, tmp_path):
        log = str(tmp_path / "exec.log")
        path = tmp_path / "ck.jsonl"
        first = execute(_bag(log), workers=1, faults=NO_FAULTS,
                        checkpoint=path)
        executions = open(log).read().count("x")
        assert executions == 6
        second = execute(_bag(log), workers=1, faults=NO_FAULTS,
                         checkpoint=path)
        assert second == first
        assert open(log).read().count("x") == 6  # nothing re-ran

    @pytest.mark.parametrize("workers", [1, 4])
    def test_interrupted_run_resumes_byte_identical(self, tmp_path, workers):
        reference = execute(_bag(), workers=1, faults=NO_FAULTS)
        path = tmp_path / "ck.jsonl"
        # Simulate the kill: task 4 fails with a zero-retry budget, so
        # execute raises after journaling whatever already finished.
        with pytest.raises(FaultInjected):
            execute(_bag(), workers=workers,
                    faults=FaultPlan.parse("crash@4,attempts=99"),
                    retry=RetryPolicy(max_retries=0, backoff=0),
                    checkpoint=path)
        resumed = execute(_bag(), workers=workers, faults=NO_FAULTS,
                          checkpoint=path)
        assert resumed == reference

    def test_metrics_restored_across_resume(self, tmp_path):
        def run(checkpoint, faults):
            parent = CounterSet()
            tasks = fanout(_counted, seed=9,
                           kwargs_list=[{"amount": k + 1} for k in range(5)],
                           wants_metrics=True)
            execute(tasks, workers=1, faults=faults, retry=FAST,
                    metrics=parent, checkpoint=checkpoint)
            return parent.snapshot()

        reference = run(None, NO_FAULTS)
        path = tmp_path / "ck.jsonl"
        with pytest.raises(FaultInjected):
            run(path, FaultPlan.parse("crash@3,attempts=99"))
        assert run(path, NO_FAULTS) == reference == {"events": 15}

    def test_fingerprints_restored_across_resume(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RNG_SANITIZE", "1")
        ref_fps: list = []
        reference = execute(_bag(), workers=1, faults=NO_FAULTS,
                            fingerprints=ref_fps)
        path = tmp_path / "ck.jsonl"
        with pytest.raises(FaultInjected):
            execute(_bag(), workers=1,
                    faults=FaultPlan.parse("crash@4,attempts=99"),
                    retry=RetryPolicy(max_retries=0, backoff=0),
                    checkpoint=path)
        fps: list = []
        resumed = execute(_bag(), workers=1, faults=NO_FAULTS,
                          checkpoint=path, fingerprints=fps)
        assert resumed == reference
        assert fps == ref_fps


class TestSafety:
    def test_mismatched_bag_is_refused(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        execute(_bag(), workers=1, faults=NO_FAULTS, checkpoint=path)
        other = fanout(_draw, seed=7, kwargs_list=[{"lo": 0, "hi": 10}] * 3)
        with pytest.raises(CheckpointMismatch):
            execute(other, workers=1, faults=NO_FAULTS, checkpoint=path)

    def test_truncated_tail_is_ignored(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        execute(_bag(), workers=1, faults=NO_FAULTS, checkpoint=path)
        lines = path.read_text().splitlines()
        # Chop the last record in half, as a kill mid-append would.
        path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][:10])
        resumed = execute(_bag(), workers=1, faults=NO_FAULTS,
                          checkpoint=path)
        assert resumed == execute(_bag(), workers=1, faults=NO_FAULTS)

    def test_garbage_file_is_refused(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        path.write_text("not a checkpoint\n")
        with pytest.raises(CheckpointMismatch):
            execute(_bag(), workers=1, faults=NO_FAULTS, checkpoint=path)

    def test_header_written_once(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        execute(_bag(), workers=1, faults=NO_FAULTS, checkpoint=path)
        execute(_bag(), workers=1, faults=NO_FAULTS, checkpoint=path)
        headers = [line for line in path.read_text().splitlines()
                   if "run_key" in line]
        assert len(headers) == 1
        assert json.loads(headers[0])["tasks"] == 6

    def test_run_key_is_order_sensitive(self):
        a = run_key_for([("m", "f", "(1,)", "[]", None, False, False)])
        b = run_key_for([("m", "f", "(2,)", "[]", None, False, False)])
        assert a != b

    def test_record_after_close_raises(self, tmp_path):
        ckpt = Checkpoint.open(tmp_path / "ck.jsonl", run_key="k", total=1)
        ckpt.close()
        with pytest.raises(ValueError):
            ckpt.record(0, (1, None, None))


class TestExperimentLevel:
    def test_e1_checkpointed_equals_plain(self, tmp_path):
        kwargs = dict(epsilons=(0.5,), trials=2, seed=1)
        plain = e1_quality.run(**kwargs)
        resumable = e1_quality.run(
            **kwargs, checkpoint=str(tmp_path / "e1.ck")
        )
        rerun = e1_quality.run(
            **kwargs, checkpoint=str(tmp_path / "e1.ck")
        )
        assert plain.rows == resumable.rows == rerun.rows
