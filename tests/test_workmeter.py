"""The work meter (``REPRO_WORK_AUDIT=1``) and the Theorem 3.5 cap check.

Unit tests cover the meter's counting/reporting machinery and the
``check_work_budget`` contract; the integration tests drive a real
session under audit and assert the two properties the subsystem
promises: every update's counted work respects the cap, and the audit
is *observation-free* — a session's replay fingerprint is byte-identical
with the meter on or off.
"""

import pytest

from repro.contracts import ContractViolation, check_work_budget
from repro.dynamic.incremental import DEFAULT_CHUNK
from repro.instrument import workmeter
from repro.instrument.rng import resolve_rng
from repro.service.session import Session

pytestmark = pytest.mark.fast


@pytest.fixture(autouse=True)
def _no_ambient_meter():
    """Keep the module-global meter state out of neighboring tests."""
    previous = workmeter.active()
    workmeter.disable()
    yield
    workmeter.disable()
    if previous is not None:
        workmeter.enable()


class TestWorkMeter:
    def test_count_accumulates_by_site_and_category(self):
        meter = workmeter.WorkMeter()
        meter.count("edge-touch", "A.scan")
        meter.count("edge-touch", "A.scan", 4)
        meter.count("vertex-scan", "A.scan")
        assert meter.sites[("edge-touch", "A.scan")] == 5
        assert meter.sites[("vertex-scan", "A.scan")] == 1
        assert meter.total_ops == 6

    def test_update_windows_track_the_max(self):
        meter = workmeter.WorkMeter()
        meter.begin_update()
        meter.count("edge-touch", "A.scan", 3)
        assert meter.end_update() == 3
        meter.begin_update()
        meter.count("edge-touch", "A.scan", 7)
        assert meter.end_update() == 7
        assert meter.updates == 2
        assert meter.per_update_max == 7

    def test_record_constant_keeps_the_largest(self):
        meter = workmeter.WorkMeter()
        meter.record_constant(0.25)
        meter.record_constant(0.10)
        assert meter.max_observed_constant == 0.25

    def test_report_ranks_by_count_then_site(self):
        meter = workmeter.WorkMeter()
        meter.count("edge-touch", "B.loop", 10)
        meter.count("vertex-scan", "A.scan", 10)
        meter.count("allocation", "C.build", 30)
        rows = meter.report()
        assert [row["site"] for row in rows] == ["C.build", "A.scan", "B.loop"]
        assert rows[0]["share"] == pytest.approx(0.6)
        assert sum(row["share"] for row in rows) == pytest.approx(1.0)

    def test_report_on_empty_meter(self):
        assert workmeter.WorkMeter().report() == []

    def test_reset_clears_everything(self):
        meter = workmeter.WorkMeter()
        meter.begin_update()
        meter.count("edge-touch", "A.scan", 5)
        meter.end_update()
        meter.record_constant(1.5)
        meter.reset()
        assert meter.sites == {}
        assert meter.total_ops == 0
        assert meter.updates == 0
        assert meter.per_update_max == 0
        assert meter.max_observed_constant == 0.0


class TestGlobalMeter:
    def test_enable_disable_round_trip(self):
        assert workmeter.active() is None
        meter = workmeter.enable()
        assert workmeter.active() is meter
        assert workmeter.enable() is meter  # idempotent
        workmeter.disable()
        assert workmeter.active() is None

    def test_audit_installs_fresh_and_restores_previous(self):
        outer = workmeter.enable()
        with workmeter.audit() as meter:
            assert meter is not outer
            assert workmeter.active() is meter
        assert workmeter.active() is outer

    def test_audit_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with workmeter.audit():
                raise RuntimeError("boom")
        assert workmeter.active() is None

    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("true", True), ("YES", True), (" on ", True),
        ("0", False), ("", False), ("off", False),
    ])
    def test_env_switch_parsing(self, monkeypatch, value, expected):
        monkeypatch.setenv(workmeter.WORK_AUDIT_ENV, value)
        assert workmeter.work_audit_enabled() is expected

    def test_enable_from_env_installs_iff_asked(self, monkeypatch):
        monkeypatch.delenv(workmeter.WORK_AUDIT_ENV, raising=False)
        assert workmeter.enable_from_env() is None
        monkeypatch.setenv(workmeter.WORK_AUDIT_ENV, "1")
        meter = workmeter.enable_from_env()
        assert meter is workmeter.active() is not None


class TestCheckWorkBudget:
    def test_within_cap_returns_observed_constant(self):
        observed = check_work_budget(512, 4, chunk=256)
        assert observed == pytest.approx(0.5)

    def test_over_cap_raises_with_constant_in_message(self):
        with pytest.raises(ContractViolation) as err:
            check_work_budget(5000, 4, chunk=256, constant=1.0)
        assert "observed constant" in str(err.value)

    def test_slack_absorbs_the_non_interruptible_tail(self):
        ops = 4 * 256 + 100
        with pytest.raises(ContractViolation):
            check_work_budget(ops, 4, chunk=256, constant=1.0)
        check_work_budget(ops, 4, chunk=256, constant=1.0, slack=100)

    def test_default_chunk_is_the_incremental_default(self):
        # ops exactly at constant * budget * DEFAULT_CHUNK passes ...
        check_work_budget(4 * 2 * DEFAULT_CHUNK, 2)
        # ... one more op fails.
        with pytest.raises(ContractViolation):
            check_work_budget(4 * 2 * DEFAULT_CHUNK + 1, 2)

    def test_degenerate_budget_rejected(self):
        with pytest.raises(ContractViolation):
            check_work_budget(1, 0)


def _drive(session, steps, seed):
    """Apply a deterministic toggled insert/delete stream."""
    stream = resolve_rng(seed=seed, owner="workmeter-test")
    present = set()
    applied = 0
    while applied < steps:
        u = int(stream.integers(0, session.num_vertices))
        v = int(stream.integers(0, session.num_vertices))
        if u == v:
            continue
        edge = (u, v) if u < v else (v, u)
        op = "delete" if edge in present else "insert"
        session.apply(op, edge[0], edge[1])
        (present.discard if op == "delete" else present.add)(edge)
        applied += 1


class TestSessionIntegration:
    def test_audited_session_counts_and_respects_the_cap(self):
        with workmeter.audit() as meter:
            session = Session("audited", num_vertices=48, beta=2,
                              epsilon=0.25, seed=3)
            _drive(session, 120, seed=3)
        # Session.apply runs check_work_budget per update (a violation
        # would have raised); the meter saw every one of them.
        assert meter.updates == 120
        assert meter.total_ops > 0
        assert meter.per_update_max > 0
        assert 0.0 < meter.max_observed_constant < 4.0
        sites = {site for _cat, site in meter.sites}
        assert any(site.startswith("incremental_rebuild.")
                   for site in sites)

    def test_env_enabled_session_is_audited(self, monkeypatch):
        monkeypatch.setenv(workmeter.WORK_AUDIT_ENV, "1")
        session = Session("ambient", num_vertices=32, beta=2,
                          epsilon=0.25, seed=1)
        _drive(session, 30, seed=1)
        meter = workmeter.active()
        assert meter is not None
        assert meter.updates == 30

    def test_fingerprint_is_byte_identical_with_audit_on_and_off(self):
        def fingerprint(audited):
            if audited:
                with workmeter.audit():
                    session = Session("fp", num_vertices=40, beta=2,
                                      epsilon=0.25, seed=11)
                    _drive(session, 80, seed=11)
                    return session.fingerprint()
            session = Session("fp", num_vertices=40, beta=2,
                              epsilon=0.25, seed=11)
            _drive(session, 80, seed=11)
            return session.fingerprint()

        assert fingerprint(audited=True) == fingerprint(audited=False)
