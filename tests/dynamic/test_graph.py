"""Tests for the dynamic graph substrate, incl. a reference-model property."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.dynamic.graph import DynamicGraph


class TestBasics:
    def test_insert_delete(self):
        g = DynamicGraph(4)
        g.insert(0, 1)
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert g.degree(0) == 1
        g.delete(0, 1)
        assert not g.has_edge(0, 1)
        assert g.num_edges == 0

    def test_duplicate_insert_rejected(self):
        g = DynamicGraph(3)
        g.insert(0, 1)
        with pytest.raises(ValueError, match="already present"):
            g.insert(1, 0)

    def test_missing_delete_rejected(self):
        g = DynamicGraph(3)
        with pytest.raises(ValueError, match="not present"):
            g.delete(0, 1)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            DynamicGraph(3).insert(1, 1)

    def test_apply_dispatch(self):
        g = DynamicGraph(3)
        g.apply("insert", 0, 2)
        assert g.has_edge(0, 2)
        g.apply("delete", 0, 2)
        assert not g.has_edge(0, 2)
        with pytest.raises(ValueError, match="unknown update"):
            g.apply("toggle", 0, 1)

    def test_swap_delete_keeps_positions_consistent(self):
        g = DynamicGraph(5)
        for v in (1, 2, 3, 4):
            g.insert(0, v)
        g.delete(0, 2)  # swap-with-last path
        assert sorted(g.neighbors(0)) == [1, 3, 4]
        g.delete(0, 4)
        assert sorted(g.neighbors(0)) == [1, 3]

    def test_non_isolated_tracking(self):
        g = DynamicGraph(5)
        assert g.non_isolated_vertices() == []
        g.insert(1, 3)
        assert g.non_isolated_vertices() == [1, 3]
        g.delete(1, 3)
        assert g.non_isolated_vertices() == []

    def test_sample_neighbors(self, rng):
        g = DynamicGraph(10)
        for v in range(1, 10):
            g.insert(0, v)
        sample = g.sample_neighbors(0, 4, rng)
        assert len(sample) == 4
        assert len(set(sample)) == 4
        assert all(g.has_edge(0, u) for u in sample)
        assert g.sample_neighbors(5, 4, rng) == [0]
        assert g.sample_neighbors(1, 0, rng) == []
        g2 = DynamicGraph(2)
        assert g2.sample_neighbors(0, 3, rng) == []

    def test_snapshot(self):
        g = DynamicGraph(4)
        g.insert(0, 1)
        g.insert(2, 3)
        snap = g.snapshot()
        assert sorted(snap.edges()) == [(0, 1), (2, 3)]
        assert snap.num_vertices == 4

    def test_version_monotone(self):
        g = DynamicGraph(3)
        v0 = g.version
        g.insert(0, 1)
        g.delete(0, 1)
        assert g.version == v0 + 2

    def test_negative_vertices(self):
        with pytest.raises(ValueError):
            DynamicGraph(-1)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=10),
    ops=st.lists(
        st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=80
    ),
)
def test_matches_networkx_reference(n, ops):
    """Random toggle sequences agree with a NetworkX reference model."""
    ours = DynamicGraph(n)
    ref = nx.Graph()
    ref.add_nodes_from(range(n))
    for a, b in ops:
        u, v = a % n, b % n
        if u == v:
            continue
        if ref.has_edge(u, v):
            ref.remove_edge(u, v)
            ours.delete(u, v)
        else:
            ref.add_edge(u, v)
            ours.insert(u, v)
        assert ours.num_edges == ref.number_of_edges()
    assert sorted(ours.edges()) == sorted(
        (min(u, v), max(u, v)) for u, v in ref.edges()
    )
    for v in range(n):
        assert ours.degree(v) == ref.degree(v)
        assert sorted(ours.neighbors(v)) == sorted(ref.neighbors(v))
    assert set(ours.non_isolated_vertices()) == {
        v for v in range(n) if ref.degree(v) > 0
    }
