"""Tests for the update-stream adversaries."""

import pytest

from repro.dynamic.adversaries import (
    AdaptiveAdversary,
    ObliviousAdversary,
    Update,
)
from repro.matching.matching import Matching


UNIVERSE = [(0, 1), (1, 2), (2, 3), (0, 3)]


class TestOblivious:
    def test_stream_is_consistent(self):
        """Never deletes an absent edge nor inserts a present one."""
        adv = ObliviousAdversary(UNIVERSE, 0.5, seed=0)
        present = set()
        for upd in adv.stream(200):
            e = (upd.u, upd.v)
            assert e in [(min(a, b), max(a, b)) for a, b in UNIVERSE]
            if upd.op == "insert":
                assert e not in present
                present.add(e)
            else:
                assert e in present
                present.remove(e)

    def test_respects_universe(self):
        adv = ObliviousAdversary(UNIVERSE, 0.3, seed=1)
        for upd in adv.stream(100):
            assert (upd.u, upd.v) in UNIVERSE

    def test_preload(self):
        adv = ObliviousAdversary(UNIVERSE, 1.0, seed=2)
        adv.preload(UNIVERSE)
        upd = adv.next_update()
        assert upd.op == "delete"

    def test_empty_universe_rejected(self):
        with pytest.raises(ValueError):
            ObliviousAdversary([], 0.3)

    def test_bad_probability(self):
        with pytest.raises(ValueError):
            ObliviousAdversary(UNIVERSE, 1.5)

    def test_saturated_universe_deletes(self):
        adv = ObliviousAdversary([(0, 1)], 0.0, seed=3)
        first = adv.next_update()
        assert first.op == "insert"
        second = adv.next_update()
        assert second.op == "delete"  # nothing left to insert


class TestAdaptive:
    def test_attacks_matched_edges(self):
        matching = Matching.from_edges(4, [(0, 1)])
        adv = AdaptiveAdversary(UNIVERSE, observe=lambda: matching,
                                attack_probability=1.0, seed=4)
        adv.preload(UNIVERSE)
        upd = adv.next_update()
        assert upd == Update("delete", 0, 1)
        assert adv.attacks == 1

    def test_falls_back_when_no_matched_edges(self):
        adv = AdaptiveAdversary(UNIVERSE, observe=lambda: Matching.empty(4),
                                attack_probability=1.0, seed=5)
        upd = adv.next_update()
        assert upd is not None
        assert upd.op == "insert"
        assert adv.attacks == 0

    def test_stream_consistency(self):
        matching_holder = {"m": Matching.empty(4)}
        adv = AdaptiveAdversary(UNIVERSE,
                                observe=lambda: matching_holder["m"],
                                attack_probability=0.5, seed=6)
        present = set()
        for _ in range(150):
            upd = adv.next_update()
            if upd is None:
                break
            e = (upd.u, upd.v)
            if upd.op == "insert":
                assert e not in present
                present.add(e)
            else:
                assert e in present
                present.remove(e)

    def test_bad_probability(self):
        with pytest.raises(ValueError):
            AdaptiveAdversary(UNIVERSE, observe=lambda: Matching.empty(4),
                              attack_probability=-0.1)
