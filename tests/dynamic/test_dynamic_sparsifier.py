"""Tests for O(Δ)-update dynamic maintenance of G_Δ."""

import pytest

from repro.dynamic.adversaries import ObliviousAdversary
from repro.dynamic.dynamic_sparsifier import DynamicSparsifier
from repro.graphs.generators import clique_union


class TestDynamicSparsifier:
    def test_marks_track_degree(self):
        ds = DynamicSparsifier(6, delta=2, seed=0)
        ds.insert(0, 1)
        ds.insert(0, 2)
        ds.insert(0, 3)
        assert len(ds.marks(0)) == 2
        assert len(ds.marks(1)) == 1

    def test_edges_subset_of_graph(self):
        host = clique_union(2, 8)
        ds = DynamicSparsifier(host.num_vertices, delta=3, seed=1)
        adv = ObliviousAdversary(list(host.edges()), 0.3, seed=2)
        for _ in range(300):
            upd = adv.next_update()
            if upd is None:
                break
            ds.update(upd.op, upd.u, upd.v)
        live = ds.graph.snapshot()
        for u, v in ds.edges():
            assert live.has_edge(u, v)

    def test_refcount_consistency(self):
        """E(G_Δ) always equals the union of per-vertex marks."""
        host = clique_union(2, 6)
        ds = DynamicSparsifier(host.num_vertices, delta=2, seed=3)
        adv = ObliviousAdversary(list(host.edges()), 0.4, seed=4)
        for _ in range(200):
            upd = adv.next_update()
            if upd is None:
                break
            ds.update(upd.op, upd.u, upd.v)
            recomputed = set()
            for v in range(ds.graph.num_vertices):
                for u in ds.marks(v):
                    recomputed.add((min(u, v), max(u, v)))
            assert recomputed == ds.edges()

    def test_work_bounded_by_4delta_ish(self):
        host = clique_union(2, 20)
        delta = 5
        ds = DynamicSparsifier(host.num_vertices, delta=delta, seed=5)
        adv = ObliviousAdversary(list(host.edges()), 0.3, seed=6)
        for _ in range(400):
            upd = adv.next_update()
            if upd is None:
                break
            ds.update(upd.op, upd.u, upd.v)
        assert ds.max_work_per_update() <= 4 * delta + 4

    def test_marks_fresh_after_update(self):
        """After an update touching v, marks(v) = min(delta, deg(v))
        distinct current neighbors."""
        host = clique_union(1, 10)
        ds = DynamicSparsifier(10, delta=3, seed=7)
        for u, v in host.edges():
            ds.insert(u, v)
            for w in (u, v):
                marks = ds.marks(w)
                assert len(marks) == min(3, ds.graph.degree(w))
                assert all(ds.graph.has_edge(w, x) for x in marks)

    def test_sparsifier_materialization(self):
        ds = DynamicSparsifier(4, delta=1, seed=8)
        ds.insert(0, 1)
        ds.insert(2, 3)
        sp = ds.sparsifier()
        assert sp.num_edges == 2

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            DynamicSparsifier(4, delta=0)
