"""Tests for the deterministic dynamic maximal matching baseline."""

from hypothesis import given, settings, strategies as st

from repro.dynamic.baseline import DynamicMaximalMatching
from repro.dynamic.adversaries import ObliviousAdversary
from repro.graphs.generators import clique_union
from repro.matching.blossom import mcm_exact


class TestBaseline:
    def test_insert_matches_free_pair(self):
        alg = DynamicMaximalMatching(4)
        alg.insert(0, 1)
        assert alg.matching.partner(0) == 1

    def test_delete_rematches(self):
        alg = DynamicMaximalMatching(4)
        alg.insert(0, 1)
        alg.insert(1, 2)  # 1 already matched; no-op for matching
        alg.insert(2, 3)  # matches (2,3)
        alg.delete(0, 1)  # 0 free; 1 should rematch with... 2 is taken
        m = alg.matching
        assert m.is_maximal_for(alg.graph.snapshot())

    def test_work_logged(self):
        alg = DynamicMaximalMatching(4)
        alg.insert(0, 1)
        alg.delete(0, 1)
        assert len(alg.work_log) == 2
        assert alg.max_work_per_update() >= 1

    def test_stream_two_approximation(self):
        host = clique_union(3, 8)
        alg = DynamicMaximalMatching(host.num_vertices)
        adv = ObliviousAdversary(list(host.edges()), 0.3, seed=0)
        for _ in range(500):
            upd = adv.next_update()
            if upd is None:
                break
            alg.update(upd.op, upd.u, upd.v)
        snap = alg.graph.snapshot()
        m = alg.matching
        assert m.is_valid_for(snap)
        assert m.is_maximal_for(snap)
        assert 2 * m.size >= mcm_exact(snap).size


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=10),
    ops=st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=60),
)
def test_maximality_invariant_random_streams(n, ops):
    """After every update the matching is valid and maximal."""
    alg = DynamicMaximalMatching(n)
    present = set()
    for a, b in ops:
        u, v = a % n, b % n
        if u == v:
            continue
        e = (min(u, v), max(u, v))
        if e in present:
            present.remove(e)
            alg.delete(*e)
        else:
            present.add(e)
            alg.insert(*e)
        snap = alg.graph.snapshot()
        m = alg.matching
        assert m.is_valid_for(snap)
        assert m.is_maximal_for(snap)
