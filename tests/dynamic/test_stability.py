"""Tests for the Lemma 3.4 stability machinery."""

import pytest

from repro.dynamic.graph import DynamicGraph
from repro.dynamic.stability import StabilityTracker, stability_factor
from repro.graphs.generators import clique_union
from repro.matching.blossom import mcm_exact
from repro.matching.matching import Matching


class TestFactor:
    def test_formula(self):
        assert stability_factor(0.1, 0.2) == pytest.approx(1.6)

    def test_range_enforced(self):
        with pytest.raises(ValueError):
            stability_factor(0.6, 0.1)
        with pytest.raises(ValueError):
            stability_factor(0.1, -0.1)


class TestTracker:
    def test_delete_prunes(self):
        m = Matching.from_edges(4, [(0, 1), (2, 3)])
        t = StabilityTracker(m, epsilon=0.1)
        t.on_delete(0, 1)
        assert t.matching.size == 1
        assert t.updates_seen == 1

    def test_unmatched_delete_keeps(self):
        m = Matching.from_edges(4, [(0, 1)])
        t = StabilityTracker(m, epsilon=0.1)
        t.on_delete(2, 3)
        assert t.matching.size == 1

    def test_insert_counts_only(self):
        m = Matching.from_edges(4, [(0, 1)])
        t = StabilityTracker(m, epsilon=0.1)
        t.on_insert(2, 3)
        assert t.matching.size == 1
        assert t.epsilon_prime() == 1.0

    def test_guaranteed_factor_inf_beyond_window(self):
        m = Matching.from_edges(4, [(0, 1)])
        t = StabilityTracker(m, epsilon=0.1)
        for _ in range(2):
            t.on_insert(2, 3)
        assert t.guaranteed_factor() == float("inf")

    def test_within_window(self):
        m = Matching.from_edges(20, [(2 * i, 2 * i + 1) for i in range(10)])
        t = StabilityTracker(m, epsilon=0.1)
        for _ in range(2):
            t.on_insert(0, 5)
        assert t.within_window(0.2)  # floor(0.2*10)=2 >= 2
        t.on_insert(0, 7)
        assert not t.within_window(0.2)

    def test_empty_matching_epsilon_prime(self):
        t = StabilityTracker(Matching.empty(3), epsilon=0.1)
        assert t.epsilon_prime() == 0.0
        t.on_insert(0, 1)
        assert t.epsilon_prime() == float("inf")


class TestLemmaEmpirically:
    def test_bound_holds_on_random_stream(self, rng):
        """Carry an exact matching through a short window; the achieved
        factor never exceeds the Lemma 3.4 certificate."""
        host = clique_union(3, 10)
        dyn = DynamicGraph(host.num_vertices)
        for u, v in host.edges():
            dyn.insert(u, v)
        matching = mcm_exact(dyn.snapshot())
        tracker = StabilityTracker(matching, epsilon=0.0)  # exact start
        edges = list(host.edges())
        for step in range(len(edges) // 4):
            u, v = edges[step]
            dyn.delete(u, v)
            tracker.on_delete(u, v)
            certified = tracker.guaranteed_factor()
            if certified == float("inf"):
                break
            opt_now = mcm_exact(dyn.snapshot()).size
            size_now = tracker.matching.size
            if size_now:
                assert opt_now / size_now <= certified + 1e-9
