"""Tests for the work-chunked incremental rebuild generator."""

import numpy as np

from repro.dynamic.graph import DynamicGraph
from repro.dynamic.incremental import incremental_rebuild
from repro.graphs.generators import clique_union
from repro.matching.blossom import mcm_exact
from repro.matching.matching import Matching


def _loaded(host):
    g = DynamicGraph(host.num_vertices)
    for u, v in host.edges():
        g.insert(u, v)
    return g


def _drain(gen):
    chunks = 0
    while True:
        try:
            next(gen)
            chunks += 1
        except StopIteration as stop:
            return stop.value, chunks


class TestRebuild:
    def test_produces_valid_matching(self, rng):
        host = clique_union(3, 12)
        g = _loaded(host)
        mate, chunks = _drain(incremental_rebuild(g, 5, 4, rng))
        m = Matching(np.asarray(mate))
        assert m.is_valid_for(g.snapshot())
        assert chunks >= 1

    def test_quality_near_exact(self, rng):
        host = clique_union(3, 20)
        g = _loaded(host)
        mate, _ = _drain(incremental_rebuild(g, 8, 6, rng))
        opt = mcm_exact(g.snapshot()).size
        assert opt <= 1.3 * Matching(np.asarray(mate)).size

    def test_empty_graph(self, rng):
        g = DynamicGraph(5)
        mate, chunks = _drain(incremental_rebuild(g, 3, 2, rng))
        assert Matching(np.asarray(mate)).size == 0

    def test_survives_concurrent_deletions(self, rng):
        """Delete edges between chunks; the final matching must only use
        surviving edges after the driver-side prune (simulated here)."""
        host = clique_union(2, 14)
        g = _loaded(host)
        gen = incremental_rebuild(g, 4, 3, rng, chunk=32)
        edges = list(g.edges())
        i = 0
        while True:
            try:
                next(gen)
                if i < len(edges):
                    u, v = edges[i]
                    if g.has_edge(u, v):
                        g.delete(u, v)
                    i += 1
            except StopIteration as stop:
                mate = np.asarray(stop.value)
                break
        # Driver-side prune (as LazyRebuildMatching does).
        for v in np.flatnonzero(mate >= 0):
            v = int(v)
            u = int(mate[v])
            if v < u and not g.has_edge(v, u):
                mate[v] = -1
                mate[u] = -1
        assert Matching(mate).is_valid_for(g.snapshot())

    def test_chunk_scaling(self, rng):
        """Smaller chunks => more yields, same result quality."""
        host = clique_union(2, 16)
        g = _loaded(host)
        _, chunks_small = _drain(
            incremental_rebuild(g, 4, 3, np.random.default_rng(0), chunk=16)
        )
        _, chunks_big = _drain(
            incremental_rebuild(g, 4, 3, np.random.default_rng(0), chunk=4096)
        )
        assert chunks_small > chunks_big

    def test_search_cap_disabled(self, rng):
        host = clique_union(2, 10)
        g = _loaded(host)
        mate, _ = _drain(
            incremental_rebuild(g, 4, 3, rng, search_cap_factor=0)
        )
        assert Matching(np.asarray(mate)).is_valid_for(g.snapshot())
