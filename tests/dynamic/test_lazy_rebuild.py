"""Tests for the Theorem 3.5 windowed-rebuild dynamic matcher."""

import pytest

from repro.dynamic.adversaries import AdaptiveAdversary, ObliviousAdversary
from repro.dynamic.lazy_rebuild import LazyRebuildMatching
from repro.graphs.generators import clique_union


@pytest.fixture
def host():
    return clique_union(3, 10)


class TestInvariantsUnderUpdates:
    def test_matching_always_valid(self, host):
        alg = LazyRebuildMatching(host.num_vertices, 1, 0.4, seed=0)
        adv = ObliviousAdversary(list(host.edges()), 0.3, seed=1)
        for step in range(300):
            upd = adv.next_update()
            if upd is None:
                break
            alg.update(upd.op, upd.u, upd.v)
            if step % 50 == 0:
                assert alg.matching.is_valid_for(alg.graph.snapshot())
        assert alg.matching.is_valid_for(alg.graph.snapshot())

    def test_work_logged_every_update(self, host):
        alg = LazyRebuildMatching(host.num_vertices, 1, 0.4, seed=2)
        adv = ObliviousAdversary(list(host.edges()), 0.3, seed=3)
        steps = 0
        for _ in range(100):
            upd = adv.next_update()
            if upd is None:
                break
            alg.update(upd.op, upd.u, upd.v)
            steps += 1
        assert len(alg.work_log) == steps
        assert alg.max_work_per_update() >= 1

    def test_quality_after_stream(self, host):
        alg = LazyRebuildMatching(host.num_vertices, 1, 0.4, seed=4)
        adv = ObliviousAdversary(list(host.edges()), 0.25, seed=5)
        for _ in range(600):
            upd = adv.next_update()
            if upd is None:
                break
            alg.update(upd.op, upd.u, upd.v)
        assert alg.current_ratio() <= 1.4 + 0.15  # eps + small slack

    def test_rebuilds_happen(self, host):
        alg = LazyRebuildMatching(host.num_vertices, 1, 0.4, seed=6)
        adv = ObliviousAdversary(list(host.edges()), 0.3, seed=7)
        for _ in range(200):
            upd = adv.next_update()
            if upd is None:
                break
            alg.update(upd.op, upd.u, upd.v)
        assert alg.rebuilds_completed > 0

    def test_adaptive_adversary_quality(self, host):
        alg = LazyRebuildMatching(host.num_vertices, 1, 0.4, seed=8)
        adv = AdaptiveAdversary(list(host.edges()),
                                observe=lambda: alg.matching,
                                attack_probability=0.5, seed=9)
        for _ in range(600):
            upd = adv.next_update()
            if upd is None:
                break
            alg.update(upd.op, upd.u, upd.v)
        assert adv.attacks > 0
        assert alg.matching.is_valid_for(alg.graph.snapshot())
        assert alg.current_ratio() <= 1.4 + 0.25

    def test_deleting_matched_edge_prunes_output(self, host):
        alg = LazyRebuildMatching(host.num_vertices, 1, 0.4, seed=10)
        for u, v in host.edges():
            alg.insert(u, v)
        matched = next(iter(alg.matching.edges()), None)
        if matched is None:
            pytest.skip("no matched edge yet")
        u, v = matched
        alg.delete(u, v)
        assert alg.matching.partner(u) != v
        assert alg.matching.is_valid_for(alg.graph.snapshot())


class TestHardWorkCap:
    def test_cap_enforced(self, host):
        cap = 3
        alg = LazyRebuildMatching(host.num_vertices, 1, 0.4, seed=20,
                                  max_chunks_per_update=cap)
        adv = ObliviousAdversary(list(host.edges()), 0.3, seed=21)
        for _ in range(300):
            upd = adv.next_update()
            if upd is None:
                break
            alg.update(upd.op, upd.u, upd.v)
        assert alg.max_work_per_update() <= cap
        assert alg.matching.is_valid_for(alg.graph.snapshot())

    def test_quality_degrades_gracefully_under_cap(self, host):
        alg = LazyRebuildMatching(host.num_vertices, 1, 0.4, seed=22,
                                  max_chunks_per_update=2)
        adv = ObliviousAdversary(list(host.edges()), 0.25, seed=23)
        for _ in range(600):
            upd = adv.next_update()
            if upd is None:
                break
            alg.update(upd.op, upd.u, upd.v)
        # Still a sane matching (never invalid; size bounded below by
        # what the stale-but-pruned rebuilds maintain).
        assert alg.matching.is_valid_for(alg.graph.snapshot())
        assert alg.current_ratio() < 3.0

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            LazyRebuildMatching(4, 1, 0.5, max_chunks_per_update=0)


class TestConfiguration:
    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            LazyRebuildMatching(10, 1, 0.0)
        with pytest.raises(ValueError):
            LazyRebuildMatching(10, 1, 1.0)

    def test_insert_delete_shorthand(self):
        alg = LazyRebuildMatching(4, 1, 0.5, seed=11)
        alg.insert(0, 1)
        assert alg.graph.has_edge(0, 1)
        alg.delete(0, 1)
        assert not alg.graph.has_edge(0, 1)

    def test_empty_start_ratio(self):
        alg = LazyRebuildMatching(4, 1, 0.5, seed=12)
        assert alg.current_ratio() == 1.0

    def test_current_ratio_oracle(self):
        alg = LazyRebuildMatching(4, 1, 0.5, seed=13)
        alg.insert(0, 1)
        # Force rebuild progress until the single edge is matched.
        for _ in range(20):
            alg.insert(2, 3)
            alg.delete(2, 3)
        assert alg.current_ratio() < float("inf")
