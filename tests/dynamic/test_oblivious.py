"""Tests for the oblivious-adversary dynamic matcher (§3.3 warm-up)."""

import pytest

from repro.dynamic.adversaries import ObliviousAdversary
from repro.dynamic.oblivious import ObliviousDynamicMatching
from repro.graphs.generators import clique_union
from repro.matching.blossom import mcm_exact


@pytest.fixture
def host():
    return clique_union(3, 10)


class TestObliviousDynamicMatching:
    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            ObliviousDynamicMatching(4, 1, 1.5)

    def test_matching_valid_under_stream(self, host):
        alg = ObliviousDynamicMatching(host.num_vertices, 1, 0.4, seed=0)
        adv = ObliviousAdversary(list(host.edges()), 0.3, seed=1)
        for step in range(400):
            upd = adv.next_update()
            if upd is None:
                break
            alg.update(upd.op, upd.u, upd.v)
            if step % 100 == 0:
                assert alg.matching.is_valid_for(alg.graph.snapshot())
        assert alg.matching.is_valid_for(alg.graph.snapshot())

    def test_quality_against_oblivious_stream(self, host):
        alg = ObliviousDynamicMatching(host.num_vertices, 1, 0.4, seed=2)
        adv = ObliviousAdversary(list(host.edges()), 0.25, seed=3)
        adv.preload(list(host.edges()))
        for u, v in host.edges():
            alg.insert(u, v)
        for upd in adv.stream(400):
            alg.update(upd.op, upd.u, upd.v)
        snap = alg.graph.snapshot()
        opt = mcm_exact(snap).size
        got = alg.matching.size
        # Greedy on a (1+eps)-sparsifier: within 2(1+eps) always, and on
        # clique unions empirically far better.
        assert opt <= 2 * (1 + 0.4) * max(1, got)
        assert alg.rebuilds_completed > 0

    def test_work_bounded(self, host):
        alg = ObliviousDynamicMatching(host.num_vertices, 1, 0.4, seed=4)
        adv = ObliviousAdversary(list(host.edges()), 0.3, seed=5)
        for upd in adv.stream(300):
            alg.update(upd.op, upd.u, upd.v)
        assert len(alg.work_log) == 300
        # O(delta) sparsifier ops + bounded chunks.
        assert alg.max_work_per_update() <= 4 * alg.delta + 4 + 64

    def test_delete_matched_edge_prunes(self, host):
        alg = ObliviousDynamicMatching(host.num_vertices, 1, 0.4, seed=6)
        for u, v in host.edges():
            alg.insert(u, v)
        matched = next(iter(alg.matching.edges()), None)
        if matched is None:
            pytest.skip("no matched edge yet")
        u, v = matched
        alg.delete(u, v)
        assert alg.matching.partner(u) != v
