"""Tests for the Theorem 3.1 sequential pipeline."""

import pytest

from repro.core.delta import DeltaPolicy
from repro.graphs.builder import from_edges
from repro.graphs.generators import clique_union, random_line_graph, unit_disk_graph
from repro.matching.blossom import mcm_exact
from repro.sequential.pipeline import approximate_matching, sublinearity_certificate


class TestEndToEnd:
    @pytest.mark.parametrize("eps", [0.5, 0.3])
    def test_quality_clique_union(self, eps):
        g = clique_union(3, 24)
        opt = mcm_exact(g).size
        result = approximate_matching(g, beta=1, epsilon=eps, seed=0)
        assert result.matching.is_valid_for(g)
        assert opt <= (1 + eps) * result.matching.size

    def test_quality_line_graph(self):
        g = random_line_graph(16, 0.5, seed=1)
        opt = mcm_exact(g).size
        result = approximate_matching(g, beta=2, epsilon=0.3, seed=2)
        assert opt <= 1.3 * result.matching.size

    def test_quality_unit_disk(self):
        g, _ = unit_disk_graph(120, 4.0, seed=3)
        opt = mcm_exact(g).size
        result = approximate_matching(g, beta=5, epsilon=0.5, seed=4)
        assert opt <= 1.5 * result.matching.size

    def test_phases_matcher(self):
        g = clique_union(3, 24)
        opt = mcm_exact(g).size
        result = approximate_matching(g, beta=1, epsilon=0.3, seed=5,
                                      matcher="phases")
        assert result.matching.is_valid_for(g)
        assert opt <= 1.3 * result.matching.size

    def test_unknown_matcher(self):
        g = clique_union(1, 4)
        with pytest.raises(ValueError, match="unknown matcher"):
            approximate_matching(g, 1, 0.3, matcher="bogus")

    def test_empty_graph(self):
        g = from_edges(5, [])
        result = approximate_matching(g, beta=1, epsilon=0.5, seed=6)
        assert result.matching.size == 0


class TestProbeAccounting:
    def test_probe_count_deterministic(self):
        """pos_array sampler: probes = n * (1 + min(delta, deg))."""
        g = clique_union(2, 30)  # all degrees 29
        policy = DeltaPolicy(constant=0.5)
        result = approximate_matching(g, 1, 0.5, seed=7, policy=policy)
        expected = g.num_vertices * (1 + min(result.delta, 29))
        assert result.probes == expected

    def test_sublinear_on_dense(self):
        """probes << 2m once cliques are much bigger than delta."""
        g = clique_union(2, 120)
        policy = DeltaPolicy(constant=0.5)
        result = approximate_matching(g, 1, 0.5, seed=8, policy=policy)
        cert = sublinearity_certificate(g, result)
        assert cert["probe_fraction"] < 0.25

    def test_certificate_fields(self):
        g = clique_union(1, 10)
        result = approximate_matching(g, 1, 0.5, seed=9)
        cert = sublinearity_certificate(g, result)
        assert set(cert) == {"probes", "input_size", "probe_fraction", "delta"}
        assert cert["input_size"] == 2.0 * g.num_edges

    def test_certificate_empty_graph(self):
        g = from_edges(3, [])
        result = approximate_matching(g, 1, 0.5, seed=10)
        assert sublinearity_certificate(g, result)["probe_fraction"] == 0.0

    def test_sparsifier_edges_reported(self):
        g = clique_union(2, 20)
        result = approximate_matching(g, 1, 0.4, seed=11)
        assert 0 < result.sparsifier_edges <= g.num_edges


class TestSharperBound:
    def test_output_sensitive_size(self):
        """Obs 2.10 bound on the pipeline's sparsifier size."""
        g = clique_union(3, 30)
        opt = mcm_exact(g).size
        result = approximate_matching(g, 1, 0.3, seed=12)
        assert result.sparsifier_edges <= 2 * opt * (result.delta + 1)
