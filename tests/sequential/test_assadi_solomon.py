"""Tests for the Assadi–Solomon-style [8] baseline."""

import pytest

from repro.graphs.builder import from_edges
from repro.graphs.generators import clique_union, random_line_graph
from repro.matching.blossom import mcm_exact
from repro.sequential.assadi_solomon import (
    as19_maximal_matching,
    count_violating_edges,
)


class TestAS19:
    def test_valid_matching(self):
        g = clique_union(3, 16)
        res = as19_maximal_matching(g, beta=1, seed=0)
        assert res.matching.is_valid_for(g)

    def test_maximal_whp_on_families(self):
        """The whp-maximality claim, measured: no violating edges."""
        for seed in range(5):
            g = clique_union(3, 16)
            res = as19_maximal_matching(g, beta=1, seed=seed)
            assert count_violating_edges(g, res.matching) == 0

    def test_two_approximation_when_maximal(self):
        g = random_line_graph(14, 0.5, seed=1)
        res = as19_maximal_matching(g, beta=2, seed=2)
        if count_violating_edges(g, res.matching) == 0:
            assert 2 * res.matching.size >= mcm_exact(g).size

    def test_probe_budget_shape(self):
        """Budget is c*beta*ln(n+1), and probes stay within n*(budget+1)."""
        g = clique_union(4, 30)
        res = as19_maximal_matching(g, beta=1, seed=3)
        assert res.probe_budget_per_vertex >= 1
        assert res.probes <= g.num_vertices * (res.probe_budget_per_vertex + 1)

    def test_empty_and_tiny(self):
        assert as19_maximal_matching(from_edges(3, []), beta=1, seed=4
                                     ).matching.size == 0
        res = as19_maximal_matching(from_edges(2, [(0, 1)]), beta=1, seed=5)
        assert res.matching.size == 1

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            as19_maximal_matching(from_edges(2, [(0, 1)]), beta=0)

    def test_count_violating_edges(self):
        from repro.matching.matching import Matching

        g = from_edges(4, [(0, 1), (2, 3)])
        assert count_violating_edges(g, Matching.empty(4)) == 2
        assert count_violating_edges(g, Matching.from_edges(4, [(0, 1)])) == 1
