"""Cross-cutting property-based invariants (hypothesis).

The per-module tests check local behaviour; these properties tie
modules together: samplers agree in law, pipelines never emit invalid
matchings, maintained structures match their from-scratch counterparts.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.sparsifier import build_sparsifier
from repro.dynamic.dynamic_sparsifier import DynamicSparsifier
from repro.graphs.builder import from_edges
from repro.matching.blossom import mcm_exact
from repro.matching.gallai_edmonds import is_maximum_matching
from repro.matching.matching import Matching
from repro.sequential.pipeline import approximate_matching
from repro.streaming.matching import streaming_approx_matching
from repro.streaming.stream import EdgeStream


def _random_graph(n: int, p: float, seed: int):
    rng = np.random.default_rng(seed)
    edges = [
        (u, v) for u in range(n) for v in range(u + 1, n)
        if rng.random() < p
    ]
    return from_edges(n, edges)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=20),
    p=st.floats(min_value=0.2, max_value=1.0),
    delta=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_samplers_agree_in_law_shape(n, p, delta, seed):
    """All three samplers produce min(delta, deg) marks per vertex and
    subgraphs of the input; their edge-count distributions coincide in
    expectation (spot-checked via the deterministic mark-count law)."""
    g = _random_graph(n, p, seed)
    for sampler in ("pos_array", "rejection", "vectorized"):
        res = build_sparsifier(g, delta, seed=seed, sampler=sampler)
        for v, marks in enumerate(res.marked_by):
            if sampler == "rejection" and g.degree(v) <= 2 * delta:
                assert len(marks) == g.degree(v)  # the §3.1 tweak
            else:
                assert len(marks) == min(delta, g.degree(v))
        for u, w in res.subgraph.edges():
            assert g.has_edge(u, w)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=16),
    p=st.floats(min_value=0.2, max_value=0.9),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_sequential_pipeline_never_invalid(n, p, seed):
    g = _random_graph(n, p, seed)
    res = approximate_matching(g, beta=max(1, n // 3), epsilon=0.5, seed=seed)
    assert res.matching.is_valid_for(g)
    assert 2 * res.matching.size >= mcm_exact(g).size  # never worse than 2


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=16),
    p=st.floats(min_value=0.2, max_value=0.9),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_streaming_pipeline_never_invalid(n, p, seed):
    g = _random_graph(n, p, seed)
    res = streaming_approx_matching(
        EdgeStream.from_graph(g, seed=seed), beta=max(1, n // 3),
        epsilon=0.5, seed=seed,
    )
    assert res.matching.is_valid_for(g)
    assert res.passes == 1


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=3, max_value=10),
    ops=st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)),
                 min_size=1, max_size=50),
    delta=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_dynamic_sparsifier_mark_law_invariant(n, ops, delta, seed):
    """After any toggle sequence, every vertex touched since its last
    degree change holds exactly min(delta, deg) valid marks."""
    ds = DynamicSparsifier(n, delta=delta, seed=seed)
    present = set()
    for a, b in ops:
        u, v = a % n, b % n
        if u == v:
            continue
        e = (min(u, v), max(u, v))
        if e in present:
            present.remove(e)
            ds.delete(*e)
        else:
            present.add(e)
            ds.insert(*e)
        for w in e:
            marks = ds.marks(w)
            assert len(marks) == min(delta, ds.graph.degree(w))
            assert all(ds.graph.has_edge(w, x) for x in marks)
    for u, v in ds.edges():
        assert ds.graph.has_edge(u, v)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=14),
    p=st.floats(min_value=0.1, max_value=0.9),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_berge_certificate_certifies_blossom(n, p, seed):
    """mcm_exact's output always carries a Berge certificate."""
    g = _random_graph(n, p, seed)
    assert is_maximum_matching(g, mcm_exact(g))


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=14),
    p=st.floats(min_value=0.2, max_value=1.0),
    delta=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_sparsifier_preserves_maximality_structure(n, p, delta, seed):
    """|MCM(G_Δ)| never exceeds |MCM(G)| (subgraph monotonicity) and a
    matching maximum in G that survives into G_Δ stays maximum there."""
    g = _random_graph(n, p, seed)
    res = build_sparsifier(g, delta, seed=seed)
    opt_g = mcm_exact(g).size
    opt_sp = mcm_exact(res.subgraph).size
    assert opt_sp <= opt_g
