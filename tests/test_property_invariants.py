"""Property-based (hypothesis) suite for the paper's core invariants.

Randomized graphs × seeds, asserting statements that are *theorems* —
true on every draw, not just with high probability — so the suite can
never flake:

* **Theorem 2.1 (quality)**: at the paper's Δ = 20·(β/ε)·ln(24/ε) the
  sparsifier satisfies |MCM(G)|/|MCM(G_Δ)| ≤ 1+ε, i.e. the retained
  matching is ≥ 1/(1+ε) of optimum; and quality is monotone in Δ in the
  guaranteed sense — every G_Δ is a subgraph (so never beats G), while
  Δ ≥ max-degree retains G exactly.
* **Observation 2.10 (size)**: |E(G_Δ)| ≤ Σ_v min(Δ, deg v) ≤ n·Δ.
* **Observation 2.12 (uniform sparsity)**: degeneracy(G_Δ) ≤ 2Δ (each
  edge is marked by an endpoint and each vertex marks ≤ Δ).
* **Matching validity**: every pipeline output passes
  :func:`repro.contracts.check_matching`.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.contracts import check_matching, check_sparsifier_degree
from repro.core.delta import DeltaPolicy, delta_paper
from repro.core.sparsifier import build_sparsifier
from repro.graphs.arboricity import degeneracy
from repro.graphs.builder import from_edges
from repro.matching.blossom import mcm_exact
from repro.sequential.pipeline import approximate_matching

#: Shared strategy fragments: small graphs keep exact MCM cheap while
#: still exercising every code path (empty, sparse, dense, clique-ish).
_N = st.integers(min_value=2, max_value=18)
_P = st.floats(min_value=0.0, max_value=1.0)
_SEED = st.integers(min_value=0, max_value=2**31 - 1)
_DELTA = st.integers(min_value=1, max_value=8)
_EPS = st.sampled_from([0.5, 0.3, 0.15])


def _random_graph(n: int, p: float, seed: int):
    rng = np.random.default_rng(seed)
    edges = [
        (u, v) for u in range(n) for v in range(u + 1, n)
        if rng.random() < p
    ]
    return from_edges(n, edges)


@settings(max_examples=30, deadline=None)
@given(n=_N, p=_P, seed=_SEED, eps=_EPS)
def test_theorem_2_1_ratio_at_paper_delta(n, p, seed, eps):
    """At the paper's Δ the sparsifier keeps |MCM(G_Δ)| ≥ |MCM(G)|/(1+ε).

    (On instances this small the paper Δ exceeds every degree, so the
    bound holds with certainty — the test pins the *statement*, and the
    Δ policy feeding it, rather than the probabilistic tail.)
    """
    graph = _random_graph(n, p, seed)
    opt = mcm_exact(graph).size
    delta = delta_paper(beta=1, epsilon=eps)
    result = build_sparsifier(graph, delta, seed=seed)
    got = mcm_exact(result.subgraph).size
    assert got * (1 + eps) >= opt
    assert got <= opt  # a subgraph can never out-match its host


@settings(max_examples=30, deadline=None)
@given(n=_N, p=_P, seed=_SEED, delta=_DELTA)
def test_theorem_2_1_monotone_quality_in_delta(n, p, seed, delta):
    """Quality is monotone in Δ in the guaranteed sense: any G_Δ matches
    at most what G does, and Δ ≥ max-degree retains G exactly (ratio 1),
    so growing Δ to the degree cap closes the gap entirely."""
    graph = _random_graph(n, p, seed)
    opt = mcm_exact(graph).size
    small = build_sparsifier(graph, delta, seed=seed)
    assert mcm_exact(small.subgraph).size <= opt
    cap = max(1, graph.max_degree())
    full = build_sparsifier(graph, cap, seed=seed)
    assert full.subgraph.num_edges == graph.num_edges
    assert mcm_exact(full.subgraph).size == opt


@settings(max_examples=40, deadline=None)
@given(n=_N, p=_P, seed=_SEED, delta=_DELTA)
def test_observation_2_10_edge_bound(n, p, seed, delta):
    """|E(G_Δ)| ≤ Σ_v min(Δ, deg v) ≤ n·Δ, via the marking-law contract
    and directly."""
    graph = _random_graph(n, p, seed)
    result = build_sparsifier(graph, delta, seed=seed)
    check_sparsifier_degree(result, delta, graph=graph)
    budget = sum(min(delta, graph.degree(v)) for v in range(n))
    assert result.subgraph.num_edges <= budget <= n * delta


@settings(max_examples=40, deadline=None)
@given(n=_N, p=_P, seed=_SEED, delta=_DELTA)
def test_observation_2_12_degeneracy_bound(n, p, seed, delta):
    """degeneracy(G_Δ) ≤ 2Δ: orient each edge away from a marking
    endpoint and both out-degree halves are ≤ Δ."""
    graph = _random_graph(n, p, seed)
    result = build_sparsifier(graph, delta, seed=seed)
    d, order = degeneracy(result.subgraph)
    assert d <= 2 * delta
    assert sorted(order.tolist()) == list(range(n))


@settings(max_examples=25, deadline=None)
@given(n=_N, p=_P, seed=_SEED, eps=_EPS)
def test_pipeline_matchings_are_valid(n, p, seed, eps):
    """Every sequential-pipeline output is a genuine matching of G."""
    graph = _random_graph(n, p, seed)
    result = approximate_matching(
        graph, beta=1, epsilon=eps, seed=seed,
        policy=DeltaPolicy.practical(),
    )
    check_matching(graph, result.matching)


@settings(max_examples=20, deadline=None)
@given(n=_N, p=_P, seed=_SEED, delta=_DELTA)
def test_samplers_obey_identical_marking_law(n, p, seed, delta):
    """pos_array and vectorized samplers both mark exactly
    min(Δ, deg v) distinct neighbors per vertex (the law every size and
    sparsity bound above derives from)."""
    graph = _random_graph(n, p, seed)
    for sampler in ("pos_array", "vectorized"):
        result = build_sparsifier(graph, delta, seed=seed, sampler=sampler)
        for v, marks in enumerate(result.marked_by):
            assert len(set(marks)) == len(marks) == min(
                delta, graph.degree(v)
            )
