"""Tests for the bipartite Hopcroft–Karp matcher."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.builder import from_edges
from repro.graphs.generators import random_bipartite
from repro.matching.blossom import mcm_exact
from repro.matching.hopcroft_karp import bipartition, hopcroft_karp


class TestBipartition:
    def test_path(self):
        g = from_edges(4, [(0, 1), (1, 2), (2, 3)])
        left, right = bipartition(g)
        assert set(left) == {0, 2}
        assert set(right) == {1, 3}

    def test_isolated_go_left(self):
        g = from_edges(3, [(0, 1)])
        left, _ = bipartition(g)
        assert 2 in left

    def test_odd_cycle_raises(self, triangle):
        with pytest.raises(ValueError, match="not bipartite"):
            bipartition(triangle)


class TestHopcroftKarp:
    def test_perfect_on_even_cycle(self):
        g = from_edges(6, [(i, (i + 1) % 6) for i in range(6)])
        assert hopcroft_karp(g).size == 3

    def test_star(self):
        g = from_edges(5, [(0, i) for i in range(1, 5)])
        assert hopcroft_karp(g).size == 1

    def test_empty(self):
        assert hopcroft_karp(from_edges(4, [])).size == 0

    def test_non_bipartite_raises(self, triangle):
        with pytest.raises(ValueError):
            hopcroft_karp(triangle)

    def test_long_path_recursion(self):
        """Deep augmenting path exercises the recursion-limit handling."""
        n = 3000
        g = from_edges(n, [(i, i + 1) for i in range(n - 1)])
        assert hopcroft_karp(g).size == n // 2


@settings(max_examples=40, deadline=None)
@given(
    left=st.integers(min_value=1, max_value=12),
    right=st.integers(min_value=1, max_value=12),
    p=st.floats(min_value=0.05, max_value=0.95),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_matches_blossom_on_bipartite(left, right, p, seed):
    g = random_bipartite(left, right, p, rng=np.random.default_rng(seed))
    hk = hopcroft_karp(g)
    assert hk.size == mcm_exact(g).size
    assert hk.is_valid_for(g)
