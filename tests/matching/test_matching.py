"""Tests for the Matching container."""

import numpy as np
import pytest

from repro.graphs.builder import from_edges
from repro.matching.matching import Matching, verify_matching


class TestConstruction:
    def test_empty(self):
        m = Matching.empty(5)
        assert m.size == 0
        assert list(m.free_vertices()) == [0, 1, 2, 3, 4]

    def test_from_edges(self):
        m = Matching.from_edges(4, [(0, 1), (2, 3)])
        assert m.size == 2
        assert m.partner(0) == 1
        assert m.partner(3) == 2

    def test_from_edges_conflict(self):
        with pytest.raises(ValueError, match="shares an endpoint"):
            Matching.from_edges(4, [(0, 1), (1, 2)])

    def test_from_edges_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            Matching.from_edges(3, [(1, 1)])

    def test_involution_enforced(self):
        bad = np.array([1, -1, -1], dtype=np.int64)  # 0->1 but 1->-1
        with pytest.raises(ValueError, match="involution"):
            Matching(bad)

    def test_self_match_rejected(self):
        bad = np.array([0, -1], dtype=np.int64)
        with pytest.raises(ValueError):
            Matching(bad)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Matching(np.array([5, -1], dtype=np.int64))
        with pytest.raises(ValueError):
            Matching(np.array([-2], dtype=np.int64))


class TestQueries:
    def test_edges_iteration(self):
        m = Matching.from_edges(6, [(4, 1), (2, 5)])
        assert sorted(m.edges()) == [(1, 4), (2, 5)]

    def test_matched_and_free(self):
        m = Matching.from_edges(5, [(0, 3)])
        assert m.is_matched(0) and m.is_matched(3)
        assert not m.is_matched(1)
        assert list(m.matched_vertices()) == [0, 3]
        assert list(m.free_vertices()) == [1, 2, 4]

    def test_copy_independent(self):
        m = Matching.from_edges(4, [(0, 1)])
        c = m.copy()
        c.mate[0] = -1
        assert m.partner(0) == 1

    def test_equality(self):
        a = Matching.from_edges(4, [(0, 1)])
        b = Matching.from_edges(4, [(0, 1)])
        c = Matching.from_edges(4, [(2, 3)])
        assert a == b
        assert a != c
        assert a != "not a matching"


class TestVerification:
    def test_valid_for(self):
        g = from_edges(4, [(0, 1), (2, 3)])
        assert Matching.from_edges(4, [(0, 1)]).is_valid_for(g)
        assert not Matching.from_edges(4, [(0, 2)]).is_valid_for(g)
        assert not Matching.from_edges(3, []).is_valid_for(g)  # wrong n

    def test_maximal_for(self):
        g = from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert Matching.from_edges(4, [(1, 2)]).is_maximal_for(g)
        assert not Matching.from_edges(4, [(0, 1)]).is_maximal_for(g)

    def test_verify_matching_raises(self):
        g = from_edges(3, [(0, 1)])
        verify_matching(g, Matching.from_edges(3, [(0, 1)]))
        with pytest.raises(AssertionError):
            verify_matching(g, Matching.from_edges(3, [(1, 2)]))
