"""Tests for Gallai–Edmonds and maximum-matching certification."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.builder import from_edges
from repro.matching.blossom import mcm_exact
from repro.matching.gallai_edmonds import (
    gallai_edmonds_decomposition,
    is_maximum_matching,
)
from repro.matching.greedy import greedy_maximal_matching
from repro.matching.matching import Matching


class TestBergeCertificate:
    def test_accepts_maximum(self, petersen):
        assert is_maximum_matching(petersen, mcm_exact(petersen))

    def test_rejects_submaximum(self, path4):
        middle_only = Matching.from_edges(4, [(1, 2)])
        assert not is_maximum_matching(path4, middle_only)

    def test_rejects_invalid(self, path4):
        with pytest.raises(ValueError, match="not valid"):
            is_maximum_matching(path4, Matching.from_edges(4, [(0, 3)]))

    def test_empty_graph(self):
        g = from_edges(3, [])
        assert is_maximum_matching(g, Matching.empty(3))

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=14),
        p=st.floats(min_value=0.1, max_value=0.9),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_agrees_with_size_comparison(self, n, p, seed):
        rng = np.random.default_rng(seed)
        edges = [
            (u, v) for u in range(n) for v in range(u + 1, n)
            if rng.random() < p
        ]
        g = from_edges(n, edges)
        opt = mcm_exact(g)
        greedy = greedy_maximal_matching(g, rng=rng)
        assert is_maximum_matching(g, opt)
        assert is_maximum_matching(g, greedy) == (greedy.size == opt.size)


class TestDecompositionKnownStructures:
    def test_odd_cycle_all_d(self):
        """An odd cycle is factor-critical: every vertex is in D."""
        c5 = from_edges(5, [(i, (i + 1) % 5) for i in range(5)])
        ge = gallai_edmonds_decomposition(c5)
        assert set(ge.d) == set(range(5))
        assert ge.a == () and ge.c == ()

    def test_perfectly_matchable_all_c(self):
        """Even cycle has a perfect matching and no deficiency: D empty."""
        c6 = from_edges(6, [(i, (i + 1) % 6) for i in range(6)])
        ge = gallai_edmonds_decomposition(c6)
        assert ge.d == () and ge.a == ()
        assert set(ge.c) == set(range(6))

    def test_star(self):
        """K_{1,3}: leaves are in D, the center is A."""
        star = from_edges(4, [(0, 1), (0, 2), (0, 3)])
        ge = gallai_edmonds_decomposition(star)
        assert set(ge.d) == {1, 2, 3}
        assert ge.a == (0,)
        assert ge.mcm_size == 1

    def test_single_edge(self):
        g = from_edges(2, [(0, 1)])
        ge = gallai_edmonds_decomposition(g)
        assert set(ge.c) == {0, 1}

    def test_isolated_vertices_in_d(self):
        g = from_edges(3, [(0, 1)])
        ge = gallai_edmonds_decomposition(g)
        assert 2 in ge.d

    def test_partition_is_exact(self):
        g = from_edges(6, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5)])
        ge = gallai_edmonds_decomposition(g)
        assert sorted(ge.d + ge.a + ge.c) == list(range(6))


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=11),
    p=st.floats(min_value=0.1, max_value=0.9),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_d_matches_deletion_definition(n, p, seed):
    """v in D(G) iff deleting v does not decrease the MCM size."""
    rng = np.random.default_rng(seed)
    edges = [
        (u, v) for u in range(n) for v in range(u + 1, n)
        if rng.random() < p
    ]
    g = from_edges(n, edges)
    opt = mcm_exact(g).size
    ge = gallai_edmonds_decomposition(g)
    for v in range(n):
        reduced = from_edges(
            n, [e for e in edges if v not in e]
        )
        unchanged = mcm_exact(reduced).size == opt
        assert (v in ge.d) == unchanged, (v, sorted(edges))
