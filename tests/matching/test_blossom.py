"""Tests for the exact blossom matcher — validated against NetworkX."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.builder import from_edges, to_networkx
from repro.graphs.generators import clique, two_cliques_with_bridge
from repro.matching.blossom import augment_from_free_vertices, mcm_exact
from repro.matching.greedy import greedy_maximal_matching
from repro.matching.matching import Matching


class TestSmallGraphs:
    def test_empty(self):
        assert mcm_exact(from_edges(3, [])).size == 0

    def test_single_edge(self):
        assert mcm_exact(from_edges(2, [(0, 1)])).size == 1

    def test_path4_finds_perfect(self, path4):
        assert mcm_exact(path4).size == 2

    def test_triangle(self, triangle):
        assert mcm_exact(triangle).size == 1

    def test_odd_cycle(self):
        c7 = from_edges(7, [(i, (i + 1) % 7) for i in range(7)])
        assert mcm_exact(c7).size == 3

    def test_petersen_perfect(self, petersen):
        assert mcm_exact(petersen).size == 5

    def test_two_triangles_bridged(self):
        """Classic blossom case: matching must cross between blossoms."""
        g = from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
        assert mcm_exact(g).size == 3

    def test_clique_floor(self):
        assert mcm_exact(clique(9)).size == 4

    def test_bridge_instance(self):
        assert mcm_exact(two_cliques_with_bridge(5)).size == 5


class TestWarmStart:
    def test_warm_start_same_size(self, petersen):
        warm = greedy_maximal_matching(petersen)
        assert mcm_exact(petersen, warm_start=warm).size == 5

    def test_empty_warm_start(self, petersen):
        assert mcm_exact(petersen, warm_start=Matching.empty(10)).size == 5

    def test_wrong_size_warm_start(self, petersen):
        with pytest.raises(ValueError, match="wrong vertex count"):
            mcm_exact(petersen, warm_start=Matching.empty(3))


class TestAgainstNetworkx:
    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=24),
        p=st.floats(min_value=0.05, max_value=0.95),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_random_graphs(self, n, p, seed):
        rng = np.random.default_rng(seed)
        edges = [
            (u, v) for u in range(n) for v in range(u + 1, n)
            if rng.random() < p
        ]
        g = from_edges(n, edges)
        ours = mcm_exact(g)
        theirs = nx.max_weight_matching(to_networkx(g), maxcardinality=True)
        assert ours.size == len(theirs)
        assert ours.is_valid_for(g)
        assert ours.is_maximal_for(g)


class TestAugmentBudget:
    def test_budget_limits_augmentations(self):
        g = from_edges(8, [(0, 1), (2, 3), (4, 5), (6, 7)])
        mate = np.full(8, -1, dtype=np.int64)
        done = augment_from_free_vertices(g, mate, max_augmentations=2)
        assert done == 2
        assert Matching(mate).size == 2

    def test_budget_none_exact(self):
        g = from_edges(4, [(0, 1), (1, 2), (2, 3)])
        mate = np.full(4, -1, dtype=np.int64)
        augment_from_free_vertices(g, mate)
        assert Matching(mate).size == 2
