"""Tests for the greedy maximal matching."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graphs.builder import from_edges
from repro.graphs.generators import clique_union
from repro.matching.blossom import mcm_exact
from repro.matching.greedy import greedy_maximal_matching


class TestGreedy:
    def test_empty_graph(self):
        assert greedy_maximal_matching(from_edges(3, [])).size == 0

    def test_deterministic_without_rng(self):
        g = clique_union(2, 6)
        a = greedy_maximal_matching(g)
        b = greedy_maximal_matching(g)
        assert a == b

    def test_randomized_is_valid(self, rng):
        g = clique_union(2, 6)
        m = greedy_maximal_matching(g, rng=rng)
        assert m.is_valid_for(g)
        assert m.is_maximal_for(g)

    def test_p4_trap(self, path4):
        """Greedy may pick the middle edge; still maximal, half-optimal."""
        m = greedy_maximal_matching(path4)
        assert m.is_maximal_for(path4)
        assert m.size >= 1


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=20),
    p=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_two_approximation(n, p, seed):
    """Maximality and the classical |M| >= |MCM|/2 bound."""
    rng = np.random.default_rng(seed)
    edges = [
        (u, v) for u in range(n) for v in range(u + 1, n)
        if rng.random() < p
    ]
    g = from_edges(n, edges)
    m = greedy_maximal_matching(g, rng=rng)
    assert m.is_valid_for(g)
    assert m.is_maximal_for(g)
    assert 2 * m.size >= mcm_exact(g).size
