"""Tests for König vertex-cover certificates."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.builder import from_edges
from repro.graphs.generators import random_bipartite
from repro.matching.greedy import greedy_maximal_matching
from repro.matching.hopcroft_karp import hopcroft_karp
from repro.matching.koenig import koenig_certificate, minimum_vertex_cover
from repro.matching.matching import Matching


class TestMinimumVertexCover:
    def test_path(self):
        g = from_edges(4, [(0, 1), (1, 2), (2, 3)])
        cover = minimum_vertex_cover(g)
        assert len(cover) == 2
        cover_set = set(cover)
        assert all(u in cover_set or v in cover_set for u, v in g.edges())

    def test_star_cover_is_center(self):
        g = from_edges(5, [(0, i) for i in range(1, 5)])
        assert minimum_vertex_cover(g) == (0,)

    def test_empty_graph(self):
        g = from_edges(3, [])
        assert minimum_vertex_cover(g) == ()

    def test_non_bipartite_raises(self, triangle):
        with pytest.raises(ValueError, match="not bipartite"):
            minimum_vertex_cover(triangle)

    def test_non_maximum_matching_rejected(self):
        g = from_edges(4, [(0, 1), (1, 2), (2, 3)])
        with pytest.raises(ValueError):
            minimum_vertex_cover(g, Matching.from_edges(4, [(1, 2)]))


class TestCertificate:
    def test_accepts_hk(self):
        g = random_bipartite(8, 9, 0.4, seed=0)
        assert koenig_certificate(g, hopcroft_karp(g))

    def test_rejects_submaximum(self):
        g = from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert not koenig_certificate(g, Matching.from_edges(4, [(1, 2)]))

    def test_non_bipartite_still_raises(self, triangle):
        with pytest.raises(ValueError, match="not bipartite"):
            koenig_certificate(triangle, Matching.empty(3))


@settings(max_examples=40, deadline=None)
@given(
    left=st.integers(min_value=1, max_value=10),
    right=st.integers(min_value=1, max_value=10),
    p=st.floats(min_value=0.05, max_value=0.95),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_koenig_equality_random_bipartite(left, right, p, seed):
    """|min vertex cover| == |max matching| and the cover covers."""
    g = random_bipartite(left, right, p, rng=np.random.default_rng(seed))
    hk = hopcroft_karp(g)
    cover = minimum_vertex_cover(g, hk)
    assert len(cover) == hk.size
    cover_set = set(cover)
    assert all(u in cover_set or v in cover_set for u, v in g.edges())
    # And the certificate correctly classifies greedy.
    greedy = greedy_maximal_matching(g, rng=np.random.default_rng(seed))
    assert koenig_certificate(g, greedy) == (greedy.size == hk.size)
