"""Tests for the phase-limited approximate matcher."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.builder import from_edges
from repro.graphs.generators import clique_union, erdos_renyi
from repro.matching.approx import mcm_approx, sweeps_for_epsilon
from repro.matching.blossom import mcm_exact


class TestSweepsForEpsilon:
    def test_values(self):
        assert sweeps_for_epsilon(1.0) == 2
        assert sweeps_for_epsilon(0.5) == 3
        assert sweeps_for_epsilon(0.25) == 5

    def test_invalid(self):
        with pytest.raises(ValueError):
            sweeps_for_epsilon(0.0)
        with pytest.raises(ValueError):
            sweeps_for_epsilon(-1.0)


class TestMcmApprox:
    def test_exhaustion_is_exact(self):
        g = erdos_renyi(20, 0.3, seed=0)
        assert mcm_approx(g).size == mcm_exact(g).size

    def test_both_args_rejected(self, triangle):
        with pytest.raises(ValueError, match="at most one"):
            mcm_approx(triangle, epsilon=0.5, sweeps=2)

    def test_negative_sweeps_rejected(self, triangle):
        with pytest.raises(ValueError):
            mcm_approx(triangle, sweeps=-1)

    def test_zero_sweeps_is_greedy_maximal(self, path4):
        m = mcm_approx(path4, sweeps=0)
        assert m.is_maximal_for(path4)

    def test_epsilon_beats_two_approx(self):
        g = clique_union(3, 10)
        opt = mcm_exact(g).size
        m = mcm_approx(g, epsilon=0.2, seed=1)
        assert opt <= (1 + 0.2) * m.size

    def test_valid_and_maximal(self, petersen):
        m = mcm_approx(petersen, epsilon=0.5)
        assert m.is_valid_for(petersen)
        assert m.is_maximal_for(petersen)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=18),
    p=st.floats(min_value=0.1, max_value=0.9),
    eps=st.sampled_from([0.5, 0.34, 0.2]),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_approximation_factor_empirical(n, p, eps, seed):
    """The (1+eps) factor holds empirically across random graphs."""
    rng = np.random.default_rng(seed)
    edges = [
        (u, v) for u in range(n) for v in range(u + 1, n)
        if rng.random() < p
    ]
    g = from_edges(n, edges)
    opt = mcm_exact(g).size
    approx = mcm_approx(g, epsilon=eps, rng=rng)
    assert approx.is_valid_for(g)
    assert opt <= (1 + eps) * approx.size + 1e-9
