"""Tests for counters, RNG plumbing, and timers."""

import pickle
from types import SimpleNamespace

import numpy as np
import pytest

from repro.instrument.counters import Counter, CounterSet
from repro.instrument.rng import (
    DRAW_METHODS,
    RngFingerprint,
    SanitizedGenerator,
    derive_rng,
    resolve_rng,
    rng_from_spec,
    rng_sanitize_enabled,
    rng_spec,
    sanitize_rng,
    spawn_rngs,
    stream_id,
)
from repro.instrument.timers import Timer

pytestmark = pytest.mark.fast


class TestCounter:
    def test_increment_add(self):
        c = Counter("x")
        c.increment()
        c.add(4)
        assert c.value == 5

    def test_negative_add_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").add(-1)

    def test_reset(self):
        c = Counter("x")
        c.add(3)
        c.reset()
        assert c.value == 0

    def test_merge_counter(self):
        a = Counter("probes")
        a.add(3)
        b = Counter("probes")
        b.add(4)
        assert a.merge(b).value == 7

    def test_merge_int(self):
        c = Counter("probes")
        c.add(1)
        c.merge(9)
        assert c.value == 10

    def test_merge_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").merge(-1)


class TestCounterSet:
    def test_lazy_creation(self):
        cs = CounterSet()
        cs["messages"].add(2)
        assert cs.value("messages") == 2
        assert cs.value("never-touched") == 0

    def test_snapshot_and_reset(self):
        cs = CounterSet()
        cs["a"].add(1)
        cs["b"].add(2)
        assert cs.snapshot() == {"a": 1, "b": 2}
        cs.reset()
        assert cs.snapshot() == {"a": 0, "b": 0}

    def test_merge_counterset(self):
        parent = CounterSet()
        parent["rounds"].add(2)
        child = CounterSet()
        child["rounds"].add(3)
        child["messages"].add(5)
        assert parent.merge(child) is parent
        assert parent.snapshot() == {"rounds": 5, "messages": 5}

    def test_merge_mapping(self):
        cs = CounterSet()
        cs.merge({"probes": 4})
        cs.merge({"probes": 6, "bits": 1})
        assert cs.snapshot() == {"probes": 10, "bits": 1}

    def test_merge_is_lossless_and_order_independent_in_totals(self):
        parts = []
        for i in range(4):
            part = CounterSet()
            part["work"].add(i + 1)
            parts.append(part)
        forward = CounterSet()
        for p in parts:
            forward.merge(p)
        backward = CounterSet()
        for p in reversed(parts):
            backward.merge(p)
        assert forward.snapshot() == backward.snapshot() == {"work": 10}


class TestRng:
    def test_derive_from_int_warns_and_works(self):
        with pytest.warns(DeprecationWarning, match="resolve_rng"):
            a = derive_rng(5)
        with pytest.warns(DeprecationWarning, match="resolve_rng"):
            b = derive_rng(5)
        assert a.integers(1000) == b.integers(1000)

    def test_derive_passthrough_warns(self):
        gen = np.random.default_rng(0)
        with pytest.warns(DeprecationWarning, match="resolve_rng"):
            assert derive_rng(gen) is gen

    def test_derive_none_warns(self):
        with pytest.warns(DeprecationWarning, match="resolve_rng"):
            assert isinstance(derive_rng(None), np.random.Generator)

    def test_spawn(self):
        children = spawn_rngs(resolve_rng(seed=1), 3)
        assert len(children) == 3
        draws = sorted(int(c.integers(10**9)) for c in children)
        assert len(set(draws)) == 3  # independent streams

    def test_spawn_negative(self):
        with pytest.raises(ValueError):
            spawn_rngs(resolve_rng(seed=1), -1)


class TestResolveRng:
    def test_seed_keyword(self):
        a = resolve_rng(seed=5)
        b = np.random.default_rng(5)
        assert a.integers(1000) == b.integers(1000)

    def test_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert resolve_rng(rng=gen) is gen

    def test_neither_gives_fresh_generator(self):
        assert isinstance(resolve_rng(), np.random.Generator)

    def test_both_rejected(self):
        with pytest.raises(ValueError):
            resolve_rng(seed=0, rng=np.random.default_rng(0))

    def test_int_via_rng_warns_but_works(self):
        with pytest.warns(DeprecationWarning, match="seed= keyword"):
            gen = resolve_rng(rng=7)
        assert gen.integers(1000) == np.random.default_rng(7).integers(1000)

    def test_generator_via_seed_warns_but_works(self):
        source = np.random.default_rng(3)
        with pytest.warns(DeprecationWarning, match="rng= keyword"):
            gen = resolve_rng(seed=source)
        assert gen is source

    def test_shim_still_accepted_by_public_api(self):
        from repro.core.sparsifier import build_sparsifier
        from repro.graphs.generators import clique

        g = clique(12)
        with pytest.warns(DeprecationWarning):
            old = build_sparsifier(g, 3, rng=0)
        new = build_sparsifier(g, 3, seed=0)
        assert sorted(old.subgraph.edges()) == sorted(new.subgraph.edges())


class TestStreamIdentity:
    def test_root_and_child_ids(self):
        root = np.random.default_rng(7)
        assert stream_id(root) == "7/root"
        child = root.spawn(1)[0]
        assert stream_id(child) == "7/0"

    def test_spec_round_trip_is_byte_identical(self):
        original = np.random.default_rng(42).spawn(3)[2]
        rebuilt = rng_from_spec(rng_spec(original))
        assert stream_id(rebuilt) == stream_id(original)
        assert list(original.integers(10**9, size=8)) == list(
            rebuilt.integers(10**9, size=8)
        )

    def test_spec_is_picklable_and_ordered(self):
        spec = rng_spec(np.random.default_rng(3))
        assert pickle.loads(pickle.dumps(spec)) == spec
        other = rng_spec(np.random.default_rng(4))
        assert sorted([other, spec]) == sorted([spec, other])

    def test_raw_bit_generator_state_is_rejected(self):
        bare = SimpleNamespace(bit_generator=SimpleNamespace(seed_seq=None))
        with pytest.raises(ValueError, match="SeedSequence"):
            stream_id(bare)


class TestSanitizedGenerator:
    def test_draws_match_plain_generator(self):
        plain = np.random.default_rng(11)
        wrapped = sanitize_rng(np.random.default_rng(11))
        assert list(plain.integers(100, size=5)) == list(
            wrapped.integers(100, size=5)
        )
        assert plain.normal() == wrapped.normal()

    def test_draw_counter(self):
        gen = sanitize_rng(np.random.default_rng(0))
        assert gen.draws == 0
        gen.integers(10)
        gen.normal(size=4)  # one call, one count, regardless of size
        assert gen.draws == 2
        assert gen.fingerprint() == RngFingerprint(stream="0/root", draws=2)

    def test_sanitize_is_idempotent(self):
        gen = sanitize_rng(np.random.default_rng(0))
        assert sanitize_rng(gen) is gen

    def test_sanitize_continues_the_stream(self):
        plain = np.random.default_rng(9)
        reference = np.random.default_rng(9)
        reference.integers(100, size=3)
        plain.integers(100, size=3)
        wrapped = sanitize_rng(plain)
        assert wrapped.integers(10**9) == reference.integers(10**9)

    def test_spawn_returns_sanitized_children(self):
        children = spawn_rngs(sanitize_rng(np.random.default_rng(5)), 2)
        assert all(isinstance(c, SanitizedGenerator) for c in children)
        assert [c.stream for c in children] == ["5/0", "5/1"]

    def test_pickle_preserves_class_and_counter(self):
        gen = sanitize_rng(np.random.default_rng(8))
        gen.integers(100, size=2)
        clone = pickle.loads(pickle.dumps(gen))
        assert isinstance(clone, SanitizedGenerator)
        assert clone.draws == 1
        assert clone.integers(10**9) == gen.integers(10**9)

    def test_rng_from_spec_sanitizes_when_enabled(self, monkeypatch):
        spec = rng_spec(np.random.default_rng(2))
        monkeypatch.delenv("REPRO_RNG_SANITIZE", raising=False)
        assert not isinstance(rng_from_spec(spec), SanitizedGenerator)
        monkeypatch.setenv("REPRO_RNG_SANITIZE", "1")
        assert rng_sanitize_enabled()
        assert isinstance(rng_from_spec(spec), SanitizedGenerator)


def test_draw_methods_agree_with_static_analyzer():
    from repro.lint.flow import DRAW_METHODS as ANALYZER_DRAW_METHODS

    assert DRAW_METHODS == ANALYZER_DRAW_METHODS


def test_draw_methods_exist_on_numpy_generator():
    for name in DRAW_METHODS:
        assert callable(getattr(np.random.Generator, name))


def test_timer():
    with Timer() as t:
        sum(range(100))
    assert t.elapsed >= 0.0
