"""Tests for counters, RNG plumbing, and timers."""

import numpy as np
import pytest

from repro.instrument.counters import Counter, CounterSet
from repro.instrument.rng import derive_rng, resolve_rng, spawn_rngs
from repro.instrument.timers import Timer

pytestmark = pytest.mark.fast


class TestCounter:
    def test_increment_add(self):
        c = Counter("x")
        c.increment()
        c.add(4)
        assert c.value == 5

    def test_negative_add_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").add(-1)

    def test_reset(self):
        c = Counter("x")
        c.add(3)
        c.reset()
        assert c.value == 0

    def test_merge_counter(self):
        a = Counter("probes")
        a.add(3)
        b = Counter("probes")
        b.add(4)
        assert a.merge(b).value == 7

    def test_merge_int(self):
        c = Counter("probes")
        c.add(1)
        c.merge(9)
        assert c.value == 10

    def test_merge_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").merge(-1)


class TestCounterSet:
    def test_lazy_creation(self):
        cs = CounterSet()
        cs["messages"].add(2)
        assert cs.value("messages") == 2
        assert cs.value("never-touched") == 0

    def test_snapshot_and_reset(self):
        cs = CounterSet()
        cs["a"].add(1)
        cs["b"].add(2)
        assert cs.snapshot() == {"a": 1, "b": 2}
        cs.reset()
        assert cs.snapshot() == {"a": 0, "b": 0}

    def test_merge_counterset(self):
        parent = CounterSet()
        parent["rounds"].add(2)
        child = CounterSet()
        child["rounds"].add(3)
        child["messages"].add(5)
        assert parent.merge(child) is parent
        assert parent.snapshot() == {"rounds": 5, "messages": 5}

    def test_merge_mapping(self):
        cs = CounterSet()
        cs.merge({"probes": 4})
        cs.merge({"probes": 6, "bits": 1})
        assert cs.snapshot() == {"probes": 10, "bits": 1}

    def test_merge_is_lossless_and_order_independent_in_totals(self):
        parts = []
        for i in range(4):
            part = CounterSet()
            part["work"].add(i + 1)
            parts.append(part)
        forward = CounterSet()
        for p in parts:
            forward.merge(p)
        backward = CounterSet()
        for p in reversed(parts):
            backward.merge(p)
        assert forward.snapshot() == backward.snapshot() == {"work": 10}


class TestRng:
    def test_derive_from_int(self):
        a = derive_rng(5)
        b = derive_rng(5)
        assert a.integers(1000) == b.integers(1000)

    def test_derive_passthrough(self):
        gen = np.random.default_rng(0)
        assert derive_rng(gen) is gen

    def test_derive_none(self):
        assert isinstance(derive_rng(None), np.random.Generator)

    def test_spawn(self):
        children = spawn_rngs(derive_rng(1), 3)
        assert len(children) == 3
        draws = {int(c.integers(10**9)) for c in children}
        assert len(draws) == 3  # independent streams

    def test_spawn_negative(self):
        with pytest.raises(ValueError):
            spawn_rngs(derive_rng(1), -1)


class TestResolveRng:
    def test_seed_keyword(self):
        a = resolve_rng(seed=5)
        b = np.random.default_rng(5)
        assert a.integers(1000) == b.integers(1000)

    def test_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert resolve_rng(rng=gen) is gen

    def test_neither_gives_fresh_generator(self):
        assert isinstance(resolve_rng(), np.random.Generator)

    def test_both_rejected(self):
        with pytest.raises(ValueError):
            resolve_rng(seed=0, rng=np.random.default_rng(0))

    def test_int_via_rng_warns_but_works(self):
        with pytest.warns(DeprecationWarning, match="seed= keyword"):
            gen = resolve_rng(rng=7)
        assert gen.integers(1000) == np.random.default_rng(7).integers(1000)

    def test_generator_via_seed_warns_but_works(self):
        source = np.random.default_rng(3)
        with pytest.warns(DeprecationWarning, match="rng= keyword"):
            gen = resolve_rng(seed=source)
        assert gen is source

    def test_shim_still_accepted_by_public_api(self):
        from repro.core.sparsifier import build_sparsifier
        from repro.graphs.generators import clique

        g = clique(12)
        with pytest.warns(DeprecationWarning):
            old = build_sparsifier(g, 3, rng=0)
        new = build_sparsifier(g, 3, seed=0)
        assert sorted(old.subgraph.edges()) == sorted(new.subgraph.edges())


def test_timer():
    with Timer() as t:
        sum(range(100))
    assert t.elapsed >= 0.0
