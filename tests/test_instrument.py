"""Tests for counters, RNG plumbing, and timers."""

import numpy as np
import pytest

from repro.instrument.counters import Counter, CounterSet
from repro.instrument.rng import derive_rng, spawn_rngs
from repro.instrument.timers import Timer


class TestCounter:
    def test_increment_add(self):
        c = Counter("x")
        c.increment()
        c.add(4)
        assert c.value == 5

    def test_negative_add_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").add(-1)

    def test_reset(self):
        c = Counter("x")
        c.add(3)
        c.reset()
        assert c.value == 0


class TestCounterSet:
    def test_lazy_creation(self):
        cs = CounterSet()
        cs["messages"].add(2)
        assert cs.value("messages") == 2
        assert cs.value("never-touched") == 0

    def test_snapshot_and_reset(self):
        cs = CounterSet()
        cs["a"].add(1)
        cs["b"].add(2)
        assert cs.snapshot() == {"a": 1, "b": 2}
        cs.reset()
        assert cs.snapshot() == {"a": 0, "b": 0}


class TestRng:
    def test_derive_from_int(self):
        a = derive_rng(5)
        b = derive_rng(5)
        assert a.integers(1000) == b.integers(1000)

    def test_derive_passthrough(self):
        gen = np.random.default_rng(0)
        assert derive_rng(gen) is gen

    def test_derive_none(self):
        assert isinstance(derive_rng(None), np.random.Generator)

    def test_spawn(self):
        children = spawn_rngs(derive_rng(1), 3)
        assert len(children) == 3
        draws = {int(c.integers(10**9)) for c in children}
        assert len(draws) == 3  # independent streams

    def test_spawn_negative(self):
        with pytest.raises(ValueError):
            spawn_rngs(derive_rng(1), -1)


def test_timer():
    with Timer() as t:
        sum(range(100))
    assert t.elapsed >= 0.0
