"""Distributed elimination of short augmenting paths → (1+1/k)-approx MCM.

This is the improvement engine standing in for Even–Medina–Ron [34]
(DESIGN.md §4(2)).  Given a maximal matching on a bounded-degree graph, it
repeatedly finds and applies a vertex-disjoint set of augmenting paths of
length ≤ 2k−1, until none exist.  By the Hopcroft–Karp lemma, a matching
with no augmenting path shorter than 2k+1 is a (1+1/k)-approximation, so
running with k = ⌈1/ε⌉ yields (1+ε).

Each outer *iteration* is a genuinely local computation:

1. **Ball flooding** (L = 2k−1 rounds): every vertex repeatedly sends its
   accumulated (edge, matched?) knowledge to all neighbors; afterwards
   each vertex knows its radius-L ball and the matching inside it.
2. **Candidate paths**: every free vertex locally and *exhaustively*
   enumerates alternating simple paths of length ≤ L from itself to
   another free vertex in its ball, keeps the first one found, and tags
   it with a random priority.  Exhaustive bounded-length search is exact,
   which is what certifies termination ⇒ no short augmenting path.
3. **Candidate flooding** (2L rounds): candidate descriptors travel far
   enough that any two vertex-sharing candidates see each other.
4. **Resolution + announce** (1 round): a candidate wins iff its
   (priority, initiator) pair is strictly smallest among all candidates
   it shares a vertex with; winners are vertex-disjoint by construction
   and are augmented; endpoints announce their new matched status.

The globally smallest candidate always wins, so every iteration makes
progress and the loop terminates within |MCM| iterations (far fewer in
practice — geometrically many disjoint winners per iteration).
"""

from __future__ import annotations

import numpy as np

from repro.distributed.network import Message, Protocol, SyncNetwork
from repro.instrument.rng import resolve_rng
from repro.matching.matching import Matching

Edge = tuple[int, int]


def _norm(u: int, v: int) -> Edge:
    return (u, v) if u < v else (v, u)


def find_short_augmenting_path(
    edges_matched: dict[Edge, bool],
    start: int,
    mate: dict[int, int],
    max_len: int,
) -> list[int] | None:
    """Exhaustive DFS for an alternating simple path of length ≤ max_len
    from free vertex ``start`` to a different free vertex.

    ``edges_matched`` maps each known edge to whether it is matched.
    Exactness for bounded length: the search explores *all* alternating
    simple paths up to the bound, so it returns None iff none exists
    within the known ball.
    """
    adjacency: dict[int, list[int]] = {}
    for (a, b) in edges_matched:
        adjacency.setdefault(a, []).append(b)
        adjacency.setdefault(b, []).append(a)

    path = [start]
    on_path = {start}

    def dfs(v: int, need_matched: bool, length: int) -> list[int] | None:
        if length >= max_len:
            return None
        for u in adjacency.get(v, ()):
            if u in on_path:
                continue
            if edges_matched[_norm(v, u)] != need_matched:
                continue
            path.append(u)
            on_path.add(u)
            if not need_matched and mate.get(u, -1) == -1 and u != start:
                return list(path)  # ends free via an unmatched edge
            result = dfs(u, not need_matched, length + 1)
            if result is not None:
                return result
            path.pop()
            on_path.remove(u)
        return None

    return dfs(start, need_matched=False, length=0)


class AugmentingPathEliminationProtocol(Protocol):
    """The iterative short-augmenting-path eliminator described above.

    Parameters
    ----------
    k:
        Path-length parameter; eliminates augmenting paths of length
        ≤ 2k−1, yielding a (1+1/k)-approximate MCM.
    initial_mate:
        Mate dict of the starting (maximal) matching on the network graph.
    rng:
        Seed or generator for candidate priorities.
    """

    def __init__(
        self,
        k: int,
        initial_mate: dict[int, int],
        rng: np.random.Generator | int | None = None,
        *,
        seed: int | None = None,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.max_len = 2 * k - 1
        self.mate = dict(initial_mate)
        self._rng = resolve_rng(
            seed=seed, rng=rng, owner="AugmentingPathEliminationProtocol"
        )
        self.iterations = 0

    # -- per-iteration state ------------------------------------------- #
    def setup(self, network: SyncNetwork) -> None:
        self._begin_iteration(network)
        self._done = False
        self._awaiting_first = True
        self.iterations = 0

    def _begin_iteration(self, network: SyncNetwork) -> None:
        n = network.graph.num_vertices
        self._step = 0
        # knowledge[v]: edge -> matched flag, seeded with own incident edges.
        self._knowledge: list[dict[Edge, bool]] = [dict() for _ in range(n)]
        for v in range(n):
            for u in network.neighbors(v):
                e = _norm(v, u)
                self._knowledge[v][e] = self.mate.get(v, -1) == u
        # candidates[v]: (priority, initiator, path) known to v.
        self._candidates: list[dict[int, tuple[float, int, tuple[int, ...]]]] = [
            dict() for _ in range(n)
        ]
        self._progress = False

    def round(self, network: SyncNetwork, v: int, inbox: list[Message]) -> list[Message]:
        L = self.max_len
        step = self._step
        if step < L:
            # Ball flooding: merge inbox, forward current knowledge.
            # (Round 0 may also see stray "changed" announcements from the
            # previous iteration's last round; ignore non-dict payloads.)
            for msg in inbox:
                if isinstance(msg.payload, dict):
                    self._knowledge[v].update(msg.payload)
            payload = dict(self._knowledge[v])
            return [
                Message(src=v, dst=u, payload=payload, bits=32 * max(1, len(payload)))
                for u in network.neighbors(v)
            ]
        if step == L:
            # Merge the final flood round, then compute own candidate.
            for msg in inbox:
                if isinstance(msg.payload, dict):
                    self._knowledge[v].update(msg.payload)
            if self.mate.get(v, -1) == -1:
                found = find_short_augmenting_path(
                    self._knowledge[v], v, self.mate, self.max_len
                )
                if found is not None:
                    priority = float(self._rng.random())
                    self._candidates[v][v] = (priority, v, tuple(found))
            # fall through to flooding candidates (first candidate round).
        if L <= step < 3 * L:
            for msg in inbox:
                if isinstance(msg.payload, dict) and step > L:
                    self._candidates[v].update(msg.payload)
            payload = dict(self._candidates[v])
            if not payload:
                return []
            return [
                Message(src=v, dst=u, payload=payload, bits=64 * len(payload))
                for u in network.neighbors(v)
            ]
        # step == 3L: final merge; winners resolve and announce.
        for msg in inbox:
            if isinstance(msg.payload, dict):
                self._candidates[v].update(msg.payload)
        out: list[Message] = []
        cand = self._candidates[v].get(v)
        if cand is not None and self._wins(v, cand):
            self._augment(cand[2])
            self._progress = True
            out = [
                Message(src=v, dst=u, payload="changed", bits=1)
                for u in network.neighbors(v)
            ]
        return out

    def _wins(self, initiator: int, cand: tuple[float, int, tuple[int, ...]]) -> bool:
        """Strictly-smallest (priority, initiator) among vertex-sharing
        candidates the initiator knows; flooding radius guarantees it
        knows every conflicting candidate."""
        _, _, path = cand
        mine = (cand[0], cand[1])
        path_set = set(path)
        for known in self._candidates[initiator].values():
            if known[1] == initiator:
                continue
            if path_set & set(known[2]) and (known[0], known[1]) < mine:
                return False
        return True

    def _augment(self, path: tuple[int, ...]) -> None:
        """Flip edges along the (odd-length, free-ended) augmenting path.

        Every path vertex gets a new mate, and vertices off the path never
        pointed at path vertices (interior old mates lie on the path and
        endpoints were free), so pairwise reassignment is consistent.
        """
        for i in range(1, len(path), 2):
            a, b = path[i - 1], path[i]
            self.mate[a] = b
            self.mate[b] = a

    def finished(self, network: SyncNetwork) -> bool:
        if self._done:
            return True
        if self._awaiting_first:
            self._awaiting_first = False
            return False  # run round 0
        if self._step < 3 * self.max_len:
            self._step += 1
            return False
        # The resolution round (step 3L) just executed: iteration boundary.
        self.iterations += 1
        if not self._progress:
            self._done = True
            return True
        self._begin_iteration(network)
        return False

    @property
    def matching(self) -> Matching:
        """Current matching as a :class:`Matching` (n inferred from mate)."""
        n = max(self.mate) + 1 if self.mate else 0
        arr = np.full(n, -1, dtype=np.int64)
        for v, u in self.mate.items():
            arr[v] = u
        return Matching(arr)
