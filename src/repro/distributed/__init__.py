"""Distributed algorithms (Theorems 3.2 and 3.3) on a simulated network.

The simulator (:mod:`repro.distributed.network`) runs fault-free
synchronous rounds in the LOCAL/CONGEST style with unicast support and
exact round/message/bit accounting — the paper's round- and
message-complexity claims are counting statements, so the simulator
reproduces them exactly.
"""

from repro.distributed.network import Message, Protocol, SyncNetwork
from repro.distributed.dynamic_network import DynamicDistributedSparsifier
from repro.distributed.sparsify_round import (
    BroadcastSparsifierProtocol,
    SparsifierProtocol,
)
from repro.distributed.solomon_round import SolomonProtocol
from repro.distributed.maximal_matching import RandomizedMatchingProtocol
from repro.distributed.improvement import AugmentingPathEliminationProtocol
from repro.distributed.pipeline import (
    DistributedRunReport,
    distributed_approx_matching,
    distributed_baseline_matching,
)

__all__ = [
    "AugmentingPathEliminationProtocol",
    "BroadcastSparsifierProtocol",
    "DistributedRunReport",
    "DynamicDistributedSparsifier",
    "Message",
    "Protocol",
    "RandomizedMatchingProtocol",
    "SolomonProtocol",
    "SparsifierProtocol",
    "SyncNetwork",
    "distributed_approx_matching",
    "distributed_baseline_matching",
]
