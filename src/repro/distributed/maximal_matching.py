"""Randomized distributed maximal matching (Israeli–Itai style [53]).

Repeated three-round phases on the communication graph:

1. **Propose** — every free vertex flips a fair coin; heads become
   *senders* and send a 1-bit proposal to one uniformly random neighbor
   they believe to be free.
2. **Accept** — free *receivers* (tails) pick one incoming proposal
   uniformly and send back a 1-bit accept; a (sender, receiver) pair with
   a delivered accept is matched.  Accepts of distinct receivers go to
   distinct senders, so the matched pairs are vertex-disjoint.
3. **Announce** — newly matched vertices tell all their neighbors, who
   prune them from their free-neighbor lists.

Each phase removes a constant fraction of the "live" edges in
expectation, so O(log n) phases suffice with high probability — this is
the O(log n)-round randomized stand-in for the deterministic log*-round
machinery of Even et al. [34] (DESIGN.md §4(2)).  Run on a sparsifier of
maximum degree D, each phase costs O(n·D) messages.

Termination is detected by the simulator's global view (a real network
would piggyback a convergecast; we exclude that bookkeeping from the
counts, as is conventional).
"""

from __future__ import annotations

import numpy as np

from repro.distributed.network import Message, Protocol, SyncNetwork
from repro.instrument.rng import resolve_rng
from repro.matching.matching import Matching


class RandomizedMatchingProtocol(Protocol):
    """Distributed maximal matching; result in :attr:`matching` after run.

    Parameters
    ----------
    rng:
        Seed or generator (split per vertex).
    """

    _PROPOSE, _ACCEPT, _ANNOUNCE = 0, 1, 2

    def __init__(
        self,
        rng: np.random.Generator | int | None = None,
        *,
        seed: int | None = None,
    ) -> None:
        self._rng = resolve_rng(
            seed=seed, rng=rng, owner="RandomizedMatchingProtocol"
        )
        self.mate: dict[int, int] = {}
        self.phase_count = 0

    def setup(self, network: SyncNetwork) -> None:
        n = network.graph.num_vertices
        self._vertex_rngs = self._rng.spawn(n)
        self.mate = {v: -1 for v in range(n)}
        self._free_nbrs: dict[int, set[int]] = {
            v: set(network.neighbors(v)) for v in range(n)
        }
        self._stage = self._PROPOSE
        self._is_sender: dict[int, bool] = {}
        self._just_matched: set[int] = set()
        self.phase_count = 0

    # ------------------------------------------------------------------ #
    def _live(self, v: int) -> bool:
        """Free with at least one free neighbor — still has work to do."""
        return self.mate[v] == -1 and bool(self._free_nbrs[v])

    def round(self, network: SyncNetwork, v: int, inbox: list[Message]) -> list[Message]:
        if self._stage == self._PROPOSE:
            if not self._live(v):
                return []
            rng = self._vertex_rngs[v]
            sender = bool(rng.integers(2))
            self._is_sender[v] = sender
            if not sender:
                return []
            target = int(rng.choice(sorted(self._free_nbrs[v])))
            return [Message(src=v, dst=target, payload="propose", bits=1)]

        if self._stage == self._ACCEPT:
            # Only free receivers respond; proposals to matched/sender
            # vertices are dropped.
            if self.mate[v] != -1 or self._is_sender.get(v, False):
                return []
            proposals = [m.src for m in inbox if self.mate[m.src] == -1]
            if not proposals:
                return []
            chosen = int(self._vertex_rngs[v].choice(sorted(proposals)))
            # The accept seals the match; both sides record it here (the
            # sender learns via the delivered accept in the next stage).
            self.mate[v] = chosen
            self.mate[chosen] = v
            self._just_matched.update((v, chosen))
            return [Message(src=v, dst=chosen, payload="accept", bits=1)]

        # _ANNOUNCE stage: newly matched vertices notify neighbors.
        if v in self._just_matched:
            return [
                Message(src=v, dst=u, payload="matched", bits=1)
                for u in network.neighbors(v)
            ]
        return []

    def finished(self, network: SyncNetwork) -> bool:
        if self._stage == self._PROPOSE:
            if not any(self._live(v) for v in self.mate):
                return True
            self._stage = self._ACCEPT
            return False
        if self._stage == self._ACCEPT:
            self._stage = self._ANNOUNCE
            return False
        # End of announce: apply prunes (receivers of "matched" messages
        # do it in finalize/next inbox; we prune from the global state the
        # simulator keeps since the messages were genuinely sent).
        for w in self._just_matched:
            for u in list(self._free_nbrs):
                self._free_nbrs[u].discard(w)
        self._just_matched.clear()
        self._is_sender.clear()
        self._stage = self._PROPOSE
        self.phase_count += 1
        return False

    @property
    def matching(self) -> Matching:
        """The computed matching as a :class:`Matching`."""
        n = len(self.mate)
        mate = np.full(n, -1, dtype=np.int64)
        for v, u in self.mate.items():
            mate[v] = u
        return Matching(mate)
