"""The one-round distributed construction of G_Δ (Section 3.2).

**Unicast mode** (:class:`SparsifierProtocol`, the default): each
processor locally marks Δ random incident edges and sends a **1-bit**
message along each marked edge; an edge belongs to G_Δ iff at least one
of its endpoints marked it.  After the single round, both endpoints of
every sparsifier edge know it (they marked it or received the bit).
Total messages = Σ_v min(Δ, deg v) ≤ n·Δ — the sublinear message bound
of Theorem 3.3's first stage.

**Broadcast mode** (:class:`BroadcastSparsifierProtocol`): §3.2's second
paragraph notes that if transmissions are broadcast (every message
reaches *all* neighbors), a single round still suffices but each message
must carry the list of marked ports — O(Δ·log n) bits — and every edge
carries a message.  Implemented for the contrast: same output
distribution, 2m messages, Δ·⌈log₂ n⌉ bits each.

Identifiers are not needed for the sampling (the KT₀ remark in §3.2):
a node marks *ports*, not ids.
"""

from __future__ import annotations

import math

import numpy as np

from repro.distributed.network import Message, Protocol, SyncNetwork
from repro.instrument.rng import resolve_rng


class SparsifierProtocol(Protocol):
    """One-round protocol computing G_Δ.

    After :meth:`SyncNetwork.run` completes, :attr:`edges` holds E(G_Δ)
    and :attr:`known_by` maps each vertex to the sparsifier edges it knows
    about locally (its own marks plus received marks).

    Parameters
    ----------
    delta:
        Marks per vertex.
    rng:
        Seed or generator; split per vertex for independence
        (Observation 2.9).
    """

    def __init__(
        self,
        delta: int,
        rng: np.random.Generator | int | None = None,
        *,
        seed: int | None = None,
    ) -> None:
        if delta < 1:
            raise ValueError(f"delta must be >= 1, got {delta}")
        self.delta = delta
        self._rng = resolve_rng(
            seed=seed, rng=rng, owner="SparsifierProtocol"
        )
        self._sent = False
        self.edges: set[tuple[int, int]] = set()
        self.known_by: dict[int, set[int]] = {}

    def setup(self, network: SyncNetwork) -> None:
        self._sent = False
        self.edges = set()
        self.known_by = {v: set() for v in range(network.graph.num_vertices)}
        self._vertex_rngs = self._rng.spawn(network.graph.num_vertices)

    def round(self, network: SyncNetwork, v: int, inbox: list[Message]) -> list[Message]:
        deg = network.degree(v)
        k = min(self.delta, deg)
        if k == 0:
            return []
        ports = self._vertex_rngs[v].choice(deg, size=k, replace=False)
        out: list[Message] = []
        for port in ports:
            u = int(network.graph.neighbor(v, int(port)))
            self.edges.add((v, u) if v < u else (u, v))
            self.known_by[v].add(u)
            out.append(Message(src=v, dst=u, payload="mark", bits=1))
        return out

    def finished(self, network: SyncNetwork) -> bool:
        if not self._sent:
            self._sent = True
            return False
        return True

    def finalize(self, network: SyncNetwork, v: int, inbox: list[Message]) -> None:
        # Receiving the final-round marks is free; v learns which incident
        # edges its neighbors marked.
        for msg in inbox:
            self.known_by[v].add(msg.src)


class BroadcastSparsifierProtocol(Protocol):
    """One-round G_Δ under broadcast transmissions (§3.2, paragraph 2).

    Every vertex broadcasts its full list of marked ports to *all*
    neighbors: 2m messages of Δ·⌈log₂ n⌉ bits each, versus unicast's
    ≤ n·Δ one-bit messages.  The computed edge set has exactly the same
    distribution as :class:`SparsifierProtocol`'s; only the communication
    cost differs — experiment tables use the pair to reproduce the
    paper's unicast-vs-broadcast cost contrast.

    Parameters
    ----------
    delta:
        Marks per vertex.
    rng:
        Seed or generator (split per vertex).
    """

    def __init__(
        self,
        delta: int,
        rng: np.random.Generator | int | None = None,
        *,
        seed: int | None = None,
    ) -> None:
        if delta < 1:
            raise ValueError(f"delta must be >= 1, got {delta}")
        self.delta = delta
        self._rng = resolve_rng(
            seed=seed, rng=rng, owner="BroadcastSparsifierProtocol"
        )
        self._sent = False
        self.edges: set[tuple[int, int]] = set()

    def setup(self, network: SyncNetwork) -> None:
        self._sent = False
        self.edges = set()
        self._vertex_rngs = self._rng.spawn(network.graph.num_vertices)
        n = max(2, network.graph.num_vertices)
        self._id_bits = math.ceil(math.log2(n))

    def round(self, network: SyncNetwork, v: int, inbox: list[Message]) -> list[Message]:
        deg = network.degree(v)
        k = min(self.delta, deg)
        if k == 0:
            return []
        ports = self._vertex_rngs[v].choice(deg, size=k, replace=False)
        marked = sorted(int(network.graph.neighbor(v, int(p))) for p in ports)
        for u in marked:
            self.edges.add((v, u) if v < u else (u, v))
        # Broadcast: the same (port-list) payload goes to EVERY neighbor,
        # marked or not — that is what broadcast means, and why the cost
        # is 2m messages of Delta*log(n) bits.
        payload = tuple(marked)
        bits = max(1, len(marked)) * self._id_bits
        return [
            Message(src=v, dst=u, payload=payload, bits=bits)
            for u in network.neighbors(v)
        ]

    def finished(self, network: SyncNetwork) -> bool:
        if not self._sent:
            self._sent = True
            return False
        return True

    def finalize(self, network: SyncNetwork, v: int, inbox: list[Message]) -> None:
        for msg in inbox:
            if v in msg.payload:
                a, b = msg.src, v
                self.edges.add((a, b) if a < b else (b, a))
