"""Synchronous message-passing network simulator (LOCAL / CONGEST).

Model (Section 3.2): processors wake simultaneously; computation proceeds
in fault-free synchronous rounds; in each round every processor may send a
message along each incident edge (unicast: to any *subset* of neighbors,
which is what enables the paper's 1-bit sparsifier round and its sublinear
message complexity).

The simulator charges three counters per run:

* ``rounds`` — synchronous rounds executed;
* ``messages`` — individual point-to-point messages delivered;
* ``bits`` — total message payload size (a payload's ``bit_size``).

Protocols subclass :class:`Protocol`; they only see their own node-local
state and inboxes, so information locality is enforced by construction
(a protocol that wants remote information must pay rounds and messages
for it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.graphs.adjacency import AdjacencyArrayGraph
from repro.instrument.counters import CounterSet


@dataclass(frozen=True)
class Message:
    """A point-to-point message.

    Attributes
    ----------
    src, dst:
        Endpoint vertex ids; must be adjacent in the communication graph.
    payload:
        Arbitrary content.
    bits:
        Declared payload size in bits (1 for the sparsifier's mark
        messages; O(log n) for id-carrying messages in CONGEST).
    """

    src: int
    dst: int
    payload: Any
    bits: int = 1


class Protocol:
    """Base class for synchronous protocols.

    Lifecycle: the network calls :meth:`setup` once, then repeatedly calls
    :meth:`round` for every vertex (same round number for all vertices,
    with the inbox holding messages sent to it in the previous round)
    until :meth:`finished` returns True or the round limit is reached.
    """

    def setup(self, network: "SyncNetwork") -> None:
        """One-time initialization; may inspect only local structure."""

    def round(self, network: "SyncNetwork", v: int, inbox: list[Message]) -> list[Message]:
        """Compute vertex ``v``'s round: consume inbox, emit messages."""
        raise NotImplementedError

    def finished(self, network: "SyncNetwork") -> bool:
        """Global termination predicate (evaluated between rounds)."""
        raise NotImplementedError

    def finalize(self, network: "SyncNetwork", v: int, inbox: list[Message]) -> None:
        """Deliver messages sent in the final round (no reply possible).

        Receiving is free in the synchronous model: messages sent in the
        last round reach their destinations without a further round being
        charged.  Default: drop them.
        """


@dataclass
class SyncNetwork:
    """The synchronous network over a communication graph.

    Attributes
    ----------
    graph:
        Communication topology; messages may travel only along its edges.
    metrics:
        ``rounds`` / ``messages`` / ``bits`` counters, cumulative across
        :meth:`run` calls (protocol pipelines compose on one network, so
        the totals are end-to-end — exactly what Theorem 3.3 counts).
    """

    graph: AdjacencyArrayGraph
    metrics: CounterSet = field(default_factory=CounterSet)

    def degree(self, v: int) -> int:
        """Local degree — free for a node to know (its port count)."""
        return int(self.graph.indptr[v + 1] - self.graph.indptr[v])

    def neighbors(self, v: int) -> list[int]:
        """v's neighbor list (its ports)."""
        return [int(u) for u in self.graph.neighbors_array(v)]

    def run(self, protocol: Protocol, max_rounds: int) -> int:
        """Execute ``protocol`` until it finishes; returns rounds used.

        Raises
        ------
        RuntimeError
            If ``max_rounds`` elapse without termination, or a protocol
            emits a message along a non-edge (a model violation).
        """
        n = self.graph.num_vertices
        protocol.setup(self)
        inboxes: list[list[Message]] = [[] for _ in range(n)]
        rounds_used = 0
        while not protocol.finished(self):
            if rounds_used >= max_rounds:
                raise RuntimeError(
                    f"protocol {type(protocol).__name__} exceeded {max_rounds} rounds"
                )
            next_inboxes: list[list[Message]] = [[] for _ in range(n)]
            for v in range(n):
                for msg in protocol.round(self, v, inboxes[v]):
                    if msg.src != v:
                        raise RuntimeError(f"vertex {v} forged src={msg.src}")
                    if not self.graph.has_edge(msg.src, msg.dst):
                        raise RuntimeError(
                            f"message along non-edge ({msg.src}, {msg.dst})"
                        )
                    self.metrics["messages"].increment()
                    self.metrics["bits"].add(msg.bits)
                    next_inboxes[msg.dst].append(msg)
            inboxes = next_inboxes
            rounds_used += 1
            self.metrics["rounds"].increment()
        for v in range(n):
            if inboxes[v]:
                protocol.finalize(self, v, inboxes[v])
        return rounds_used
