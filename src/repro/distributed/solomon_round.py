"""One-round distributed Solomon (ITCS'18) bounded-degree sparsifier.

On a graph of arboricity ≤ α (for us: G_Δ, with α ≤ 2Δ by Obs 2.12),
every vertex marks Δ_α arbitrary incident edges (its first Δ_α ports) and
sends a 1-bit message along each; an edge survives iff **both** endpoints
marked it — which each endpoint detects locally by pairing its own mark
with the received bit.  Maximum degree of the output is ≤ Δ_α by
construction.
"""

from __future__ import annotations

from repro.distributed.network import Message, Protocol, SyncNetwork


class SolomonProtocol(Protocol):
    """One-round mutual-marking protocol.

    After the run, :attr:`edges` holds the surviving (mutually marked)
    edges.

    Parameters
    ----------
    degree_bound:
        Δ_α, the number of ports each vertex marks (= output max degree).
    """

    def __init__(self, degree_bound: int) -> None:
        if degree_bound < 1:
            raise ValueError(f"degree_bound must be >= 1, got {degree_bound}")
        self.degree_bound = degree_bound
        self._sent = False
        self._marked: dict[int, set[int]] = {}
        self.edges: set[tuple[int, int]] = set()

    def setup(self, network: SyncNetwork) -> None:
        self._sent = False
        self._marked = {}
        self.edges = set()

    def round(self, network: SyncNetwork, v: int, inbox: list[Message]) -> list[Message]:
        deg = network.degree(v)
        k = min(self.degree_bound, deg)
        mine = {int(network.graph.neighbor(v, port)) for port in range(k)}
        self._marked[v] = mine
        return [Message(src=v, dst=u, payload="mark", bits=1) for u in mine]

    def finished(self, network: SyncNetwork) -> bool:
        if not self._sent:
            self._sent = True
            return False
        return True

    def finalize(self, network: SyncNetwork, v: int, inbox: list[Message]) -> None:
        # v keeps edge (v, u) iff it marked u and u marked v.
        for msg in inbox:
            u = msg.src
            if u in self._marked.get(v, ()):
                self.edges.add((v, u) if v < u else (u, v))
