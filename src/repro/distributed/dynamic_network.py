"""Maintaining G_Δ in a dynamically changing distributed network.

The third setting named in Section 3's opening: "the dynamic distributed
model (where some graph structure has to be maintained in a dynamically
changing distributed network using low local memory at processors,
cf. [7, 27, 56, 75])".  The structure we maintain is the sparsifier
itself, and the protocol is the distributed twin of
:class:`~repro.dynamic.dynamic_sparsifier.DynamicSparsifier`:

* When edge (u, v) is inserted or deleted, only the two endpoint
  processors act: each discards its current marks (sending a 1-bit
  *unmark* along each), resamples Δ random incident edges from its new
  neighborhood, and sends a 1-bit *mark* along each.
* Every processor stores only its own marks (≤ Δ ids) and the set of
  neighbors that marked it — low local memory, measured exactly.
* Message cost per update is ≤ 2·(Δ_old + Δ_new) + O(1) ≤ 4Δ + O(1)
  1-bit messages, independent of n and of the graph's density.

Against an oblivious adversary the maintained edge set is distributed
exactly as a fresh G_Δ (only the updated endpoints' marks are resampled;
all marks remain independent and uniform), so Theorem 2.1 applies at
every time step.
"""

from __future__ import annotations

import numpy as np

from repro.dynamic.graph import DynamicGraph
from repro.graphs.adjacency import AdjacencyArrayGraph
from repro.graphs.builder import from_edges
from repro.instrument.counters import CounterSet
from repro.instrument.rng import resolve_rng


class DynamicDistributedSparsifier:
    """Distributed maintenance of G_Δ under topology changes.

    Parameters
    ----------
    num_vertices:
        Number of processors.
    delta:
        Marks per processor.
    rng:
        Seed or generator (split per processor).

    Attributes
    ----------
    graph:
        The live communication topology.
    metrics:
        ``messages`` / ``bits`` counters plus per-update ``messages``
        history in :attr:`messages_per_update`.
    """

    def __init__(
        self,
        num_vertices: int,
        delta: int,
        rng: np.random.Generator | int | None = None,
        *,
        seed: int | None = None,
    ) -> None:
        if delta < 1:
            raise ValueError(f"delta must be >= 1, got {delta}")
        self.graph = DynamicGraph(num_vertices)
        self.delta = delta
        self._rng = resolve_rng(
            seed=seed, rng=rng, owner="DynamicDistributedSparsifier"
        )
        self._vertex_rngs = self._rng.spawn(num_vertices)
        #: marks_by_me[v]: neighbors v currently marks (v's local memory).
        self.marks_by_me: list[set[int]] = [set() for _ in range(num_vertices)]
        #: marked_me[v]: neighbors that currently mark v (v's local memory).
        self.marked_me: list[set[int]] = [set() for _ in range(num_vertices)]
        self.metrics = CounterSet()
        self.messages_per_update: list[int] = []

    # ------------------------------------------------------------------ #
    def _send_bit(self, src: int, dst: int, kind: str) -> None:
        """Deliver one 1-bit message; receivers update their local sets."""
        self.metrics["messages"].increment()
        self.metrics["bits"].increment()
        if kind == "mark":
            self.marked_me[dst].add(src)
        else:  # unmark
            self.marked_me[dst].discard(src)

    def _resample(self, v: int) -> int:
        """Processor v discards and resamples its marks; returns messages."""
        sent = 0
        for u in self.marks_by_me[v]:
            self._send_bit(v, u, "unmark")
            sent += 1
        self.marks_by_me[v].clear()
        fresh = self.graph.sample_neighbors(v, self.delta, self._vertex_rngs[v])
        for u in fresh:
            self.marks_by_me[v].add(u)
            self._send_bit(v, u, "mark")
            sent += 1
        return sent

    # ------------------------------------------------------------------ #
    def update(self, op: str, u: int, v: int) -> None:
        """Apply a topology change; only u and v act."""
        if op == "delete":
            # The vanishing link carries no further messages; endpoints
            # drop each other from their local sets first.
            self.marks_by_me[u].discard(v)
            self.marks_by_me[v].discard(u)
            self.marked_me[u].discard(v)
            self.marked_me[v].discard(u)
        self.graph.apply(op, u, v)
        sent = self._resample(u) + self._resample(v)
        self.messages_per_update.append(sent)

    def insert(self, u: int, v: int) -> None:
        """Insert link {u, v}."""
        self.update("insert", u, v)

    def delete(self, u: int, v: int) -> None:
        """Delete link {u, v}."""
        self.update("delete", u, v)

    # ------------------------------------------------------------------ #
    def local_memory(self, v: int) -> int:
        """Words of state held by processor v (own + received marks)."""
        return len(self.marks_by_me[v]) + len(self.marked_me[v])

    def max_local_memory(self) -> int:
        """Largest processor memory right now."""
        return max(
            (self.local_memory(v) for v in range(self.graph.num_vertices)),
            default=0,
        )

    def max_messages_per_update(self) -> int:
        """Worst per-update message count so far (≤ 4Δ + O(1))."""
        return max(self.messages_per_update, default=0)

    def sparsifier_edges(self) -> set[tuple[int, int]]:
        """E(G_Δ) reconstructed from processors' local views."""
        edges: set[tuple[int, int]] = set()
        for v in range(self.graph.num_vertices):
            for u in self.marks_by_me[v]:
                edges.add((v, u) if v < u else (u, v))
        return edges

    def sparsifier(self) -> AdjacencyArrayGraph:
        """Materialize the maintained G_Δ (analysis-side only)."""
        return from_edges(self.graph.num_vertices, sorted(self.sparsifier_edges()))

    def local_view_consistent(self) -> bool:
        """Invariant: marked_me is exactly the transpose of marks_by_me."""
        for v in range(self.graph.num_vertices):
            for u in self.marks_by_me[v]:
                if v not in self.marked_me[u]:
                    return False
        for v in range(self.graph.num_vertices):
            for u in self.marked_me[v]:
                if v not in self.marks_by_me[u]:
                    return False
        return True
