"""End-to-end distributed pipelines (Theorems 3.2 and 3.3).

``distributed_approx_matching`` composes the four stages on one shared
metrics object, so the reported round/message/bit totals are end-to-end:

1. one round of :class:`SparsifierProtocol` on the input network → G_Δ;
2. one round of :class:`SolomonProtocol` on G_Δ (arboricity ≤ 2Δ) → the
   bounded-degree sparsifier G̃_Δ;
3. O(log n) rounds of :class:`RandomizedMatchingProtocol` on G̃_Δ →
   a maximal matching;
4. :class:`AugmentingPathEliminationProtocol` with k = ⌈1/ε⌉ → a matching
   with no augmenting path of length ≤ 2k−1, i.e. a (1+ε)-approximation
   *of G̃_Δ's MCM* — and hence, by the two sparsifier theorems, a
   (1+O(ε))-approximation of the input's MCM.

``distributed_baseline_matching`` is the (2+ε)-style baseline in the
spirit of Barenboim–Oren [16, 17]: stages 1–3 only (maximal matching on
the sparsifier, no improvement phases).

Stages 2–4 run on *subgraphs* of the input network, so every message they
send also travels along an edge of the original network; accumulating the
counters across stages is therefore exactly the accounting of
Theorem 3.3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bounded_degree import solomon_degree_bound
from repro.core.delta import DeltaPolicy
from repro.distributed.improvement import AugmentingPathEliminationProtocol
from repro.distributed.maximal_matching import RandomizedMatchingProtocol
from repro.distributed.network import SyncNetwork
from repro.distributed.solomon_round import SolomonProtocol
from repro.distributed.sparsify_round import SparsifierProtocol
from repro.graphs.adjacency import AdjacencyArrayGraph
from repro.graphs.builder import from_edges
from repro.instrument.counters import CounterSet
from repro.instrument.rng import resolve_rng
from repro.matching.matching import Matching


@dataclass(frozen=True)
class DistributedRunReport:
    """Outcome and cost accounting of a distributed matching run.

    Attributes
    ----------
    matching:
        The computed matching (valid in the input graph).
    rounds, messages, bits:
        End-to-end totals across all stages.
    delta:
        Δ used by stage 1.
    degree_bound:
        Δ_α of stage 2 (max degree of the graph stages 3–4 run on).
    improvement_iterations:
        Outer iterations of stage 4 (0 for the baseline).
    """

    matching: Matching
    rounds: int
    messages: int
    bits: int
    delta: int
    degree_bound: int
    improvement_iterations: int


def _run_stages(
    graph: AdjacencyArrayGraph,
    beta: int,
    epsilon: float,
    rng: np.random.Generator | int | None,
    policy: DeltaPolicy | None,
    improve: bool,
    max_rounds: int,
) -> DistributedRunReport:
    gen = resolve_rng(rng=rng, owner="_run_stages")
    metrics = CounterSet()
    pol = policy or DeltaPolicy.practical()
    delta = pol.delta(beta, epsilon, graph.num_vertices)

    # Stage 1: G_Δ in one round on the input network.
    net = SyncNetwork(graph, metrics)
    sparsify = SparsifierProtocol(delta, rng=gen.spawn(1)[0])
    net.run(sparsify, max_rounds=2)
    g_delta = from_edges(graph.num_vertices, sorted(sparsify.edges))

    # Stage 2: Solomon on G_Δ (arboricity ≤ 2Δ, Obs 2.12) in one round.
    degree_bound = solomon_degree_bound(2 * delta, epsilon)
    net2 = SyncNetwork(g_delta, metrics)
    solomon = SolomonProtocol(degree_bound)
    net2.run(solomon, max_rounds=2)
    g_tilde = from_edges(graph.num_vertices, sorted(solomon.edges))

    # Stage 3: randomized maximal matching on G̃_Δ.
    net3 = SyncNetwork(g_tilde, metrics)
    matcher = RandomizedMatchingProtocol(rng=gen.spawn(1)[0])
    net3.run(matcher, max_rounds=max_rounds)

    iterations = 0
    if improve:
        # Stage 4: eliminate augmenting paths of length ≤ 2k−1.
        k = max(1, int(np.ceil(1.0 / epsilon)))
        improver = AugmentingPathEliminationProtocol(
            k, matcher.mate, rng=gen.spawn(1)[0]
        )
        net4 = SyncNetwork(g_tilde, metrics)
        net4.run(improver, max_rounds=max_rounds * (6 * k + 2))
        final = improver.matching
        iterations = improver.iterations
    else:
        final = matcher.matching

    return DistributedRunReport(
        matching=final,
        rounds=metrics.value("rounds"),
        messages=metrics.value("messages"),
        bits=metrics.value("bits"),
        delta=delta,
        degree_bound=degree_bound,
        improvement_iterations=iterations,
    )


def distributed_approx_matching(
    graph: AdjacencyArrayGraph,
    beta: int,
    epsilon: float,
    rng: np.random.Generator | int | None = None,
    policy: DeltaPolicy | None = None,
    max_rounds: int = 10_000,
    *,
    seed: int | None = None,
) -> DistributedRunReport:
    """The full (1+O(ε)) pipeline of Theorem 3.2 (all four stages).

    Randomness follows the uniform convention: a generator via ``rng=``
    or an integer via ``seed=`` (not both).
    """
    gen = resolve_rng(seed=seed, rng=rng, owner="distributed_approx_matching")
    return _run_stages(graph, beta, epsilon, gen, policy, improve=True,
                       max_rounds=max_rounds)


def distributed_baseline_matching(
    graph: AdjacencyArrayGraph,
    beta: int,
    epsilon: float,
    rng: np.random.Generator | int | None = None,
    policy: DeltaPolicy | None = None,
    max_rounds: int = 10_000,
    *,
    seed: int | None = None,
) -> DistributedRunReport:
    """The (2+ε)-style baseline: maximal matching on the sparsifier only
    (stages 1–3), in the spirit of Barenboim–Oren [16, 17].

    Randomness follows the uniform ``seed=`` / ``rng=`` convention.
    """
    gen = resolve_rng(seed=seed, rng=rng,
                      owner="distributed_baseline_matching")
    return _run_stages(graph, beta, epsilon, gen, policy, improve=False,
                       max_rounds=max_rounds)


def reduce_with_sparsifier(
    graph: AdjacencyArrayGraph,
    beta: int,
    epsilon: float,
    protocol_factory,
    rng: np.random.Generator | int | None = None,
    policy: DeltaPolicy | None = None,
    max_rounds: int = 10_000,
    *,
    seed: int | None = None,
):
    """Theorem 3.3 as a combinator: run *any* black-box protocol on G_Δ.

    "Suppose there is a distributed algorithm for computing a
    γ-approximate MCM in T(n) rounds ... then there is also one with
    (1+ε)γ approximation in T(n)+1 rounds and T(n)·O(n·(β/ε)·log(1/ε))
    messages."  This helper is that reduction, literally: one sparsifier
    round, then ``protocol_factory(network_over_G_delta)`` runs as the
    black box; both stages share one metrics object.

    Parameters
    ----------
    protocol_factory:
        Callable ``(graph) -> Protocol`` building the black box for the
        sparsified topology.
    rng, seed:
        Uniform randomness keywords — a generator via ``rng=`` or an
        integer via ``seed=`` (not both).

    Returns
    -------
    (protocol, metrics, sparsifier):
        The finished black-box protocol instance (read its result off
        its own attributes), the shared
        :class:`~repro.instrument.counters.CounterSet`, and G_Δ.
    """
    from repro.instrument.counters import CounterSet

    gen = resolve_rng(seed=seed, rng=rng, owner="reduce_with_sparsifier")
    metrics = CounterSet()
    pol = policy or DeltaPolicy.practical()
    delta = pol.delta(beta, epsilon, graph.num_vertices)
    net = SyncNetwork(graph, metrics)
    sparsify = SparsifierProtocol(delta, rng=gen.spawn(1)[0])
    net.run(sparsify, max_rounds=2)
    g_delta = from_edges(graph.num_vertices, sorted(sparsify.edges))
    black_box = protocol_factory(g_delta)
    net2 = SyncNetwork(g_delta, metrics)
    net2.run(black_box, max_rounds=max_rounds)
    return black_box, metrics, g_delta
