"""Runtime contracts: executable forms of the paper's local invariants.

The reproduction's central objects all have *locally checkable*
correctness conditions — a matching is valid edge-by-edge, the
sparsifier's marking bound holds vertex-by-vertex, a subgraph is a
subgraph edge-by-edge.  This module turns them into cheap assertions:

* :func:`check_matching` — every matched edge exists in the host graph
  (the mate-array involution is already enforced by
  :class:`~repro.matching.matching.Matching` itself);
* :func:`check_sparsifier_degree` — the Section 2 marking law: every
  vertex marks at most Δ distinct incident edges, so
  |E(G_Δ)| ≤ Σ_v min(Δ, deg v) (for bounded-degree sparsifiers, a plain
  max-degree ≤ Δ check);
* :func:`check_subgraph` — same vertex set, every edge present in the
  host.

Checks raise :class:`ContractViolation` (an :class:`AssertionError`
subclass) with a pinpointed message and otherwise return their subject,
so they compose as pass-throughs::

    matching = check_matching(graph, matcher(graph))

**Gating.**  The :mod:`repro.api` facade calls these automatically when
the environment variable ``REPRO_CONTRACTS=1`` (or ``true``/``yes``/
``on``) is set — the debug mode used in CI and while developing — and
skips them otherwise, so production paths pay nothing.  Tests call the
checkers directly, ungated.
"""

from __future__ import annotations

import os
from typing import Union

from repro.core.sparsifier import SparsifierResult
from repro.graphs.adjacency import AdjacencyArrayGraph
from repro.matching.matching import Matching

#: Environment variable that switches the facade's debug-mode checks on.
CONTRACTS_ENV = "REPRO_CONTRACTS"

_TRUTHY = frozenset({"1", "true", "yes", "on"})


class ContractViolation(AssertionError):
    """A runtime invariant of the reproduction failed.

    Subclasses :class:`AssertionError` so existing ``pytest.raises``
    patterns and ``verify_matching``-style call sites keep working.
    """


def contracts_enabled() -> bool:
    """Whether ``REPRO_CONTRACTS`` requests debug-mode contract checks.

    Read from the environment on every call (not cached) so tests can
    flip it with ``monkeypatch.setenv`` and the engine's worker processes
    inherit the parent's setting naturally.
    """
    return os.environ.get(CONTRACTS_ENV, "").strip().lower() in _TRUTHY


def _fail(message: str) -> None:
    raise ContractViolation(message)


def check_matching(graph: AdjacencyArrayGraph, matching: Matching) -> Matching:
    """Assert ``matching`` is a valid matching *in* ``graph``.

    The involution/self-loop structure of the mate array is validated by
    the :class:`Matching` constructor; this adds the graph-dependent
    half: compatible sizes and every matched edge present in ``graph``.
    """
    if matching.mate.size != graph.num_vertices:
        _fail(
            f"matching covers {matching.mate.size} vertices but the graph "
            f"has {graph.num_vertices}"
        )
    for u, v in matching.edges():
        if not graph.has_edge(u, v):
            _fail(f"matched edge ({u}, {v}) is not an edge of the graph")
    return matching


def check_subgraph(
    subgraph: AdjacencyArrayGraph, graph: AdjacencyArrayGraph
) -> AdjacencyArrayGraph:
    """Assert ``subgraph`` is a subgraph of ``graph`` on the same vertices."""
    if subgraph.num_vertices != graph.num_vertices:
        _fail(
            f"subgraph has {subgraph.num_vertices} vertices, host has "
            f"{graph.num_vertices}"
        )
    for u, v in subgraph.edges():
        if not graph.has_edge(u, v):
            _fail(f"subgraph edge ({u}, {v}) is absent from the host graph")
    return subgraph


def check_sparsifier_degree(
    sparsifier: Union[SparsifierResult, AdjacencyArrayGraph],
    delta: int,
    *,
    graph: AdjacencyArrayGraph | None = None,
) -> Union[SparsifierResult, AdjacencyArrayGraph]:
    """Assert the Δ-bounded marking/degree law of a sparsifier.

    For a :class:`~repro.core.sparsifier.SparsifierResult` (the paper's
    G_Δ), the checkable per-vertex invariant is the *marking* bound of
    Section 2 — each vertex marks at most Δ distinct neighbors, and
    therefore |E(G_Δ)| ≤ Σ_v min(Δ, deg_G v) ≤ n·Δ.  (Note G_Δ's vertex
    *degrees* are not individually bounded by Δ: a star's center keeps
    all its edges because every leaf marks its only edge.)  When
    ``graph`` is supplied, marks are also checked to be genuine
    neighbors and G_Δ to be a subgraph.

    For a plain :class:`AdjacencyArrayGraph` — e.g. Solomon's
    bounded-degree sparsifier, whose guarantee *is* a degree cap — the
    check is simply ``max_degree() <= delta``.
    """
    if delta < 1:
        _fail(f"delta must be >= 1, got {delta}")
    if isinstance(sparsifier, AdjacencyArrayGraph):
        worst = sparsifier.max_degree()
        if worst > delta:
            _fail(
                f"bounded-degree sparsifier has max degree {worst} > "
                f"delta={delta}"
            )
        if graph is not None:
            check_subgraph(sparsifier, graph)
        return sparsifier
    for v, marks in enumerate(sparsifier.marked_by):
        if len(marks) > delta:
            _fail(
                f"vertex {v} marked {len(marks)} edges > delta={delta} "
                "(Section 2 marking bound)"
            )
        if len(set(marks)) != len(marks):
            _fail(f"vertex {v} marked a neighbor twice: {marks}")
        if graph is not None:
            for u in marks:
                if not graph.has_edge(v, u):
                    _fail(f"vertex {v} marked non-neighbor {u}")
    if graph is not None:
        check_subgraph(sparsifier.subgraph, graph)
        budget = int(
            sum(min(delta, graph.degree(v))
                for v in range(graph.num_vertices))
        )
        if sparsifier.subgraph.num_edges > budget:
            _fail(
                f"G_delta has {sparsifier.subgraph.num_edges} edges > "
                f"marking budget {budget}"
            )
    elif sparsifier.subgraph.num_edges > sparsifier.subgraph.num_vertices * delta:
        _fail(
            f"G_delta has {sparsifier.subgraph.num_edges} edges > "
            f"n*delta = {sparsifier.subgraph.num_vertices * delta}"
        )
    return sparsifier


def check_stream_fingerprints(fingerprints) -> list:
    """Assert no two tasks drew from one RNG stream.

    ``fingerprints`` is the per-task sequence ``engine.execute`` collects
    under ``REPRO_RNG_SANITIZE=1`` — each entry an
    :class:`~repro.instrument.rng.RngFingerprint` or ``None`` (task had
    no generator).  Two entries sharing a stream id where either made a
    draw means two trials consumed one spawn-key stream: draw
    interleaving (and therefore worker count) decides the results, which
    is exactly the race Observation 2.9's independence argument and the
    engine's byte-identical promise forbid.
    """
    fingerprint_list = list(fingerprints)
    first_seen: dict[str, int] = {}
    for index, fingerprint in enumerate(fingerprint_list):
        if fingerprint is None:
            continue
        earlier = first_seen.setdefault(fingerprint.stream, index)
        if earlier != index:
            other = fingerprint_list[earlier]
            if fingerprint.draws or (other is not None and other.draws):
                _fail(
                    f"tasks {earlier} and {index} drew from one RNG stream "
                    f"{fingerprint.stream!r} ({other.draws} and "
                    f"{fingerprint.draws} draws); every task must own its "
                    "spawned child generator (see engine.fanout)"
                )
    return fingerprint_list


def check_replay_fingerprints(fingerprints, expected_streams) -> list:
    """Assert each task's surviving attempt drew from its assigned stream.

    ``fingerprints`` is the per-task sequence ``engine.execute`` collects
    under ``REPRO_RNG_SANITIZE=1``; ``expected_streams`` is the aligned
    sequence of stream ids derived from each task's
    :class:`~repro.instrument.rng.RngSpec` at submission
    (:func:`~repro.instrument.rng.spec_stream_id`), or ``None`` where no
    spec was capturable.  A mismatch means a retry (or a checkpoint
    restore) ran a task against the *wrong* stream — the failure mode
    that would silently break the engine's byte-identical-under-faults
    guarantee, which is why it is a contract and not a warning.
    """
    fingerprint_list = list(fingerprints)
    for index, (fingerprint, expected) in enumerate(
        zip(fingerprint_list, expected_streams)
    ):
        if fingerprint is None or expected is None:
            continue
        if fingerprint.stream != expected:
            _fail(
                f"task {index} drew from stream {fingerprint.stream!r} but "
                f"was assigned {expected!r}; a retry or checkpoint restore "
                "replayed the wrong RngSpec (see engine RetryPolicy)"
            )
    return fingerprint_list


def check_replay_sessions(recorded, replayed):
    """Assert a replayed service session reproduced the recorded one.

    Both arguments are :class:`repro.service.session.Session`-shaped
    objects (duck-typed to keep this module service-agnostic): the
    session that served live traffic and the one
    :func:`repro.service.journal.replay_journal` rebuilt offline.
    Checks, in order of increasing strictness:

    * same applied-update count (``seq``);
    * byte-identical output matchings (``mate`` array buffers);
    * identical state fingerprints (matching + sparsifier edge set +
      per-vertex marks — see ``Session.fingerprint``);
    * under ``REPRO_RNG_SANITIZE=1``, identical RNG stream fingerprints
      (same stream ids *and* draw counts), i.e. the replay consumed the
      same randomness, not merely reached the same answer.

    Returns ``replayed`` so it composes as a pass-through.
    """
    if recorded.seq != replayed.seq:
        _fail(
            f"replayed session applied {replayed.seq} updates but the "
            f"recorded one applied {recorded.seq}; the journal is "
            "truncated or was replayed with upto="
        )
    recorded_mate = recorded.matching.mate
    replayed_mate = replayed.matching.mate
    if recorded_mate.tobytes() != replayed_mate.tobytes():
        _fail(
            "replayed matching diverged from the recorded one "
            f"(sizes {recorded.matching.size} vs {replayed.matching.size}); "
            "the session's RNG streams or update order were not "
            "reproduced"
        )
    recorded_print = recorded.fingerprint()
    replayed_print = replayed.fingerprint()
    if recorded_print != replayed_print:
        _fail(
            f"replayed session fingerprint {replayed_print[:16]}… does not "
            f"match the recorded {recorded_print[:16]}…; sparsifier state "
            "diverged even though the matching agrees"
        )
    recorded_rng = recorded.rng_fingerprints()
    replayed_rng = replayed.rng_fingerprints()
    if recorded_rng != replayed_rng:
        _fail(
            f"replayed session RNG fingerprints {replayed_rng} do not "
            f"match the recorded {recorded_rng}; the replay drew from "
            "different streams or a different number of times"
        )
    return replayed


def check_work_budget(
    ops: int,
    budget_chunks: int,
    *,
    chunk: int | None = None,
    constant: float = 4.0,
    slack: int = 0,
) -> float:
    """Assert one update's counted work respects the Theorem 3.5 cap.

    ``ops`` is the operation count :class:`repro.instrument.workmeter.
    WorkMeter` accumulated for one session update; ``budget_chunks`` is
    the session's ``theorem_work_budget(beta, epsilon)`` (a number of
    rebuild *chunks*, each ``chunk`` operations — defaults to
    :data:`repro.dynamic.incremental.DEFAULT_CHUNK`).  The check is

    ``ops <= constant * budget_chunks * chunk + slack``

    where ``constant`` absorbs the bookkeeping overhead of counting
    every touched edge rather than amortized chunks, and ``slack`` is an
    additive allowance for the non-interruptible tail of a single
    rebuild step (one augmentation search may perform up to
    ``64 * delta + n`` operations between yields; sessions pass exactly
    that).  Returns the *observed* constant ``ops / (budget_chunks *
    chunk)`` so callers (the work meter, the hotspot report) can track
    how close the implementation runs to the theoretical bound.
    """
    if budget_chunks < 1:
        _fail(f"work budget must be >= 1 chunk, got {budget_chunks}")
    if chunk is None:
        from repro.dynamic.incremental import DEFAULT_CHUNK

        chunk = DEFAULT_CHUNK
    budget_ops = budget_chunks * chunk
    observed = ops / budget_ops
    cap = constant * budget_ops + slack
    if ops > cap:
        _fail(
            f"update performed {ops} counted operations > cap {cap:.0f} "
            f"(= {constant} x theorem_work_budget {budget_chunks} chunks "
            f"x {chunk} ops + slack {slack}); observed constant "
            f"{observed:.2f} — the Theorem 3.5 per-update bound does not "
            "hold for the implementation"
        )
    return observed


def check_interleaving_replay(recorded, replayed):
    """Assert a replayed interleaving trace is byte-identical to the
    recorded one.

    Both arguments are
    :class:`repro.service.sanitizer.InterleavingTrace` objects (duck-
    typed: anything with ``entries`` and a canonical ``to_json``).  The
    deterministic scheduler's guarantee is not "same answer" but "same
    *schedule*": replaying a trace must make the identical sequence of
    scheduling decisions over identically-labelled tasks.  Comparing the
    canonical JSON encodings asserts exactly that, and on divergence the
    first differing step is named so the failure is debuggable.

    Returns ``replayed`` so it composes as a pass-through.
    """
    recorded_json = recorded.to_json()
    replayed_json = replayed.to_json()
    if recorded_json == replayed_json:
        return replayed
    for index, (a, b) in enumerate(zip(recorded.entries, replayed.entries)):
        if a != b:
            _fail(
                f"interleaving replay diverged at step {index}: recorded "
                f"(choice={a.choice}, label={a.label!r}) vs replayed "
                f"(choice={b.choice}, label={b.label!r})"
            )
    _fail(
        f"interleaving replay diverged: recorded {len(recorded.entries)} "
        f"steps vs replayed {len(replayed.entries)} (or the seeds differ: "
        f"{recorded.seed!r} vs {replayed.seed!r})"
    )


__all__ = [
    "CONTRACTS_ENV",
    "ContractViolation",
    "check_interleaving_replay",
    "check_matching",
    "check_replay_fingerprints",
    "check_replay_sessions",
    "check_sparsifier_degree",
    "check_stream_fingerprints",
    "check_subgraph",
    "check_work_budget",
    "contracts_enabled",
]
