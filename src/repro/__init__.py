"""repro — matching sparsifiers for graphs of bounded neighborhood independence.

A full reproduction of Milenković & Solomon, *"A Unified Sparsification
Approach for Matching Problems in Graphs of Bounded Neighborhood
Independence"* (SPAA 2020).  The core object is the random sparsifier
G_Δ: every vertex marks Δ = Θ((β/ε)·log(1/ε)) random incident edges and
G_Δ is the union of the marks — a (1+ε)-matching sparsifier w.h.p.
(Theorem 2.1).  On top of it the package provides the paper's three
applications: a sublinear-probe sequential (1+ε)-matcher (Theorem 3.1),
distributed pipelines with round/message accounting (Theorems 3.2/3.3),
and a fully dynamic matcher with worst-case bounded update work that is
safe against adaptive adversaries (Theorem 3.5).

Quickstart
----------
>>> from repro import approx_mcm, mcm_exact, sparsify
>>> from repro.graphs.generators import clique_union
>>> g = clique_union(10, 40)                 # dense, beta = 1
>>> result = sparsify(g, beta=1, epsilon=0.2, seed=0)
>>> mcm_exact(result.subgraph).size >= mcm_exact(g).size / 1.2
True
>>> approx_mcm(g, beta=1, epsilon=0.2, seed=0).backend
'sequential'

The facade (:mod:`repro.api`) fronts the per-model subpackages; the
model-specific entry points below remain available for full control.
"""

from repro._version import package_version
from repro.api import ApproxMatchingResult, Pipeline, approx_mcm, sparsify
from repro.contracts import (
    ContractViolation,
    check_matching,
    check_sparsifier_degree,
    check_subgraph,
    contracts_enabled,
)

from repro.core import (
    DeltaPolicy,
    RandomSparsifier,
    SparsifierResult,
    build_sparsifier,
    composed_sparsifier,
    delta_paper,
    delta_practical,
    solomon_sparsifier,
    sparsifier_quality,
)
from repro.graphs import (
    AdjacencyArrayGraph,
    from_edges,
    from_networkx,
    neighborhood_independence_exact,
    to_networkx,
)
from repro.matching import (
    Matching,
    greedy_maximal_matching,
    hopcroft_karp,
    mcm_approx,
    mcm_exact,
)
from repro.sequential import approximate_matching
from repro.distributed import (
    distributed_approx_matching,
    distributed_baseline_matching,
)
from repro.dynamic import (
    AdaptiveAdversary,
    DynamicMaximalMatching,
    DynamicSparsifier,
    LazyRebuildMatching,
    ObliviousAdversary,
)
from repro.streaming import (
    EdgeStream,
    streaming_approx_matching,
    streaming_greedy_matching,
)
from repro.mpc import mpc_approx_matching

__version__ = package_version()

__all__ = [
    "AdaptiveAdversary",
    "AdjacencyArrayGraph",
    "ApproxMatchingResult",
    "ContractViolation",
    "DeltaPolicy",
    "DynamicMaximalMatching",
    "DynamicSparsifier",
    "EdgeStream",
    "LazyRebuildMatching",
    "Matching",
    "ObliviousAdversary",
    "Pipeline",
    "RandomSparsifier",
    "SparsifierResult",
    "approx_mcm",
    "approximate_matching",
    "build_sparsifier",
    "check_matching",
    "check_sparsifier_degree",
    "check_subgraph",
    "composed_sparsifier",
    "contracts_enabled",
    "delta_paper",
    "delta_practical",
    "distributed_approx_matching",
    "distributed_baseline_matching",
    "from_edges",
    "from_networkx",
    "greedy_maximal_matching",
    "hopcroft_karp",
    "mcm_approx",
    "mcm_exact",
    "mpc_approx_matching",
    "neighborhood_independence_exact",
    "solomon_sparsifier",
    "sparsifier_quality",
    "sparsify",
    "streaming_approx_matching",
    "streaming_greedy_matching",
    "to_networkx",
]
