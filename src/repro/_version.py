"""Single source of truth for the package version string.

Resolution order (:func:`package_version`):

1. the *installed* distribution metadata (``importlib.metadata``) —
   what a ``pip install``-ed deployment reports;
2. the ``version = "..."`` field of the source tree's
   ``pyproject.toml`` — what a ``PYTHONPATH=src`` checkout reports;
3. the hard-coded :data:`FALLBACK` (kept in sync with
   ``pyproject.toml`` by a test).

Kept dependency-free and import-light so the CLI's ``--version`` flag
never drags in the scientific stack.
"""

from __future__ import annotations

import re
from pathlib import Path

#: Last-resort version, asserted against pyproject.toml by the tests.
FALLBACK = "1.8.0"


def _pyproject_version() -> str | None:
    """The version pinned in the source tree's pyproject.toml, if found."""
    for root in Path(__file__).resolve().parents:
        pyproject = root / "pyproject.toml"
        if pyproject.is_file():
            match = re.search(
                r'^version\s*=\s*"([^"]+)"', pyproject.read_text(), re.M
            )
            return match.group(1) if match else None
    return None


def package_version() -> str:
    """The repro package version (see module docstring for the order)."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        try:
            return version("repro")
        except PackageNotFoundError:
            pass
    except ImportError:  # pragma: no cover - importlib.metadata is 3.8+
        pass
    return _pyproject_version() or FALLBACK
