"""A served graph session: sparsifier + matcher backend + certificates.

A :class:`Session` is the unit the server multiplexes.  It owns

* a maintained :class:`~repro.dynamic.dynamic_sparsifier.DynamicSparsifier`
  (the G_Δ of Section 3.3, queryable via the ``snapshot`` op),
* a pluggable dynamic-matcher **backend** answering ``query_matching``
  (:data:`BACKENDS`: ``lazy_rebuild`` — the adaptive-adversary-safe
  Theorem 3.5 algorithm, the default; ``oblivious`` — the maintained-
  sparsifier variant, oblivious-safe only; ``baseline`` — the
  deterministic 2-approximation), and
* a :class:`~repro.dynamic.stability.StabilityTracker` restarted at
  every completed rebuild, so ``stats`` can report the approximation
  factor Lemma 3.4 *certifies* right now, not just measurements.

Determinism: the session's root generator is resolved once from
``seed=``/``rng=``; its :class:`~repro.instrument.rng.RngSpec` is
captured before any draw and recorded in the replay journal header, and
the sparsifier/backend streams are spawned children, so replaying the
journaled update sequence through a fresh session rebuilds the *same*
streams and therefore a byte-identical matching and fingerprint.  Under
``REPRO_RNG_SANITIZE=1`` the streams are draw-counted and the replay
contract additionally compares their fingerprints.

The per-update **work budget** is derived from the Theorem 3.5 bound
(:func:`theorem_work_budget`) and handed to the ``lazy_rebuild``
backend as a hard ``max_chunks_per_update`` cap, making the theorem's
worst-case guarantee the service's admission-control primitive.
"""

from __future__ import annotations

import math
from hashlib import sha256
from typing import Callable

import numpy as np

from repro.core.delta import DeltaPolicy
from repro.dynamic.baseline import DynamicMaximalMatching
from repro.dynamic.dynamic_sparsifier import DynamicSparsifier
from repro.dynamic.lazy_rebuild import LazyRebuildMatching
from repro.dynamic.oblivious import ObliviousDynamicMatching
from repro.contracts import check_work_budget
from repro.dynamic.stability import StabilityTracker
from repro.instrument import workmeter
from repro.instrument.rng import (
    RngFingerprint,
    RngSpec,
    SanitizedGenerator,
    resolve_rng,
    rng_sanitize_enabled,
    rng_spec,
    sanitize_rng,
)
from repro.matching.matching import Matching
from repro.service.journal import ReplayJournal
from repro.service.metrics import DEFAULT_BUDGET_MS, ServiceMetrics


class UpdateError(ValueError):
    """An update the session refuses (bad endpoints, absent edge, …).

    Attributes
    ----------
    code:
        Stable protocol error code (``bad-update``).
    """

    def __init__(self, message: str) -> None:
        """Record the rejection reason."""
        super().__init__(message)
        self.code = "bad-update"


def theorem_work_budget(beta: int, epsilon: float, constant: float = 8.0) -> int:
    """Per-update work cap in rebuild chunks from the Theorem 3.5 bound.

    The theorem's worst-case update time is O(β/ε³·log(1/ε)); this
    returns ``ceil(constant · β/ε³ · ln(1/ε))`` (floored at 1 chunk so
    rebuilds always make progress).  The ``lazy_rebuild`` backend takes
    it as a hard ``max_chunks_per_update``; quality under the cap is
    measured, never assumed (Lemma 3.4 stretches gracefully).
    """
    if beta < 1:
        raise ValueError(f"beta must be >= 1, got {beta}")
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
    bound = constant * (beta / epsilon**3) * math.log(1.0 / epsilon)
    return max(1, math.ceil(bound))


def validate_session_params(
    num_vertices: int, beta: int, epsilon: float,
    backend: str = "lazy_rebuild",
) -> None:
    """Raise ``ValueError`` unless the session parameters are admissible.

    The server calls this *before* opening a replay journal, so a
    doomed ``create`` never truncates an existing journal; the
    :class:`Session` constructor calls it again as its own guard.
    """
    if num_vertices < 1:
        raise ValueError(f"num_vertices must be >= 1, got {num_vertices}")
    if beta < 1:
        raise ValueError(f"beta must be >= 1, got {beta}")
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {sorted(BACKENDS)}"
        )


def _make_lazy_rebuild(num_vertices, beta, epsilon, rng, work_budget):
    """Theorem 3.5 windowed-rebuild matcher (adaptive-adversary safe)."""
    return LazyRebuildMatching(
        num_vertices, beta, epsilon, rng=rng,
        max_chunks_per_update=work_budget,
    )


def _make_oblivious(num_vertices, beta, epsilon, rng, work_budget):
    """Maintained-sparsifier matcher (oblivious adversaries only)."""
    return ObliviousDynamicMatching(num_vertices, beta, epsilon, rng=rng)


def _make_baseline(num_vertices, beta, epsilon, rng, work_budget):
    """Deterministic 2-approximation baseline (ignores ε and the RNG)."""
    return DynamicMaximalMatching(num_vertices)


#: Backend registry: name → factory(num_vertices, beta, epsilon, rng,
#: work_budget).  Every backend exposes ``update(op, u, v)``,
#: ``matching``, ``work_log`` and ``max_work_per_update()``.
BACKENDS: dict[str, Callable] = {
    "lazy_rebuild": _make_lazy_rebuild,
    "oblivious": _make_oblivious,
    "baseline": _make_baseline,
}


class Session:
    """One named dynamic-matching session (see module docstring).

    Parameters
    ----------
    name:
        Session identifier (the journal records it).
    num_vertices:
        Fixed vertex set size.
    beta:
        Neighborhood-independence bound the update stream promises.
    epsilon:
        Target approximation slack.
    backend:
        Key into :data:`BACKENDS` (default ``lazy_rebuild``).
    rng:
        Existing generator to adopt (replay passes one rebuilt from the
        journal's RngSpec).
    journal:
        Open :class:`~repro.service.journal.ReplayJournal` to append
        applied updates to, or ``None``.
    budget_ms:
        Per-update latency budget for the metrics layer.
    seed:
        Integer root seed (the usual client-facing form).
    """

    def __init__(
        self,
        name: str,
        num_vertices: int,
        beta: int,
        epsilon: float,
        backend: str = "lazy_rebuild",
        rng: np.random.Generator | int | None = None,
        journal: ReplayJournal | None = None,
        budget_ms: float = DEFAULT_BUDGET_MS,
        *,
        seed: int | None = None,
    ) -> None:
        validate_session_params(num_vertices, beta, epsilon, backend)
        self.name = name
        self.num_vertices = num_vertices
        self.beta = beta
        self.epsilon = epsilon
        self.backend = backend
        root = resolve_rng(seed=seed, rng=rng, owner="Session")
        if rng_sanitize_enabled():
            root = sanitize_rng(root)
        #: Stream identity of the root generator, captured before any
        #: draw — what the replay journal header records.
        self.rng_spec: RngSpec = rng_spec(root)
        sparsifier_rng, matcher_rng = root.spawn(2)
        self._child_rngs = (sparsifier_rng, matcher_rng)
        policy = DeltaPolicy.practical()
        self.delta = policy.delta(beta, epsilon, num_vertices)
        self.work_budget = theorem_work_budget(beta, epsilon)
        self.sparsifier = DynamicSparsifier(
            num_vertices, self.delta, rng=sparsifier_rng
        )
        self.matcher = BACKENDS[backend](
            num_vertices, beta, epsilon, matcher_rng, self.work_budget
        )
        self.journal = journal
        self.metrics = ServiceMetrics()
        self.metrics.latency.budget_ms = budget_ms
        self.seq = 0
        self._tracker: StabilityTracker | None = None
        self._tracked_rebuilds = -1
        # Work auditing (REPRO_WORK_AUDIT=1): installs the ambient op
        # meter; apply() then verifies every update against the Theorem
        # 3.5 cap via contracts.check_work_budget.
        workmeter.enable_from_env()
        if journal is not None:
            journal.write_header(self)

    # ------------------------------------------------------------------ #
    # Updates                                                            #
    # ------------------------------------------------------------------ #
    def _validate(self, op: str, u: int, v: int) -> None:
        n = self.num_vertices
        if not (0 <= u < n and 0 <= v < n):
            raise UpdateError(
                f"endpoints ({u}, {v}) out of range for {n} vertices"
            )
        if u == v:
            raise UpdateError(f"self-loop ({u}, {v})")
        present = self.sparsifier.graph.has_edge(u, v)
        if op == "insert" and present:
            raise UpdateError(f"edge ({u}, {v}) already present")
        if op == "delete" and not present:
            raise UpdateError(f"edge ({u}, {v}) not present")

    def apply(self, op: str, u: int, v: int) -> dict:
        """Validate and apply one update to sparsifier + backend.

        Returns an applied-update record ``{"seq", "op", "work"}``;
        raises :class:`UpdateError` (nothing applied, nothing
        journaled) for invalid updates.  The journal line is written
        immediately; flushing is batched by the caller
        (:meth:`flush_journal`).
        """
        if op not in ("insert", "delete"):
            raise UpdateError(f"unknown update op {op!r}")
        self._validate(op, u, v)
        meter = workmeter.active()
        if meter is not None:
            meter.begin_update()
        self.sparsifier.update(op, u, v)
        self.matcher.update(op, u, v)
        if meter is not None:
            ops = meter.end_update()
            # One rebuild step is non-interruptible: a single pumped
            # chunk may run an augmentation search (≤ 64·Δ ops) plus a
            # stage-boundary vertex sweep (≤ n ops) before yielding —
            # additive slack, not part of the multiplicative constant.
            meter.record_constant(check_work_budget(
                ops, self.work_budget,
                slack=64 * self.delta + self.num_vertices,
            ))
        self.seq += 1
        if self.journal is not None:
            self.journal.record(self.seq, op, u, v)
        self._advance_certificate(op, u, v)
        work = self.matcher.work_log[-1] if self.matcher.work_log else 0
        self.metrics.counters["updates"].increment()
        self.metrics.counters["inserts" if op == "insert" else "deletes"].increment()
        return {"seq": self.seq, "op": op, "work": int(work)}

    def flush_journal(self) -> None:
        """Flush buffered journal lines (called once per micro-batch)."""
        if self.journal is not None:
            self.journal.flush()

    # ------------------------------------------------------------------ #
    # Stability certificate (Lemma 3.4)                                  #
    # ------------------------------------------------------------------ #
    def _advance_certificate(self, op: str, u: int, v: int) -> None:
        rebuilds = getattr(self.matcher, "rebuilds_completed", None)
        if rebuilds is None:
            return
        if rebuilds != self._tracked_rebuilds:
            self._tracker = StabilityTracker(self.matcher.matching, self.epsilon)
            self._tracked_rebuilds = rebuilds
        elif self._tracker is not None:
            if op == "insert":
                self._tracker.on_insert(u, v)
            else:
                self._tracker.on_delete(u, v)

    def certified_factor(self) -> float | None:
        """The Lemma 3.4 factor certified since the last rebuild.

        ``None`` for backends without windowed rebuilds (``baseline``)
        or when the certificate is vacuous (window overrun → ∞).
        """
        if self._tracker is None:
            return None
        factor = self._tracker.guaranteed_factor()
        return None if math.isinf(factor) else factor

    # ------------------------------------------------------------------ #
    # Queries                                                            #
    # ------------------------------------------------------------------ #
    @property
    def matching(self) -> Matching:
        """The backend's current output matching."""
        return self.matcher.matching

    def matching_payload(self) -> dict:
        """JSON-ready matching: ``{"size", "edges"}`` with sorted edges."""
        matching = self.matching
        return {
            "size": matching.size,
            "edges": [[int(u), int(v)] for u, v in sorted(matching.edges())],
        }

    def fingerprint(self) -> str:
        """SHA-256 digest of the session's full replayable state.

        Covers the output matching (mate array bytes), the maintained
        sparsifier (sorted edges and per-vertex marks), the applied
        sequence number, and the backend name — two sessions agree on
        this hex string iff replay reproduced the state byte-for-byte.
        """
        digest = sha256()
        digest.update(f"{self.backend}/{self.seq}/{self.num_vertices}".encode())
        digest.update(self.matching.mate.tobytes())
        for u, v in sorted(self.sparsifier.edges()):
            digest.update(f"e{u},{v};".encode())
        for v in range(self.num_vertices):
            marks = ",".join(str(m) for m in sorted(self.sparsifier.marks(v)))
            digest.update(f"m{v}:{marks};".encode())
        return digest.hexdigest()

    def rng_fingerprints(self) -> tuple[RngFingerprint, ...]:
        """Draw-count fingerprints of the session's child streams.

        Empty unless ``REPRO_RNG_SANITIZE=1`` wrapped the streams at
        construction; the replay contract compares these to assert the
        replayed session consumed the same randomness.
        """
        return tuple(
            child.fingerprint() for child in self._child_rngs
            if isinstance(child, SanitizedGenerator)
        )

    def snapshot_payload(self) -> dict:
        """JSON-ready ``snapshot`` response: graph + G_Δ + fingerprint."""
        return {
            "num_vertices": self.num_vertices,
            "seq": self.seq,
            "graph_edges": [[int(u), int(v)]
                            for u, v in sorted(self.sparsifier.graph.edges())],
            "sparsifier_edges": [[int(u), int(v)]
                                 for u, v in sorted(self.sparsifier.edges())],
            "fingerprint": self.fingerprint(),
        }

    def stats_payload(self) -> dict:
        """JSON-ready ``stats`` response (see docs/SERVICE.md)."""
        payload = {
            "session": self.name,
            "backend": self.backend,
            "num_vertices": self.num_vertices,
            "beta": self.beta,
            "epsilon": self.epsilon,
            "delta": self.delta,
            "seq": self.seq,
            "work_budget_chunks": self.work_budget,
            "max_work_per_update": self.matcher.max_work_per_update(),
            "rebuilds_completed": getattr(
                self.matcher, "rebuilds_completed", None
            ),
            "certified_factor": self.certified_factor(),
            "matching_size": self.matching.size,
            "graph_edges": self.sparsifier.graph.num_edges,
            "sparsifier_edges": len(self.sparsifier.edges()),
        }
        payload.update(self.metrics.snapshot())
        return payload

    def close(self) -> None:
        """Close the session's journal (idempotent)."""
        if self.journal is not None:
            self.journal.close()
