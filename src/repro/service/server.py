"""The asyncio JSON-lines TCP server hosting matching sessions.

:class:`MatchingService` is the op dispatcher (transport-free, so tests
can drive it directly); :meth:`MatchingService.serve_forever` binds it
to a TCP socket.  Each connection is read line-by-line; every request
becomes its own task and responses are written back *in request order*,
so a pipelining client can keep many updates in flight — which is what
lets the per-session :class:`~repro.service.batching.MicroBatcher`
coalesce them into bounded batches even from a single connection.
In-flight requests per connection are capped at ``max_inflight``;
beyond that the server stops reading the socket until responses drain.

Responses echo the request's optional ``id`` field verbatim for client
correlation.  Unknown session names, malformed requests, rejected
updates and backpressure all map to stable error codes
(:mod:`repro.service.protocol`); unexpected exceptions are caught and
reported as ``internal`` without killing the connection.

:class:`BackgroundServer` runs the whole thing on an ephemeral port in
a daemon thread — the harness used by the test-suite, the benchmark,
and ``examples/service_demo.py``.
"""

from __future__ import annotations

import asyncio
import signal
import sys
import threading
from pathlib import Path
from typing import Awaitable, Callable

from repro.service import protocol
from repro.service.batching import Backpressure, MicroBatcher
from repro.service.journal import ReplayJournal
from repro.service.metrics import DEFAULT_BUDGET_MS
from repro.service.protocol import (
    ProtocolError,
    encode,
    error_response,
    ok_response,
    parse_request,
)
from repro.service.session import Session, UpdateError, validate_session_params

_EOF = object()


async def pipe_connection(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    respond: Callable[[str], Awaitable[bytes]],
    max_inflight: int,
) -> None:
    """Drive one JSON-lines connection with bounded in-order pipelining.

    Each request line becomes its own ``respond`` task; encoded
    response lines are written back *in request order*.  Pipelining is
    bounded: once ``max_inflight`` requests are awaiting responses, the
    loop stops reading from the socket until responses drain, so a
    client that never reads cannot grow the outbox (or the per-request
    task set) without limit.

    Shared by :class:`MatchingService` and the
    :class:`repro.cluster.router.ClusterRouter` front-end — the two
    speak the same wire protocol and need the same transport
    discipline.
    """
    loop = asyncio.get_running_loop()
    # The semaphore admits at most max_inflight response tasks, so
    # the outbox can never hold more than that plus the EOF
    # sentinel; the bound makes the invariant structural.
    outbox: asyncio.Queue = asyncio.Queue(maxsize=max_inflight + 1)
    inflight = asyncio.Semaphore(max_inflight)

    async def write_responses() -> None:
        while True:
            task = await outbox.get()
            if task is _EOF:
                return
            writer.write(await task)
            await writer.drain()
            inflight.release()

    writer_task = loop.create_task(write_responses())
    # If the writer dies early (client reset mid-write), a reader
    # blocked on the semaphore must wake up to notice and bail out.
    writer_task.add_done_callback(lambda _task: inflight.release())
    try:
        while True:
            await inflight.acquire()
            if writer_task.done():
                break
            line = await reader.readline()
            if not line:
                outbox.put_nowait(_EOF)
                break
            outbox.put_nowait(loop.create_task(
                respond(line.decode("utf-8", "replace"))
            ))
        await writer_task
    except ConnectionResetError:  # pragma: no cover - client vanished
        writer_task.cancel()
    except asyncio.CancelledError:
        # Server shutdown cancels live connection tasks; swallow the
        # cancellation (instead of re-raising into asyncio's stream
        # callback, which would log it) and fall through to cleanup.
        writer_task.cancel()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError,
                asyncio.CancelledError):
            # CancelledError lands here when shutdown cancels the
            # task mid-wait; completing normally keeps asyncio's
            # stream callback from logging a spurious traceback.
            pass


class MatchingService:
    """Session registry + op dispatcher for the dynamic-matching server.

    Parameters
    ----------
    journal_dir:
        Directory for per-session replay journals
        (``<journal_dir>/<session>.jsonl``); ``None`` disables journaling.
    max_batch:
        Micro-batch bound handed to every session's batcher.
    max_queue:
        Queue bound (backpressure threshold) per session.
    budget_ms:
        Default per-update latency budget for session metrics.
    allow_shutdown:
        Whether the ``shutdown`` op is honored (CI and benchmarks turn
        this on; a long-lived server should not).
    max_inflight:
        Per-connection pipelining bound: at most this many requests may
        be awaiting a response on one connection before the server
        stops reading from its socket (TCP backpressure), so a fast
        client cannot grow server memory without bound.
    """

    def __init__(
        self,
        journal_dir: str | Path | None = None,
        max_batch: int = 32,
        max_queue: int = 1024,
        budget_ms: float = DEFAULT_BUDGET_MS,
        allow_shutdown: bool = False,
        max_inflight: int = 256,
    ) -> None:
        """Configure the service; no sockets are touched until served."""
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.journal_dir = Path(journal_dir) if journal_dir is not None else None
        self.max_batch = max_batch
        self.max_queue = max_queue
        self.budget_ms = budget_ms
        self.allow_shutdown = allow_shutdown
        self.max_inflight = max_inflight
        self.sessions: dict[str, Session] = {}
        self.batchers: dict[str, MicroBatcher] = {}
        self._shutdown = asyncio.Event()

    # ------------------------------------------------------------------ #
    # Op handlers                                                        #
    # ------------------------------------------------------------------ #
    def _session(self, request: dict) -> Session:
        name = request["session"]
        if name not in self.sessions:
            raise ProtocolError("no-such-session", f"no session {name!r}")
        return self.sessions[name]

    def _batcher(self, session: Session) -> MicroBatcher:
        batcher = self.batchers.get(session.name)
        if batcher is None:
            # The session was closed between dispatch and submission.
            raise ProtocolError(
                "no-such-session", f"no session {session.name!r}"
            )
        return batcher

    def _journal_path(self, name: str) -> Path:
        # parse_request already constrains names to a filename-safe
        # class; the containment check is defense in depth for callers
        # driving MatchingService directly with unvalidated names.
        root = self.journal_dir.resolve()
        path = (root / f"{name}.jsonl").resolve()
        if path.parent != root:
            raise ProtocolError(
                "bad-request",
                f"session name {name!r} escapes the journal directory",
            )
        return path

    async def _handle_create(self, request: dict) -> dict:
        name = request["session"]
        if name in self.sessions:
            raise ProtocolError("session-exists",
                                f"session {name!r} already exists")
        num_vertices = int(request["num_vertices"])
        beta = int(request["beta"])
        epsilon = float(request["epsilon"])
        backend = request.get("backend", "lazy_rebuild")
        seed = request.get("seed")
        budget_ms = request.get("budget_ms", self.budget_ms)
        # Validate everything *before* opening the journal: constructing
        # a ReplayJournal truncates any existing journal of this name,
        # which a doomed create must never do.
        try:
            if not isinstance(backend, str):
                raise ValueError(
                    f"backend must be a string, got {type(backend).__name__}"
                )
            if seed is not None and (
                not isinstance(seed, int) or isinstance(seed, bool)
            ):
                raise ValueError(
                    f"seed must be an integer, got {type(seed).__name__}"
                )
            if (not isinstance(budget_ms, (int, float))
                    or isinstance(budget_ms, bool) or budget_ms <= 0):
                raise ValueError(f"budget_ms must be > 0, got {budget_ms!r}")
            validate_session_params(num_vertices, beta, epsilon, backend)
        except ValueError as exc:
            raise ProtocolError("bad-request", str(exc)) from exc
        journal = None
        want_journal = bool(request.get("journal", True))
        if want_journal and self.journal_dir is not None:
            journal = ReplayJournal(self._journal_path(name))
        try:
            session = Session(
                name=name,
                num_vertices=num_vertices,
                beta=beta,
                epsilon=epsilon,
                backend=backend,
                seed=seed,
                journal=journal,
                budget_ms=float(budget_ms),
            )
        except Exception:
            # Parameters were validated above, so this is unexpected —
            # but don't leak the open handle or a half-written journal.
            if journal is not None:
                journal.close()
                journal.path.unlink(missing_ok=True)
            raise
        self.sessions[name] = session
        self.batchers[name] = MicroBatcher(
            session, max_batch=self.max_batch, max_queue=self.max_queue
        )
        return ok_response(
            created=name,
            backend=session.backend,
            delta=session.delta,
            work_budget_chunks=session.work_budget,
            journaled=journal is not None,
        )

    async def _handle_update(self, request: dict) -> dict:
        session = self._session(request)
        record = await self._batcher(session).submit(
            request["op"], int(request["u"]), int(request["v"])
        )
        return ok_response(**record)

    async def _handle_batch(self, request: dict) -> dict:
        session = self._session(request)
        updates = [(op, int(u), int(v)) for op, u, v in request["updates"]]
        outcomes = await self._batcher(session).submit_batch(updates)
        applied = sum(1 for outcome in outcomes if "error" not in outcome)
        return ok_response(applied=applied, results=outcomes)

    async def _handle_close(self, request: dict) -> dict:
        session = self._session(request)
        # Unregister before awaiting the drain: an update racing the
        # close must see no-such-session, not an internal KeyError.
        del self.sessions[session.name]
        batcher = self.batchers.pop(session.name, None)
        if batcher is not None:
            await batcher.close()
        session.close()
        return ok_response(closed=session.name, seq=session.seq)

    async def handle_request(self, request: dict) -> dict:
        """Dispatch one validated request to its handler."""
        op = request["op"]
        if op == "ping":
            return ok_response(protocol=protocol.PROTOCOL)
        if op == "sessions":
            return ok_response(sessions=sorted(self.sessions))
        if op == "shard_stats":
            return ok_response(**self.shard_stats_payload())
        if op == "cluster_stats":
            # A plain server is a cluster of one: answer with the same
            # merged shape the repro.cluster router produces, so `stats`
            # tooling works unchanged against either.
            from repro.cluster.metrics import aggregate_cluster_stats

            return ok_response(
                **aggregate_cluster_stats([self.shard_stats_payload()])
            )
        if op == "shutdown":
            if not self.allow_shutdown:
                raise ProtocolError(
                    "shutdown-disabled",
                    "server was started without allow_shutdown",
                )
            self._shutdown.set()
            return ok_response(shutting_down=True)
        if op == "create":
            return await self._handle_create(request)
        if op in ("insert", "delete"):
            return await self._handle_update(request)
        if op == "batch":
            return await self._handle_batch(request)
        if op == "close":
            return await self._handle_close(request)
        session = self._session(request)
        if op == "query_matching":
            session.metrics.counters["queries"].increment()
            return ok_response(**session.matching_payload())
        if op == "stats":
            return ok_response(**session.stats_payload())
        if op == "snapshot":
            return ok_response(**session.snapshot_payload())
        raise ProtocolError("unknown-op", f"unhandled op {op!r}")

    def shard_stats_payload(self) -> dict:
        """Server-wide metrics rollup in the *mergeable* form.

        Counters are summed across sessions (lossless, they are
        monotone event counts); latency samples are exported as one
        sorted list so a cluster aggregator can union them and take
        percentiles over the union — merging sorted per-shard lists is
        exact, averaging per-shard percentiles is not.
        """
        counters: dict[str, int] = {}
        samples: list[float] = []
        over_budget = 0
        queue_depth = 0
        max_queue_depth = 0
        for name in sorted(self.sessions):
            session = self.sessions[name]
            for counter, value in session.metrics.counters.snapshot().items():
                counters[counter] = counters.get(counter, 0) + value
            samples.extend(session.metrics.latency.samples_ms)
            over_budget += session.metrics.latency.over_budget
            queue_depth += session.metrics.queue_depth
            max_queue_depth = max(max_queue_depth, session.metrics.max_queue_depth)
        samples.sort()
        return {
            "sessions": sorted(self.sessions),
            "counters": counters,
            "latency": {
                "samples_sorted_ms": [round(s, 4) for s in samples],
                "over_budget": over_budget,
                "budget_ms": self.budget_ms,
            },
            "queue": {"depth": queue_depth, "max_depth": max_queue_depth},
        }

    async def _respond(self, line: str) -> dict:
        """Parse + dispatch one raw request line into a response dict."""
        request_id = None
        try:
            request = parse_request(line)
            request_id = request.get("id")
            response = await self.handle_request(request)
        except ProtocolError as exc:
            response = error_response(exc.code, str(exc))
        except UpdateError as exc:
            response = error_response(exc.code, str(exc))
        except Backpressure as exc:
            response = error_response(exc.code, str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            response = error_response("internal", f"{type(exc).__name__}: {exc}")
        if request_id is not None:
            response["id"] = request_id
        return response

    # ------------------------------------------------------------------ #
    # Transport                                                          #
    # ------------------------------------------------------------------ #
    async def _respond_bytes(self, line: str) -> bytes:
        return encode(await self._respond(line))

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one client connection (in-order pipelined responses)."""
        await pipe_connection(
            reader, writer, self._respond_bytes, self.max_inflight
        )

    async def close_all(self) -> None:
        """Drain every batcher and close every session (and journal).

        Each batcher is *unregistered before its drain is awaited* — the
        same discipline as ``_handle_close``.  The old
        iterate-then-clear shape had a shutdown race: a create admitted
        while a drain was awaiting would have its fresh batcher wiped by
        the final ``clear()`` without ever being drained (its journal
        never closed).  The while-pop loop picks up such stragglers in a
        later iteration instead.
        """
        while self.batchers:
            name = min(self.batchers)
            await self.batchers.pop(name).close()
        while self.sessions:
            name = min(self.sessions)
            self.sessions.pop(name).close()

    def request_shutdown(self) -> None:
        """Ask a running :meth:`serve_forever` to stop (thread-safe only
        via ``loop.call_soon_threadsafe``)."""
        self._shutdown.set()

    async def serve_forever(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        announce: bool = False,
        on_ready=None,
    ) -> None:
        """Bind, serve until a shutdown is requested, then clean up.

        ``port=0`` binds an ephemeral port; ``on_ready(host, port)`` is
        called once listening (the :class:`BackgroundServer` hook) and
        ``announce=True`` prints the address for shell scripts.
        """
        server = await asyncio.start_server(self.handle_connection, host, port)
        bound_host, bound_port = server.sockets[0].getsockname()[:2]
        if announce:
            print(f"repro-service listening on {bound_host}:{bound_port}",
                  flush=True)
        if on_ready is not None:
            on_ready(bound_host, bound_port)
        async with server:
            await self._shutdown.wait()
        await self.close_all()


def run_server(
    host: str = "127.0.0.1",
    port: int = 8765,
    journal_dir: str | Path | None = None,
    max_batch: int = 32,
    max_queue: int = 1024,
    budget_ms: float = DEFAULT_BUDGET_MS,
    allow_shutdown: bool = False,
    max_inflight: int = 256,
) -> int:
    """Blocking entry point for ``repro-experiments serve``.

    Runs until a client issues ``shutdown`` (when ``allow_shutdown``)
    or the process receives SIGTERM/SIGINT.  Both paths are *graceful*:
    the listening socket closes first (no new connections), every
    session's micro-batcher drains its in-flight batch, journals are
    flushed and closed, and the process exits 0 — which is what lets a
    cluster supervisor stop shard workers without losing journaled
    updates.
    """
    service = MatchingService(
        journal_dir=journal_dir,
        max_batch=max_batch,
        max_queue=max_queue,
        budget_ms=budget_ms,
        allow_shutdown=allow_shutdown,
        max_inflight=max_inflight,
    )

    async def main() -> None:
        loop = asyncio.get_running_loop()
        installed = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, service.request_shutdown)
                installed.append(signum)
            except (NotImplementedError, RuntimeError):
                # Non-main thread or a platform without loop signal
                # support; the shutdown op still works.
                pass
        try:
            await service.serve_forever(host, port, announce=True)
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)

    try:
        _run_service_loop(main())
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        print("interrupted; shutting down", file=sys.stderr)
    return 0


def _run_service_loop(main) -> object:
    """Run the service coroutine, honoring ``REPRO_ASYNC_SANITIZE=1``.

    The sanitized path swaps in the deterministic event loop
    (:mod:`repro.service.sanitizer`): task interleaving is recorded —
    and optionally seed-perturbed — instead of left to arrival order.
    The default path is a plain :func:`asyncio.run`.
    """
    from repro.service import sanitizer

    if sanitizer.async_sanitize_enabled():
        return sanitizer.run_sanitized(main)
    return asyncio.run(main)


class BackgroundServer:
    """A server on an ephemeral port in a daemon thread (tests/benchmarks).

    Usage::

        with BackgroundServer(journal_dir=tmp) as server:
            client = ServiceClient(server.host, server.port)
            ...

    The context manager waits until the socket is listening on entry
    and requests a clean shutdown (draining batchers, closing
    journals) on exit.
    """

    def __init__(self, **config) -> None:
        """Store the :class:`MatchingService` configuration."""
        config.setdefault("allow_shutdown", True)
        self.service = MatchingService(**config)
        self.host: str | None = None
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()

            def ready(host: str, port: int) -> None:
                self.host, self.port = host, port
                self._ready.set()

            await self.service.serve_forever(on_ready=ready)

        _run_service_loop(main())

    def __enter__(self) -> "BackgroundServer":
        """Start the thread and block until the server is listening."""
        self._thread.start()
        if not self._ready.wait(timeout=30):  # pragma: no cover - hang guard
            raise RuntimeError("background server failed to start")
        return self

    def __exit__(self, *exc: object) -> None:
        """Request shutdown and join the server thread."""
        if self._loop is not None:
            try:
                self._loop.call_soon_threadsafe(
                    self.service.request_shutdown
                )
            except RuntimeError:
                # Loop already closed: a client issued ``shutdown`` and
                # the server stopped on its own — nothing left to do.
                pass
        self._thread.join(timeout=30)
