"""Deterministic interleaving sanitizer for the asyncio service.

The static rules R10-R14 (:mod:`repro.lint.async_flow`) prove the
*absence of a pattern*; this module is the runtime half that makes an
actual interleaving **reproducible**.  Under ``REPRO_ASYNC_SANITIZE=1``
the server event loop is replaced by :class:`DeterministicEventLoop`,
which intercepts every task-step callback (the resumption of a
coroutine after an ``await``) and releases them one at a time through a
:class:`DeterministicScheduler`:

* **record** (default): steps run in FIFO order — the loop's normal
  order — but every choice is journalled into an
  :class:`InterleavingTrace` with a monotone ``seq`` number and a
  stable task label;
* **perturb** (``seed=`` / ``REPRO_ASYNC_SEED``): the runnable set is
  sampled with a seeded ``numpy`` generator, deterministically
  exploring interleavings the FIFO order never exhibits — how the test
  suite re-discovers the close/update race from the racy fixture;
* **replay** (``schedule=``): a recorded trace is re-applied choice by
  choice, with the task label of every step validated so silent
  divergence raises :class:`ScheduleDivergence` instead of exploring a
  different interleaving.

Every mode records; byte-identity of two traces is asserted by
:func:`repro.contracts.check_interleaving_replay`.  Only *task* steps
are scheduled — selector I/O, timers, and ``call_soon_threadsafe``
(which does not route through :meth:`DeterministicEventLoop.call_soon`)
keep their native behavior, so the scheduler serializes coroutine
interleaving without forging the transport.

Env knobs, mirroring ``REPRO_RNG_SANITIZE``:

``REPRO_ASYNC_SANITIZE=1``
    Run ``repro-experiments serve`` / :class:`BackgroundServer` under
    the deterministic loop.
``REPRO_ASYNC_SEED=<int>``
    Perturb with this seed (absent: plain FIFO recording).
``REPRO_ASYNC_TRACE=<path>``
    Dump the recorded trace JSON there on loop exit.
"""

from __future__ import annotations

import asyncio
import json
import os
import weakref
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

#: Environment variable that switches the deterministic loop on.
ASYNC_SANITIZE_ENV = "REPRO_ASYNC_SANITIZE"

#: Environment variable holding the perturbation seed (optional).
ASYNC_SEED_ENV = "REPRO_ASYNC_SEED"

#: Environment variable naming the trace dump path (optional).
ASYNC_TRACE_ENV = "REPRO_ASYNC_TRACE"

#: Trace file format marker; bump on incompatible schema changes.
TRACE_FORMAT = "repro-async-trace-v1"

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def async_sanitize_enabled() -> bool:
    """Whether ``REPRO_ASYNC_SANITIZE`` requests the deterministic loop.

    Read from the environment on every call (not cached) so tests can
    flip it with ``monkeypatch.setenv``.
    """
    return os.environ.get(ASYNC_SANITIZE_ENV, "").strip().lower() in _TRUTHY


def seed_from_env() -> int | None:
    """The ``REPRO_ASYNC_SEED`` perturbation seed, or ``None`` (= FIFO)."""
    raw = os.environ.get(ASYNC_SEED_ENV, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError as exc:
        raise ValueError(
            f"{ASYNC_SEED_ENV} must be an integer, got {raw!r}"
        ) from exc


class ScheduleDivergence(RuntimeError):
    """A replayed schedule no longer matches the live runnable set.

    Raised instead of silently continuing with a *different*
    interleaving, which would defeat the point of replaying.
    """


@dataclass(frozen=True)
class TraceEntry:
    """One scheduling decision: step ``seq`` ran task ``label``.

    ``choice`` is the index picked out of the runnable set at that
    moment; ``label`` is the stable task identity (first-appearance
    ordinal plus the coroutine qualname), which is what replay
    validates.
    """

    seq: int
    choice: int
    label: str

    def to_dict(self) -> dict:
        """This entry as a plain JSON-serializable mapping."""
        return {"seq": self.seq, "choice": self.choice, "label": self.label}


@dataclass
class InterleavingTrace:
    """A recorded interleaving: the seed plus every scheduling decision.

    Serializes to canonical JSON (sorted keys, fixed separators) so two
    identical schedules produce byte-identical files — the property
    :func:`repro.contracts.check_interleaving_replay` asserts.
    """

    seed: int | None = None
    entries: list[TraceEntry] = field(default_factory=list)

    def append(self, choice: int, label: str) -> None:
        """Record the next decision; ``seq`` is assigned monotonically."""
        self.entries.append(TraceEntry(len(self.entries), choice, label))

    def to_json(self) -> str:
        """Canonical JSON: byte-identical for identical schedules."""
        payload = {
            "format": TRACE_FORMAT,
            "seed": self.seed,
            "entries": [entry.to_dict() for entry in self.entries],
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "InterleavingTrace":
        """Parse a trace, rejecting anything but :data:`TRACE_FORMAT`."""
        payload = json.loads(text)
        if payload.get("format") != TRACE_FORMAT:
            raise ValueError(
                f"not a {TRACE_FORMAT} trace: format="
                f"{payload.get('format')!r}"
            )
        trace = cls(seed=payload.get("seed"))
        for raw in payload.get("entries", []):
            trace.entries.append(
                TraceEntry(int(raw["seq"]), int(raw["choice"]),
                           str(raw["label"]))
            )
        return trace

    def save(self, path: str | Path) -> None:
        """Write the canonical JSON (plus trailing newline) to ``path``."""
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "InterleavingTrace":
        """Read a trace previously written by :meth:`save`."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))


class DeterministicScheduler:
    """Chooses which runnable task steps next; journals every choice.

    Exactly one of the three modes is active:

    * ``seed is None and schedule is None`` — FIFO record;
    * ``seed`` given — seeded perturbation (``numpy`` Generator, so the
      choice sequence is reproducible across platforms);
    * ``schedule`` given — replay that trace, validating labels.
    """

    def __init__(self, seed: int | None = None,
                 schedule: InterleavingTrace | None = None) -> None:
        if seed is not None and schedule is not None:
            raise ValueError("pass either seed= (perturb) or schedule= "
                             "(replay), not both")
        self.trace = InterleavingTrace(
            seed=schedule.seed if schedule is not None else seed
        )
        self._rng = None if seed is None else np.random.default_rng(seed)
        self._schedule = schedule
        self._cursor = 0
        # Stable task identities: first-appearance ordinal, weakly keyed
        # so a long-running server does not pin finished tasks alive.
        self._ordinals: "weakref.WeakKeyDictionary" = (
            weakref.WeakKeyDictionary()
        )
        self._next_ordinal = 0

    def label_for(self, task: asyncio.Task) -> str:
        """Stable identity for ``task``: first-appearance ordinal + coro name."""
        ordinal = self._ordinals.get(task)
        if ordinal is None:
            ordinal = self._next_ordinal
            self._next_ordinal += 1
            self._ordinals[task] = ordinal
        try:
            name = task.get_coro().__qualname__
        except AttributeError:  # pragma: no cover - exotic awaitables
            name = type(task).__name__
        return f"t{ordinal}:{name}"

    def choose(self, labels: list[str]) -> int:
        """Pick an index into the runnable set and journal the step."""
        if self._schedule is not None and self._cursor < len(
            self._schedule.entries
        ):
            entry = self._schedule.entries[self._cursor]
            self._cursor += 1
            if entry.choice >= len(labels):
                raise ScheduleDivergence(
                    f"step {entry.seq}: trace chose index {entry.choice} "
                    f"but only {len(labels)} steps are runnable"
                )
            if labels[entry.choice] != entry.label:
                raise ScheduleDivergence(
                    f"step {entry.seq}: trace expected task "
                    f"{entry.label!r} at index {entry.choice}, found "
                    f"{labels[entry.choice]!r}; the program under replay "
                    "diverged from the recorded one"
                )
            choice = entry.choice
        elif self._rng is not None:
            choice = int(self._rng.integers(len(labels)))
        else:
            choice = 0
        self.trace.append(choice, labels[choice])
        return choice

    def abandon_schedule(self) -> None:
        """Stop replaying (after a divergence); fall back to FIFO so
        loop teardown can still drain pending steps."""
        self._schedule = None


class DeterministicEventLoop(asyncio.SelectorEventLoop):
    """A selector loop that funnels task steps through one scheduler.

    :meth:`call_soon` intercepts callbacks whose ``__self__`` is an
    :class:`asyncio.Task` — coroutine step and wakeup callbacks, i.e.
    every resumption after an ``await`` — parks them in a pending set,
    and schedules a single pump.  Each pump releases exactly one step
    (the scheduler's choice) and re-arms itself while steps remain, so
    between any two coroutine steps the loop still services I/O and
    timers natively.  Non-task callbacks (transport events, futures'
    plain done-callbacks, ``call_later`` handles) are passed through
    untouched.
    """

    def __init__(self, scheduler: DeterministicScheduler) -> None:
        super().__init__()
        self.scheduler = scheduler
        self.failure: ScheduleDivergence | None = None
        self._pending_steps: list[asyncio.Handle] = []
        self._pump_armed = False

    def call_soon(self, callback, *args, context=None):
        if isinstance(getattr(callback, "__self__", None), asyncio.Task):
            handle = asyncio.Handle(callback, args, self, context)
            self._pending_steps.append(handle)
            self._arm_pump()
            return handle
        return super().call_soon(callback, *args, context=context)

    def _arm_pump(self) -> None:
        if not self._pump_armed:
            self._pump_armed = True
            super().call_soon(self._pump)

    def _pump(self) -> None:
        self._pump_armed = False
        steps = [h for h in self._pending_steps if not h.cancelled()]
        self._pending_steps.clear()
        if not steps:
            return
        labels = [
            self.scheduler.label_for(h._callback.__self__) for h in steps
        ]
        try:
            choice = self.scheduler.choose(labels)
        except ScheduleDivergence as exc:
            # Raising out of a loop callback would only reach asyncio's
            # exception handler (a log line) while the stranded steps
            # hang the program.  Instead: remember the failure for
            # :func:`_run_to_completion` to re-raise, drop the dead
            # schedule so teardown can drain FIFO, and stop the loop.
            self.failure = exc
            self.scheduler.abandon_schedule()
            self._pending_steps.extend(steps)
            self._arm_pump()
            self.stop()
            return
        chosen = steps.pop(choice)
        # Put the rest back *before* running: the chosen step may
        # enqueue new steps, and those must compete with the survivors.
        self._pending_steps.extend(steps)
        if self._pending_steps:
            self._arm_pump()
        chosen._run()


def _run_to_completion(loop: DeterministicEventLoop, main) -> object:
    """``asyncio.run`` semantics on an already-constructed loop.

    Runs ``main``, then — like :class:`asyncio.Runner` — cancels every
    task still pending (live connection handlers at server shutdown),
    awaits them, and shuts down async generators, so the deterministic
    path leaks no "Task was destroyed but it is pending" noise that the
    plain path would not.
    """
    try:
        asyncio.set_event_loop(loop)
        try:
            result = loop.run_until_complete(main)
        except RuntimeError:
            # "Event loop stopped before Future completed" is how a
            # schedule divergence surfaces (the pump stops the loop);
            # translate it back into the real failure.
            if loop.failure is not None:
                raise loop.failure from None
            raise
        if loop.failure is not None:
            # Divergence in the same callback batch that completed main.
            raise loop.failure
        return result
    finally:
        try:
            leftovers = asyncio.all_tasks(loop)
            if leftovers:
                for task in leftovers:
                    task.cancel()
                loop.run_until_complete(
                    asyncio.gather(*leftovers, return_exceptions=True)
                )
            loop.run_until_complete(loop.shutdown_asyncgens())
        finally:
            asyncio.set_event_loop(None)
            loop.close()


def run_deterministic(
    main,
    *,
    seed: int | None = None,
    schedule: InterleavingTrace | None = None,
):
    """Run coroutine ``main`` to completion under the deterministic loop.

    Returns ``(result, trace)`` — the coroutine's return value and the
    recorded :class:`InterleavingTrace`.  The loop is created fresh and
    closed on exit (the :func:`asyncio.run` contract), so traces never
    bleed between runs.
    """
    scheduler = DeterministicScheduler(seed=seed, schedule=schedule)
    loop = DeterministicEventLoop(scheduler)
    result = _run_to_completion(loop, main)
    return result, scheduler.trace


def run_sanitized(main) -> object:
    """The server entry-point hook: env-configured deterministic run.

    Reads ``REPRO_ASYNC_SEED`` for the perturbation mode and dumps the
    trace to ``REPRO_ASYNC_TRACE`` (if set) even when ``main`` raises —
    a trace of the failing interleaving is exactly what you want to
    replay.  Callers gate on :func:`async_sanitize_enabled`.
    """
    scheduler = DeterministicScheduler(seed=seed_from_env())
    loop = DeterministicEventLoop(scheduler)
    try:
        return _run_to_completion(loop, main)
    finally:
        trace_path = os.environ.get(ASYNC_TRACE_ENV, "").strip()
        if trace_path:
            scheduler.trace.save(trace_path)
