"""Deterministic replay journals: ``repro-service-journal-v1``.

Every journaled session can be rebuilt *offline* to a byte-identical
matching and sparsifier fingerprint.  The format follows the engine's
checkpoint discipline (append-only JSONL, a kill loses at most the line
being written, truncated tails tolerated):

* line 1 — header::

      {"format": "repro-service-journal-v1", "protocol": "...",
       "session": name, "num_vertices": n, "beta": b, "epsilon": e,
       "backend": k, "delta": d, "work_budget": w,
       "rng": {"bit_generator": ..., "entropy": ..., "spawn_key": [...]}}

  The ``rng`` object is the session root stream's
  :class:`~repro.instrument.rng.RngSpec`, captured before any draw —
  identity, not position.

* one line per **applied** update (rejected updates are never
  journaled)::

      {"seq": i, "op": "insert"|"delete", "u": u, "v": v}

Replay (:func:`replay_journal`) rebuilds the root generator via
:func:`~repro.instrument.rng.rng_from_spec`, constructs a fresh
:class:`~repro.service.session.Session` with the header's parameters,
and applies the updates in sequence.  Because the session spawns its
child streams deterministically and every random draw is a function of
(stream, applied-update sequence), the replayed matching's mate array
and the state fingerprint match the live session byte-for-byte — the
property :func:`repro.contracts.check_replay_sessions` asserts.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, TYPE_CHECKING

from repro.instrument.rng import RngSpec, rng_from_spec
from repro.service.protocol import PROTOCOL

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.service.session import Session

#: Journal format identifier (header ``format`` field).
JOURNAL_FORMAT = "repro-service-journal-v1"


class JournalError(RuntimeError):
    """The journal on disk is missing, malformed, or incompatible."""


class ReplayJournal:
    """Append-only writer for one session's replay journal.

    Opened by the server when a session is created with journaling on;
    the header is written by :meth:`write_header` (called from the
    session constructor, which knows its own RngSpec), update records
    by :meth:`record`.  Records are buffered and flushed once per
    micro-batch (:meth:`flush`) — crash-consistent at batch
    granularity.
    """

    def __init__(self, path: str | Path) -> None:
        """Create (truncate) the journal file at ``path``."""
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: IO[str] | None = self.path.open("w")

    def write_header(self, session: "Session") -> None:
        """Write the header line describing ``session``."""
        if self._handle is None:
            raise JournalError(f"{self.path}: journal is closed")
        spec = session.rng_spec
        header = {
            "format": JOURNAL_FORMAT,
            "protocol": PROTOCOL,
            "session": session.name,
            "num_vertices": session.num_vertices,
            "beta": session.beta,
            "epsilon": session.epsilon,
            "backend": session.backend,
            "delta": session.delta,
            "work_budget": session.work_budget,
            "rng": {
                "bit_generator": spec.bit_generator,
                "entropy": spec.entropy,
                "spawn_key": list(spec.spawn_key),
            },
        }
        self._handle.write(json.dumps(header) + "\n")
        self._handle.flush()

    def record(self, seq: int, op: str, u: int, v: int) -> None:
        """Append one applied update (buffered until :meth:`flush`)."""
        if self._handle is None:
            raise JournalError(f"{self.path}: journal is closed")
        self._handle.write(
            json.dumps({"seq": seq, "op": op, "u": u, "v": v}) + "\n"
        )

    def flush(self) -> None:
        """Flush buffered records to disk."""
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        """Flush and close the journal (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def read_journal(path: str | Path) -> tuple[dict, list[dict]]:
    """Parse a journal into ``(header, update_records)``.

    Validates the header's format field and each record's shape;
    an unparsable *trailing* line is dropped (kill mid-append), an
    unparsable line elsewhere raises :class:`JournalError`, as does a
    sequence-number gap — replay refuses to silently skip updates.
    """
    path = Path(path)
    if not path.exists():
        raise JournalError(f"{path}: no such journal")
    lines = path.read_text().splitlines()
    if not lines:
        raise JournalError(f"{path}: empty journal (no header)")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise JournalError(f"{path}: bad header: {exc}") from exc
    if header.get("format") != JOURNAL_FORMAT:
        raise JournalError(
            f"{path}: unknown journal format {header.get('format')!r}"
        )
    updates: list[dict] = []
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            record = json.loads(line)
            seq, op = int(record["seq"]), record["op"]
            u, v = int(record["u"]), int(record["v"])
        except Exception as exc:
            if lineno == len(lines):
                break  # truncated tail: the expected kill signature
            raise JournalError(f"{path}:{lineno}: bad record") from exc
        if op not in ("insert", "delete"):
            raise JournalError(f"{path}:{lineno}: bad op {op!r}")
        if seq != len(updates) + 1:
            raise JournalError(
                f"{path}:{lineno}: sequence gap (expected "
                f"{len(updates) + 1}, got {seq})"
            )
        updates.append({"seq": seq, "op": op, "u": u, "v": v})
    return header, updates


def replay_journal(path: str | Path, upto: int | None = None) -> "Session":
    """Rebuild a session offline from its journal (see module docstring).

    Parameters
    ----------
    path:
        Journal file written by a live server.
    upto:
        Replay only the first ``upto`` updates (``None`` = all) —
        time-travel debugging of a serving incident.
    """
    from repro.service.session import Session

    header, updates = read_journal(path)
    try:
        spec = RngSpec(
            bit_generator=header["rng"]["bit_generator"],
            entropy=int(header["rng"]["entropy"]),
            spawn_key=tuple(int(k) for k in header["rng"]["spawn_key"]),
        )
        session = Session(
            name=header["session"],
            num_vertices=int(header["num_vertices"]),
            beta=int(header["beta"]),
            epsilon=float(header["epsilon"]),
            backend=header.get("backend", "lazy_rebuild"),
            rng=rng_from_spec(spec),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise JournalError(f"{path}: bad header fields: {exc}") from exc
    if upto is not None:
        updates = updates[:upto]
    for record in updates:
        session.apply(record["op"], record["u"], record["v"])
    return session
