"""Per-session service metrics: latency percentiles, counters, queues.

Latency is *measured* wall-clock time (via
:func:`repro.instrument.timers.now`, the R2-sanctioned clock) and is
strictly observational: no control-flow that affects matching output
ever reads it, so replay determinism is untouched.  The *budget* the
percentiles are judged against comes in two forms:

* a **work budget** in rebuild chunks, derived from the Theorem 3.5
  bound (see :func:`repro.service.session.theorem_work_budget`) and
  enforced deterministically by the matcher; and
* a **latency budget** in milliseconds (the SLO counterpart), against
  which every recorded sample is compared — samples over budget bump
  the ``over_budget`` count, and admission control rejects work when
  queues exceed their bound (``rejected_over_budget``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.instrument.counters import CounterSet

#: Default per-update latency budget (milliseconds) when a session does
#: not configure one.  Generous for the pure-python update path; the
#: benchmark asserts real p99 sits far below it.
DEFAULT_BUDGET_MS = 50.0


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (q in [0, 100]).

    Deterministic and simple (no interpolation): the value at rank
    ``ceil(q/100 * n)`` of the sorted samples.  Returns 0.0 for an
    empty list.
    """
    if not samples:
        return 0.0
    return percentile_sorted(sorted(samples), q)


def percentile_sorted(ordered: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted non-empty list.

    The sort-free core of :func:`percentile`, so callers taking several
    percentiles of one window (:meth:`LatencyRecorder.snapshot`) sort
    once instead of once per quantile.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must lie in [0, 100], got {q}")
    rank = max(1, -(-int(q * len(ordered)) // 100))  # ceil without math
    return ordered[min(rank, len(ordered)) - 1]


@dataclass
class LatencyRecorder:
    """Collects per-update latency samples against a budget.

    Attributes
    ----------
    budget_ms:
        The configured per-update latency budget in milliseconds.
    samples_ms:
        All recorded samples (milliseconds).  Bounded workloads only;
        the service records one sample per applied update.
    over_budget:
        How many samples exceeded ``budget_ms``.
    """

    budget_ms: float = DEFAULT_BUDGET_MS
    samples_ms: list[float] = field(default_factory=list)
    over_budget: int = 0

    def record(self, seconds: float) -> None:
        """Record one latency sample given in seconds."""
        ms = seconds * 1000.0
        self.samples_ms.append(ms)
        if ms > self.budget_ms:
            self.over_budget += 1

    def sorted_samples(self) -> list[float]:
        """All recorded samples, sorted ascending — the *mergeable* form.

        Cluster-wide percentiles must be taken over the union of every
        shard's samples (averaging per-shard percentiles is wrong for
        any skewed distribution); shards therefore export sorted sample
        lists and :func:`repro.cluster.metrics.merge_latency` k-way
        merges them before ranking.
        """
        return sorted(self.samples_ms)

    def snapshot(self) -> dict:
        """Percentile summary: count, p50/p95/p99/max ms, budget, misses."""
        ordered = sorted(self.samples_ms)
        if not ordered:
            p50 = p95 = p99 = peak = 0.0
        else:
            p50 = percentile_sorted(ordered, 50.0)
            p95 = percentile_sorted(ordered, 95.0)
            p99 = percentile_sorted(ordered, 99.0)
            peak = ordered[-1]
        return {
            "count": len(ordered),
            "p50_ms": round(p50, 4),
            "p95_ms": round(p95, 4),
            "p99_ms": round(p99, 4),
            "max_ms": round(peak, 4),
            "budget_ms": self.budget_ms,
            "over_budget": self.over_budget,
        }


@dataclass
class ServiceMetrics:
    """One session's operational metrics bundle.

    Counters (``updates``, ``inserts``, ``deletes``, ``batches``,
    ``queries``, ``rejected_over_budget``) live in a
    :class:`~repro.instrument.counters.CounterSet`; latency in a
    :class:`LatencyRecorder`; queue depth as a gauge with a
    high-water mark.
    """

    counters: CounterSet = field(default_factory=CounterSet)
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    queue_depth: int = 0
    max_queue_depth: int = 0

    def set_queue_depth(self, depth: int) -> None:
        """Update the queue-depth gauge (tracks the high-water mark)."""
        self.queue_depth = depth
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth

    def snapshot(self) -> dict:
        """A JSON-ready copy of every metric in the bundle."""
        return {
            "counters": self.counters.snapshot(),
            "latency": self.latency.snapshot(),
            "queue": {
                "depth": self.queue_depth,
                "max_depth": self.max_queue_depth,
            },
        }
