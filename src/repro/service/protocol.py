"""The ``repro-service-v1`` wire protocol: JSON lines over TCP.

One request per line, one response line per request, in order.  A
request is a JSON object with an ``op`` field plus op-specific
parameters; a response always carries ``ok`` (bool) and, on failure,
``error`` (a stable machine-readable code) and ``message``.

Pipelining semantics: a client may send many requests before reading
responses; responses come back in request order, and updates pipelined
on one connection are admitted (and applied) in that order.  *Queries*
pipelined behind updates may however execute while those updates are
still queued — for read-your-writes, read the update responses before
querying (the synchronous client does this by construction).

Ops
---
``ping``
    Liveness probe; echoes the protocol version.
``create``
    Create a named session: ``session``, ``num_vertices``, ``beta``,
    ``epsilon``; optional ``backend``, ``seed``, ``journal`` (bool),
    ``budget_ms``.
``insert`` / ``delete``
    One edge update: ``session``, ``u``, ``v``.  Queued through the
    session's micro-batcher; may be rejected with ``backpressure``.
``batch``
    Many updates at once: ``session``, ``updates`` = list of
    ``[op, u, v]`` triples.  All-or-nothing admission control.
``query_matching``
    Current output matching: size + edge list.
``stats``
    Metrics snapshot: counters, latency percentiles, queue depth,
    work bounds, Lemma 3.4 certificate.
``snapshot``
    Current graph + sparsifier edge sets and the session fingerprint.
``close``
    Close a session (flushes and closes its replay journal).
``sessions``
    List live session names.
``shard_stats``
    Server-wide (per-shard) metrics rollup: counter sums over every
    live session, the union of latency samples *sorted ascending*
    (the mergeable form — cluster aggregation unions sorted sample
    lists instead of averaging percentiles), and queue gauges.
``cluster_stats``
    Cluster-wide aggregate.  A plain server answers for itself as a
    single-shard cluster; the :mod:`repro.cluster` router fans
    ``shard_stats`` out to every shard and merges.
``shutdown``
    Stop the server (only honored when started with
    ``allow_shutdown=True``; otherwise ``shutdown-disabled``).

Session names are constrained to :data:`SESSION_NAME_RE` (filename-safe
alphanumerics plus ``._-``, no leading dot, ≤128 chars) — they become
journal file names, so anything else is ``bad-request``.

Error codes: ``bad-request``, ``unknown-op``, ``no-such-session``,
``session-exists``, ``bad-update``, ``backpressure``,
``shutdown-disabled``, ``internal``.
"""

from __future__ import annotations

import json
import re
from typing import Any, Mapping

#: Protocol identifier echoed by ``ping`` and recorded in journals.
PROTOCOL = "repro-service-v1"

#: Admissible session names.  Names become journal file names
#: (``<journal_dir>/<name>.jsonl``), so the class is closed: no path
#: separators, no leading dot, bounded length — a wire client cannot
#: point the journal outside the journal directory.
SESSION_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")

#: All request ops the server understands.
OPS = frozenset({
    "ping", "create", "insert", "delete", "batch", "query_matching",
    "stats", "snapshot", "close", "sessions", "shard_stats",
    "cluster_stats", "shutdown",
})

#: Ops that address an existing session via the ``session`` field.
SESSION_OPS = frozenset({
    "insert", "delete", "batch", "query_matching", "stats", "snapshot",
    "close",
})

#: Required (field, type) pairs per op, beyond ``op`` itself.  ``float``
#: accepts ints too (JSON numbers).
_REQUIRED: dict[str, tuple[tuple[str, type], ...]] = {
    "create": (("session", str), ("num_vertices", int), ("beta", int),
               ("epsilon", float)),
    "insert": (("session", str), ("u", int), ("v", int)),
    "delete": (("session", str), ("u", int), ("v", int)),
    "batch": (("session", str), ("updates", list)),
    "query_matching": (("session", str),),
    "stats": (("session", str),),
    "snapshot": (("session", str),),
    "close": (("session", str),),
    "ping": (),
    "sessions": (),
    "shard_stats": (),
    "cluster_stats": (),
    "shutdown": (),
}


class ProtocolError(ValueError):
    """A malformed or invalid request line.

    Attributes
    ----------
    code:
        Stable error code for the response envelope.
    """

    def __init__(self, code: str, message: str) -> None:
        """Store the error ``code`` and human-readable ``message``."""
        super().__init__(message)
        self.code = code


def _type_ok(value: Any, expected: type) -> bool:
    if expected is float:
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if expected is int:
        return isinstance(value, int) and not isinstance(value, bool)
    return isinstance(value, expected)


def parse_request(line: str) -> dict:
    """Parse and structurally validate one request line.

    Raises
    ------
    ProtocolError
        With code ``bad-request`` for unparsable/ill-typed input and
        ``unknown-op`` for an unrecognized ``op``.
    """
    try:
        request = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError("bad-request", f"not valid JSON: {exc}") from exc
    if not isinstance(request, dict):
        raise ProtocolError("bad-request", "request must be a JSON object")
    op = request.get("op")
    if not isinstance(op, str):
        raise ProtocolError("bad-request", "request is missing the op field")
    if op not in OPS:
        raise ProtocolError("unknown-op", f"unknown op {op!r}")
    for field, expected in _REQUIRED[op]:
        if field not in request:
            raise ProtocolError(
                "bad-request", f"op {op!r} requires the {field!r} field"
            )
        if not _type_ok(request[field], expected):
            raise ProtocolError(
                "bad-request",
                f"field {field!r} of op {op!r} must be "
                f"{expected.__name__}, got {type(request[field]).__name__}",
            )
    name = request.get("session")
    if isinstance(name, str) and not SESSION_NAME_RE.fullmatch(name):
        raise ProtocolError(
            "bad-request",
            f"invalid session name {name!r}: must match "
            f"{SESSION_NAME_RE.pattern}",
        )
    if op == "batch":
        for i, item in enumerate(request["updates"]):
            if (not isinstance(item, (list, tuple)) or len(item) != 3
                    or item[0] not in ("insert", "delete")
                    or not _type_ok(item[1], int) or not _type_ok(item[2], int)):
                raise ProtocolError(
                    "bad-request",
                    f"updates[{i}] must be an [\"insert\"|\"delete\", u, v] "
                    "triple",
                )
    return request


def encode(message: Mapping[str, Any]) -> bytes:
    """Serialize one protocol message as a compact JSON line (bytes)."""
    return (json.dumps(message, separators=(",", ":"), sort_keys=True)
            + "\n").encode("utf-8")


def ok_response(**payload: Any) -> dict:
    """Build a success envelope around ``payload``."""
    return {"ok": True, **payload}


def error_response(code: str, message: str) -> dict:
    """Build a failure envelope with a stable ``code``."""
    return {"ok": False, "error": code, "message": message}
