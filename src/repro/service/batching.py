"""Micro-batching with bounded queues and backpressure.

Concurrent client updates to one session are funneled through a
:class:`MicroBatcher`: a bounded asyncio queue drained by a single
worker task that applies up to ``max_batch`` updates back-to-back,
flushes the replay journal once per batch, and attributes the batch's
measured wall-clock time evenly across its updates (one clock-read
pair per batch, not per update).

Serialization through the single worker is also what keeps the service
deterministic: updates are applied — and journaled — in one total
order, so replaying the journal reproduces the matching regardless of
how many clients raced to submit.

**Backpressure.**  The queue is bounded (``max_queue``); a submit that
does not fit is rejected *immediately* with :class:`Backpressure`
(surfaced to the client as the ``backpressure`` error code) and
counted in ``rejected_over_budget``.  Batch submissions are
all-or-nothing: a batch only enters the queue if every update fits,
so a client never observes a half-applied batch admission.
"""

from __future__ import annotations

import asyncio
from contextlib import suppress

from repro.instrument.timers import now
from repro.service.session import Session, UpdateError


class Backpressure(RuntimeError):
    """The session's update queue is full; the op was rejected.

    Attributes
    ----------
    code:
        Stable protocol error code (``backpressure``).
    """

    def __init__(self, message: str) -> None:
        """Record the rejection reason."""
        super().__init__(message)
        self.code = "backpressure"


class MicroBatcher:
    """Coalesces one session's updates into bounded batches.

    Parameters
    ----------
    session:
        The :class:`~repro.service.session.Session` to apply updates to.
    max_batch:
        Largest number of queued updates applied back-to-back.
    max_queue:
        Queue bound; submits beyond it raise :class:`Backpressure`.

    Notes
    -----
    Must be constructed inside a running event loop (the worker task
    starts immediately).  :meth:`close` drains the queue and stops the
    worker.
    """

    def __init__(
        self, session: Session, *, max_batch: int = 32, max_queue: int = 1024
    ) -> None:
        """Start the worker task for ``session``."""
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.session = session
        self.max_batch = max_batch
        self.max_queue = max_queue
        # Bounded at the backpressure threshold: submit() rejects before
        # put_nowait could ever overflow, so the bound is a hard backstop
        # (and satisfies the R13 unbounded-queue discipline).
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=max_queue)
        self._closed = False
        self._worker = asyncio.get_running_loop().create_task(self._run())
        self._worker.add_done_callback(self._on_worker_done)

    # ------------------------------------------------------------------ #
    def _reject(self, count: int, detail: str) -> None:
        self.session.metrics.counters["rejected_over_budget"].add(count)
        raise Backpressure(
            f"session {self.session.name!r} queue is full ({detail}); "
            "retry after the backlog drains"
        )

    def _enqueue(self, op: str, u: int, v: int) -> asyncio.Future:
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._queue.put_nowait((op, u, v, future))
        self.session.metrics.set_queue_depth(self._queue.qsize())
        return future

    async def submit(self, op: str, u: int, v: int) -> dict:
        """Queue one update; await and return its applied record.

        Raises :class:`Backpressure` when the queue is full and
        :class:`~repro.service.session.UpdateError` when the session
        rejects the update itself.
        """
        if self._closed:
            raise Backpressure("batcher is closed")
        if self._queue.qsize() + 1 > self.max_queue:
            self._reject(1, f"depth {self._queue.qsize()}/{self.max_queue}")
        return await self._enqueue(op, u, v)

    async def submit_batch(self, updates: list[tuple[str, int, int]]) -> list[dict]:
        """Queue many updates atomically; return per-update outcomes.

        Admission is all-or-nothing (the whole batch is rejected when
        it does not fit).  Each returned element is either the applied
        record or ``{"error": code, "message": ...}`` — one bad update
        does not poison its batch-mates.
        """
        if self._closed:
            raise Backpressure("batcher is closed")
        if self._queue.qsize() + len(updates) > self.max_queue:
            self._reject(
                len(updates),
                f"batch of {len(updates)} vs depth "
                f"{self._queue.qsize()}/{self.max_queue}",
            )
        futures = [self._enqueue(op, u, v) for op, u, v in updates]
        outcomes: list[dict] = []
        for future in futures:
            try:
                outcomes.append(await future)
            except UpdateError as exc:
                outcomes.append({"error": exc.code, "message": str(exc)})
        return outcomes

    # ------------------------------------------------------------------ #
    async def _run(self) -> None:
        while True:
            first = await self._queue.get()
            batch = [first]
            while len(batch) < self.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            try:
                self._apply_batch(batch)
            except Exception as exc:
                # A non-UpdateError failure (backend bug, journal IO
                # error) must not kill the worker: later submits would
                # queue forever and close() would deadlock on join().
                # Fail the batch's unresolved futures and keep serving.
                for _op, _u, _v, future in batch:
                    if not future.done():
                        future.set_exception(exc)
            finally:
                for _ in batch:
                    self._queue.task_done()

    def _apply_batch(
        self, batch: list[tuple[str, int, int, asyncio.Future]]
    ) -> None:
        self.session.metrics.set_queue_depth(self._queue.qsize())
        start = now()
        results: list[tuple[asyncio.Future, dict | UpdateError]] = []
        applied = 0
        for op, u, v, future in batch:
            try:
                record = self.session.apply(op, u, v)
                applied += 1
                results.append((future, record))
            except UpdateError as exc:
                results.append((future, exc))
        self.session.flush_journal()
        elapsed = now() - start
        per_update = elapsed / len(batch)
        for _ in range(applied):
            self.session.metrics.latency.record(per_update)
        self.session.metrics.counters["batches"].increment()
        for future, outcome in results:
            if future.cancelled():
                continue
            if isinstance(outcome, UpdateError):
                future.set_exception(outcome)
            else:
                future.set_result(outcome)

    def _fail_pending(self, exc: BaseException) -> None:
        """Drain the queue, failing every unresolved future with ``exc``."""
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            future = item[3]
            if not future.done():
                future.set_exception(exc)
            self._queue.task_done()

    def _on_worker_done(self, task: asyncio.Task) -> None:
        # The worker only exits via cancellation (close), but if it
        # ever dies, submitters must not hang on futures nobody will
        # resolve: mark the batcher closed and fail everything queued.
        self._closed = True
        exc: BaseException | None = None
        if not task.cancelled():
            exc = task.exception()
        self._fail_pending(exc or Backpressure("batcher worker stopped"))

    async def close(self) -> None:
        """Drain pending updates, then stop the worker task."""
        self._closed = True
        if not self._worker.done():
            await self._queue.join()
        self._worker.cancel()
        with suppress(asyncio.CancelledError):
            await self._worker
        self._fail_pending(Backpressure("batcher is closed"))
