"""repro.service — a dynamic-matching server around Theorem 3.5.

The paper's headline systems result — a fully dynamic (1+ε)-MCM with
*worst-case* update time O(β/ε³·log(1/ε)) that survives an adaptive
adversary — is exactly the guarantee a live service needs.  This package
is that service: an asyncio JSON-lines TCP server hosting named graph
**sessions**, each owning a maintained sparsifier G_Δ plus a pluggable
dynamic matcher backend.

Layers (bottom-up):

* :mod:`repro.service.protocol` — the JSON-lines wire format
  (``repro-service-v1``): request validation, response envelopes,
  error codes.
* :mod:`repro.service.metrics` — per-session latency recorder
  (p50/p95/p99 against a configured budget) and operation counters.
* :mod:`repro.service.session` — :class:`Session`: a
  :class:`~repro.dynamic.dynamic_sparsifier.DynamicSparsifier` plus a
  backend matcher (``lazy_rebuild`` / ``oblivious`` / ``baseline``),
  a Lemma 3.4 stability certificate, and a deterministic state
  fingerprint.
* :mod:`repro.service.journal` — the per-session deterministic replay
  journal (``repro-service-journal-v1``): RngSpec-captured streams +
  applied-update log, replayable offline to a byte-identical matching.
* :mod:`repro.service.batching` — micro-batching with bounded queues
  and backpressure (rejected-over-budget accounting).
* :mod:`repro.service.server` — the asyncio TCP server and the
  in-thread :class:`BackgroundServer` used by tests and benchmarks.
* :mod:`repro.service.client` — async client + a synchronous wrapper.
* :mod:`repro.service.loadgen` — deterministic oblivious/adaptive
  load generation driven through the client.

CLI: ``repro-experiments serve`` starts a server,
``repro-experiments replay <journal>`` re-derives a session offline.
See ``docs/SERVICE.md`` for the protocol schema and semantics.
"""

from repro.service.client import AsyncServiceClient, ServiceClient, ServiceError
from repro.service.journal import (
    JOURNAL_FORMAT,
    JournalError,
    ReplayJournal,
    read_journal,
    replay_journal,
)
from repro.service.protocol import PROTOCOL, ProtocolError
from repro.service.server import BackgroundServer, MatchingService, run_server
from repro.service.session import BACKENDS, Session, UpdateError, theorem_work_budget

__all__ = [
    "AsyncServiceClient",
    "BACKENDS",
    "BackgroundServer",
    "JOURNAL_FORMAT",
    "JournalError",
    "MatchingService",
    "PROTOCOL",
    "ProtocolError",
    "ReplayJournal",
    "ServiceClient",
    "ServiceError",
    "Session",
    "UpdateError",
    "read_journal",
    "replay_journal",
    "run_server",
    "theorem_work_budget",
]
