"""Deterministic load generation for the dynamic-matching server.

Drives a session with the update streams of
:mod:`repro.dynamic.adversaries` — the *oblivious* random stream and
the *adaptive* attacker that observes the served matching (through the
real ``query_matching`` op) and preferentially deletes matched edges —
over a bounded-β clique-union edge universe.  Given one seed, the
generated traffic is a pure function of the server's (deterministic)
responses, so a loadgen run is end-to-end reproducible and its journal
replays to the same matching.

Updates are sent as ``batch`` ops of configurable size; the adaptive
adversary observes once per batch (a cached observation is reused while
a batch is being generated — a legal adversary strategy, and what keeps
the query amplification bounded).

Run directly for the CLI::

    python -m repro.service.loadgen --port 8765 --session burst \
        --adversary adaptive --steps 500 --seed 7 --out report.json

``--sessions N`` (with ``--session-offset K``) drives N independent
sessions — against a cluster router they spread over the shards — and
reports the aggregate; disjoint offsets let concurrent loadgen
processes partition the session space deterministically.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.dynamic.adversaries import AdaptiveAdversary, ObliviousAdversary
from repro.graphs.generators.cliques import clique_union
from repro.instrument.rng import resolve_rng
from repro.instrument.timers import Timer
from repro.matching.matching import Matching
from repro.service.client import ServiceClient, ServiceError

#: Bounded retries when a batch is rejected with backpressure.
_MAX_REJECTIONS = 64


class _BatchObserver:
    """Caches the served matching for one batch of adaptive updates."""

    def __init__(self, client: ServiceClient, session: str,
                 num_vertices: int) -> None:
        self._client = client
        self._session = session
        self._num_vertices = num_vertices
        self._cached: Matching | None = None

    def __call__(self) -> Matching:
        """The served matching (cached until :meth:`invalidate`)."""
        if self._cached is None:
            self._cached = self._client.matching(
                self._session, self._num_vertices
            )
        return self._cached

    def invalidate(self) -> None:
        """Drop the cache (called after every batch is applied)."""
        self._cached = None


def run_load(
    client: ServiceClient,
    session: str,
    adversary: str = "oblivious",
    steps: int = 500,
    batch_size: int = 16,
    num_cliques: int = 4,
    clique_size: int = 16,
    beta: int = 1,
    epsilon: float = 0.4,
    backend: str = "lazy_rebuild",
    journal: bool = True,
    budget_ms: float | None = None,
    close: bool = False,
    *,
    seed: int = 0,
) -> dict:
    """Create a session, drive ``steps`` adversarial updates, report.

    Parameters
    ----------
    client:
        Connected :class:`~repro.service.client.ServiceClient`.
    session:
        Session name to create on the server.
    adversary:
        ``"oblivious"`` or ``"adaptive"``.
    steps:
        Number of updates to attempt.
    batch_size:
        Updates per ``batch`` op (the adaptive adversary re-observes
        once per batch).
    num_cliques, clique_size:
        Shape of the β=1 clique-union host whose edges form the
        allowed universe.
    beta, epsilon, backend, journal, budget_ms:
        Session parameters forwarded to ``create``.
    close:
        Also close the session at the end (flushes its journal).
    seed:
        Root seed: the session gets it verbatim, the adversary gets a
        spawned child stream.

    Returns
    -------
    dict
        JSON-ready report: applied/rejected counts, throughput, final
        matching + fingerprint, and the server's stats snapshot.
    """
    if adversary not in ("oblivious", "adaptive"):
        raise ValueError(f"unknown adversary {adversary!r}")
    host = clique_union(num_cliques, clique_size)
    universe = sorted(host.edges())
    n = host.num_vertices
    client.create(
        session, num_vertices=n, beta=beta, epsilon=epsilon,
        backend=backend, seed=seed, journal=journal, budget_ms=budget_ms,
    )
    root = resolve_rng(seed=seed, owner="run_load")
    adversary_rng = root.spawn(1)[0]
    observer = _BatchObserver(client, session, n)
    if adversary == "adaptive":
        generator = AdaptiveAdversary(
            universe, observe=observer, attack_probability=0.4,
            rng=adversary_rng,
        )
    else:
        generator = ObliviousAdversary(
            universe, delete_probability=0.3, rng=adversary_rng
        )

    applied = errors = rejected = 0
    attacks_before = getattr(generator, "attacks", 0)
    with Timer() as timer:
        remaining = steps
        while remaining > 0:
            updates = []
            while len(updates) < min(batch_size, remaining):
                update = generator.next_update()
                if update is None:
                    break
                updates.append((update.op, update.u, update.v))
            if not updates:
                break
            for attempt in range(_MAX_REJECTIONS):
                try:
                    response = client.batch(session, updates)
                except ServiceError as exc:
                    if exc.code != "backpressure":
                        raise
                    rejected += len(updates)
                else:
                    break
            else:  # pragma: no cover - requires a saturated server
                raise RuntimeError("server backpressure never cleared")
            applied += response["applied"]
            errors += len(updates) - response["applied"]
            remaining -= len(updates)
            observer.invalidate()
    final = client.query_matching(session)
    stats = client.stats(session)
    snapshot_fingerprint = client.snapshot(session)["fingerprint"]
    if close:
        client.close_session(session)
    elapsed = timer.elapsed
    return {
        "session": session,
        "adversary": adversary,
        "seed": seed,
        "backend": backend,
        "universe": {"num_cliques": num_cliques, "clique_size": clique_size,
                     "num_vertices": n, "edges": len(universe)},
        "steps_requested": steps,
        "applied": applied,
        "errors": errors,
        "rejected": rejected,
        "attacks": getattr(generator, "attacks", attacks_before),
        "elapsed_seconds": round(elapsed, 4),
        "updates_per_second": round(applied / elapsed, 1) if elapsed > 0 else None,
        "size": final["size"],
        "matching": final["edges"],
        "fingerprint": snapshot_fingerprint,
        "stats": stats,
    }


def run_multi_load(
    client: ServiceClient,
    sessions: int,
    session_prefix: str = "loadgen",
    session_offset: int = 0,
    *,
    seed: int = 0,
    **load_kwargs,
) -> dict:
    """Drive ``sessions`` independent sessions and aggregate the reports.

    Session ``i`` is named ``{prefix}-{offset+i}`` and seeded
    ``seed + offset + i`` — a pure function of the arguments, so two
    loadgen processes with disjoint offsets generate disjoint,
    individually-reproducible traffic (the cluster bench's pattern:
    one process per client, offsets partitioning the session space).
    Against a cluster router the sessions spread over shards by
    rendezvous placement; against a single server they all land there.
    ``steps``, ``adversary``, and the other :func:`run_load` keywords
    apply to every session.

    Returns an aggregate report: summed applied/rejected/errors,
    wall-clock elapsed, cluster-wide updates/sec, and per-session
    summaries (name, seed, applied, size, fingerprint).
    """
    if sessions < 1:
        raise ValueError(f"sessions must be >= 1, got {sessions}")
    reports = []
    with Timer() as timer:
        for index in range(sessions):
            name = f"{session_prefix}-{session_offset + index}"
            reports.append(run_load(
                client, name, seed=seed + session_offset + index,
                **load_kwargs,
            ))
    elapsed = timer.elapsed
    applied = sum(report["applied"] for report in reports)
    return {
        "sessions": sessions,
        "session_prefix": session_prefix,
        "session_offset": session_offset,
        "seed": seed,
        "applied": applied,
        "errors": sum(report["errors"] for report in reports),
        "rejected": sum(report["rejected"] for report in reports),
        "elapsed_seconds": round(elapsed, 4),
        "updates_per_second": (round(applied / elapsed, 1)
                               if elapsed > 0 else None),
        "per_session": [
            {"session": report["session"], "seed": report["seed"],
             "applied": report["applied"], "size": report["size"],
             "fingerprint": report["fingerprint"]}
            for report in reports
        ],
    }


def main(argv: list[str] | None = None) -> int:
    """CLI: drive one deterministic burst against a running server."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.loadgen",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--session", default="loadgen",
                        help="session name (with --sessions N > 1, the "
                             "prefix of '<session>-<k>' names)")
    parser.add_argument("--sessions", type=int, default=1,
                        help="drive N independent sessions and report "
                             "the aggregate (default 1: the classic "
                             "single-session report)")
    parser.add_argument("--session-offset", type=int, default=0,
                        help="first session index for --sessions mode; "
                             "disjoint offsets let concurrent loadgen "
                             "processes partition the session space")
    parser.add_argument("--adversary", choices=("oblivious", "adaptive"),
                        default="oblivious")
    parser.add_argument("--steps", type=int, default=500)
    parser.add_argument("--batch", type=int, default=16)
    parser.add_argument("--num-cliques", type=int, default=4)
    parser.add_argument("--clique-size", type=int, default=16)
    parser.add_argument("--beta", type=int, default=1)
    parser.add_argument("--epsilon", type=float, default=0.4)
    parser.add_argument("--backend", default="lazy_rebuild")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--budget-ms", type=float, default=None)
    parser.add_argument("--out", default=None,
                        help="write the JSON report here (default stdout)")
    parser.add_argument("--close", action="store_true",
                        help="close the session when done (flushes journal)")
    parser.add_argument("--shutdown", action="store_true",
                        help="ask the server to shut down afterwards")
    args = parser.parse_args(argv)

    load_kwargs = dict(
        adversary=args.adversary, steps=args.steps,
        batch_size=args.batch, num_cliques=args.num_cliques,
        clique_size=args.clique_size, beta=args.beta,
        epsilon=args.epsilon, backend=args.backend,
        budget_ms=args.budget_ms, close=args.close or args.shutdown,
    )
    client = ServiceClient(args.host, args.port)
    try:
        if args.sessions > 1 or args.session_offset:
            report = run_multi_load(
                client, args.sessions, session_prefix=args.session,
                session_offset=args.session_offset, seed=args.seed,
                **load_kwargs,
            )
        else:
            report = run_load(client, args.session, seed=args.seed,
                              **load_kwargs)
        if args.shutdown:
            client.shutdown()
    finally:
        client.close()
    text = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
    else:
        print(text)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI smoke
    sys.exit(main())
