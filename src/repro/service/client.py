"""Client library for the dynamic-matching server.

Two layers:

* :class:`AsyncServiceClient` — asyncio streams, one request/response
  per :meth:`~AsyncServiceClient.call`.
* :class:`ServiceClient` — the synchronous wrapper most callers want:
  it owns a private event loop and drives the async client under the
  hood, so scripts, tests, and the load generator need no asyncio of
  their own.

Failures come back as :class:`ServiceError` carrying the server's
stable error code (``backpressure``, ``bad-update``, …), so callers
can branch on ``exc.code`` rather than parsing messages.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Iterable, Sequence

from repro.matching.matching import Matching
from repro.service.protocol import encode


class ServiceError(RuntimeError):
    """The server answered ``ok: false``.

    Attributes
    ----------
    code:
        The response's stable error code.
    response:
        The full decoded response object.
    """

    def __init__(self, response: dict) -> None:
        """Wrap a failure response envelope."""
        super().__init__(
            f"{response.get('error', 'error')}: "
            f"{response.get('message', '(no message)')}"
        )
        self.code = response.get("error", "error")
        self.response = response


class AsyncServiceClient:
    """Asyncio client speaking ``repro-service-v1`` over one connection."""

    def __init__(self, host: str, port: int) -> None:
        """Record the server address; call :meth:`connect` before use."""
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> None:
        """Open the TCP connection."""
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def call(self, request: dict, check: bool = True) -> dict:
        """Send one request and await its response.

        With ``check`` (the default), an ``ok: false`` response raises
        :class:`ServiceError`; pass ``check=False`` to receive the raw
        envelope instead.
        """
        if self._reader is None or self._writer is None:
            raise RuntimeError("client is not connected; call connect() first")
        self._writer.write(encode(request))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = json.loads(line)
        if check and not response.get("ok", False):
            raise ServiceError(response)
        return response

    async def close(self) -> None:
        """Close the connection (idempotent).

        The streams are unregistered *before* the close is awaited, so a
        concurrent :meth:`call` (or a second ``close``) interleaving at
        the ``wait_closed`` suspension point sees "not connected" rather
        than racing a half-closed writer.
        """
        writer = self._writer
        self._reader = self._writer = None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass


class ServiceClient:
    """Synchronous client: a blocking facade over the async client.

    Parameters
    ----------
    host, port:
        Server address (connects immediately).

    Examples
    --------
    ::

        client = ServiceClient(host, port)
        client.create("jobs", num_vertices=64, beta=1, epsilon=0.4, seed=0)
        client.insert("jobs", 0, 1)
        print(client.query_matching("jobs")["size"])
        client.close()
    """

    def __init__(self, host: str, port: int) -> None:
        """Connect to the server at ``host:port``."""
        self._loop = asyncio.new_event_loop()
        self._async = AsyncServiceClient(host, port)
        self._run(self._async.connect())

    def _run(self, coroutine):
        return self._loop.run_until_complete(coroutine)

    def call(self, request: dict, check: bool = True) -> dict:
        """Send one raw request dict; see :meth:`AsyncServiceClient.call`."""
        return self._run(self._async.call(request, check=check))

    # ------------------------------------------------------------------ #
    # Op conveniences                                                    #
    # ------------------------------------------------------------------ #
    def ping(self) -> dict:
        """Liveness probe; returns the protocol banner."""
        return self.call({"op": "ping"})

    def create(
        self,
        session: str,
        num_vertices: int,
        beta: int,
        epsilon: float,
        backend: str = "lazy_rebuild",
        seed: int | None = None,
        journal: bool = True,
        budget_ms: float | None = None,
    ) -> dict:
        """Create a named session on the server."""
        request: dict[str, Any] = {
            "op": "create", "session": session,
            "num_vertices": num_vertices, "beta": beta, "epsilon": epsilon,
            "backend": backend, "journal": journal,
        }
        if seed is not None:
            request["seed"] = seed
        if budget_ms is not None:
            request["budget_ms"] = budget_ms
        return self.call(request)

    def insert(self, session: str, u: int, v: int) -> dict:
        """Insert edge {u, v} (queued through the micro-batcher)."""
        return self.call({"op": "insert", "session": session, "u": u, "v": v})

    def delete(self, session: str, u: int, v: int) -> dict:
        """Delete edge {u, v} (queued through the micro-batcher)."""
        return self.call({"op": "delete", "session": session, "u": u, "v": v})

    def batch(
        self, session: str, updates: Iterable[Sequence], check: bool = True
    ) -> dict:
        """Apply many ``(op, u, v)`` updates as one admission unit."""
        return self.call(
            {"op": "batch", "session": session,
             "updates": [[op, int(u), int(v)] for op, u, v in updates]},
            check=check,
        )

    def query_matching(self, session: str) -> dict:
        """The current output matching: ``{"size", "edges"}``."""
        return self.call({"op": "query_matching", "session": session})

    def matching(self, session: str, num_vertices: int | None = None) -> Matching:
        """The current output matching as a :class:`Matching` object.

        Pass ``num_vertices`` when known (saves a ``stats`` round-trip).
        """
        payload = self.query_matching(session)
        if num_vertices is None:
            num_vertices = self.stats(session)["num_vertices"]
        return Matching.from_edges(
            num_vertices, [(u, v) for u, v in payload["edges"]]
        )

    def stats(self, session: str) -> dict:
        """The session's metrics snapshot."""
        return self.call({"op": "stats", "session": session})

    def snapshot(self, session: str) -> dict:
        """Graph + sparsifier edge sets and the state fingerprint."""
        return self.call({"op": "snapshot", "session": session})

    def close_session(self, session: str) -> dict:
        """Close a session (flushes and closes its replay journal)."""
        return self.call({"op": "close", "session": session})

    def sessions(self) -> list[str]:
        """Names of live sessions on the server."""
        return self.call({"op": "sessions"})["sessions"]

    def shard_stats(self) -> dict:
        """Server-wide metrics rollup (mergeable sorted-sample form)."""
        return self.call({"op": "shard_stats"})

    def cluster_stats(self) -> dict:
        """Cluster-wide aggregate (single server answers as one shard)."""
        return self.call({"op": "cluster_stats"})

    def shutdown(self) -> dict:
        """Stop the server (requires ``allow_shutdown`` server-side)."""
        return self.call({"op": "shutdown"})

    def close(self) -> None:
        """Close the connection and the private event loop."""
        self._run(self._async.close())
        self._loop.close()

    def __enter__(self) -> "ServiceClient":
        """Context-manager entry (connection already open)."""
        return self

    def __exit__(self, *exc: object) -> None:
        """Context-manager exit: close the client."""
        self.close()
