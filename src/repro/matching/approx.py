"""(1+ε)-approximate maximum matching via phase-limited augmentation.

The paper's sequential pipeline (§3.1) invokes the classic
Hopcroft–Karp / Micali–Vazirani (1+ε)-matcher [51, 70, 83] as a black box.
We implement the same *phase paradigm*: start from a greedy maximal
matching (already a 2-approximation), then run sweeps of blossom-based
augmentation; sweep k eliminates the augmenting paths the search finds at
that stage, and the classical phase analysis says ⌈1/ε⌉ shortest-path
phases suffice for a (1+ε) factor.  Our search is the simple blossom BFS
(which explores in breadth-first order and therefore finds short paths
first from each root) rather than Micali–Vazirani's strict
shortest-path machinery — see DESIGN.md §4(1).  Consequently:

* the returned matching is always maximal, hence at worst a
  2-approximation, and converges to exact as sweeps increase;
* the (1+ε) factor is validated *empirically* (tests and experiment E1/E7
  compare against :func:`~repro.matching.blossom.mcm_exact`);
* with ``sweeps=None`` the matcher runs to exhaustion and is exact — the
  sequential pipeline's default on the sparsifier, where exactness is
  affordable because the sparsifier has only O(n·Δ) edges.
"""

from __future__ import annotations

import math

import numpy as np

from repro.graphs.adjacency import AdjacencyArrayGraph
from repro.instrument.rng import resolve_rng
from repro.matching.blossom import _BlossomSearch
from repro.matching.greedy import greedy_maximal_matching
from repro.matching.matching import Matching


def sweeps_for_epsilon(epsilon: float) -> int:
    """The phase budget ⌈1/ε⌉ + 1 used for a target factor of 1+ε."""
    if not 0 < epsilon:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    return math.ceil(1.0 / epsilon) + 1


def mcm_approx(
    graph: AdjacencyArrayGraph,
    epsilon: float | None = None,
    sweeps: int | None = None,
    rng: np.random.Generator | int | None = None,
    *,
    seed: int | None = None,
) -> Matching:
    """Approximate MCM by greedy warm start + bounded augmentation sweeps.

    Parameters
    ----------
    graph:
        Input graph.
    epsilon:
        Target approximation slack; translated to a sweep budget via
        :func:`sweeps_for_epsilon`.  Exactly one of ``epsilon`` / ``sweeps``
        may be given; if neither is, the matcher runs to exhaustion
        (exact).
    sweeps:
        Explicit sweep budget (each sweep tries one augmentation search
        from every currently-free vertex).
    rng:
        Optional randomness for the greedy warm start's edge order.

    Returns
    -------
    Matching
        A maximal matching of size ≥ |MCM|/2 always; empirically within
        1+ε of |MCM| for the sweep budget implied by ``epsilon``.
    """
    if epsilon is not None and sweeps is not None:
        raise ValueError("give at most one of epsilon / sweeps")
    budget = None
    if epsilon is not None:
        budget = sweeps_for_epsilon(epsilon)
    elif sweeps is not None:
        if sweeps < 0:
            raise ValueError(f"sweeps must be non-negative, got {sweeps}")
        budget = sweeps

    warm_rng = None
    if rng is not None or seed is not None:
        warm_rng = resolve_rng(seed=seed, rng=rng, owner="mcm_approx")
    matching = greedy_maximal_matching(graph, rng=warm_rng)
    mate = matching.mate.copy()
    search = _BlossomSearch(graph, mate)
    sweep = 0
    while budget is None or sweep < budget:
        sweep += 1
        augmented = False
        for root in np.flatnonzero(mate < 0):
            root = int(root)
            if mate[root] != -1:
                continue  # matched by an earlier augmentation this sweep
            end = search.find_augmenting_path(root)
            if end != -1:
                search.augment(end)
                augmented = True
        if not augmented:
            break  # exhaustion: matching is exactly maximum (Berge)
    return Matching(mate)
