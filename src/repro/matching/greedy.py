"""Greedy maximal matching — the classic O(m) 2-approximation.

This is both the baseline the paper's (1+ε) results improve on, and the
warm start for the approximate matcher's augmentation sweeps.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.adjacency import AdjacencyArrayGraph
from repro.instrument.rng import resolve_rng
from repro.matching.matching import Matching


def greedy_maximal_matching(
    graph: AdjacencyArrayGraph,
    rng: np.random.Generator | int | None = None,
    *,
    seed: int | None = None,
) -> Matching:
    """Scan edges once, matching any edge whose endpoints are both free.

    Parameters
    ----------
    graph:
        Input graph.
    rng:
        If given, edges are scanned in a random order (useful for the
        randomized distributed baseline and for averaging experiments);
        otherwise in the deterministic CSR order.

    Returns
    -------
    Matching
        A maximal matching; size ≥ |MCM|/2.
    """
    mate = np.full(graph.num_vertices, -1, dtype=np.int64)
    edge_arr = graph.edge_array()
    if rng is not None or seed is not None:
        gen = resolve_rng(seed=seed, rng=rng, owner="greedy_maximal_matching")
        edge_arr = edge_arr[gen.permutation(edge_arr.shape[0])]
    for u, v in edge_arr:
        if mate[u] == -1 and mate[v] == -1:
            mate[u], mate[v] = v, u
    return Matching(mate)
