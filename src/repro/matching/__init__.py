"""Matching algorithms: containers, greedy, Hopcroft–Karp, blossom, (1+ε).

All matchers operate on :class:`~repro.graphs.adjacency.AdjacencyArrayGraph`
and return a :class:`~repro.matching.matching.Matching`.  ``mcm_exact``
(the blossom algorithm) is the ground truth every approximation experiment
is measured against; it is itself validated against NetworkX in tests.
"""

from repro.matching.matching import Matching
from repro.matching.greedy import greedy_maximal_matching
from repro.matching.hopcroft_karp import bipartition, hopcroft_karp
from repro.matching.blossom import mcm_exact
from repro.matching.approx import mcm_approx
from repro.matching.gallai_edmonds import (
    GallaiEdmonds,
    gallai_edmonds_decomposition,
    is_maximum_matching,
)

__all__ = [
    "GallaiEdmonds",
    "Matching",
    "bipartition",
    "gallai_edmonds_decomposition",
    "greedy_maximal_matching",
    "hopcroft_karp",
    "is_maximum_matching",
    "mcm_approx",
    "mcm_exact",
]
