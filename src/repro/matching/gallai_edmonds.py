"""Gallai–Edmonds structure and maximum-matching certification.

Two classical tools layered on the blossom machinery:

* :func:`is_maximum_matching` — a Berge certificate: a matching is
  maximum iff no augmenting path exists, which one sweep of blossom
  searches from the free vertices decides.  Used by tests and by the
  dynamic experiments to validate oracles without trusting the matcher
  under test.

* :func:`gallai_edmonds_decomposition` — the canonical partition
  (D, A, C):

  - **D(G)**: vertices missed by *some* maximum matching (equivalently,
    reachable from a free vertex by an even alternating path);
  - **A(G)** = N(D) \\ D;
  - **C(G)**: everything else.

  We compute D by the defining deletion property — v ∈ D iff
  |MCM(G − v)| = |MCM(G)| — with the warm-start trick making each test a
  single augmenting-path search: remove v from a fixed maximum matching
  M and check whether v's mate can be re-saturated.  This is exact and
  O(n) searches total.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.adjacency import AdjacencyArrayGraph
from repro.matching.blossom import _BlossomSearch, mcm_exact
from repro.matching.matching import Matching


def is_maximum_matching(graph: AdjacencyArrayGraph, matching: Matching) -> bool:
    """Berge certificate: True iff ``matching`` is a maximum matching.

    Runs one blossom search from each free vertex on a scratch copy; the
    matching is maximum iff none finds an augmenting path.

    Raises
    ------
    ValueError
        If the matching is not valid for ``graph``.
    """
    if not matching.is_valid_for(graph):
        raise ValueError("matching is not valid for this graph")
    mate = matching.mate.copy()
    search = _BlossomSearch(graph, mate)
    for root in np.flatnonzero(mate < 0):
        if search.find_augmenting_path(int(root)) != -1:
            return False
    return True


@dataclass(frozen=True)
class GallaiEdmonds:
    """The Gallai–Edmonds partition of a graph.

    Attributes
    ----------
    d, a, c:
        Sorted vertex tuples for D(G), A(G), C(G).
    mcm_size:
        |MCM(G)|, computed along the way.
    """

    d: tuple[int, ...]
    a: tuple[int, ...]
    c: tuple[int, ...]
    mcm_size: int


def _saturable_without(graph: AdjacencyArrayGraph, mate: np.ndarray, v: int) -> bool:
    """With v forcibly removed from the matching, can its old mate be
    re-saturated without v?  (Decides |MCM(G−v)| = |MCM(G)|.)

    Precondition: ``mate`` encodes a maximum matching and mate[v] != -1.
    We unmatch (v, mate[v]), hide v by clearing its adjacency influence
    (the search simply never visits v because we root at mate[v] and
    forbid v), and look for an augmenting path.
    """
    partner = int(mate[v])
    scratch = mate.copy()
    scratch[v] = -1
    scratch[partner] = -1
    # Hide v: search on the same graph but reject any path through v by
    # pre-marking v as its own blossom base inside a forbidden state —
    # simplest correct approach: build the search and monkey-block v by
    # setting it "in tree" so it is never adopted, and ensuring no edge
    # scans originate from it (it is never enqueued).
    search = _BlossomSearch(graph, scratch)
    end = _search_avoiding(search, partner, forbidden=v)
    return end != -1


def _search_avoiding(search: _BlossomSearch, root: int, forbidden: int) -> int:
    """A blossom search from ``root`` that never touches ``forbidden``.

    Mirrors :meth:`_BlossomSearch.find_augmenting_path` with one extra
    guard; kept here so the core search stays unburdened.
    """
    from collections import deque

    s = search
    s.parent.fill(-1)
    s.base = np.arange(s.n, dtype=np.int64)
    s.in_tree.fill(False)
    s.in_tree[root] = True
    queue: deque[int] = deque([root])
    while queue:
        v = queue.popleft()
        for to in s.graph.neighbors_array(v):
            to = int(to)
            if to == forbidden:
                continue
            if int(s.base[v]) == int(s.base[to]) or int(s.mate[v]) == to:
                continue
            if to == root or (
                s.mate[to] != -1 and s.parent[s.mate[to]] != -1
            ):
                blossom_base = s._lca(v, to)
                s.in_blossom.fill(False)
                s._mark_path(v, blossom_base, to)
                s._mark_path(to, blossom_base, v)
                for i in range(s.n):
                    if s.in_blossom[s.base[i]]:
                        s.base[i] = blossom_base
                        if not s.in_tree[i]:
                            s.in_tree[i] = True
                            queue.append(i)
            elif s.parent[to] == -1:
                s.parent[to] = v
                if s.mate[to] == -1:
                    return to
                nxt = int(s.mate[to])
                s.in_tree[nxt] = True
                queue.append(nxt)
    return -1


def gallai_edmonds_decomposition(graph: AdjacencyArrayGraph) -> GallaiEdmonds:
    """Compute the Gallai–Edmonds partition (D, A, C) of ``graph``.

    See the module docstring for the method.  Exactness is validated in
    tests against the brute-force definition
    (v ∈ D ⇔ |MCM(G − v)| = |MCM(G)|) and against known structures
    (odd cycles, factor-critical blocks, bipartite graphs via König).
    """
    n = graph.num_vertices
    maximum = mcm_exact(graph)
    mate = maximum.mate
    in_d = np.zeros(n, dtype=bool)
    # Free vertices are missed by this maximum matching: in D by definition.
    in_d[mate < 0] = True
    for v in range(n):
        if mate[v] >= 0 and _saturable_without(graph, mate, v):
            in_d[v] = True
    # A = N(D) \ D, computed as one boundary-edge mask over the CSR
    # arrays: directed edges (src, dst) with src ∈ D, dst ∉ D.
    in_a = np.zeros(n, dtype=bool)
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
    dst = graph.indices
    in_a[dst[in_d[src] & ~in_d[dst]]] = True
    in_c = ~(in_d | in_a)
    return GallaiEdmonds(
        d=tuple(int(v) for v in np.flatnonzero(in_d)),
        a=tuple(int(v) for v in np.flatnonzero(in_a)),
        c=tuple(int(v) for v in np.flatnonzero(in_c)),
        mcm_size=maximum.size,
    )
