"""Hopcroft–Karp exact maximum matching for bipartite graphs [51].

The paper's sequential application cites Hopcroft–Karp as one of the
standard (1+ε)-matchers; we implement the exact bipartite version (with
automatic bipartition detection) both as a fast exact oracle on bipartite
workloads and as a cross-check for the general blossom matcher.
"""

from __future__ import annotations

import sys
from collections import deque

import numpy as np

from repro.graphs.adjacency import AdjacencyArrayGraph
from repro.matching.matching import Matching

_INF = np.iinfo(np.int64).max


def bipartition(graph: AdjacencyArrayGraph) -> tuple[np.ndarray, np.ndarray]:
    """2-color ``graph``; returns (left_vertices, right_vertices).

    Isolated vertices are assigned to the left side.

    Raises
    ------
    ValueError
        If the graph contains an odd cycle (not bipartite).
    """
    n = graph.num_vertices
    color = np.full(n, -1, dtype=np.int8)
    for root in range(n):
        if color[root] != -1:
            continue
        color[root] = 0
        queue = deque([root])
        while queue:
            v = queue.popleft()
            for u in graph.neighbors_array(v):
                u = int(u)
                if color[u] == -1:
                    color[u] = 1 - color[v]
                    queue.append(u)
                elif color[u] == color[v]:
                    raise ValueError("graph is not bipartite (odd cycle found)")
    return np.flatnonzero(color == 0), np.flatnonzero(color == 1)


def hopcroft_karp(graph: AdjacencyArrayGraph) -> Matching:
    """Exact MCM for a bipartite graph in O(m·√n).

    Phases of BFS layering + DFS augmentation along a maximal set of
    vertex-disjoint shortest augmenting paths; the classic analysis shows
    O(√n) phases suffice — also the template for the paper's (1+ε) phase
    argument (stop after ⌈1/ε⌉ phases).

    Raises
    ------
    ValueError
        If the graph is not bipartite.
    """
    left, _ = bipartition(graph)
    n = graph.num_vertices
    # Augmenting paths can be Θ(n) long; the recursive DFS needs headroom.
    sys.setrecursionlimit(max(sys.getrecursionlimit(), 4 * n + 1000))
    mate = np.full(n, -1, dtype=np.int64)
    dist = np.full(n, _INF, dtype=np.int64)
    left_list = [int(v) for v in left]

    def bfs() -> bool:
        queue: deque[int] = deque()
        for v in left_list:
            if mate[v] == -1:
                dist[v] = 0
                queue.append(v)
            else:
                dist[v] = _INF
        found_free_right = False
        while queue:
            v = queue.popleft()
            for u in graph.neighbors_array(v):
                u = int(u)
                w = mate[u]
                if w == -1:
                    found_free_right = True
                elif dist[w] == _INF:
                    dist[w] = dist[v] + 1
                    queue.append(w)
        return found_free_right

    def dfs(v: int) -> bool:
        for u in graph.neighbors_array(v):
            u = int(u)
            w = int(mate[u])
            if w == -1 or (dist[w] == dist[v] + 1 and dfs(w)):
                mate[v], mate[u] = u, v
                return True
        dist[v] = _INF
        return False

    while bfs():
        for v in left_list:
            if mate[v] == -1:
                dfs(v)
    return Matching(mate)
