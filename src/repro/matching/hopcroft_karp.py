"""Hopcroft–Karp exact maximum matching for bipartite graphs [51].

The paper's sequential application cites Hopcroft–Karp as one of the
standard (1+ε)-matchers; we implement the exact bipartite version (with
automatic bipartition detection) both as a fast exact oracle on bipartite
workloads and as a cross-check for the general blossom matcher.
"""

from __future__ import annotations

import sys
from collections import deque

import numpy as np

from repro.graphs.adjacency import AdjacencyArrayGraph
from repro.matching.matching import Matching

_INF = np.iinfo(np.int64).max


def _frontier_neighbors(graph: AdjacencyArrayGraph,
                        frontier: np.ndarray) -> np.ndarray:
    """All CSR neighbors of the ``frontier`` vertices, concatenated.

    The classic gather: positions = per-vertex slice starts repeated by
    degree, plus a running offset — one fancy-index instead of a python
    loop over ``neighbors_array``.
    """
    starts = graph.indptr[frontier]
    counts = graph.indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    positions = np.arange(total, dtype=np.int64) + np.repeat(
        starts - offsets, counts
    )
    return graph.indices[positions]


def bipartition(graph: AdjacencyArrayGraph) -> tuple[np.ndarray, np.ndarray]:
    """2-color ``graph``; returns (left_vertices, right_vertices).

    Level-synchronous BFS over the CSR arrays: each step gathers the
    whole frontier's neighbor lists in one shot, colors the uncolored
    ones, and detects odd cycles as any neighbor already wearing the
    frontier's own color (every edge is eventually scanned from both
    endpoints, so a same-level edge is caught one step later).  The
    python-level loops are one per component plus one per BFS level —
    not one per vertex or edge.

    Isolated vertices are assigned to the left side.

    Raises
    ------
    ValueError
        If the graph contains an odd cycle (not bipartite).
    """
    n = graph.num_vertices
    color = np.full(n, -1, dtype=np.int8)
    uncolored = np.arange(n, dtype=np.int64)
    while uncolored.size:
        root = uncolored[0]
        color[root] = 0
        frontier = uncolored[:1]
        level = 0
        while frontier.size:
            neighbors = _frontier_neighbors(graph, frontier)
            if np.any(color[neighbors] == level % 2):
                raise ValueError("graph is not bipartite (odd cycle found)")
            fresh = neighbors[color[neighbors] == -1]
            frontier = np.unique(fresh)
            level += 1
            color[frontier] = level % 2
        uncolored = uncolored[color[uncolored] == -1]
    return np.flatnonzero(color == 0), np.flatnonzero(color == 1)


def hopcroft_karp(graph: AdjacencyArrayGraph) -> Matching:
    """Exact MCM for a bipartite graph in O(m·√n).

    Phases of BFS layering + DFS augmentation along a maximal set of
    vertex-disjoint shortest augmenting paths; the classic analysis shows
    O(√n) phases suffice — also the template for the paper's (1+ε) phase
    argument (stop after ⌈1/ε⌉ phases).

    Raises
    ------
    ValueError
        If the graph is not bipartite.
    """
    left, _ = bipartition(graph)
    n = graph.num_vertices
    # Augmenting paths can be Θ(n) long; the recursive DFS needs headroom.
    sys.setrecursionlimit(max(sys.getrecursionlimit(), 4 * n + 1000))
    mate = np.full(n, -1, dtype=np.int64)
    dist = np.full(n, _INF, dtype=np.int64)
    left_list = [int(v) for v in left]

    def bfs() -> bool:
        queue: deque[int] = deque()
        for v in left_list:
            if mate[v] == -1:
                dist[v] = 0
                queue.append(v)
            else:
                dist[v] = _INF
        found_free_right = False
        while queue:
            v = queue.popleft()
            for u in graph.neighbors_array(v):
                u = int(u)
                w = mate[u]
                if w == -1:
                    found_free_right = True
                elif dist[w] == _INF:
                    dist[w] = dist[v] + 1
                    queue.append(w)
        return found_free_right

    def dfs(v: int) -> bool:
        for u in graph.neighbors_array(v):
            u = int(u)
            w = int(mate[u])
            if w == -1 or (dist[w] == dist[v] + 1 and dfs(w)):
                mate[v], mate[u] = u, v
                return True
        dist[v] = _INF
        return False

    while bfs():
        for v in left_list:
            if mate[v] == -1:
                dfs(v)
    return Matching(mate)
