"""Exact maximum cardinality matching in general graphs — blossom algorithm.

Edmonds' blossoms [33], in the classic array-based O(V³) formulation
(BFS alternating forest from each free root; odd cycles are contracted by
re-basing vertices onto the blossom's base).  This is the exact oracle
every experiment measures approximation factors against, and the matcher
the sequential pipeline runs on the (small) sparsifier.

Correctness rests on Berge's theorem: a matching is maximum iff it admits
no augmenting path, and the search below finds an augmenting path from a
free root whenever one exists.  The implementation is validated against
NetworkX's exact matcher on randomized instances in
``tests/matching/test_blossom.py``.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graphs.adjacency import AdjacencyArrayGraph
from repro.matching.matching import Matching


class _BlossomSearch:
    """Mutable state for repeated augmenting-path searches on one graph."""

    def __init__(self, graph: AdjacencyArrayGraph, mate: np.ndarray) -> None:
        self.graph = graph
        self.n = graph.num_vertices
        self.mate = mate
        self.parent = np.full(self.n, -1, dtype=np.int64)
        self.base = np.arange(self.n, dtype=np.int64)
        self.in_tree = np.zeros(self.n, dtype=bool)
        self.in_blossom = np.zeros(self.n, dtype=bool)
        self.path_length = np.zeros(self.n, dtype=np.int64)

    # ---------------------------------------------------------------- #
    def _lca(self, a: int, b: int) -> int:
        """Lowest common ancestor of the *bases* of a and b in the forest."""
        seen = np.zeros(self.n, dtype=bool)
        v = a
        while True:
            v = int(self.base[v])
            seen[v] = True
            if self.mate[v] == -1:
                break
            v = int(self.parent[self.mate[v]])
        v = b
        while True:
            v = int(self.base[v])
            if seen[v]:
                return v
            v = int(self.parent[self.mate[v]])

    def _mark_path(self, v: int, blossom_base: int, child: int) -> None:
        """Walk from v up to the blossom base, flagging traversed bases."""
        while int(self.base[v]) != blossom_base:
            self.in_blossom[self.base[v]] = True
            self.in_blossom[self.base[self.mate[v]]] = True
            self.parent[v] = child
            child = int(self.mate[v])
            v = int(self.parent[self.mate[v]])

    def find_augmenting_path(self, root: int) -> int:
        """BFS from ``root``; returns the free endpoint of an augmenting
        path (to be unwound via ``parent``), or −1 if none exists."""
        self.parent.fill(-1)
        self.base = np.arange(self.n, dtype=np.int64)
        self.in_tree.fill(False)
        self.in_tree[root] = True
        self.path_length.fill(0)
        queue: deque[int] = deque([root])
        while queue:
            v = queue.popleft()
            for to in self.graph.neighbors_array(v):
                to = int(to)
                if int(self.base[v]) == int(self.base[to]) or int(self.mate[v]) == to:
                    continue
                if to == root or (
                    self.mate[to] != -1 and self.parent[self.mate[to]] != -1
                ):
                    # (v, to) closes an odd cycle: contract the blossom.
                    blossom_base = self._lca(v, to)
                    self.in_blossom.fill(False)
                    self._mark_path(v, blossom_base, to)
                    self._mark_path(to, blossom_base, v)
                    for i in range(self.n):
                        if self.in_blossom[self.base[i]]:
                            self.base[i] = blossom_base
                            if not self.in_tree[i]:
                                self.in_tree[i] = True
                                queue.append(i)
                elif self.parent[to] == -1:
                    self.parent[to] = v
                    self.path_length[to] = self.path_length[v] + 1
                    if self.mate[to] == -1:
                        return to  # augmenting path found
                    nxt = int(self.mate[to])
                    self.path_length[nxt] = self.path_length[to] + 1
                    self.in_tree[nxt] = True
                    queue.append(nxt)
        return -1

    def augment(self, free_end: int) -> None:
        """Flip matched/unmatched edges along the path ending at free_end."""
        v = free_end
        while v != -1:
            pv = int(self.parent[v])
            nxt = int(self.mate[pv])
            self.mate[v] = pv
            self.mate[pv] = v
            v = nxt


def augment_from_free_vertices(
    graph: AdjacencyArrayGraph,
    mate: np.ndarray,
    max_augmentations: int | None = None,
) -> int:
    """Repeatedly find and apply augmenting paths; returns #augmentations.

    Mutates ``mate`` in place.  With ``max_augmentations=None`` this runs
    to exhaustion, i.e. to a maximum matching (Berge).  The approximate
    matcher calls it with a budget.
    """
    search = _BlossomSearch(graph, mate)
    augmentations = 0
    progress = True
    while progress:
        progress = False
        for root in range(graph.num_vertices):
            if mate[root] != -1:
                continue
            end = search.find_augmenting_path(root)
            if end != -1:
                search.augment(end)
                augmentations += 1
                progress = True
                if max_augmentations is not None and augmentations >= max_augmentations:
                    return augmentations
    return augmentations


def mcm_exact(graph: AdjacencyArrayGraph, warm_start: Matching | None = None) -> Matching:
    """Exact maximum cardinality matching via the blossom algorithm.

    Parameters
    ----------
    graph:
        Input graph (general, not necessarily bipartite).
    warm_start:
        Optional valid matching to start from.  By default a greedy
        maximal matching is computed first (it already has ≥ half the
        edges, so it halves the number of augmentation searches); pass
        :meth:`Matching.empty` to disable.

    Returns
    -------
    Matching
        A maximum matching.
    """
    if warm_start is None:
        from repro.matching.greedy import greedy_maximal_matching

        warm_start = greedy_maximal_matching(graph)
    if warm_start.mate.size != graph.num_vertices:
        raise ValueError("warm start has wrong vertex count")
    mate = warm_start.mate.copy()
    augment_from_free_vertices(graph, mate)
    return Matching(mate)
