"""The :class:`Matching` container and validity/maximality verification.

A matching is stored as a mate array: ``mate[v]`` is v's partner or −1.
The container is the lingua franca between the matchers, the sparsifier
experiments (which compare matching sizes), and the dynamic algorithms
(which mutate matchings under edge deletions).
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.graphs.adjacency import AdjacencyArrayGraph


class Matching:
    """A matching over vertices ``0..n-1`` backed by a mate array.

    Parameters
    ----------
    mate:
        ``int64`` array of length n; ``mate[v]`` is v's partner or −1.
        Must be an involution: ``mate[mate[v]] == v`` whenever
        ``mate[v] != -1``.
    """

    __slots__ = ("mate",)

    def __init__(self, mate: np.ndarray) -> None:
        mate = np.asarray(mate, dtype=np.int64)
        matched = mate >= 0
        if np.any(mate[matched] >= mate.size) or np.any(mate < -1):
            raise ValueError("mate entries must be -1 or valid vertex ids")
        partners = mate[mate[matched]]
        if np.any(partners != np.flatnonzero(matched)):
            raise ValueError("mate array is not an involution")
        if np.any(mate[matched] == np.flatnonzero(matched)):
            raise ValueError("a vertex cannot be matched to itself")
        self.mate = mate

    # ------------------------------------------------------------------ #
    # Constructors                                                       #
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, num_vertices: int) -> "Matching":
        """The empty matching on ``num_vertices`` vertices."""
        return cls(np.full(num_vertices, -1, dtype=np.int64))

    @classmethod
    def from_edges(cls, num_vertices: int, edges: Iterable[tuple[int, int]]) -> "Matching":
        """Build from an explicit set of pairwise disjoint edges.

        Raises
        ------
        ValueError
            If two edges share an endpoint or an edge is a self-loop.
        """
        mate = np.full(num_vertices, -1, dtype=np.int64)
        for u, v in edges:
            if u == v:
                raise ValueError(f"self-loop ({u}, {v}) in matching")
            if mate[u] != -1 or mate[v] != -1:
                raise ValueError(f"edge ({u}, {v}) shares an endpoint")
            mate[u], mate[v] = v, u
        return cls(mate)

    # ------------------------------------------------------------------ #
    # Queries                                                            #
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of matched edges."""
        return int(np.count_nonzero(self.mate >= 0)) // 2

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate matched edges once each, as (u, v) with u < v."""
        for u in np.flatnonzero(self.mate >= 0):
            u = int(u)
            if u < self.mate[u]:
                yield (u, int(self.mate[u]))

    def is_matched(self, v: int) -> bool:
        """Whether vertex ``v`` is matched."""
        return bool(self.mate[v] >= 0)

    def partner(self, v: int) -> int:
        """v's partner, or −1 if free."""
        return int(self.mate[v])

    def matched_vertices(self) -> np.ndarray:
        """The set V_M of matched vertices (paper notation)."""
        return np.flatnonzero(self.mate >= 0)

    def free_vertices(self) -> np.ndarray:
        """The set V_F of free vertices (paper notation)."""
        return np.flatnonzero(self.mate < 0)

    def copy(self) -> "Matching":
        """An independent copy."""
        return Matching(self.mate.copy())

    # ------------------------------------------------------------------ #
    # Verification                                                       #
    # ------------------------------------------------------------------ #
    def is_valid_for(self, graph: AdjacencyArrayGraph) -> bool:
        """All matched edges exist in ``graph`` and sizes are compatible."""
        if self.mate.size != graph.num_vertices:
            return False
        return all(graph.has_edge(u, v) for u, v in self.edges())

    def is_maximal_for(self, graph: AdjacencyArrayGraph) -> bool:
        """No graph edge has both endpoints free (i.e. V_F is independent)."""
        free = self.mate < 0
        return not any(free[u] and free[v] for u, v in graph.edges())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Matching):
            return NotImplemented
        return bool(np.array_equal(self.mate, other.mate))

    # Value equality on a mutable mate array: deliberately unhashable
    # (the default __hash__=None that comes with defining __eq__).
    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Matching(size={self.size}, n={self.mate.size})"


def verify_matching(graph: AdjacencyArrayGraph, matching: Matching) -> None:
    """Raise ``AssertionError`` unless ``matching`` is valid in ``graph``.

    Test/benchmark helper: a single call asserts the two core invariants
    (involution validity is enforced by the constructor; edge existence
    here).
    """
    if not matching.is_valid_for(graph):
        raise AssertionError("matching uses an edge not present in the graph")
