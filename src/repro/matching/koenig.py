"""König's theorem: minimum vertex cover certificates for bipartite graphs.

For bipartite graphs, |minimum vertex cover| = |maximum matching|
(König, 1931), and the cover is constructed from the alternating-path
forest of a maximum matching.  The cover is a *certificate of
optimality*: any vertex cover upper-bounds any matching, so exhibiting a
cover of the matching's size proves the matching maximum without
re-running a matcher.  Tests use this to cross-validate Hopcroft–Karp,
and the bipartite workloads use it as an independent oracle.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graphs.adjacency import AdjacencyArrayGraph
from repro.matching.hopcroft_karp import bipartition, hopcroft_karp
from repro.matching.matching import Matching


def minimum_vertex_cover(
    graph: AdjacencyArrayGraph, matching: Matching | None = None
) -> tuple[int, ...]:
    """A minimum vertex cover of a bipartite graph via König's theorem.

    Parameters
    ----------
    graph:
        Bipartite input.
    matching:
        A *maximum* matching to certify (computed via Hopcroft–Karp if
        omitted).  Passing a non-maximum matching raises, since the
        construction would not cover all edges.

    Returns
    -------
    tuple[int, ...]
        Sorted cover vertices; its length equals |MCM(graph)|.

    Raises
    ------
    ValueError
        If the graph is not bipartite or the matching is not maximum.
    """
    left, _right = bipartition(graph)
    if matching is None:
        matching = hopcroft_karp(graph)
    mate = matching.mate
    left_set = set(int(v) for v in left)

    # Z: vertices reachable from free left vertices by alternating paths
    # (unmatched edges left->right, matched edges right->left).
    in_z = np.zeros(graph.num_vertices, dtype=bool)
    queue: deque[int] = deque()
    for v in left_set:
        if mate[v] == -1:
            in_z[v] = True
            queue.append(v)
    while queue:
        v = queue.popleft()
        if v in left_set:
            for u in graph.neighbors_array(v):
                u = int(u)
                if mate[v] != u and not in_z[u]:
                    in_z[u] = True
                    queue.append(u)
        else:
            u = int(mate[v])
            if u != -1 and not in_z[u]:
                in_z[u] = True
                queue.append(u)

    cover = sorted(
        [v for v in left_set if not in_z[v]]
        + [v for v in range(graph.num_vertices)
           if v not in left_set and in_z[v]]
    )
    if len(cover) != matching.size:
        raise ValueError(
            "matching is not maximum (König sizes disagree: "
            f"cover {len(cover)} vs matching {matching.size})"
        )
    cover_set = set(cover)
    for u, v in graph.edges():
        if u not in cover_set and v not in cover_set:
            raise ValueError("constructed cover misses an edge; "
                             "was the matching maximum?")
    return tuple(cover)


def koenig_certificate(graph: AdjacencyArrayGraph, matching: Matching) -> bool:
    """True iff ``matching`` is maximum, certified by a vertex cover.

    Never trusts the matcher: it builds the König cover and checks both
    size equality and edge coverage.  Returns False (instead of raising)
    when the matching is not maximum.
    """
    try:
        cover = minimum_vertex_cover(graph, matching)
    except ValueError as err:
        if "not bipartite" in str(err):
            raise
        return False
    return len(cover) == matching.size
