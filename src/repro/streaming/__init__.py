"""Semi-streaming matching via per-vertex reservoir sampling.

Section 3's opening sentence points out that the sparsifier applies in
"computational models where there are local or global memory
constraints, such as ... the streaming model of computation [3]".  This
package realizes that application: G_Δ's per-vertex marking distribution
("Δ uniform incident edges without replacement") is exactly what a
per-vertex **reservoir sampler** maintains over a single pass of the
edge stream.  One pass and O(n·Δ) = O(n·(β/ε)·log(1/ε)) words of memory
therefore suffice for a (1+ε)-approximate MCM on bounded-β graphs —
versus the one-pass greedy baseline's factor 2.
"""

from repro.streaming.stream import EdgeStream
from repro.streaming.reservoir import VertexReservoir, streaming_sparsifier
from repro.streaming.matching import (
    StreamingResult,
    streaming_approx_matching,
    streaming_greedy_matching,
)

__all__ = [
    "EdgeStream",
    "StreamingResult",
    "VertexReservoir",
    "streaming_approx_matching",
    "streaming_greedy_matching",
    "streaming_sparsifier",
]
