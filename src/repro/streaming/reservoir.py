"""Per-vertex reservoir sampling: G_Δ in one streaming pass.

Classic reservoir sampling (Vitter's Algorithm R): keep the first Δ
items; the t-th item (t > Δ) replaces a uniform slot with probability
Δ/t.  The reservoir is then a uniform Δ-subset *without replacement* of
the items seen — for a vertex's incident edges, exactly the marking
distribution of the sparsifier's Section 2 definition.  Hence after one
pass the union of all vertex reservoirs is distributed identically to
G_Δ, and Theorem 2.1 applies verbatim.

Memory: Σ_v min(Δ, deg v) ≤ n·Δ edge slots — and, via Observation 2.10,
at most 2·|MCM|·(Δ+β) of them are distinct edges.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.builder import from_edges
from repro.graphs.adjacency import AdjacencyArrayGraph
from repro.instrument.rng import resolve_rng
from repro.streaming.stream import EdgeStream


class VertexReservoir:
    """A Δ-slot uniform reservoir of one vertex's incident edges.

    Parameters
    ----------
    capacity:
        Δ, the reservoir size.
    rng, seed:
        Uniform randomness keywords: this vertex's private generator via
        ``rng=`` (per-vertex independence is what Observation 2.9 needs —
        :func:`streaming_sparsifier` spawns one child per vertex), or an
        integer ``seed=`` for standalone use.
    """

    __slots__ = ("capacity", "_rng", "_items", "_seen")

    def __init__(
        self,
        capacity: int,
        rng: np.random.Generator | int | None = None,
        *,
        seed: int | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._rng = resolve_rng(seed=seed, rng=rng, owner="VertexReservoir")
        self._items: list[int] = []
        self._seen = 0

    def offer(self, neighbor: int) -> None:
        """Present the next incident edge (identified by its far end)."""
        self._seen += 1
        if len(self._items) < self.capacity:
            self._items.append(neighbor)
            return
        j = int(self._rng.integers(self._seen))
        if j < self.capacity:
            self._items[j] = neighbor

    @property
    def seen(self) -> int:
        """Number of incident edges offered so far (= current degree)."""
        return self._seen

    def sample(self) -> list[int]:
        """The current reservoir contents (min(Δ, deg) distinct ends)."""
        return list(self._items)


def streaming_sparsifier(
    stream: EdgeStream,
    delta: int,
    rng: np.random.Generator | int | None = None,
    *,
    seed: int | None = None,
) -> tuple[AdjacencyArrayGraph, int]:
    """One-pass construction of G_Δ from an edge stream.

    Returns
    -------
    (sparsifier, peak_memory):
        ``sparsifier`` is distributed as G_Δ; ``peak_memory`` is the
        total number of occupied reservoir slots (the algorithm's word
        memory up to constants), which the E13 experiment compares
        against the stream length m.
    """
    gen = resolve_rng(seed=seed, rng=rng, owner="streaming_sparsifier")
    vertex_rngs = gen.spawn(stream.num_vertices)
    reservoirs = [
        VertexReservoir(delta, vertex_rngs[v]) for v in range(stream.num_vertices)
    ]
    for u, v in stream:
        reservoirs[u].offer(v)
        reservoirs[v].offer(u)
    edges: set[tuple[int, int]] = set()
    peak_memory = 0
    for v, reservoir in enumerate(reservoirs):
        sample = reservoir.sample()
        peak_memory += len(sample)
        for u in sample:
            edges.add((v, u) if v < u else (u, v))
    return from_edges(stream.num_vertices, sorted(edges)), peak_memory
