"""Edge-stream abstraction with pass and length accounting."""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.graphs.adjacency import AdjacencyArrayGraph
from repro.instrument.rng import resolve_rng


class EdgeStream:
    """A replayable stream of undirected edges.

    Wraps a fixed edge list (optionally shuffled once at construction —
    the *arbitrary order* adversary of streaming lower bounds) and counts
    how many passes consumers take, so algorithms can honestly report
    their pass complexity.

    Parameters
    ----------
    num_vertices:
        Vertex universe size.
    edges:
        The underlying edge list.
    rng:
        If given, the arrival order is a random permutation; otherwise
        the given order is kept.
    """

    def __init__(
        self,
        num_vertices: int,
        edges: Iterable[tuple[int, int]],
        rng: np.random.Generator | int | None = None,
        *,
        seed: int | None = None,
    ) -> None:
        self.num_vertices = num_vertices
        order = [(min(u, v), max(u, v)) for u, v in edges]
        if rng is not None or seed is not None:
            gen = resolve_rng(seed=seed, rng=rng, owner="EdgeStream")
            order = [order[i] for i in gen.permutation(len(order))]
        self._edges = order
        self.passes = 0

    @classmethod
    def from_graph(
        cls,
        graph: AdjacencyArrayGraph,
        rng: np.random.Generator | int | None = None,
        *,
        seed: int | None = None,
    ) -> "EdgeStream":
        """Stream the edges of a materialized graph."""
        return cls(graph.num_vertices, graph.edges(), rng=rng, seed=seed)

    def __len__(self) -> int:
        return len(self._edges)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        self.passes += 1
        return iter(self._edges)
