"""Semi-streaming matching: the sparsifier pass vs the greedy baseline.

``streaming_greedy_matching`` is the folklore one-pass 2-approximation
(keep an edge iff both endpoints are currently free) using O(n) memory.
``streaming_approx_matching`` is the sparsifier application: one pass of
per-vertex reservoir sampling (O(n·Δ) memory) followed by offline
matching on the retained subgraph — (1+ε)-approximate on bounded-β
inputs by Theorem 2.1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.delta import DeltaPolicy
from repro.instrument.rng import resolve_rng
from repro.matching.blossom import mcm_exact
from repro.matching.matching import Matching
from repro.streaming.reservoir import streaming_sparsifier
from repro.streaming.stream import EdgeStream


@dataclass(frozen=True)
class StreamingResult:
    """Outcome of a streaming matching run.

    Attributes
    ----------
    matching:
        The computed matching.
    passes:
        Stream passes consumed.
    memory:
        Peak words of edge storage (reservoir slots, or matched pairs
        for the greedy baseline).
    delta:
        Δ used (0 for the baseline).
    """

    matching: Matching
    passes: int
    memory: int
    delta: int


def streaming_greedy_matching(stream: EdgeStream) -> StreamingResult:
    """One-pass greedy maximal matching (2-approx, O(n) memory)."""
    mate = np.full(stream.num_vertices, -1, dtype=np.int64)
    passes_before = stream.passes
    for u, v in stream:
        if mate[u] == -1 and mate[v] == -1:
            mate[u], mate[v] = v, u
    matching = Matching(mate)
    return StreamingResult(
        matching=matching,
        passes=stream.passes - passes_before,
        memory=matching.size,
        delta=0,
    )


def streaming_approx_matching(
    stream: EdgeStream,
    beta: int,
    epsilon: float,
    rng: np.random.Generator | int | None = None,
    policy: DeltaPolicy | None = None,
    *,
    seed: int | None = None,
) -> StreamingResult:
    """One-pass (1+ε)-approximate matching for bounded-β streams.

    Pass 1 builds G_Δ by per-vertex reservoir sampling; the matching is
    then computed offline on the retained O(n·Δ)-edge subgraph.
    Randomness follows the uniform convention: a generator via ``rng=``
    or an integer via ``seed=`` (not both).
    """
    pol = policy or DeltaPolicy.practical()
    delta = pol.delta(beta, epsilon, stream.num_vertices)
    passes_before = stream.passes
    gen = resolve_rng(seed=seed, rng=rng, owner="streaming_approx_matching")
    sparsifier, memory = streaming_sparsifier(stream, delta, rng=gen)
    matching = mcm_exact(sparsifier)
    return StreamingResult(
        matching=matching,
        passes=stream.passes - passes_before,
        memory=memory,
        delta=delta,
    )
