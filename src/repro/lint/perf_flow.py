"""Whole-program performance/complexity analysis (rules R15-R19).

The ROADMAP's next big bet is a vectorized sparsifier/matcher core;
what blocks it is that nothing can *say where the work goes*.  The
Theorem 3.5 per-update cap is enforced as a chunk counter, and the
pure-python dict/set inner loops that cap the service at ~2.5k
updates/sec are invisible to R1-R14.  This pass extends the repo's
static-analysis lineage (flow → async_flow) with a performance lens:

R15 — scalar-loop-over-array-substrate
    A python ``for`` loop iterating the graph substrate (``edges()`` /
    ``neighbors()`` / ``non_isolated_vertices()``, a numpy index
    producer like ``np.flatnonzero``, a numpy array, or
    ``range(num_vertices)``) whose body does per-element numpy work
    (``np.*`` calls, ``int()``/``float()`` of an array subscript, or
    array subscript loads).  The flat arrays already exist
    (``repro.graphs.adjacency``); the loop should be a vectorized
    expression over them.
R16 — quadratic-membership
    ``in``/``not in`` probes against a list- or tuple-typed name, or
    ``.index()``/``.remove()`` on one, inside a loop of a function
    reachable from the update/rebuild hot roots: O(n) per probe makes
    the loop quadratic.  Literal-display membership (``x in ("a",
    "b")``) is constant-size and exempt.
R17 — hot-loop-allocation
    Container construction, comprehensions, numpy array constructors,
    or string formatting per loop iteration inside a function
    transitively reachable from the ``DynamicSparsifier``-style update
    entry points (interprocedural, via the call graph); also a call,
    inside such a loop, to a hot in-program function that allocates —
    the one-hop form that catches per-vertex list construction hidden
    behind ``sample_neighbors``.
R18 — unbounded-work-path
    A ``while`` loop on the hot update path whose condition and
    break/return guards never mention a budget fragment (``budget``,
    ``chunk``, ``cap``, ``limit``, ``quota``, ``max_``): a static
    escape from the Theorem 3.5 ``max_chunks_per_update`` cap.
    Structurally bounded walks (augmenting paths ≤ n hops) are real
    findings to pragma with their bound, not noise.
R19 — redundant-recompute
    A loop-invariant ``len(...)`` or an attribute chain of depth ≥ 2
    re-evaluated ≥ 2 times per iteration (or a ``len`` in a ``while``
    condition) where the analysis can prove the root is never stored,
    deleted, or mutated in the loop: hoist it.

**Hot roots.**  R16/R17/R18 are scoped to functions reachable from the
update entry points in :data:`DEFAULT_HOT_ROOTS` (suffix-matched
against fully-qualified names, so ``Session.apply`` matches
``repro.service.session.Session.apply``).  The ``perf-audit`` CLI
extends the set with ``--hot-roots``.  Reachability reuses the
:mod:`repro.lint.callgraph` program index and resolves direct calls,
``self`` methods, ``self.<attr>`` methods through a program-wide
attribute-type binder, and annotated/constructed local receivers.

Everything is stdlib-``ast``; the analysis never imports or runs the
code it inspects.  The runtime counterpart is
:mod:`repro.instrument.workmeter` (``REPRO_WORK_AUDIT=1``), which
counts the same categories of work these rules reason about
statically.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field

from repro.lint.callgraph import ModuleInfo, Program
from repro.lint.rules import _dotted
from repro.lint.violations import Violation

#: Rule codes computed by this pass, in report order.
PERF_CODES = ("R15", "R16", "R17", "R18", "R19")

#: Default hot roots: the update entry points of the dynamic algorithms
#: and the served session, suffix-matched against fully-qualified names.
DEFAULT_HOT_ROOTS = (
    "DynamicSparsifier.update",
    "LazyRebuildMatching.update",
    "ObliviousDynamicMatching.update",
    "DynamicMaximalMatching.update",
    "Session.apply",
    "incremental_rebuild",
)

#: The active hot-root suffixes (module state so the registered rule
#: checks — which only see a RuleContext — honor ``--hot-roots``).
_hot_root_specs: tuple[str, ...] = DEFAULT_HOT_ROOTS

#: Substrate-producing call tails: iterating these is iterating the
#: graph's vertex/edge structure element by element.
_SUBSTRATE_ITER_TAILS = frozenset({
    "edges", "neighbors", "non_isolated_vertices",
})

#: numpy index/array producers whose result a scalar loop then walks.
_NP_ITER_TAILS = frozenset({
    "flatnonzero", "nonzero", "where", "arange", "argsort", "unique",
})

#: Attribute names that denote the vertex/edge count of a graph.
_COUNT_ATTRS = frozenset({"num_vertices", "num_edges"})

#: Parameter annotations recognised as "this is a numpy array".
_NDARRAY_ANNOTATIONS = frozenset({
    "np.ndarray", "numpy.ndarray", "ndarray",
})

#: Bare container constructors R17 counts as allocations.
_ALLOC_CALLS = frozenset({
    "list", "dict", "set", "frozenset", "bytearray", "deque",
    "defaultdict", "Counter", "OrderedDict",
})

#: numpy constructors R17 counts as allocations (``np.<tail>``).
_NP_ALLOC_TAILS = frozenset({
    "zeros", "ones", "full", "empty", "array", "asarray", "arange",
    "copy", "concatenate", "tile", "repeat",
})

#: Identifier fragments that mark a loop as budget-dominated for R18.
_BUDGET_FRAGMENTS = ("budget", "chunk", "cap", "limit", "quota", "max_")

#: Receiver methods that mutate their object (defeats R19 invariance).
_MUTATING_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend",
    "insert", "pop", "popitem", "popleft", "put", "put_nowait",
    "remove", "reverse", "setdefault", "sort", "update", "fill",
})


def set_hot_roots(specs: tuple[str, ...] | list[str] | None) -> None:
    """Install the hot-root suffixes R16-R18 grow reachability from.

    ``None`` restores :data:`DEFAULT_HOT_ROOTS`.  The CLI's
    ``--hot-roots`` option calls this with the defaults plus the user's
    additions and restores the defaults afterwards.
    """
    global _hot_root_specs
    if specs is None:
        _hot_root_specs = DEFAULT_HOT_ROOTS
    else:
        _hot_root_specs = tuple(dict.fromkeys(specs))


def hot_root_specs() -> tuple[str, ...]:
    """The currently active hot-root suffixes."""
    return _hot_root_specs


# --------------------------------------------------------------------- #
# Scope walking                                                         #
# --------------------------------------------------------------------- #
def _scope_nodes(scope: ast.AST):
    """Nodes of one lexical scope, not descending into nested defs."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda, ast.ClassDef)):
            stack.extend(ast.iter_child_nodes(node))


def _scopes(tree: ast.Module):
    """The module scope plus every function scope anywhere in the tree."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _numpy_aliases(tree: ast.Module) -> set[str]:
    """Names the module binds to the numpy package."""
    aliases = {"numpy"}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases.add(alias.asname or "numpy")
    return aliases


def _assign_name_targets(node: ast.AST) -> list[str]:
    """Simple ``Name`` targets of an Assign/AnnAssign, else empty."""
    if isinstance(node, ast.Assign):
        return [t.id for t in node.targets if isinstance(t, ast.Name)]
    if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
        return [node.target.id]
    return []


# --------------------------------------------------------------------- #
# Hot-set computation (shared by R16/R17/R18)                           #
# --------------------------------------------------------------------- #
def _resolve_class(module: ModuleInfo, dotted: str,
                   class_fulls: set) -> str | None:
    """Fully-qualified program class a dotted name denotes, if any.

    ``ModuleInfo.resolve`` qualifies imports and bare local functions
    but leaves a same-module class name unchanged, so try the local
    qualification too.
    """
    resolved = module.resolve(dotted)
    if resolved in class_fulls:
        return resolved
    local = f"{module.name}.{dotted}"
    if local in class_fulls:
        return local
    return None


@dataclass
class _HotBundle:
    """Program-wide reachability facts for one hot-root spec set."""

    #: full name -> (module, class name or None, definition).
    index: dict = field(default_factory=dict)
    #: fully-qualified class names defined in the program.
    class_fulls: set = field(default_factory=set)
    #: ``self.<attr>`` name -> class fulls it is constructed from.
    attr_types: dict = field(default_factory=dict)
    #: fully-qualified functions reachable from the hot roots.
    hot: frozenset = frozenset()
    #: cache: full name -> whether its body allocates (R17 one-hop).
    _allocates: dict = field(default_factory=dict)
    #: cache: id(fndef) -> {local name: class full}.
    _local_types: dict = field(default_factory=dict)

    def local_types(self, module: ModuleInfo, fndef) -> dict:
        """Class-typed locals of one function (annotations + ctor calls)."""
        cached = self._local_types.get(id(fndef))
        if cached is not None:
            return cached
        types: dict[str, str] = {}
        args = fndef.args
        for arg in (args.posonlyargs + args.args + args.kwonlyargs):
            ann = _dotted(arg.annotation) if arg.annotation is not None \
                else None
            if ann is None:
                continue
            resolved = _resolve_class(module, ann, self.class_fulls)
            if resolved is not None:
                types[arg.arg] = resolved
        for node in ast.walk(fndef):
            if isinstance(node, ast.Assign) and \
                    isinstance(node.value, ast.Call):
                callee = _dotted(node.value.func)
                if callee is None:
                    continue
                resolved = _resolve_class(module, callee, self.class_fulls)
                if resolved is not None:
                    for name in _assign_name_targets(node):
                        types[name] = resolved
        self._local_types[id(fndef)] = types
        return types

    def call_targets(self, module: ModuleInfo, class_name: str | None,
                     fndef, call: ast.Call) -> list[str]:
        """In-program functions a call site may invoke (resolved names)."""
        dotted = _dotted(call.func)
        if dotted is None:
            return []
        parts = dotted.split(".")
        candidates: list[str] = []
        if parts[0] == "self" and class_name is not None:
            if len(parts) == 2:
                candidates.append(f"{module.name}.{class_name}.{parts[1]}")
            elif len(parts) == 3:
                for cls in sorted(self.attr_types.get(parts[1], ())):
                    candidates.append(f"{cls}.{parts[2]}")
        elif len(parts) == 2:
            receiver = self.local_types(module, fndef).get(parts[0])
            if receiver is not None:
                candidates.append(f"{receiver}.{parts[1]}")
            else:
                candidates.append(module.resolve(dotted))
        else:
            candidates.append(module.resolve(dotted))
        return [c for c in candidates if c in self.index]

    def allocates(self, full: str) -> bool:
        """Whether a hot function's body contains an allocation site."""
        cached = self._allocates.get(full)
        if cached is not None:
            return cached
        module, _class_name, fndef = self.index[full]
        np_aliases = _numpy_aliases(module.tree)
        found = any(
            _alloc_label(node, np_aliases) is not None
            for node in ast.walk(fndef)
            if node is not fndef
        )
        self._allocates[full] = found
        return found


def _matches_root(full: str, specs: tuple[str, ...]) -> bool:
    return any(full == spec or full.endswith("." + spec) for spec in specs)


def _hot_bundle(program: Program, specs: tuple[str, ...]) -> _HotBundle:
    """Build (or fetch) the reachability bundle for one spec set."""
    key = ("perf-bundle", specs)
    cached = program.flow_cache.get(key)
    if cached is not None:
        return cached
    bundle = _HotBundle()
    for info in program.modules.values():
        for cls in info.classes:
            bundle.class_fulls.add(f"{info.name}.{cls}")
        for qualname, fndef in info.functions.items():
            class_name = qualname.rpartition(".")[0] or None
            bundle.index[f"{info.name}.{qualname}"] = (
                info, class_name, fndef
            )
    # Program-wide attribute-type binder: ``self.X = Cls(...)`` anywhere
    # types ``self.X`` as Cls (a deliberate over-approximation — attr
    # names collide across classes toward more reachability, never less).
    for _full, (info, _cls, fndef) in bundle.index.items():
        for node in ast.walk(fndef):
            if not (isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)):
                continue
            callee = _dotted(node.value.func)
            if callee is None:
                continue
            resolved = _resolve_class(info, callee, bundle.class_fulls)
            if resolved is None:
                continue
            for target in node.targets:
                if isinstance(target, ast.Attribute) and \
                        isinstance(target.value, ast.Name) and \
                        target.value.id == "self":
                    bundle.attr_types.setdefault(
                        target.attr, set()
                    ).add(resolved)
    roots = [full for full in bundle.index if _matches_root(full, specs)]
    hot: set[str] = set(roots)
    worklist: deque[str] = deque(roots)
    while worklist:
        full = worklist.popleft()
        module, class_name, fndef = bundle.index[full]
        for node in ast.walk(fndef):
            if not isinstance(node, ast.Call):
                continue
            for target in bundle.call_targets(
                module, class_name, fndef, node
            ):
                if target not in hot:
                    hot.add(target)
                    worklist.append(target)
    bundle.hot = frozenset(hot)
    program.flow_cache[key] = bundle
    return bundle


def _hot_functions_in(bundle: _HotBundle, module: ModuleInfo):
    """(full, class name, def) of this module's hot functions."""
    for qualname, fndef in module.functions.items():
        full = f"{module.name}.{qualname}"
        if full in bundle.hot:
            yield full, (qualname.rpartition(".")[0] or None), fndef


# --------------------------------------------------------------------- #
# R15 — scalar loop over array substrate                                #
# --------------------------------------------------------------------- #
def _r15_scope_types(scope: ast.AST, np_aliases: set[str]
                     ) -> tuple[set[str], set[str]]:
    """(numpy-typed names, vertex/edge-count names) of one scope."""
    numpy_names: set[str] = set()
    count_names: set[str] = set()
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = scope.args
        for arg in (args.posonlyargs + args.args + args.kwonlyargs):
            ann = _dotted(arg.annotation) if arg.annotation is not None \
                else None
            if ann in _NDARRAY_ANNOTATIONS:
                numpy_names.add(arg.arg)
    for node in _scope_nodes(scope):
        targets = _assign_name_targets(node)
        if not targets:
            continue
        value = getattr(node, "value", None)
        if isinstance(value, ast.Call):
            dotted = _dotted(value.func)
            if dotted is not None and "." in dotted and \
                    dotted.split(".")[0] in np_aliases:
                numpy_names.update(targets)
        elif isinstance(value, ast.Attribute) and value.attr in _COUNT_ATTRS:
            count_names.update(targets)
    return numpy_names, count_names


def _r15_substrate(iter_node: ast.AST, np_aliases: set[str],
                   numpy_names: set[str], count_names: set[str]
                   ) -> str | None:
    """Describe the array substrate an iterable walks, or ``None``."""
    if isinstance(iter_node, ast.Name) and iter_node.id in numpy_names:
        return f"numpy array `{iter_node.id}`"
    if not isinstance(iter_node, ast.Call):
        return None
    dotted = _dotted(iter_node.func)
    if dotted is None:
        return None
    head, _, tail = dotted.rpartition(".")
    if tail in _SUBSTRATE_ITER_TAILS:
        return f"`{dotted}()`"
    if head.split(".")[0] in np_aliases and tail in _NP_ITER_TAILS:
        return f"`{dotted}()`"
    if dotted == "range":
        for arg in iter_node.args:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Name) and sub.id in count_names:
                    return f"`range({sub.id})` (vertex count)"
                if isinstance(sub, ast.Attribute) and \
                        sub.attr in _COUNT_ATTRS:
                    return f"`range(.. {sub.attr})`"
    return None


def _r15_trigger(loop: ast.For, np_aliases: set[str],
                 numpy_names: set[str]) -> str | None:
    """First per-element array operation in a loop body, described."""
    for stmt in loop.body + loop.orelse:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted is not None and "." in dotted and \
                        dotted.split(".")[0] in np_aliases:
                    return f"per-element `{dotted}()` call"
                if dotted in ("int", "float") and len(node.args) == 1 and \
                        isinstance(node.args[0], ast.Subscript) and \
                        isinstance(node.args[0].value, ast.Name) and \
                        node.args[0].value.id in numpy_names:
                    return (f"per-element `{dotted}("
                            f"{node.args[0].value.id}[..])` conversion")
            elif isinstance(node, ast.Subscript) and \
                    isinstance(node.ctx, ast.Load) and \
                    isinstance(node.value, ast.Name) and \
                    node.value.id in numpy_names:
                return f"per-element `{node.value.id}[..]` read"
    return None


def _check_r15(module: ModuleInfo) -> list[Violation]:
    """Scalar python loops over the flat array substrate."""
    np_aliases = _numpy_aliases(module.tree)
    out: list[Violation] = []
    for scope in _scopes(module.tree):
        numpy_names, count_names = _r15_scope_types(scope, np_aliases)
        for node in _scope_nodes(scope):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            substrate = _r15_substrate(
                node.iter, np_aliases, numpy_names, count_names
            )
            if substrate is None:
                continue
            trigger = _r15_trigger(node, np_aliases, numpy_names)
            if trigger is None:
                continue
            out.append(Violation(
                module.path, node.lineno, node.col_offset, "R15",
                f"scalar python loop over array substrate {substrate} "
                f"with {trigger}; hot arrays live in flat numpy storage "
                "(repro.graphs.adjacency) — vectorize the loop body",
            ))
    return out


# --------------------------------------------------------------------- #
# R16 — quadratic membership on the hot path                            #
# --------------------------------------------------------------------- #
def _sequence_typed_names(fndef) -> dict[str, str]:
    """Names assigned a list/tuple in one function -> kind label."""
    typed: dict[str, str] = {}
    for node in ast.walk(fndef):
        targets = _assign_name_targets(node)
        if not targets:
            continue
        value = getattr(node, "value", None)
        kind = None
        if isinstance(value, (ast.List, ast.ListComp)):
            kind = "list"
        elif isinstance(value, ast.Tuple):
            kind = "tuple"
        elif isinstance(value, ast.Call):
            callee = _dotted(value.func)
            if callee in ("list", "sorted"):
                kind = "list"
            elif callee == "tuple":
                kind = "tuple"
        if kind is not None:
            for name in targets:
                typed[name] = kind
    return typed


def _loop_bodies(fndef):
    """(loop, nodes-evaluated-per-iteration) for each loop in a def.

    For a ``for`` loop the per-iteration region is body+orelse (the
    iterable is evaluated once); for a ``while`` it includes the test.
    """
    for loop in ast.walk(fndef):
        if isinstance(loop, (ast.For, ast.AsyncFor)):
            region = loop.body + loop.orelse
        elif isinstance(loop, ast.While):
            region = [loop.test] + loop.body + loop.orelse
        else:
            continue
        nodes: list[ast.AST] = []
        for stmt in region:
            nodes.extend(ast.walk(stmt))
        yield loop, nodes


def _check_r16(bundle: _HotBundle, module: ModuleInfo) -> list[Violation]:
    """List/tuple membership probes inside hot-path loops."""
    out: list[Violation] = []
    for full, _class_name, fndef in _hot_functions_in(bundle, module):
        typed = _sequence_typed_names(fndef)
        if not typed:
            continue
        seen: set[int] = set()
        for _loop, nodes in _loop_bodies(fndef):
            for node in nodes:
                if id(node) in seen:
                    continue
                if isinstance(node, ast.Compare):
                    for op, comp in zip(node.ops, node.comparators):
                        if isinstance(op, (ast.In, ast.NotIn)) and \
                                isinstance(comp, ast.Name) and \
                                comp.id in typed:
                            seen.add(id(node))
                            out.append(Violation(
                                module.path, node.lineno, node.col_offset,
                                "R16",
                                f"membership probe against {typed[comp.id]} "
                                f"`{comp.id}` inside a loop reachable from "
                                f"the update path (`{full.rpartition('.')[2]}"
                                "`); O(n) per probe — use a set/dict",
                            ))
                elif isinstance(node, ast.Call) and \
                        isinstance(node.func, ast.Attribute) and \
                        node.func.attr in ("index", "remove") and \
                        isinstance(node.func.value, ast.Name) and \
                        node.func.value.id in typed:
                    seen.add(id(node))
                    out.append(Violation(
                        module.path, node.lineno, node.col_offset, "R16",
                        f"`{node.func.value.id}.{node.func.attr}()` on a "
                        f"{typed[node.func.value.id]} inside a hot-path "
                        "loop; repeated linear scans — index with a "
                        "dict/set instead",
                    ))
    return out


# --------------------------------------------------------------------- #
# R17 — allocation per iteration on the hot path                        #
# --------------------------------------------------------------------- #
def _alloc_label(node: ast.AST, np_aliases: set[str]) -> str | None:
    """Describe an allocation expression, or ``None``."""
    if isinstance(node, ast.List):
        return "list literal"
    if isinstance(node, ast.Dict):
        return "dict literal"
    if isinstance(node, ast.Set):
        return "set literal"
    if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                         ast.GeneratorExp)):
        return "comprehension"
    if isinstance(node, ast.JoinedStr):
        return "f-string"
    if isinstance(node, ast.Call):
        dotted = _dotted(node.func)
        if dotted is None:
            if isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "format":
                return "str.format() call"
            return None
        head, _, tail = dotted.rpartition(".")
        if not head and dotted in _ALLOC_CALLS:
            return f"`{dotted}()` construction"
        if head.split(".")[0] in np_aliases and tail in _NP_ALLOC_TAILS:
            return f"`{dotted}()` array allocation"
        if tail == "format":
            return f"`{dotted}()` formatting"
    return None


def _check_r17(bundle: _HotBundle, module: ModuleInfo) -> list[Violation]:
    """Per-iteration allocations in hot-reachable functions."""
    np_aliases = _numpy_aliases(module.tree)
    out: list[Violation] = []
    for full, class_name, fndef in _hot_functions_in(bundle, module):
        short = full.rpartition(".")[2]
        seen: set[int] = set()
        for _loop, nodes in _loop_bodies(fndef):
            for node in nodes:
                if id(node) in seen:
                    continue
                label = _alloc_label(node, np_aliases)
                if label is not None:
                    seen.add(id(node))
                    out.append(Violation(
                        module.path, node.lineno, node.col_offset, "R17",
                        f"{label} allocated every iteration inside hot "
                        f"function `{short}` (reachable from an update "
                        "entry point); hoist or preallocate a reused "
                        "buffer",
                    ))
                    continue
                if not isinstance(node, ast.Call):
                    continue
                for target in bundle.call_targets(
                    module, class_name, fndef, node
                ):
                    if target in bundle.hot and bundle.allocates(target):
                        seen.add(id(node))
                        callee = target.rpartition(".")[2]
                        out.append(Violation(
                            module.path, node.lineno, node.col_offset,
                            "R17",
                            f"call to `{callee}()` allocates on every "
                            f"iteration of a loop in hot function "
                            f"`{short}`; preallocate or batch the "
                            "per-element work",
                        ))
                        break
    return out


# --------------------------------------------------------------------- #
# R18 — while loops not dominated by a budget check                     #
# --------------------------------------------------------------------- #
def _mentions_budget(node: ast.AST) -> bool:
    """Whether any identifier in ``node`` carries a budget fragment."""
    for sub in ast.walk(node):
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        if name is not None:
            lowered = name.lower()
            if any(fragment in lowered for fragment in _BUDGET_FRAGMENTS):
                return True
    return False


def _budget_guarded(loop: ast.While) -> bool:
    """Whether the loop test or an exit guard mentions a budget."""
    if _mentions_budget(loop.test):
        return True
    for node in ast.walk(loop):
        if not isinstance(node, ast.If) or not _mentions_budget(node.test):
            continue
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if isinstance(sub, (ast.Break, ast.Return, ast.Raise)):
                    return True
    return False


def _check_r18(bundle: _HotBundle, module: ModuleInfo) -> list[Violation]:
    """Unbudgeted ``while`` loops reachable from a session update."""
    out: list[Violation] = []
    for full, _class_name, fndef in _hot_functions_in(bundle, module):
        short = full.rpartition(".")[2]
        for node in ast.walk(fndef):
            if not isinstance(node, ast.While):
                continue
            if _budget_guarded(node):
                continue
            out.append(Violation(
                module.path, node.lineno, node.col_offset, "R18",
                f"while loop in `{short}` (reachable from a session "
                "update) is not dominated by a budget/cap check — a "
                "static escape from the Theorem 3.5 "
                "max_chunks_per_update cap; bound it or pragma with "
                "the structural bound",
            ))
    return out


# --------------------------------------------------------------------- #
# R19 — loop-invariant recomputation                                    #
# --------------------------------------------------------------------- #
def _mutated_roots(loop: ast.AST) -> set[str]:
    """Root names the analysis must assume change during the loop."""
    mutated: set[str] = set()
    for node in ast.walk(loop):
        if isinstance(node, ast.Name) and \
                isinstance(node.ctx, (ast.Store, ast.Del)):
            mutated.add(node.id)
        elif isinstance(node, (ast.Attribute, ast.Subscript)) and \
                isinstance(node.ctx, (ast.Store, ast.Del)):
            root = node
            while isinstance(root, (ast.Attribute, ast.Subscript)):
                root = root.value
            if isinstance(root, ast.Name):
                mutated.add(root.id)
        elif isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in _MUTATING_METHODS:
            root = node.func.value
            while isinstance(root, (ast.Attribute, ast.Subscript)):
                root = root.value
            if isinstance(root, ast.Name):
                mutated.add(root.id)
    return mutated


def _r19_candidates(region: list[ast.AST]):
    """(key, root, node) of hoistable expressions in a loop region."""
    nodes: list[ast.AST] = []
    for stmt in region:
        nodes.extend(ast.walk(stmt))
    call_funcs = {id(n.func) for n in nodes if isinstance(n, ast.Call)}
    chain_values = {
        id(n.value) for n in nodes if isinstance(n, ast.Attribute)
    }
    for node in nodes:
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Name) and \
                node.func.id == "len" and len(node.args) == 1:
            dotted = _dotted(node.args[0])
            if dotted is not None:
                yield f"len({dotted})", dotted.split(".")[0], node
        elif isinstance(node, ast.Attribute) and \
                isinstance(node.ctx, ast.Load) and \
                id(node) not in call_funcs and \
                id(node) not in chain_values:
            dotted = _dotted(node)
            if dotted is not None and dotted.count(".") >= 2:
                yield dotted, dotted.split(".")[0], node


def _check_r19(module: ModuleInfo) -> list[Violation]:
    """Loop-invariant expressions re-evaluated per iteration."""
    out: list[Violation] = []
    for scope in _scopes(module.tree):
        for loop in _scope_nodes(scope):
            if isinstance(loop, (ast.For, ast.AsyncFor)):
                region = loop.body + loop.orelse
                test_region: list[ast.AST] = []
            elif isinstance(loop, ast.While):
                region = loop.body + loop.orelse
                test_region = [loop.test]
            else:
                continue
            mutated = _mutated_roots(loop)
            grouped: dict[str, list] = {}
            for key, root, node in _r19_candidates(region):
                if root not in mutated:
                    grouped.setdefault(key, []).append(node)
            # A len() in a while condition re-evaluates every iteration
            # by itself; body candidates need a second occurrence.
            for key, root, node in _r19_candidates(test_region):
                if key.startswith("len(") and root not in mutated:
                    grouped.setdefault(key, [None, node])
            for key, nodes in sorted(grouped.items()):
                if len(nodes) < 2:
                    continue
                node = nodes[1]
                out.append(Violation(
                    module.path, node.lineno, node.col_offset, "R19",
                    f"loop-invariant `{key}` re-evaluated every "
                    "iteration; hoist it into a local before the loop",
                ))
    return out


# --------------------------------------------------------------------- #
# Entry points                                                          #
# --------------------------------------------------------------------- #
def analyze_module(program: Program,
                   module: ModuleInfo) -> dict[str, list[Violation]]:
    """All R15-R19 findings for one module, keyed by rule code."""
    bundle = _hot_bundle(program, _hot_root_specs)
    return {
        "R15": _check_r15(module),
        "R16": _check_r16(bundle, module),
        "R17": _check_r17(bundle, module),
        "R18": _check_r18(bundle, module),
        "R19": _check_r19(module),
    }


def violations_for(ctx, code: str) -> list[Violation]:
    """Findings of one performance rule for a runner ``RuleContext``.

    Mirrors :func:`repro.lint.async_flow.violations_for`: the module
    analysis runs once per (module, hot-root set) and is cached on the
    program; a context without a program gets a private single-module
    one.
    """
    program = ctx.program
    if program is None:
        program = Program.from_sources({ctx.path: (ctx.tree, ctx.source)})
    module = program.module_for(ctx.path)
    if module is None:
        module = ModuleInfo.build(ctx.path, ctx.tree)
        program.by_path[ctx.path] = module
        program.modules.setdefault(module.name, module)
    key = ("perf", ctx.path, _hot_root_specs)
    cached = program.flow_cache.get(key)
    if cached is None:
        cached = analyze_module(program, module)
        program.flow_cache[key] = cached
    return cached[code]
