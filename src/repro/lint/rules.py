"""The rule catalogue: nine checks behind one registry.

Each rule is a pure function from a parsed module to a list of
:class:`~repro.lint.violations.Violation`.  The registry drives the
runner, the CLI's ``--select`` filter, and the rule table in
``docs/LINTING.md`` — add a rule here and every consumer picks it up.

The rules encode the package's determinism discipline (see
CONTRIBUTING.md "Determinism" and ``docs/ENGINE.md``):

R1
    No global-state randomness.  Random bits must flow through a seeded
    :class:`numpy.random.Generator` (the ``seed=``/``rng=`` convention),
    never through ``np.random.<fn>`` module calls, the stdlib ``random``
    module, or an unseeded ``default_rng()``.
R2
    No wall-clock or OS nondeterminism (``time.time``, ``datetime.now``,
    ``os.urandom``, …) outside ``repro/instrument/timers.py`` — counts
    over clocks.
R3
    Engine-task purity.  Callables handed to the engine's submission
    points (``TrialTask``/``fanout``) must be module-top-level functions:
    lambdas and nested functions break pickling and can close over
    ``Generator`` state, destroying worker-count independence.
R4
    Signature conformance.  Public callables in ``repro`` that accept
    randomness expose the uniform ``seed=``/``rng=`` pair with ``rng``
    defaulting (never a bare required ``rng: Generator`` positional).
R5
    Order discipline.  No mutable default arguments anywhere; no
    iteration over set expressions in ``experiments/``/``engine/`` —
    set order feeds tables, and tables must be byte-deterministic.

R6-R9 are the *flow* rules: instead of judging one statement, they run
the whole-program RNG-flow pass of :mod:`repro.lint.flow` (stream reuse,
generator escape, process-boundary crossing, draw-order hazard).  See
that module's docstring for the semantics and ``docs/LINTING.md`` for
worked examples.

R15-R19 are the *performance* rules (:mod:`repro.lint.perf_flow`):
scalar loops over the array substrate, quadratic membership, per-
iteration allocation, unbudgeted while loops, and loop-invariant
recomputation on the hot update path.  They are opt-in — the
``perf-audit`` subcommand runs them; plain ``lint`` does not, so the
repo-wide determinism gate stays focused on correctness.

Rules R1-R5 read the parsed module through :meth:`RuleContext.nodes`, a
node index built with **one** ``ast.walk`` per file and shared by every
rule — the pre-1.3 runner re-walked the full tree once per rule
(``benchmarks/bench_lint.py`` measures the difference).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from functools import cached_property
from pathlib import PurePath
from typing import TYPE_CHECKING, Callable

from repro.lint.violations import Violation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.lint.callgraph import Program

#: ``np.random`` attributes that are constructors/types, not the legacy
#: global-state API (calling these is fine; ``np.random.rand`` etc. is not).
_NP_RANDOM_ALLOWED = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})

#: Wall-clock / OS-entropy callables banned outside the timers module.
_NONDETERMINISTIC_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "date.today", "datetime.date.today",
    "os.urandom",
})

#: ``from <module> import <name>`` pairs banned by R2.
_NONDETERMINISTIC_IMPORTS = {
    "time": frozenset({
        "time", "time_ns", "perf_counter", "perf_counter_ns",
        "monotonic", "monotonic_ns", "process_time", "process_time_ns",
    }),
    "os": frozenset({"urandom"}),
}

#: Engine submission points whose ``fn`` argument R3 inspects.
_SUBMISSION_POINTS = frozenset({"TrialTask", "fanout"})


@dataclass(frozen=True)
class RuleContext:
    """Everything a rule sees: one parsed module plus its origin.

    Attributes
    ----------
    path:
        The file's path as given to the runner (used in messages and for
        per-rule scoping, e.g. R2's timers exemption).
    tree:
        The parsed :class:`ast.Module`.
    source:
        Raw file text (rules rarely need it; pragmas are handled by the
        runner, not per rule).
    program:
        The :class:`~repro.lint.callgraph.Program` this module was linted
        with, when the runner linted several files together.  The flow
        rules use it to resolve cross-module helpers; ``None`` makes them
        fall back to a private single-module program.
    """

    path: str
    tree: ast.Module
    source: str
    program: "Program | None" = field(default=None, compare=False)

    @property
    def parts(self) -> tuple[str, ...]:
        """Path components, for directory-scoped rules."""
        return PurePath(self.path).parts

    def is_module(self, *suffix: str) -> bool:
        """Whether the file path ends with the given components."""
        return self.parts[-len(suffix):] == suffix

    @cached_property
    def _buckets(self) -> dict[type, list[ast.AST]]:
        """Node lists bucketed by type — one ``ast.walk`` for all rules."""
        buckets: dict[type, list[ast.AST]] = {}
        for node in ast.walk(self.tree):
            buckets.setdefault(type(node), []).append(node)
        return buckets

    def nodes(self, *types: type) -> list[ast.AST]:
        """All nodes of the given AST types, from the shared index."""
        if len(types) == 1:
            return self._buckets.get(types[0], [])
        out: list[ast.AST] = []
        for t in types:
            out.extend(self._buckets.get(t, []))
        return out


@dataclass(frozen=True)
class Rule:
    """One registered lint rule.

    Attributes
    ----------
    code:
        Stable identifier (``"R1"``), used in output and ignore pragmas.
    title:
        Short name for the rule table.
    summary:
        One-line description rendered by ``lint --explain`` and the docs.
    check:
        The implementation: ``RuleContext -> list[Violation]``.
    flow:
        Whether this is a whole-program flow rule (R6-R9) — the set the
        ``rng-audit`` subcommand runs.
    concurrency:
        Whether this is an async-concurrency rule (R10-R14) — the set
        the ``race-audit`` subcommand runs
        (:mod:`repro.lint.async_flow`).
    perf:
        Whether this is a performance rule (R15-R19) — the set the
        ``perf-audit`` subcommand runs (:mod:`repro.lint.perf_flow`).
        Perf rules are excluded from the default ``lint`` run.
    """

    code: str
    title: str
    summary: str
    check: Callable[[RuleContext], list[Violation]]
    flow: bool = False
    concurrency: bool = False
    perf: bool = False


def _dotted(node: ast.AST) -> str | None:
    """Render a ``Name``/``Attribute`` chain as ``"a.b.c"``, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _numpy_aliases(ctx: RuleContext) -> set[str]:
    """Names the module binds to the ``numpy`` package (``np`` by idiom)."""
    aliases = {"numpy"}
    for node in ctx.nodes(ast.Import):
        for alias in node.names:
            if alias.name == "numpy":
                aliases.add(alias.asname or "numpy")
    return aliases


def _stdlib_random_aliases(ctx: RuleContext) -> set[str]:
    """Names the module binds to the stdlib ``random`` module."""
    aliases: set[str] = set()
    for node in ctx.nodes(ast.Import):
        for alias in node.names:
            if alias.name == "random":
                aliases.add(alias.asname or "random")
    return aliases


def _check_r1(ctx: RuleContext) -> list[Violation]:
    """R1 — no global-state randomness."""
    in_rng_module = ctx.is_module("instrument", "rng.py")
    np_aliases = _numpy_aliases(ctx)
    random_aliases = _stdlib_random_aliases(ctx)
    out: list[Violation] = []

    def flag(node: ast.AST, message: str) -> None:
        out.append(Violation(ctx.path, node.lineno, node.col_offset, "R1", message))

    for node in ctx.nodes(ast.ImportFrom):
        if node.module == "random":
            flag(node, "stdlib `random` import; use a seeded "
                       "numpy.random.Generator via the seed=/rng= convention")
    for node in ctx.nodes(ast.Call):
        name = _dotted(node.func)
        if name is None:
            continue
        head, _, tail = name.rpartition(".")
        if head in random_aliases:
            flag(node, f"global-state `{name}()` call; thread a seeded "
                       "numpy.random.Generator instead")
        elif any(head == f"{alias}.random" for alias in np_aliases):
            if tail not in _NP_RANDOM_ALLOWED:
                flag(node, f"legacy global-state `{name}()` call; use a "
                           "Generator from resolve_rng/spawn_rngs")
        if tail == "default_rng" or name == "default_rng":
            if not node.args and not node.keywords and not in_rng_module:
                flag(node, "unseeded `default_rng()`; derive generators "
                           "from an explicit seed (resolve_rng) so runs "
                           "are reproducible")
    return out


def _check_r2(ctx: RuleContext) -> list[Violation]:
    """R2 — no wall-clock/OS nondeterminism outside the timers module."""
    if ctx.is_module("instrument", "timers.py"):
        return []
    out: list[Violation] = []
    for node in ctx.nodes(ast.ImportFrom):
        banned = _NONDETERMINISTIC_IMPORTS.get(node.module or "")
        if banned:
            for alias in node.names:
                if alias.name in banned:
                    out.append(Violation(
                        ctx.path, node.lineno, node.col_offset, "R2",
                        f"nondeterministic import `from {node.module} "
                        f"import {alias.name}`; wall-clock reads belong "
                        "in repro/instrument/timers.py",
                    ))
    for node in ctx.nodes(ast.Call):
        name = _dotted(node.func)
        if name in _NONDETERMINISTIC_CALLS:
            out.append(Violation(
                ctx.path, node.lineno, node.col_offset, "R2",
                f"nondeterministic `{name}()` call; use "
                "repro.instrument.timers (counts over clocks)",
            ))
    return out


class _ScopeCollector(ast.NodeVisitor):
    """Classify function definitions by nesting depth for R3."""

    def __init__(self) -> None:
        self.nested_defs: set[str] = set()
        self.lambda_names: set[str] = set()
        self._depth = 0

    def _visit_def(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        if self._depth > 0:
            self.nested_defs.add(node.name)
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    visit_FunctionDef = _visit_def
    visit_AsyncFunctionDef = _visit_def

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    def visit_Assign(self, node: ast.Assign) -> None:
        if isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.lambda_names.add(target.id)
        self.generic_visit(node)


def _task_fn_argument(call: ast.Call) -> ast.AST | None:
    """The expression passed as the task function to a submission point."""
    for keyword in call.keywords:
        if keyword.arg == "fn":
            return keyword.value
    # ``fn`` is the first positional of both TrialTask and fanout.
    return call.args[0] if call.args else None


def _check_r3(ctx: RuleContext) -> list[Violation]:
    """R3 — engine tasks must be module-top-level functions."""
    submissions = [
        node for node in ctx.nodes(ast.Call)
        if (name := _dotted(node.func)) is not None
        and name.rpartition(".")[2] in _SUBMISSION_POINTS
    ]
    if not submissions:
        return []
    scopes = _ScopeCollector()
    scopes.visit(ctx.tree)
    out: list[Violation] = []
    for node in submissions:
        callee = _dotted(node.func).rpartition(".")[2]
        fn = _task_fn_argument(node)
        if fn is None:
            continue
        if isinstance(fn, ast.Lambda):
            out.append(Violation(
                ctx.path, fn.lineno, fn.col_offset, "R3",
                f"lambda passed to {callee}; engine tasks must be "
                "module-top-level functions (picklable, no closed-over "
                "Generator state)",
            ))
        elif isinstance(fn, ast.Name) and (
            fn.id in scopes.nested_defs or fn.id in scopes.lambda_names
        ):
            kind = ("lambda-valued name" if fn.id in scopes.lambda_names
                    else "nested function")
            out.append(Violation(
                ctx.path, fn.lineno, fn.col_offset, "R3",
                f"{kind} `{fn.id}` passed to {callee}; hoist it to module "
                "top level so it pickles and cannot close over a Generator",
            ))
    return out


def _rng_param_facts(
    args: ast.arguments,
) -> tuple[bool, bool, bool, ast.arg | None]:
    """(has_rng, has_seed, rng_has_default, rng_node) for a signature."""
    has_seed = any(
        a.arg == "seed" for a in args.posonlyargs + args.args + args.kwonlyargs
    )
    rng_node: ast.arg | None = None
    rng_has_default = False
    positional = args.posonlyargs + args.args
    # Defaults align with the tail of the positional parameter list.
    first_defaulted = len(positional) - len(args.defaults)
    for index, a in enumerate(positional):
        if a.arg == "rng":
            rng_node = a
            rng_has_default = index >= first_defaulted
    for a, default in zip(args.kwonlyargs, args.kw_defaults):
        if a.arg == "rng":
            rng_node = a
            rng_has_default = default is not None
    return rng_node is not None, has_seed, rng_has_default, rng_node


def _check_r4(ctx: RuleContext) -> list[Violation]:
    """R4 — public randomness-accepting callables use the seed=/rng= pair."""
    if "repro" not in ctx.parts or "tests" in ctx.parts:
        return []
    out: list[Violation] = []

    def visit(body: list[ast.stmt], class_name: str | None) -> None:
        for node in body:
            if isinstance(node, ast.ClassDef):
                if not node.name.startswith("_"):
                    visit(node.body, node.name)
                continue
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            qualname = (f"{class_name}.{node.name}" if class_name
                        else node.name)
            public = (not node.name.startswith("_")
                      or (class_name is not None and node.name == "__init__"))
            if not public:
                continue
            has_rng, has_seed, rng_defaulted, rng_node = _rng_param_facts(
                node.args
            )
            if not has_rng:
                continue
            if not has_seed:
                out.append(Violation(
                    ctx.path, node.lineno, node.col_offset, "R4",
                    f"`{qualname}` accepts rng but no seed=; public "
                    "randomized callables expose the uniform seed=/rng= "
                    "pair (resolve_rng)",
                ))
            elif not rng_defaulted:
                assert rng_node is not None
                out.append(Violation(
                    ctx.path, node.lineno, node.col_offset, "R4",
                    f"`{qualname}` takes a required positional rng; the "
                    "convention is rng=None alongside seed=None, resolved "
                    "via resolve_rng",
                ))
    visit(ctx.tree.body, None)
    return out


def _is_mutable_literal(node: ast.AST | None) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _dotted(node.func)
        return name in {"list", "dict", "set", "bytearray",
                        "collections.defaultdict", "defaultdict"}
    return False


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return _dotted(node.func) in {"set", "frozenset"}
    return False


def _check_r5(ctx: RuleContext) -> list[Violation]:
    """R5 — mutable defaults anywhere; set-order iteration near tables."""
    out: list[Violation] = []
    for node in ctx.nodes(ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda):
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_literal(default):
                out.append(Violation(
                    ctx.path, default.lineno, default.col_offset, "R5",
                    "mutable default argument; default to None and "
                    "create the container in the body",
                ))
    ordered_scope = any(part in {"experiments", "engine"} for part in ctx.parts)
    if not ordered_scope:
        return out
    iters: list[ast.AST] = []
    for node in ctx.nodes(ast.For, ast.AsyncFor):
        iters.append(node.iter)
    for node in ctx.nodes(ast.ListComp, ast.SetComp, ast.DictComp,
                          ast.GeneratorExp):
        iters.extend(gen.iter for gen in node.generators)
    for it in iters:
        if _is_set_expression(it):
            out.append(Violation(
                ctx.path, it.lineno, it.col_offset, "R5",
                "iteration over a set expression in table-producing "
                "code; wrap in sorted(...) so row order is "
                "deterministic",
            ))
    return out


def _flow_check(code: str) -> Callable[[RuleContext], list[Violation]]:
    """Bind one flow-rule code to the shared whole-program pass."""

    def check(ctx: RuleContext) -> list[Violation]:
        # Imported lazily: flow.py uses this module's helpers.
        from repro.lint import flow

        return flow.violations_for(ctx, code)

    check.__name__ = f"_check_{code.lower()}"
    check.__doc__ = f"{code} — see repro.lint.flow."
    return check


def _async_check(code: str) -> Callable[[RuleContext], list[Violation]]:
    """Bind one async-rule code to the shared concurrency pass."""

    def check(ctx: RuleContext) -> list[Violation]:
        # Imported lazily, mirroring _flow_check.
        from repro.lint import async_flow

        return async_flow.violations_for(ctx, code)

    check.__name__ = f"_check_{code.lower()}"
    check.__doc__ = f"{code} — see repro.lint.async_flow."
    return check


def _perf_check(code: str) -> Callable[[RuleContext], list[Violation]]:
    """Bind one performance-rule code to the shared perf pass."""

    def check(ctx: RuleContext) -> list[Violation]:
        # Imported lazily, mirroring _flow_check.
        from repro.lint import perf_flow

        return perf_flow.violations_for(ctx, code)

    check.__name__ = f"_check_{code.lower()}"
    check.__doc__ = f"{code} — see repro.lint.perf_flow."
    return check


#: The registry, in report order.  Keys are the pragma/ignore codes.
RULES: dict[str, Rule] = {
    "R1": Rule("R1", "no-global-randomness",
               "random bits flow through seeded Generators "
               "(seed=/rng=), never np.random module calls, stdlib "
               "random, or unseeded default_rng()", _check_r1),
    "R2": Rule("R2", "no-wall-clock",
               "time.time/datetime.now/os.urandom only inside "
               "repro/instrument/timers.py", _check_r2),
    "R3": Rule("R3", "engine-task-purity",
               "TrialTask/fanout callables are module-top-level "
               "functions, never lambdas or nested defs", _check_r3),
    "R4": Rule("R4", "seed-rng-signature",
               "public randomized callables in repro expose the "
               "seed=/rng= keyword pair with rng defaulted", _check_r4),
    "R5": Rule("R5", "order-discipline",
               "no mutable default arguments; no set-order iteration "
               "in experiments/ or engine/", _check_r5),
    "R6": Rule("R6", "stream-reuse",
               "no generator consumed after spawning children from it, "
               "threaded into two sibling trial tasks, or handed to a "
               "task and also used locally", _flow_check("R6"), flow=True),
    "R7": Rule("R7", "generator-escape",
               "no Generator in module-level state, class attributes, "
               "or closures that escape their scope", _flow_check("R7"),
               flow=True),
    "R8": Rule("R8", "process-boundary-crossing",
               "no live Generator in TrialTask/fanout payloads; ship "
               "the rng= child or a seed/spawn-key spec",
               _flow_check("R8"), flow=True),
    "R9": Rule("R9", "draw-order-hazard",
               "no shared generator consumed inside unordered (set) "
               "iteration; per-element child streams are exempt",
               _flow_check("R9"), flow=True),
    "R10": Rule("R10", "interleaving-hazard",
                "no shared attribute read before an await and mutated "
                "after it without a common lock — stale "
                "read-modify-write across a suspension point",
                _async_check("R10"), concurrency=True),
    "R11": Rule("R11", "blocking-in-event-loop",
                "no time.sleep/sync IO/subprocess (directly or through "
                "helpers) and no await-free while-True loops inside "
                "async defs", _async_check("R11"), concurrency=True),
    "R12": Rule("R12", "lost-task",
                "no un-awaited coroutine calls; every create_task "
                "handle is awaited, cancelled, stored, or given a "
                "done-callback", _async_check("R12"), concurrency=True),
    "R13": Rule("R13", "lock-queue-discipline",
                "no sync lock held across an await, no unbounded "
                "asyncio.Queue, no future that is never resolved or "
                "handed off", _async_check("R13"), concurrency=True),
    "R14": Rule("R14", "cross-task-aliasing",
                "no mutable object escaping into two concurrently-live "
                "tasks; queues and locks are the sanctioned channels",
                _async_check("R14"), concurrency=True),
    "R15": Rule("R15", "scalar-loop-over-array-substrate",
                "no scalar python for-loop over graph substrate or "
                "numpy arrays doing per-element array work; vectorize "
                "over the flat adjacency arrays", _perf_check("R15"),
                perf=True),
    "R16": Rule("R16", "quadratic-membership",
                "no list/tuple `in` probes or index()/remove() inside "
                "loops reachable from update/rebuild paths; use "
                "sets/dicts", _perf_check("R16"), perf=True),
    "R17": Rule("R17", "hot-loop-allocation",
                "no container/array construction, comprehension, or "
                "string formatting per iteration in functions reachable "
                "from the update entry points", _perf_check("R17"),
                perf=True),
    "R18": Rule("R18", "unbounded-work-path",
                "every while loop reachable from a session update is "
                "dominated by a budget/chunk/cap check (the Theorem "
                "3.5 max_chunks_per_update cap)", _perf_check("R18"),
                perf=True),
    "R19": Rule("R19", "redundant-recompute",
                "no loop-invariant len()/attribute-chain re-evaluated "
                "every iteration; hoist it before the loop",
                _perf_check("R19"), perf=True),
}

#: The flow-rule subset (what ``repro-experiments rng-audit`` runs).
FLOW_RULES: dict[str, Rule] = {
    code: rule for code, rule in RULES.items() if rule.flow
}

#: The async-concurrency subset (what ``repro-experiments race-audit``
#: runs).
ASYNC_RULES: dict[str, Rule] = {
    code: rule for code, rule in RULES.items() if rule.concurrency
}

#: The performance subset (what ``repro-experiments perf-audit`` runs).
PERF_RULES: dict[str, Rule] = {
    code: rule for code, rule in RULES.items() if rule.perf
}
