"""Interprocedural RNG-flow analysis: the engine room of rules R6-R9.

The syntactic rules R1-R5 judge one statement at a time; the properties
that actually carry the paper's independence structure (Observation 2.9)
and the engine's byte-identical-at-any-``--workers`` promise are *flow*
properties of ``numpy.random.Generator`` values:

R6 — **stream reuse**: a generator consumed after children were spawned
    from it, threaded into two sibling trial tasks, or handed to a task
    and also used locally.  Two consumers of one stream means draw
    interleaving decides the results.
R7 — **generator escape**: a generator stored in module-level state, a
    class attribute, or a closure that escapes its defining scope —
    shared streams that every caller silently advances.
R8 — **process-boundary crossing**: a live generator inside a
    ``TrialTask``/``fanout`` *payload* (``args``/``kwargs``/
    ``kwargs_list``) instead of the engine's sanctioned ``rng=`` child
    channel or a seed/spawn-key spec.
R9 — **draw-order hazard**: a shared generator consumed inside unordered
    (set) iteration, so hash order feeds the stream.  Per-element child
    streams indexed by the loop variable are exempt — that pattern is
    order-independent by construction.

The analysis is an abstract interpreter over each function body: it
tracks which names, attributes, container elements, and dataclass fields
hold generators (kinds ``GEN`` / ``GENLIST``), aliases them through
``resolve_rng``/``derive_rng`` and plain assignment, follows spawned
child lists through subscripts, ``zip``/``enumerate`` loops and tuple
unpacking, and resolves imported helpers through the
:class:`~repro.lint.callgraph.Program` summaries so a generator returned
by a cross-module factory is tracked like a local one.

Everything is stdlib-``ast``; the inspected code is never imported.
"""

from __future__ import annotations

import ast
import itertools
from dataclasses import dataclass, field
from typing import Iterable

from repro.lint.violations import Violation

#: Expression kinds the tracker distinguishes (``None`` everywhere else).
GEN = "generator"
GENLIST = "generator-list"

#: ``Generator`` methods that consume the underlying stream.  Kept in
#: sync with ``repro.instrument.rng.DRAW_METHODS`` (the runtime
#: sanitizer's counting set); a unit test asserts the two agree.
DRAW_METHODS = frozenset({
    "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
    "exponential", "f", "gamma", "geometric", "gumbel", "hypergeometric",
    "integers", "laplace", "logistic", "lognormal", "logseries",
    "multinomial", "multivariate_hypergeometric", "multivariate_normal",
    "negative_binomial", "noncentral_chisquare", "noncentral_f", "normal",
    "pareto", "permutation", "permuted", "poisson", "power", "random",
    "rayleigh", "shuffle", "standard_cauchy", "standard_exponential",
    "standard_gamma", "standard_normal", "standard_t", "triangular",
    "uniform", "vonmises", "wald", "weibull", "zipf",
})

#: Bare callable names treated as generator factories/resolvers even when
#: import resolution fails (e.g. ``lint_source`` snippets).  Resolvers
#: *alias*: a generator argument flows through unchanged.
_RESOLVER_NAMES = frozenset({
    "default_rng", "resolve_rng", "derive_rng", "sanitize_rng",
})
_SPAWNER_NAMES = frozenset({"spawn_rngs"})

#: Engine submission points (mirrors rule R3).
_TASK_NAMES = frozenset({"TrialTask", "fanout"})

#: Attribute names assumed generator-valued on any receiver (the
#: ``TrialTask.rng`` dataclass field and the ``self._rng`` idiom).
_GEN_ATTRS = frozenset({"rng", "_rng"})


def _dotted(node: ast.AST) -> str | None:
    """Render a ``Name``/``Attribute`` chain as ``"a.b.c"``, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _is_unordered(node: ast.AST) -> bool:
    """Whether iterating ``node`` has hash-dependent (set) order."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return _dotted(node.func) in {"set", "frozenset"}
    return False


def _param_is_generator(arg: ast.arg) -> bool:
    """Whether a parameter is generator-typed by name or annotation."""
    name = arg.arg
    if name == "rng" or name.startswith("rng_") or name.endswith("_rng"):
        return True
    if arg.annotation is not None:
        spelled = _dotted(arg.annotation)
        if spelled and spelled.split(".")[-1] in {
            "Generator", "SanitizedGenerator"
        }:
            return True
        # ``np.random.Generator | None`` style unions.
        for sub in ast.walk(arg.annotation):
            if isinstance(sub, ast.Attribute) and sub.attr == "Generator":
                return True
    return False


@dataclass(eq=False)
class Token:
    """One tracked generator value (or list of them).

    Aliased names share a token, so consuming through any alias counts
    against the one underlying stream.
    """

    kind: str
    loop_fresh: bool = False


@dataclass
class _LoopCtx:
    """One active (possibly unordered) loop during traversal."""

    targets: frozenset[str]
    unordered: bool
    node: ast.AST


@dataclass
class ModuleFlow:
    """All R6-R9 findings for one module, keyed by rule code."""

    violations: dict[str, list[Violation]] = field(default_factory=dict)

    def add(self, path: str, node: ast.AST, code: str, message: str) -> None:
        """Record one finding at ``node``."""
        self.violations.setdefault(code, []).append(
            Violation(path, node.lineno, node.col_offset, code, message)
        )

    def get(self, code: str) -> list[Violation]:
        """Findings for one rule (empty if clean)."""
        return self.violations.get(code, [])


class _FunctionFlow:
    """Abstract interpreter for one function (or the module top level)."""

    def __init__(
        self,
        program,
        module,
        path: str,
        out: ModuleFlow | None,
        env: dict[str, Token] | None = None,
        at_module_level: bool = False,
    ) -> None:
        self.program = program
        self.module = module
        self.path = path
        self.out = out
        self.env: dict[str, Token] = dict(env or {})
        #: ``(receiver, attr)`` -> token, for ``self._rng``-style flow.
        self.attrs: dict[tuple[str, str], Token] = {}
        #: constant-index views into a spawn list share a token.  Keys
        #: hold the Token objects themselves (identity-hashed): keying by
        #: ``id()`` would let a collected token's id be reused by a new
        #: one and falsely alias unrelated streams.
        self.items: dict[tuple[Token, object], Token] = {}
        #: token -> first line children were spawned from it.
        self.spawned: dict[Token, int] = {}
        #: token -> list of (submission Call node, payload expr node).
        self.task_rng: dict[Token, list[tuple[ast.Call, ast.AST]]] = {}
        self.loops: list[_LoopCtx] = []
        self.return_kinds: set[str] = set()
        self.at_module_level = at_module_level
        #: names that escape the current scope (returned / stored on
        #: self / declared global) — for the R7 closure check.
        self.escaping_names: frozenset[str] = frozenset()
        self.global_names: set[str] = set()

    # -- plumbing ------------------------------------------------------ #
    def _emit(self, node: ast.AST, code: str, message: str) -> None:
        if self.out is not None:
            self.out.add(self.path, node, code, message)

    def _resolve(self, call: ast.Call) -> tuple[str | None, str]:
        """(fully qualified callee, last name component) for a call."""
        name = _dotted(call.func)
        if name is None:
            return None, ""
        return self.module.resolve(name), name.rpartition(".")[2]

    # -- events -------------------------------------------------------- #
    def _spawn(self, token: Token, node: ast.AST) -> None:
        self.spawned.setdefault(token, node.lineno)
        payloads = self.task_rng.get(token)
        if payloads and any(node.lineno > p[1].lineno for p in payloads):
            self._emit(
                node, "R6",
                "children spawned from a generator already handed to a "
                "trial task; the task and the new children would share "
                "one spawn-key sequence",
            )

    def _consume(self, token: Token, node: ast.AST,
                 receiver: ast.AST) -> None:
        spawn_line = self.spawned.get(token)
        if spawn_line is not None and node.lineno > spawn_line:
            self._emit(
                node, "R6",
                "generator consumed after children were spawned from it "
                f"(spawn at line {spawn_line}); draws now interleave with "
                "child-stream creation — spawn a dedicated child via "
                "spawn_rngs instead",
            )
        if token in self.task_rng:
            self._emit(
                node, "R6",
                "generator handed to a trial task is also consumed in the "
                "submitting scope; task and caller would draw from one "
                "stream",
            )
        names = {n.id for n in ast.walk(receiver)
                 if isinstance(n, ast.Name)}
        for ctx in self.loops:
            if ctx.unordered and not (names & ctx.targets):
                self._emit(
                    node, "R9",
                    "shared generator consumed inside unordered (set) "
                    "iteration — hash order feeds the stream; sort the "
                    "iterable or draw from per-element child streams",
                )
                break

    def _task_payload(self, token: Token, call: ast.Call,
                      expr: ast.AST) -> None:
        sites = self.task_rng.setdefault(token, [])
        if any(existing is not call for existing, _ in sites):
            self._emit(
                expr, "R6",
                "same generator threaded into two sibling trial tasks; "
                "every task must own its spawned child stream "
                "(see fanout)",
            )
        sites.append((call, expr))
        if token in self.spawned:
            self._emit(
                expr, "R6",
                "generator handed to a trial task after children were "
                "spawned from it; give the task its own spawned child",
            )

    # -- quiet typing (no event side effects), for payload scans ------- #
    def _type_only(self, node: ast.AST) -> Token | None:
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Subscript):
            base = self._type_only(node.value)
            if base is not None and base.kind == GENLIST:
                return Token(GEN)
            return None
        if isinstance(node, ast.Attribute):
            return self._attr_token(node, create=False)
        if isinstance(node, ast.Call):
            resolved, last = self._resolve(node)
            if resolved in self.program.returns_generator or \
                    last in _RESOLVER_NAMES:
                return Token(GEN)
            if resolved in self.program.returns_generator_list or \
                    last in _SPAWNER_NAMES:
                return Token(GENLIST)
        return None

    def _scan_payload(self, expr: ast.AST, call: ast.Call) -> None:
        """R8: flag generator-typed subexpressions in a task payload."""
        token = self._type_only(expr)
        if token is not None:
            self._emit(
                expr, "R8",
                "live Generator in a task payload crosses the process "
                "boundary; pass the per-trial child via TrialTask(rng=...) "
                "or ship a seed/spawn-key spec (rng_spec) and rebuild in "
                "the worker",
            )
            return
        if isinstance(expr, ast.Call):
            # A call inside a payload runs *before* pickling; only its
            # result crosses the boundary (rng_spec(child) is the
            # sanctioned pattern), so don't descend into the arguments.
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._scan_payload(child, call)

    # -- attribute tokens ---------------------------------------------- #
    def _attr_token(self, node: ast.Attribute,
                    create: bool = True) -> Token | None:
        if not isinstance(node.value, ast.Name):
            return None
        key = (node.value.id, node.attr)
        token = self.attrs.get(key)
        if token is None and node.attr in _GEN_ATTRS and create:
            token = Token(GEN)
            self.attrs[key] = token
        return token

    # -- the expression walker ----------------------------------------- #
    def infer(self, node: ast.AST | None) -> Token | None:
        """Type one expression, recording flow events along the way."""
        if node is None:
            return None
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Call):
            return self._infer_call(node)
        if isinstance(node, ast.Subscript):
            base = self.infer(node.value)
            self.infer(node.slice)
            if base is not None and base.kind == GENLIST:
                if isinstance(node.slice, ast.Constant):
                    key = (base, node.slice.value)
                    token = self.items.get(key)
                    if token is None:
                        token = Token(GEN)
                        self.items[key] = token
                    return token
                return Token(GEN, loop_fresh=True)
            return None
        if isinstance(node, ast.Attribute):
            self.infer(node.value)
            return self._attr_token(node)
        if isinstance(node, (ast.Tuple, ast.List)):
            kinds = [self.infer(elt) for elt in node.elts]
            if any(t is not None and t.kind == GEN for t in kinds):
                return Token(GENLIST)
            return None
        if isinstance(node, ast.IfExp):
            self.infer(node.test)
            body, orelse = self.infer(node.body), self.infer(node.orelse)
            return body if body is not None else orelse
        if isinstance(node, ast.BoolOp):
            tokens = [self.infer(v) for v in node.values]
            return next((t for t in tokens if t is not None), None)
        if isinstance(node, ast.NamedExpr):
            token = self.infer(node.value)
            self._bind(node.target, token)
            return token
        if isinstance(node, ast.Starred):
            return self.infer(node.value)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            return self._infer_comprehension(node)
        if isinstance(node, ast.Lambda):
            self._check_closure(node, node.args, node.body)
            return None
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.infer(child)
        return None

    def _infer_call(self, node: ast.Call) -> Token | None:
        func = node.func
        if isinstance(func, ast.Attribute):
            receiver = self.infer(func.value)
            if receiver is not None and receiver.kind == GEN:
                if func.attr == "spawn":
                    for a in node.args:
                        self.infer(a)
                    self._spawn(receiver, node)
                    return Token(GENLIST)
                if func.attr in DRAW_METHODS:
                    for a in node.args:
                        self.infer(a)
                    for kw in node.keywords:
                        self.infer(kw.value)
                    self._consume(receiver, node, func.value)
                    return None
        resolved, last = self._resolve(node)
        if last == "TrialTask":
            return self._infer_trialtask(node)
        if last == "fanout":
            return self._infer_fanout(node)
        if resolved in self.program.returns_generator_list or \
                last in _SPAWNER_NAMES:
            source = node.args[0] if node.args else next(
                (kw.value for kw in node.keywords if kw.arg == "rng"), None
            )
            for a in node.args[1:]:
                self.infer(a)
            token = self.infer(source)
            if token is not None and token.kind == GEN:
                self._spawn(token, node)
            return Token(GENLIST)
        if resolved is not None and (
            resolved in self.program.returns_generator
            or last in _RESOLVER_NAMES
        ):
            # Resolver/factory: a generator argument flows through as an
            # alias; a seed produces a fresh stream.
            passed = [self.infer(a) for a in node.args]
            passed += [self.infer(kw.value) for kw in node.keywords]
            alias = next(
                (t for t in passed if t is not None and t.kind == GEN), None
            )
            return alias if alias is not None else Token(GEN)
        # Generic call: passing a generator threads (consumes) it.
        for expr in itertools.chain(
            node.args, (kw.value for kw in node.keywords)
        ):
            token = self.infer(expr)
            if token is not None and token.kind == GEN:
                self._consume(token, expr, expr)
        if isinstance(func, ast.Attribute):
            pass  # receiver already inferred above
        elif not isinstance(func, ast.Name):
            self.infer(func)
        return None

    def _infer_trialtask(self, node: ast.Call) -> Token | None:
        payloads: list[ast.AST] = []
        rng_expr: ast.AST | None = None
        for index, a in enumerate(node.args):
            if index in (1, 2):
                payloads.append(a)
            elif index == 3:
                rng_expr = a
            else:
                self.infer(a)
        for kw in node.keywords:
            if kw.arg in ("args", "kwargs"):
                payloads.append(kw.value)
            elif kw.arg == "rng":
                rng_expr = kw.value
            else:
                self.infer(kw.value)
        if rng_expr is not None:
            token = self.infer(rng_expr)
            if token is not None and token.kind == GEN:
                self._task_payload(token, node, rng_expr)
        for payload in payloads:
            self._scan_payload(payload, node)
        return None

    def _infer_fanout(self, node: ast.Call) -> Token | None:
        rng_expr: ast.AST | None = None
        for index, a in enumerate(node.args):
            if index == 1:
                rng_expr = a
            elif index == 2:
                self._scan_payload(a, node)
            else:
                self.infer(a)
        for kw in node.keywords:
            if kw.arg == "rng":
                rng_expr = kw.value
            elif kw.arg == "kwargs_list":
                self._scan_payload(kw.value, node)
            else:
                self.infer(kw.value)
        if rng_expr is not None:
            token = self.infer(rng_expr)
            if token is not None and token.kind == GEN:
                self._spawn(token, node)
        return None

    def _infer_comprehension(self, node) -> Token | None:
        pushed = 0
        for comp in node.generators:
            self._bind_loop_target(comp.target, comp.iter)
            if _is_unordered(comp.iter):
                self.loops.append(_LoopCtx(
                    targets=self._target_names(comp.target),
                    unordered=True, node=comp.iter,
                ))
                pushed += 1
            for cond in comp.ifs:
                self.infer(cond)
        element = None
        if isinstance(node, ast.DictComp):
            self.infer(node.key)
            element = self.infer(node.value)
        else:
            element = self.infer(node.elt)
        for _ in range(pushed):
            self.loops.pop()
        if element is not None and element.kind == GEN and \
                isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return Token(GENLIST)
        return None

    # -- binding ------------------------------------------------------- #
    @staticmethod
    def _target_names(target: ast.AST) -> frozenset[str]:
        return frozenset(
            n.id for n in ast.walk(target) if isinstance(n, ast.Name)
        )

    def _bind(self, target: ast.AST, token: Token | None) -> None:
        if isinstance(target, ast.Name):
            if token is not None:
                self.env[target.id] = token
            else:
                self.env.pop(target.id, None)
            if token is not None and target.id in self.global_names:
                self._emit(
                    target, "R7",
                    "Generator assigned to a global name; module-level "
                    "stream state is shared across every caller and task",
                )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                if token is not None and token.kind == GENLIST:
                    self._bind(elt, Token(GEN))
                else:
                    self._bind(elt, None)
        elif isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Name) and token is not None:
                self.attrs[(target.value.id, target.attr)] = token
        elif isinstance(target, ast.Starred):
            self._bind(target.value, token)

    def _bind_loop_target(self, target: ast.AST, iterable: ast.AST) -> None:
        token = self.infer(iterable)
        if token is not None and token.kind == GENLIST:
            self._bind_fresh(target)
            return
        if isinstance(iterable, ast.Call):
            name = _dotted(iterable.func)
            if name in {"zip", "enumerate"} and \
                    isinstance(target, (ast.Tuple, ast.List)):
                args = iterable.args
                offset = 1 if name == "enumerate" else 0
                kinds = [self._type_only(a) for a in args]
                for j, elt in enumerate(target.elts):
                    source = j - offset
                    if 0 <= source < len(kinds) and \
                            kinds[source] is not None and \
                            kinds[source].kind == GENLIST:
                        self._bind_fresh(elt)
                    else:
                        self._bind(elt, None)
                return
        self._bind(target, None)

    def _bind_fresh(self, target: ast.AST) -> None:
        """Bind a loop target to a fresh per-iteration child stream."""
        if isinstance(target, ast.Name):
            self.env[target.id] = Token(GEN, loop_fresh=True)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_fresh(elt)

    # -- closures (R7) -------------------------------------------------- #
    def _check_closure(self, node: ast.AST, args: ast.arguments,
                       body) -> None:
        """Flag a nested callable that captures a live generator *and*
        escapes the defining scope (returned / stored / global)."""
        own = {a.arg for a in args.posonlyargs + args.args
               + args.kwonlyargs}
        if args.vararg:
            own.add(args.vararg.arg)
        if args.kwarg:
            own.add(args.kwarg.arg)
        statements = body if isinstance(body, list) else [body]
        local = set(own)
        for stmt in statements:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Name) and \
                        isinstance(sub.ctx, ast.Store):
                    local.add(sub.id)
        captured = set()
        for stmt in statements:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Name) and \
                        isinstance(sub.ctx, ast.Load) and \
                        sub.id not in local and sub.id in self.env:
                    captured.add(sub.id)
        if not captured:
            return
        name = getattr(node, "name", None)
        if name is not None and name in self.escaping_names:
            self._emit(
                node, "R7",
                f"closure `{name}` captures live generator(s) "
                f"{sorted(captured)} and escapes this scope; the stream "
                "would be shared across call sites — pass a spawned "
                "child explicitly",
            )

    # -- statements ----------------------------------------------------- #
    def run(self, body: list[ast.stmt]) -> None:
        """Interpret a statement list (call once with a function body)."""
        self.escaping_names = self._escaping_names(body)
        self._run_stmts(body)

    @staticmethod
    def _escaping_names(body: list[ast.stmt]) -> frozenset[str]:
        out: set[str] = set()
        for stmt in body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Return) and \
                        isinstance(sub.value, ast.Name):
                    out.add(sub.value.id)
                elif isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        if isinstance(target, ast.Attribute) and \
                                isinstance(sub.value, ast.Name):
                            out.add(sub.value.id)
                elif isinstance(sub, ast.Global):
                    out.update(sub.names)
        return frozenset(out)

    def _run_stmts(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._run_stmt(stmt)

    def _run_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            token = self.infer(stmt.value)
            for target in stmt.targets:
                self._bind(target, token)
            if self.at_module_level and token is not None:
                self._emit(
                    stmt, "R7",
                    "Generator stored in module-level state; every "
                    "importer and task shares (and silently advances) "
                    "one stream — create generators per run via "
                    "seed=/rng=",
                )
        elif isinstance(stmt, ast.AnnAssign):
            token = self.infer(stmt.value) if stmt.value else None
            self._bind(stmt.target, token)
            if self.at_module_level and token is not None:
                self._emit(
                    stmt, "R7",
                    "Generator stored in module-level state; every "
                    "importer and task shares one stream",
                )
        elif isinstance(stmt, ast.AugAssign):
            self.infer(stmt.value)
        elif isinstance(stmt, ast.Expr):
            self.infer(stmt.value)
        elif isinstance(stmt, ast.Return):
            token = self.infer(stmt.value)
            if token is not None:
                self.return_kinds.add(token.kind)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind_loop_target(stmt.target, stmt.iter)
            ctx = _LoopCtx(
                targets=self._target_names(stmt.target),
                unordered=_is_unordered(stmt.iter),
                node=stmt.iter,
            )
            self.loops.append(ctx)
            self._run_stmts(stmt.body)
            self.loops.pop()
            self._run_stmts(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.infer(stmt.test)
            self._run_stmts(stmt.body)
            self._run_stmts(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self.infer(stmt.test)
            self._run_stmts(stmt.body)
            self._run_stmts(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.infer(item.context_expr)
            self._run_stmts(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._run_stmts(stmt.body)
            for handler in stmt.handlers:
                self._run_stmts(handler.body)
            self._run_stmts(stmt.orelse)
            self._run_stmts(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._check_closure(stmt, stmt.args, stmt.body)
            nested = _FunctionFlow(
                self.program, self.module, self.path, self.out,
                env=self.env,
            )
            _seed_params(nested, stmt.args)
            nested.run(stmt.body)
        elif isinstance(stmt, ast.ClassDef):
            self._run_class(stmt)
        elif isinstance(stmt, ast.Global):
            self.global_names.update(stmt.names)
        elif isinstance(stmt, (ast.Raise, ast.Assert, ast.Delete)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.infer(child)

    def _run_class(self, stmt: ast.ClassDef) -> None:
        for item in stmt.body:
            if isinstance(item, (ast.Assign, ast.AnnAssign)):
                value = item.value if isinstance(item, ast.AnnAssign) \
                    else item.value
                token = self._type_only(value) if value is not None else None
                if token is None and value is not None:
                    token = self.infer(value)
                if token is not None:
                    self._emit(
                        item, "R7",
                        f"Generator stored as a class attribute of "
                        f"`{stmt.name}`; the stream is shared by every "
                        "instance — create it per instance in __init__ "
                        "via resolve_rng",
                    )
            elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = _FunctionFlow(
                    self.program, self.module, self.path, self.out
                )
                _seed_params(method, item.args)
                method.run(item.body)


def _seed_params(flow: _FunctionFlow, args: ast.arguments) -> None:
    """Bind generator-typed parameters in a fresh function scope."""
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        if _param_is_generator(arg):
            flow.env[arg.arg] = Token(GEN)


def infer_return_kind(program, module, fndef) -> str | None:
    """GEN/GENLIST if the function's returns type to a generator (list).

    Used by :func:`repro.lint.callgraph.compute_summaries`; runs the
    interpreter with the violation sink disconnected.
    """
    flow = _FunctionFlow(program, module, module.path, out=None)
    _seed_params(flow, fndef.args)
    flow.run(fndef.body)
    if GEN in flow.return_kinds:
        return GEN
    if GENLIST in flow.return_kinds:
        return GENLIST
    return None


def analyze_module(program, module) -> ModuleFlow:
    """Run the flow pass over one module; returns all R6-R9 findings."""
    out = ModuleFlow()
    top = _FunctionFlow(program, module, module.path, out,
                        at_module_level=True)
    # Module level: R7 for module-global generator state, plus flow
    # through any top-level statements.  Function and class bodies are
    # visited through the statement walker with fresh scopes.
    top.run(module.tree.body)
    return out


def violations_for(ctx, code: str) -> list[Violation]:
    """Findings of one flow rule for a runner :class:`RuleContext`.

    The analysis runs once per module and is cached on the program, so
    R6-R9 share a single pass.  A context without an attached program
    (direct construction) gets a private single-module program.
    """
    from repro.lint.callgraph import Program

    program = ctx.program
    if program is None:
        program = Program.from_sources({ctx.path: (ctx.tree, ctx.source)})
    module = program.module_for(ctx.path)
    if module is None:
        from repro.lint.callgraph import ModuleInfo

        module = ModuleInfo.build(ctx.path, ctx.tree)
        program.by_path[ctx.path] = module
        program.modules.setdefault(module.name, module)
    cached = program.flow_cache.get(ctx.path)
    if cached is None:
        cached = analyze_module(program, module)
        program.flow_cache[ctx.path] = cached
    return cached.get(code)
