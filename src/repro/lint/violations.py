"""Violation records and the ``# repro-lint:`` pragma grammar.

A violation pins one rule breach to one source line.  Findings are
suppressed per line with an inline pragma::

    x = np.random.rand()        # repro-lint: ignore[R1]
    y = risky(), hack()         # repro-lint: ignore[R1,R5]
    z = legacy_everything()     # repro-lint: ignore

``ignore`` with no bracket list suppresses every rule on that line; the
bracketed form suppresses only the named rules.  For a multi-line
statement (e.g. a ``def`` whose signature spans lines) the pragma goes on
the line the violation reports — always the statement's first line.

A whole file opts out with the file-level form (any line, conventionally
the first)::

    # repro-lint: skip-file            — suppress every rule
    # repro-lint: skip-file[R10,R12]   — suppress only the named rules

which is what deliberately-racy fixture files use instead of repeating a
line pragma on every statement.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

#: Matches one ignore pragma; group 1 is the optional rule list.
PRAGMA_RE = re.compile(r"#\s*repro-lint:\s*ignore(?:\[([A-Za-z0-9_,\s]+)\])?")

#: Matches one file-level skip pragma; group 1 is the optional rule list.
SKIP_FILE_RE = re.compile(
    r"#\s*repro-lint:\s*skip-file(?:\[([A-Za-z0-9_,\s]+)\])?"
)

#: Sentinel rule-set meaning "every rule is suppressed on this line".
ALL_RULES = frozenset({"*"})


@dataclass(frozen=True, order=True)
class Violation:
    """One rule breach at one source location.

    Attributes
    ----------
    path:
        File the violation was found in (as given to the runner).
    line, col:
        1-based line and 0-based column of the offending node.
    rule:
        Rule code (``"R1"`` … ``"R5"``).
    message:
        Human-readable explanation, including the fix direction.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """Render as ``path:line:col: RULE message`` (clickable in IDEs)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        """JSON-serializable form for ``--format json``."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


def collect_pragmas(source: str) -> dict[int, frozenset[str]]:
    """Map line number -> set of suppressed rule codes (or :data:`ALL_RULES`).

    Only the comment trailer is inspected, so a pragma inside a string
    literal on a code line could in principle false-positive; in practice
    the marker is long enough that this never bites, and erring toward
    suppression is the safe direction for a pre-commit gate's UX.
    """
    pragmas: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = PRAGMA_RE.search(text)
        if match is None:
            continue
        rules = match.group(1)
        if rules is None:
            pragmas[lineno] = ALL_RULES
        else:
            pragmas[lineno] = frozenset(
                token.strip().upper() for token in rules.split(",") if token.strip()
            )
    return pragmas


def collect_file_pragmas(source: str) -> frozenset[str]:
    """Rule codes suppressed for the whole file by ``skip-file`` pragmas.

    Returns :data:`ALL_RULES` when any bare ``skip-file`` appears;
    otherwise the union of the bracketed rule lists (empty when the file
    has no file-level pragma).
    """
    out: set[str] = set()
    for text in source.splitlines():
        match = SKIP_FILE_RE.search(text)
        if match is None:
            continue
        rules = match.group(1)
        if rules is None:
            return ALL_RULES
        out.update(
            token.strip().upper() for token in rules.split(",")
            if token.strip()
        )
    return frozenset(out)


def is_suppressed(
    violation: Violation, pragmas: dict[int, frozenset[str]]
) -> bool:
    """Whether ``violation`` is silenced by a pragma on its line."""
    rules = pragmas.get(violation.line)
    if rules is None:
        return False
    return rules is ALL_RULES or "*" in rules or violation.rule in rules
