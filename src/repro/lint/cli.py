"""The ``repro-experiments lint`` subcommand.

Usage::

    repro-experiments lint                       # lint src and tests
    repro-experiments lint src/repro/core        # lint a subtree
    repro-experiments lint --format json src     # CI-friendly output
    repro-experiments lint --select R1,R4 src    # subset of rules
    repro-experiments lint --explain             # print the rule table

Exit status: 0 clean, 1 violations found, 2 usage error — so the command
drops straight into CI and pre-commit hooks.
"""

from __future__ import annotations

import argparse
import sys

from repro.lint.rules import RULES
from repro.lint.runner import format_json, format_text, lint_paths


def _explain() -> str:
    """Render the rule table (kept in sync with docs/LINTING.md)."""
    width = max(len(rule.title) for rule in RULES.values())
    return "\n".join(
        f"{rule.code}  {rule.title:<{width}}  {rule.summary}"
        for rule in RULES.values()
    )


def main(argv: list[str] | None = None) -> int:
    """Parse lint arguments, run the rules, print the report."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments lint",
        description="AST determinism & invariant linter (rules R1-R5; "
                    "suppress per line with `# repro-lint: ignore[R..]`).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default text)",
    )
    parser.add_argument(
        "--select", metavar="RULES", default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--explain", action="store_true",
        help="print the rule catalogue and exit",
    )
    args = parser.parse_args(argv)

    if args.explain:
        print(_explain())
        return 0

    rules = None
    if args.select is not None:
        codes = [c.strip().upper() for c in args.select.split(",") if c.strip()]
        unknown = [c for c in codes if c not in RULES]
        if unknown:
            print(f"unknown rule codes {unknown}; known: {sorted(RULES)}",
                  file=sys.stderr)
            return 2
        rules = [RULES[c] for c in codes]

    try:
        violations = lint_paths(args.paths, rules)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except SyntaxError as exc:
        print(f"could not parse {exc.filename}:{exc.lineno}: {exc.msg}",
              file=sys.stderr)
        return 2

    report = (format_json(violations) if args.format == "json"
              else format_text(violations))
    print(report)
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
