"""The ``repro-experiments lint`` and ``rng-audit`` subcommands.

Usage::

    repro-experiments lint                       # lint src and tests
    repro-experiments lint src/repro/core        # lint a subtree
    repro-experiments lint --format json src     # CI-friendly output
    repro-experiments lint --format github src   # Actions annotations
    repro-experiments lint --select R1,R4 src    # subset of rules
    repro-experiments lint --explain             # print the rule table

    repro-experiments rng-audit src              # flow rules R6-R9 only
    repro-experiments race-audit src/repro/service   # async rules R10-R14
    repro-experiments perf-audit src/repro       # perf rules R15-R19
    repro-experiments perf-audit --report results/hotspots.json

``rng-audit`` is the whole-program RNG stream audit: it runs exactly the
interprocedural flow rules (stream reuse / generator escape /
process-boundary crossing / draw-order hazard) and nothing else — the
static half of the ``REPRO_RNG_SANITIZE=1`` runtime sanitizer.  It
shares the lint machinery, so pragmas, formats, and exit codes behave
identically.

``race-audit`` is its async-concurrency sibling: exactly the R10-R14
rules of :mod:`repro.lint.async_flow` (interleaving hazards, blocking
calls, lost tasks, lock/queue discipline, cross-task aliasing) — the
static half of the ``REPRO_ASYNC_SANITIZE=1`` deterministic-scheduler
sanitizer (:mod:`repro.service.sanitizer`).

``perf-audit`` runs the performance rules R15-R19 of
:mod:`repro.lint.perf_flow` (scalar loops over the array substrate,
quadratic membership, hot-loop allocation, unbudgeted while loops,
redundant recompute), with ``--hot-roots`` extending the update entry
points reachability grows from.  Its runtime half is
``REPRO_WORK_AUDIT=1`` (:mod:`repro.instrument.workmeter`);
``--report FILE`` drives a deterministic synthetic session under the
meter and writes the ranked per-call-site hotspot table.

All four commands share ``--baseline FILE`` / ``--write-baseline FILE``
(see :mod:`repro.lint.baseline`): a recorded baseline suppresses known
findings so CI gates ratchet instead of block.

Exit status: 0 clean, 1 violations found, 2 usage error — so all four
commands drop straight into CI and pre-commit hooks.
"""

from __future__ import annotations

import argparse
import sys

from repro.lint.baseline import (
    filter_baselined,
    load_baseline,
    write_baseline,
)
from repro.lint.rules import (
    ASYNC_RULES,
    FLOW_RULES,
    PERF_RULES,
    RULES,
    Rule,
)
from repro.lint.runner import (
    format_github,
    format_json,
    format_text,
    lint_paths,
)

#: ``--format`` name -> formatter.
_FORMATS = {
    "text": format_text,
    "json": format_json,
    "github": format_github,
}


def _explain(rules: dict[str, Rule]) -> str:
    """Render the rule table (kept in sync with docs/LINTING.md)."""
    width = max(len(rule.title) for rule in rules.values())
    return "\n".join(
        f"{rule.code}  {rule.title:<{width}}  {rule.summary}"
        for rule in rules.values()
    )


def _build_parser(prog: str, description: str,
                  catalogue: dict[str, Rule]) -> argparse.ArgumentParser:
    """The shared option surface of ``lint`` and ``rng-audit``."""
    parser = argparse.ArgumentParser(prog=prog, description=description)
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to check (default: src tests)",
    )
    parser.add_argument(
        "--format", choices=tuple(_FORMATS), default="text",
        help="report format (default text; github emits Actions "
             "::error annotations)",
    )
    parser.add_argument(
        "--select", metavar="RULES", default=None,
        help="comma-separated rule codes to run "
             f"(default: all of {', '.join(catalogue)})",
    )
    parser.add_argument(
        "--explain", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="suppress findings recorded in this baseline file "
             "(generate with --write-baseline); the suppressed count "
             "is noted on stderr",
    )
    parser.add_argument(
        "--write-baseline", metavar="FILE", default=None,
        help="record the current findings as the baseline and exit 0",
    )
    return parser


def _run(args: argparse.Namespace, catalogue: dict[str, Rule],
         default_rules: list[Rule] | None = None) -> int:
    """Select rules, lint, format, exit-code — shared by all commands.

    ``default_rules`` overrides the rule set used when ``--select`` is
    absent (the plain ``lint`` command passes the non-perf subset while
    keeping the full catalogue available to ``--select``/``--explain``).
    """
    if args.explain:
        print(_explain(catalogue))
        return 0

    rules = (list(catalogue.values()) if default_rules is None
             else list(default_rules))
    if args.select is not None:
        codes = [c.strip().upper() for c in args.select.split(",") if c.strip()]
        if not codes:
            # An empty selection would "lint" with zero rules and exit 0
            # — a green CI gate that checks nothing.  Usage error.
            print("--select is empty; pass one or more rule codes like "
                  f"{next(iter(catalogue))}", file=sys.stderr)
            return 2
        unknown = [c for c in codes if c not in catalogue]
        if unknown:
            print(f"unknown rule codes {unknown}; known: {sorted(catalogue)}",
                  file=sys.stderr)
            return 2
        rules = [catalogue[c] for c in codes]

    try:
        violations = lint_paths(args.paths, rules)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except SyntaxError as exc:
        print(f"could not parse {exc.filename}:{exc.lineno}: {exc.msg}",
              file=sys.stderr)
        return 2

    if args.write_baseline is not None:
        count = write_baseline(args.write_baseline, violations)
        print(f"baseline written: {count} finding"
              f"{'' if count == 1 else 's'} recorded in "
              f"{args.write_baseline}")
        return 0
    if args.baseline is not None:
        try:
            keys = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(str(exc), file=sys.stderr)
            return 2
        violations, suppressed = filter_baselined(violations, keys)
        if suppressed:
            # stderr so json/github stdout stays machine-parseable.
            print(f"baseline suppressed {suppressed} known finding"
                  f"{'' if suppressed == 1 else 's'}", file=sys.stderr)

    print(_FORMATS[args.format](violations))
    return 1 if violations else 0


def main(argv: list[str] | None = None) -> int:
    """Parse lint arguments, run every rule, print the report.

    The default run covers the correctness rules (R1-R14); the perf
    rules R15-R19 stay reachable via ``--select`` but belong to the
    dedicated ``perf-audit`` command, which scopes them to hot paths.
    """
    parser = _build_parser(
        "repro-experiments lint",
        "AST determinism & invariant linter (rules R1-R14; suppress per "
        "line with `# repro-lint: ignore[R..]`; perf rules R15-R19 run "
        "under `perf-audit`).",
        RULES,
    )
    default = [rule for rule in RULES.values() if not rule.perf]
    return _run(parser.parse_args(argv), RULES, default_rules=default)


def audit_main(argv: list[str] | None = None) -> int:
    """Parse rng-audit arguments, run the flow rules, print the report."""
    parser = _build_parser(
        "repro-experiments rng-audit",
        "Whole-program RNG stream audit (flow rules R6-R9: stream "
        "reuse, generator escape, process-boundary crossing, draw-order "
        "hazard).",
        FLOW_RULES,
    )
    return _run(parser.parse_args(argv), FLOW_RULES)


def race_audit_main(argv: list[str] | None = None) -> int:
    """Parse race-audit arguments, run the async rules, print the report."""
    parser = _build_parser(
        "repro-experiments race-audit",
        "Whole-program async-concurrency audit (rules R10-R14: "
        "interleaving hazards across awaits, blocking calls in the "
        "event loop, lost tasks, lock/queue discipline, cross-task "
        "aliasing).  The static half of REPRO_ASYNC_SANITIZE=1.",
        ASYNC_RULES,
    )
    return _run(parser.parse_args(argv), ASYNC_RULES)


def _write_hotspot_report(path: str, steps: int, seed: int) -> None:
    """Drive a deterministic synthetic session under the work meter and
    write the ranked per-call-site hotspot table to ``path``.

    The workload is a seeded insert/delete stream against a small
    session (the same shape the service bench uses), so the report is
    byte-reproducible and ranks exactly the DynamicSparsifier /
    lazy-rebuild inner loops the vectorization ROADMAP item targets.
    """
    import json

    # Imported here: the lint CLI must not pull the service stack (and
    # numpy) in for plain static runs.
    from repro.dynamic.incremental import DEFAULT_CHUNK
    from repro.instrument import workmeter
    from repro.instrument.rng import resolve_rng
    from repro.service.session import Session

    num_vertices = 96
    with workmeter.audit() as meter:
        session = Session("perf-audit", num_vertices=num_vertices,
                          beta=2, epsilon=0.25, seed=seed)
        stream = resolve_rng(seed=seed, owner="perf-audit-report")
        present: set[tuple[int, int]] = set()
        applied = 0
        while applied < steps:
            u = int(stream.integers(0, num_vertices))
            v = int(stream.integers(0, num_vertices))
            if u == v:
                continue
            edge = (u, v) if u < v else (v, u)
            op = "delete" if edge in present else "insert"
            session.apply(op, edge[0], edge[1])
            (present.discard if op == "delete" else present.add)(edge)
            applied += 1
        budget_ops = session.work_budget * DEFAULT_CHUNK
        payload = {
            "format": "repro-hotspots-v1",
            "workload": {
                "num_vertices": num_vertices,
                "beta": 2,
                "epsilon": 0.25,
                "steps": steps,
                "seed": seed,
            },
            "updates": meter.updates,
            "total_ops": meter.total_ops,
            "per_update": {
                "max_ops": meter.per_update_max,
                "budget_chunks": session.work_budget,
                "budget_ops": budget_ops,
                "max_observed_constant": round(
                    meter.max_observed_constant, 6
                ),
            },
            "hotspots": [
                {**row, "share": round(row["share"], 6)}
                for row in meter.report()
            ],
        }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    top = payload["hotspots"][0]["site"] if payload["hotspots"] else "none"
    print(f"hotspot report: {meter.total_ops} ops across {meter.updates} "
          f"updates -> {path} (top site: {top})")


def perf_audit_main(argv: list[str] | None = None) -> int:
    """Parse perf-audit arguments, run the perf rules, print the report."""
    parser = _build_parser(
        "repro-experiments perf-audit",
        "Hot-path performance audit (rules R15-R19: scalar loops over "
        "the array substrate, quadratic membership, hot-loop "
        "allocation, unbudgeted while loops, redundant recompute).  "
        "The static half of REPRO_WORK_AUDIT=1.",
        PERF_RULES,
    )
    parser.add_argument(
        "--hot-roots", metavar="SPECS", default=None,
        help="comma-separated function specs (`Class.method` or "
             "`function`) added to the default update entry points "
             "R16-R18 grow reachability from",
    )
    parser.add_argument(
        "--report", metavar="FILE", default=None,
        help="also run a deterministic synthetic session under the "
             "work meter and write the ranked hotspot table to FILE",
    )
    parser.add_argument(
        "--report-steps", type=int, default=400,
        help="updates in the synthetic --report workload (default 400)",
    )
    parser.add_argument(
        "--report-seed", type=int, default=0,
        help="seed of the synthetic --report workload (default 0)",
    )
    args = parser.parse_args(argv)
    if args.report_steps < 1:
        print("--report-steps must be >= 1", file=sys.stderr)
        return 2
    if args.report is not None:
        # Before the static pass: the report must land even when the
        # lint half exits 1 with findings.
        _write_hotspot_report(args.report, args.report_steps,
                              args.report_seed)
    from repro.lint import perf_flow

    if args.hot_roots is not None:
        extra = tuple(
            s.strip() for s in args.hot_roots.split(",") if s.strip()
        )
        if not extra:
            print("--hot-roots is empty; pass specs like "
                  "`Matcher.update`", file=sys.stderr)
            return 2
        perf_flow.set_hot_roots(perf_flow.DEFAULT_HOT_ROOTS + extra)
    try:
        return _run(args, PERF_RULES)
    finally:
        perf_flow.set_hot_roots(None)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
