"""The ``repro-experiments lint`` and ``rng-audit`` subcommands.

Usage::

    repro-experiments lint                       # lint src and tests
    repro-experiments lint src/repro/core        # lint a subtree
    repro-experiments lint --format json src     # CI-friendly output
    repro-experiments lint --format github src   # Actions annotations
    repro-experiments lint --select R1,R4 src    # subset of rules
    repro-experiments lint --explain             # print the rule table

    repro-experiments rng-audit src              # flow rules R6-R9 only
    repro-experiments race-audit src/repro/service   # async rules R10-R14

``rng-audit`` is the whole-program RNG stream audit: it runs exactly the
interprocedural flow rules (stream reuse / generator escape /
process-boundary crossing / draw-order hazard) and nothing else — the
static half of the ``REPRO_RNG_SANITIZE=1`` runtime sanitizer.  It
shares the lint machinery, so pragmas, formats, and exit codes behave
identically.

``race-audit`` is its async-concurrency sibling: exactly the R10-R14
rules of :mod:`repro.lint.async_flow` (interleaving hazards, blocking
calls, lost tasks, lock/queue discipline, cross-task aliasing) — the
static half of the ``REPRO_ASYNC_SANITIZE=1`` deterministic-scheduler
sanitizer (:mod:`repro.service.sanitizer`).

Exit status: 0 clean, 1 violations found, 2 usage error — so all three
commands drop straight into CI and pre-commit hooks.
"""

from __future__ import annotations

import argparse
import sys

from repro.lint.rules import ASYNC_RULES, FLOW_RULES, RULES, Rule
from repro.lint.runner import (
    format_github,
    format_json,
    format_text,
    lint_paths,
)

#: ``--format`` name -> formatter.
_FORMATS = {
    "text": format_text,
    "json": format_json,
    "github": format_github,
}


def _explain(rules: dict[str, Rule]) -> str:
    """Render the rule table (kept in sync with docs/LINTING.md)."""
    width = max(len(rule.title) for rule in rules.values())
    return "\n".join(
        f"{rule.code}  {rule.title:<{width}}  {rule.summary}"
        for rule in rules.values()
    )


def _build_parser(prog: str, description: str,
                  catalogue: dict[str, Rule]) -> argparse.ArgumentParser:
    """The shared option surface of ``lint`` and ``rng-audit``."""
    parser = argparse.ArgumentParser(prog=prog, description=description)
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to check (default: src tests)",
    )
    parser.add_argument(
        "--format", choices=tuple(_FORMATS), default="text",
        help="report format (default text; github emits Actions "
             "::error annotations)",
    )
    parser.add_argument(
        "--select", metavar="RULES", default=None,
        help="comma-separated rule codes to run "
             f"(default: all of {', '.join(catalogue)})",
    )
    parser.add_argument(
        "--explain", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _run(args: argparse.Namespace, catalogue: dict[str, Rule]) -> int:
    """Select rules, lint, format, exit-code — shared by both commands."""
    if args.explain:
        print(_explain(catalogue))
        return 0

    rules = list(catalogue.values())
    if args.select is not None:
        codes = [c.strip().upper() for c in args.select.split(",") if c.strip()]
        if not codes:
            # An empty selection would "lint" with zero rules and exit 0
            # — a green CI gate that checks nothing.  Usage error.
            print("--select is empty; pass one or more rule codes like "
                  f"{next(iter(catalogue))}", file=sys.stderr)
            return 2
        unknown = [c for c in codes if c not in catalogue]
        if unknown:
            print(f"unknown rule codes {unknown}; known: {sorted(catalogue)}",
                  file=sys.stderr)
            return 2
        rules = [catalogue[c] for c in codes]

    try:
        violations = lint_paths(args.paths, rules)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except SyntaxError as exc:
        print(f"could not parse {exc.filename}:{exc.lineno}: {exc.msg}",
              file=sys.stderr)
        return 2

    print(_FORMATS[args.format](violations))
    return 1 if violations else 0


def main(argv: list[str] | None = None) -> int:
    """Parse lint arguments, run every rule, print the report."""
    parser = _build_parser(
        "repro-experiments lint",
        "AST determinism & invariant linter (rules R1-R9; suppress per "
        "line with `# repro-lint: ignore[R..]`).",
        RULES,
    )
    return _run(parser.parse_args(argv), RULES)


def audit_main(argv: list[str] | None = None) -> int:
    """Parse rng-audit arguments, run the flow rules, print the report."""
    parser = _build_parser(
        "repro-experiments rng-audit",
        "Whole-program RNG stream audit (flow rules R6-R9: stream "
        "reuse, generator escape, process-boundary crossing, draw-order "
        "hazard).",
        FLOW_RULES,
    )
    return _run(parser.parse_args(argv), FLOW_RULES)


def race_audit_main(argv: list[str] | None = None) -> int:
    """Parse race-audit arguments, run the async rules, print the report."""
    parser = _build_parser(
        "repro-experiments race-audit",
        "Whole-program async-concurrency audit (rules R10-R14: "
        "interleaving hazards across awaits, blocking calls in the "
        "event loop, lost tasks, lock/queue discipline, cross-task "
        "aliasing).  The static half of REPRO_ASYNC_SANITIZE=1.",
        ASYNC_RULES,
    )
    return _run(parser.parse_args(argv), ASYNC_RULES)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
