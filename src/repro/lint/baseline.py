"""Ratcheting baselines for the audit CLIs (``--baseline``).

A CI gate over a freshly-audited rule set faces a bootstrap problem:
pre-existing findings would turn the gate red on day one, so either the
gate waits for a full cleanup or it never lands.  A *baseline* breaks
the deadlock: ``--write-baseline FILE`` records today's findings in a
canonical JSON file, and ``--baseline FILE`` suppresses exactly those on
later runs — the gate is green now, *new* findings still fail, and
deleting entries from the file ratchets the debt down monotonically.

Baseline keys are ``(normalized path, rule, message)`` — deliberately
**line-independent**, so unrelated edits that shift a known finding by a
few lines do not resurrect it, while any new finding (new file, new
rule, or a message naming a different construct) is never masked.
Paths are normalized to repo-relative POSIX form so a baseline written
on one machine (or in CI) matches locally.

The file format is versioned, sorted, and newline-terminated so diffs
of the baseline itself review cleanly.
"""

from __future__ import annotations

import json
from pathlib import Path, PurePath
from typing import Iterable, Sequence

from repro.lint.violations import Violation

#: Format marker written to (and required from) every baseline file.
BASELINE_FORMAT = "repro-lint-baseline-v1"


def baseline_key(violation: Violation) -> tuple[str, str, str]:
    """The (path, rule, message) identity a baseline stores.

    Line and column are excluded on purpose: a baseline must survive
    unrelated edits above a known finding.
    """
    return (_normalize(violation.path), violation.rule, violation.message)


def _normalize(path: str) -> str:
    """Repo-relative POSIX form of a finding's path."""
    pure = PurePath(path)
    if pure.is_absolute():
        try:
            pure = pure.relative_to(Path.cwd())
        except ValueError:
            pass
    return pure.as_posix()


def write_baseline(path: str | Path,
                   violations: Sequence[Violation]) -> int:
    """Write the canonical baseline for ``violations``; returns entry count.

    Entries are unique and sorted, so regenerating against an unchanged
    tree is byte-identical.
    """
    entries = sorted({baseline_key(v) for v in violations})
    payload = {
        "format": BASELINE_FORMAT,
        "findings": [
            {"path": p, "rule": rule, "message": message}
            for p, rule, message in entries
        ],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return len(entries)


def load_baseline(path: str | Path) -> set[tuple[str, str, str]]:
    """Read a baseline file back into its suppression-key set.

    Raises
    ------
    ValueError
        If the file is not a baseline (wrong/missing format marker or
        malformed entries) — a mistyped path must fail loudly, not
        silently suppress nothing.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or \
            payload.get("format") != BASELINE_FORMAT:
        raise ValueError(
            f"baseline {path} is missing the {BASELINE_FORMAT!r} format "
            "marker; generate one with --write-baseline"
        )
    keys: set[tuple[str, str, str]] = set()
    for entry in payload.get("findings", []):
        try:
            keys.add((entry["path"], entry["rule"], entry["message"]))
        except (TypeError, KeyError) as exc:
            raise ValueError(
                f"baseline {path} has a malformed finding entry: {entry!r}"
            ) from exc
    return keys


def filter_baselined(
    violations: Iterable[Violation],
    keys: set[tuple[str, str, str]],
) -> tuple[list[Violation], int]:
    """Split findings into (kept, suppressed-count) against a baseline."""
    kept: list[Violation] = []
    suppressed = 0
    for violation in violations:
        if baseline_key(violation) in keys:
            suppressed += 1
        else:
            kept.append(violation)
    return kept, suppressed
