"""File discovery, rule dispatch, pragma filtering, and output formats.

The runner is the library face of the linter: :func:`lint_paths` is what
the CLI and the test suite call, :func:`lint_source` is the unit-test
entry point for individual snippets.

Directory walks skip any component named ``fixtures`` — the lint test
suite keeps deliberately-violating snippets there — and hidden/cache
directories.  A path given *explicitly* is always linted, so tests can
point at fixture files directly.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.rules import RULES, Rule, RuleContext
from repro.lint.violations import Violation, collect_pragmas, is_suppressed

#: Directory names never descended into during discovery.
SKIP_DIRS = frozenset({"fixtures", "__pycache__", ".git", ".venv", "build"})


def discover_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into the sorted list of ``.py`` targets.

    Directories are walked recursively, skipping :data:`SKIP_DIRS`
    components and hidden directories; explicit file paths pass through
    unconditionally (this is how the test suite lints fixtures that a
    tree walk would skip).
    """
    found: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                relative = candidate.relative_to(path)
                if any(part in SKIP_DIRS or part.startswith(".")
                       for part in relative.parts[:-1]):
                    continue
                found.append(candidate)
        elif path.suffix == ".py":
            found.append(path)
        else:
            raise FileNotFoundError(f"lint target {path} is not a .py file "
                                    "or directory")
    unique: dict[Path, None] = {}
    for path in found:
        unique.setdefault(path, None)
    return list(unique)


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Iterable[Rule] | None = None,
) -> list[Violation]:
    """Lint one source string; the core everything else wraps.

    Pragma suppression is applied here so every entry point honors
    ``# repro-lint: ignore[...]`` identically.
    """
    tree = ast.parse(source, filename=path)
    ctx = RuleContext(path=path, tree=tree, source=source)
    pragmas = collect_pragmas(source)
    out: list[Violation] = []
    for rule in (RULES.values() if rules is None else rules):
        for violation in rule.check(ctx):
            if not is_suppressed(violation, pragmas):
                out.append(violation)
    return sorted(out)


def lint_file(
    path: str | Path, rules: Iterable[Rule] | None = None
) -> list[Violation]:
    """Lint one file from disk (explicitly, bypassing discovery skips)."""
    target = Path(path)
    return lint_source(target.read_text(encoding="utf-8"), str(target), rules)


def lint_paths(
    paths: Sequence[str | Path],
    rules: Iterable[Rule] | None = None,
) -> list[Violation]:
    """Lint every discovered file under ``paths``; sorted violations."""
    out: list[Violation] = []
    for target in discover_files(paths):
        out.extend(lint_file(target, rules))
    return sorted(out)


def format_text(violations: Sequence[Violation]) -> str:
    """Human-readable report: one ``path:line:col: RULE msg`` per line."""
    lines = [v.format() for v in violations]
    lines.append(f"{len(violations)} violation"
                 f"{'' if len(violations) == 1 else 's'} found"
                 if violations else "clean: no violations")
    return "\n".join(lines)


def format_json(violations: Sequence[Violation]) -> str:
    """Machine-readable report for CI annotation tooling."""
    return json.dumps(
        {"violations": [v.to_dict() for v in violations],
         "count": len(violations)},
        indent=2,
    )
