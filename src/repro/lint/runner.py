"""File discovery, rule dispatch, pragma filtering, and output formats.

The runner is the library face of the linter: :func:`lint_paths` is what
the CLI and the test suite call, :func:`lint_source` is the unit-test
entry point for individual snippets.

Two performance properties (measured by ``benchmarks/bench_lint.py``):

* **Parse once, share everywhere.**  Each file is read and parsed
  exactly once; the resulting tree is shared by all rules through
  :class:`~repro.lint.rules.RuleContext`, whose node index is built with
  a single ``ast.walk``.  The pre-1.3 runner let every rule re-walk the
  tree independently.
* **One directory walk.**  Discovery uses a single pruned ``os.walk``
  per root — skip directories are never descended into (``rglob`` would
  enumerate ``__pycache__``/``.git`` contents only to discard them).

Directory walks skip any component named ``fixtures`` — the lint test
suite keeps deliberately-violating snippets there — and hidden/cache
directories.  A path given *explicitly* is always linted, so tests can
point at fixture files directly.

All files linted together form one
:class:`~repro.lint.callgraph.Program`, which is what lets the flow
rules R6-R9 resolve imports and generator summaries across modules.
"""

from __future__ import annotations

import ast
import json
import os
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.callgraph import Program
from repro.lint.rules import RULES, Rule, RuleContext
from repro.lint.violations import (
    Violation,
    collect_file_pragmas,
    collect_pragmas,
    is_suppressed,
)

#: Directory names never descended into during discovery.
SKIP_DIRS = frozenset({"fixtures", "__pycache__", ".git", ".venv", "build"})


def _walk_py(root: Path) -> Iterable[Path]:
    """Yield ``.py`` files under ``root`` in one pruned directory walk."""
    for dirpath, dirnames, filenames in os.walk(root):
        # Pruning in place stops os.walk from ever entering skip dirs.
        dirnames[:] = sorted(
            d for d in dirnames
            if d not in SKIP_DIRS and not d.startswith(".")
        )
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield Path(dirpath) / name


def discover_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into the sorted list of ``.py`` targets.

    Directories are walked recursively (one pruned ``os.walk`` each),
    skipping :data:`SKIP_DIRS` components and hidden directories;
    explicit file paths pass through unconditionally (this is how the
    test suite lints fixtures that a tree walk would skip).

    Overlapping targets (``src src/repro``, a relative and an absolute
    spelling of one tree, symlinked duplicates) are deduplicated by
    *resolved* path, keeping the first spelling seen — so every file is
    parsed, linted, and reported exactly once regardless of how many of
    the given roots cover it.
    """
    found: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found.extend(_walk_py(path))
        elif path.suffix == ".py":
            found.append(path)
        else:
            raise FileNotFoundError(f"lint target {path} is not a .py file "
                                    "or directory")
    unique: dict[Path, Path] = {}
    for path in found:
        unique.setdefault(path.resolve(), path)
    return list(unique.values())


def _lint_parsed(
    sources: dict[str, tuple[ast.Module, str]],
    rules: Iterable[Rule] | None,
) -> list[Violation]:
    """Run the rules over pre-parsed modules sharing one program."""
    program = Program.from_sources(sources)
    active = list(RULES.values() if rules is None else rules)
    out: list[Violation] = []
    for path, (tree, source) in sources.items():
        ctx = RuleContext(path=path, tree=tree, source=source,
                          program=program)
        pragmas = collect_pragmas(source)
        file_skips = collect_file_pragmas(source)
        for rule in active:
            # File-level skips elide the rule entirely (cheaper than
            # filtering its findings, and `skip-file` with no list
            # suppresses every rule).
            if "*" in file_skips or rule.code in file_skips:
                continue
            for violation in rule.check(ctx):
                if not is_suppressed(violation, pragmas):
                    out.append(violation)
    return sorted(out)


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Iterable[Rule] | None = None,
) -> list[Violation]:
    """Lint one source string; the core everything else wraps.

    Pragma suppression is applied here so every entry point honors
    ``# repro-lint: ignore[...]`` identically.
    """
    tree = ast.parse(source, filename=path)
    return _lint_parsed({path: (tree, source)}, rules)


def lint_file(
    path: str | Path, rules: Iterable[Rule] | None = None
) -> list[Violation]:
    """Lint one file from disk (explicitly, bypassing discovery skips)."""
    target = Path(path)
    return lint_source(target.read_text(encoding="utf-8"), str(target), rules)


def lint_paths(
    paths: Sequence[str | Path],
    rules: Iterable[Rule] | None = None,
) -> list[Violation]:
    """Lint every discovered file under ``paths``; sorted violations.

    Every file is parsed once, and all of them are linted as one
    :class:`~repro.lint.callgraph.Program`, so the flow rules see
    cross-module generator flow (and the syntactic rules share the
    parse).
    """
    sources: dict[str, tuple[ast.Module, str]] = {}
    for target in discover_files(paths):
        text = target.read_text(encoding="utf-8")
        sources[str(target)] = (ast.parse(text, filename=str(target)), text)
    return _lint_parsed(sources, rules)


def format_text(violations: Sequence[Violation]) -> str:
    """Human-readable report: one ``path:line:col: RULE msg`` per line."""
    lines = [v.format() for v in violations]
    lines.append(f"{len(violations)} violation"
                 f"{'' if len(violations) == 1 else 's'} found"
                 if violations else "clean: no violations")
    return "\n".join(lines)


def format_json(violations: Sequence[Violation]) -> str:
    """Machine-readable report for CI annotation tooling."""
    return json.dumps(
        {"violations": [v.to_dict() for v in violations],
         "count": len(violations)},
        indent=2,
    )


def _escape_data(value: str) -> str:
    """Escape a workflow-command message per the Actions toolkit rules.

    ``%`` must go first (it is the escape character itself); raw
    newlines would otherwise truncate the annotation at the first line.
    """
    return (value.replace("%", "%25")
            .replace("\r", "%0D")
            .replace("\n", "%0A"))


def _escape_property(value: str) -> str:
    """Escape a workflow-command property value (``file=``, ``title=``).

    Properties additionally reserve ``:`` and ``,`` — a message
    containing ``::`` inside a property would end the property list
    early and corrupt the annotation.
    """
    return (_escape_data(value)
            .replace(":", "%3A")
            .replace(",", "%2C"))


def format_github(violations: Sequence[Violation]) -> str:
    """GitHub Actions workflow commands: one ``::error`` per finding.

    Emitting these to stdout inside a workflow step makes every finding
    render as an inline annotation on the PR diff.  Columns are
    converted to GitHub's 1-based convention; messages and property
    values are escaped per the workflow-command spec so multi-line or
    ``::``-bearing rule messages cannot truncate the annotation.
    """
    lines = [
        f"::error file={_escape_property(v.path)},line={v.line},"
        f"col={v.col + 1},title={_escape_property(v.rule)}"
        f"::{_escape_data(v.message)}"
        for v in violations
    ]
    lines.append(f"{len(violations)} violation"
                 f"{'' if len(violations) == 1 else 's'} found"
                 if violations else "clean: no violations")
    return "\n".join(lines)
