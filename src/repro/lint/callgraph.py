"""Module index and call-resolution layer for the RNG-flow pass.

The single-file rules R1-R5 see one parsed module at a time; the flow
rules R6-R9 (:mod:`repro.lint.flow`) need to answer *cross-module*
questions — "does this imported helper return a live ``Generator``?" —
before they can track a stream through a function body.  This module
builds that context:

* :class:`ModuleInfo` — one parsed module plus its import map and the
  function/class definitions it hosts;
* :class:`Program` — the set of modules being linted together, with
  dotted-name resolution (``np.random.default_rng`` →
  ``numpy.random.default_rng``) and *generator summaries*: the fixpoint
  sets of fully-qualified callables known to return a
  ``numpy.random.Generator`` (or a list of them).

Everything here is stdlib-``ast`` only; the analysis never imports the
code it inspects.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePath
from typing import Iterable

#: Callables known to return one live ``Generator`` regardless of input.
#: ``resolve_rng``/``derive_rng`` additionally *alias* a generator passed
#: in (flow.py special-cases that); listing them here covers the
#: seed-integer call shapes.
GEN_RETURNING_BASE = frozenset({
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "repro.instrument.rng.derive_rng",
    "repro.instrument.rng.resolve_rng",
    "repro.instrument.rng.sanitize_rng",
    "repro.instrument.rng.SanitizedGenerator",
})

#: Callables known to return a list of independent child generators.
GENLIST_RETURNING_BASE = frozenset({
    "repro.instrument.rng.spawn_rngs",
})

#: Annotation spellings recognised as "this parameter is a Generator".
GENERATOR_ANNOTATIONS = frozenset({
    "Generator", "np.random.Generator", "numpy.random.Generator",
    "SanitizedGenerator",
})


def module_name_for_path(path: str) -> str:
    """Derive a dotted module name from a file path.

    Files under a ``repro`` package directory get their real dotted name
    (so imports resolve across the package); anything else — tests,
    benchmarks, examples, ``<string>`` snippets — is named by its stem,
    which keeps single-file analysis self-consistent.
    """
    parts = PurePath(path).parts
    if "repro" in parts:
        tail = list(parts[len(parts) - 1 - parts[::-1].index("repro"):])
        tail[-1] = PurePath(tail[-1]).stem
        if tail[-1] == "__init__":
            tail.pop()
        return ".".join(tail)
    return PurePath(path).stem


def _import_map(tree: ast.Module, module_name: str) -> dict[str, str]:
    """Map local names to the fully qualified targets they import."""
    out: dict[str, str] = {}
    package = module_name.rpartition(".")[0]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    out[alias.asname] = alias.name
                else:
                    # ``import a.b.c`` binds the name ``a``.
                    head = alias.name.split(".")[0]
                    out[head] = head
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                # Resolve ``from .rng import x`` against this module's
                # package; one level strips nothing further, each extra
                # level strips one trailing component.
                anchor = package
                for _ in range(node.level - 1):
                    anchor = anchor.rpartition(".")[0]
                base = f"{anchor}.{base}" if base else anchor
            for alias in node.names:
                if alias.name == "*":
                    continue
                out[alias.asname or alias.name] = (
                    f"{base}.{alias.name}" if base else alias.name
                )
    return out


@dataclass
class ModuleInfo:
    """One parsed module plus the lookup tables the flow pass needs."""

    path: str
    name: str
    tree: ast.Module
    imports: dict[str, str] = field(default_factory=dict)
    #: qualname within the module (``fn`` or ``Class.fn``) -> definition.
    functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = field(
        default_factory=dict
    )
    classes: dict[str, ast.ClassDef] = field(default_factory=dict)

    @classmethod
    def build(cls, path: str, tree: ast.Module) -> "ModuleInfo":
        """Index one parsed module (imports, functions, classes)."""
        name = module_name_for_path(path)
        info = cls(path=path, name=name, tree=tree,
                   imports=_import_map(tree, name))
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.functions[node.name] = node
            elif isinstance(node, ast.ClassDef):
                info.classes[node.name] = node
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        info.functions[f"{node.name}.{item.name}"] = item
        return info

    def resolve(self, dotted: str) -> str:
        """Expand a local dotted name to its fully qualified form.

        ``np.random.default_rng`` resolves through the import map to
        ``numpy.random.default_rng``; a bare local function name resolves
        to ``<module>.<name>``; anything unknown comes back unchanged.
        """
        head, _, rest = dotted.partition(".")
        target = self.imports.get(head)
        if target is not None:
            return f"{target}.{rest}" if rest else target
        if head in self.functions and not rest:
            return f"{self.name}.{head}"
        return dotted


class Program:
    """The whole set of modules linted together, with generator summaries.

    Attributes
    ----------
    modules:
        Dotted module name -> :class:`ModuleInfo`.
    by_path:
        Path string (as given to the runner) -> :class:`ModuleInfo`.
    returns_generator / returns_generator_list:
        Fully-qualified callables whose return value is one ``Generator``
        / a list of generators — the base knowledge plus everything the
        fixpoint in :func:`compute_summaries` discovered in user code.
    """

    def __init__(self, modules: Iterable[ModuleInfo]) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.by_path: dict[str, ModuleInfo] = {}
        for info in modules:
            self.modules[info.name] = info
            self.by_path[info.path] = info
        self.returns_generator: set[str] = set(GEN_RETURNING_BASE)
        self.returns_generator_list: set[str] = set(GENLIST_RETURNING_BASE)
        #: flow.py's per-module analysis cache (path -> ModuleFlow).
        self.flow_cache: dict[str, object] = {}
        compute_summaries(self)

    @classmethod
    def from_sources(cls, sources: dict[str, tuple[ast.Module, str]]
                     ) -> "Program":
        """Build a program from ``{path: (tree, source)}``."""
        return cls(ModuleInfo.build(path, tree)
                   for path, (tree, _source) in sources.items())

    def module_for(self, path: str) -> ModuleInfo | None:
        """The indexed module for a runner path, if it was parsed."""
        return self.by_path.get(path)


def compute_summaries(program: Program, max_rounds: int = 5) -> None:
    """Fixpoint the generator-returning summaries over user functions.

    A function is *generator-returning* if any of its ``return``
    expressions types to GEN under the flow typer given the summaries so
    far (similarly for generator lists).  Rounds are bounded: summaries
    only grow, and call chains deeper than ``max_rounds`` through
    generator-returning helpers do not occur in practice.
    """
    # Imported here to break the import cycle (flow.py needs Program for
    # its expression typer).
    from repro.lint import flow

    for _ in range(max_rounds):
        changed = False
        for info in program.modules.values():
            for qualname, fndef in info.functions.items():
                full = f"{info.name}.{qualname}"
                if full in program.returns_generator and \
                        full in program.returns_generator_list:
                    continue
                kind = flow.infer_return_kind(program, info, fndef)
                if kind is flow.GEN and full not in program.returns_generator:
                    program.returns_generator.add(full)
                    changed = True
                elif kind is flow.GENLIST and \
                        full not in program.returns_generator_list:
                    program.returns_generator_list.add(full)
                    changed = True
        if not changed:
            break
