"""Determinism & invariant linter for the reproduction (rules R1-R9).

The paper's guarantees are only reproducible if every random bit flows
through the package's ``seed=``/``rng=`` convention and every engine
trial stays byte-deterministic.  This package enforces those properties
mechanically with a stdlib-``ast`` static analysis:

* :data:`~repro.lint.rules.RULES` — the rule registry: syntactic rules
  (R1 global-state randomness, R2 wall-clock reads, R3 engine-task
  purity, R4 seed/rng signature conformance, R5 order discipline) plus
  the interprocedural RNG-flow rules (R6 stream reuse, R7 generator
  escape, R8 process-boundary crossing, R9 draw-order hazard) computed
  by :mod:`repro.lint.flow` over a whole-program
  :class:`~repro.lint.callgraph.Program`;
* :func:`~repro.lint.runner.lint_paths` / ``lint_file`` /
  ``lint_source`` — the library entry points;
* ``repro-experiments lint``, ``repro-experiments rng-audit``, and
  ``repro-experiments race-audit`` — the CLIs (see
  :mod:`repro.lint.cli`).

The async-concurrency rules (R10 interleaving hazard, R11 blocking call
in the event loop, R12 lost task, R13 lock/queue discipline, R14
cross-task aliasing) are computed by :mod:`repro.lint.async_flow` over
the same whole-program index and registered alongside R1-R9.

The performance rules (R15 scalar loop over array substrate, R16
quadratic membership, R17 hot-loop allocation, R18 unbounded work path,
R19 redundant recompute) are computed by :mod:`repro.lint.perf_flow`
over the same index with hot-path reachability from the update entry
points; they are opt-in via ``repro-experiments perf-audit`` and
excluded from the default ``lint`` run.

Suppress a finding per line with ``# repro-lint: ignore[R4]`` (or bare
``ignore`` for all rules), or a whole file with
``# repro-lint: skip-file[R10]``.  See ``docs/LINTING.md`` for the
catalogue.
"""

from repro.lint.rules import (
    ASYNC_RULES,
    FLOW_RULES,
    PERF_RULES,
    RULES,
    Rule,
    RuleContext,
)
from repro.lint.runner import (
    discover_files,
    format_github,
    format_json,
    format_text,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.lint.violations import (
    Violation,
    collect_file_pragmas,
    collect_pragmas,
)

__all__ = [
    "ASYNC_RULES",
    "FLOW_RULES",
    "PERF_RULES",
    "RULES",
    "Rule",
    "RuleContext",
    "Violation",
    "collect_file_pragmas",
    "collect_pragmas",
    "discover_files",
    "format_github",
    "format_json",
    "format_text",
    "lint_file",
    "lint_paths",
    "lint_source",
]
