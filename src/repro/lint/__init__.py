"""Determinism & invariant linter for the reproduction (rules R1-R5).

The paper's guarantees are only reproducible if every random bit flows
through the package's ``seed=``/``rng=`` convention and every engine
trial stays byte-deterministic.  This package enforces those properties
mechanically with a stdlib-``ast`` static analysis:

* :data:`~repro.lint.rules.RULES` — the rule registry (R1 global-state
  randomness, R2 wall-clock reads, R3 engine-task purity, R4 seed/rng
  signature conformance, R5 order discipline);
* :func:`~repro.lint.runner.lint_paths` / ``lint_file`` /
  ``lint_source`` — the library entry points;
* ``repro-experiments lint`` — the CLI (see :mod:`repro.lint.cli`).

Suppress a finding per line with ``# repro-lint: ignore[R4]`` (or bare
``ignore`` for all rules).  See ``docs/LINTING.md`` for the catalogue.
"""

from repro.lint.rules import RULES, Rule, RuleContext
from repro.lint.runner import (
    discover_files,
    format_json,
    format_text,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.lint.violations import Violation, collect_pragmas

__all__ = [
    "RULES",
    "Rule",
    "RuleContext",
    "Violation",
    "collect_pragmas",
    "discover_files",
    "format_json",
    "format_text",
    "lint_file",
    "lint_paths",
    "lint_source",
]
