"""Determinism & invariant linter for the reproduction (rules R1-R9).

The paper's guarantees are only reproducible if every random bit flows
through the package's ``seed=``/``rng=`` convention and every engine
trial stays byte-deterministic.  This package enforces those properties
mechanically with a stdlib-``ast`` static analysis:

* :data:`~repro.lint.rules.RULES` — the rule registry: syntactic rules
  (R1 global-state randomness, R2 wall-clock reads, R3 engine-task
  purity, R4 seed/rng signature conformance, R5 order discipline) plus
  the interprocedural RNG-flow rules (R6 stream reuse, R7 generator
  escape, R8 process-boundary crossing, R9 draw-order hazard) computed
  by :mod:`repro.lint.flow` over a whole-program
  :class:`~repro.lint.callgraph.Program`;
* :func:`~repro.lint.runner.lint_paths` / ``lint_file`` /
  ``lint_source`` — the library entry points;
* ``repro-experiments lint`` and ``repro-experiments rng-audit`` — the
  CLIs (see :mod:`repro.lint.cli`).

Suppress a finding per line with ``# repro-lint: ignore[R4]`` (or bare
``ignore`` for all rules).  See ``docs/LINTING.md`` for the catalogue.
"""

from repro.lint.rules import FLOW_RULES, RULES, Rule, RuleContext
from repro.lint.runner import (
    discover_files,
    format_github,
    format_json,
    format_text,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.lint.violations import Violation, collect_pragmas

__all__ = [
    "FLOW_RULES",
    "RULES",
    "Rule",
    "RuleContext",
    "Violation",
    "collect_pragmas",
    "discover_files",
    "format_github",
    "format_json",
    "format_text",
    "lint_file",
    "lint_paths",
    "lint_source",
]
