"""Whole-program async-concurrency analysis (rules R10-R14).

The service package (PR 5) moved the reproduction from a library into a
long-running asyncio process, and its determinism anchor — one total
update order per session — is exactly the property that await-point
races destroy.  The post-review hardening of ``_handle_close`` caught
one real close/update race *by hand*; this module catches that class of
bug mechanically, the way :mod:`repro.lint.flow` catches RNG-stream
misuse.

The pass reuses the callgraph layer (:class:`~repro.lint.callgraph.
Program` / :class:`~repro.lint.callgraph.ModuleInfo`) and analyzes every
``async def`` in the program:

R10 — interleaving hazard
    Per shared location (an attribute of ``self``, of a parameter, or a
    module global), an abstract interpreter tracks the last access kind
    through the statement list, branching and merging like the flow
    pass.  A location whose *last* access before an ``await`` was a read
    becomes *armed*; a mutation while armed is the classic stale
    read-modify-write spanning a suspension point.  Re-reading after the
    await disarms; a write as the last pre-await access disarms; both
    accesses under the same ``async with`` lock disarm.  Self-method
    calls are summarized (which self attributes the callee reads/writes,
    to an intra-class fixpoint) so the hazard is visible across helpers
    like ``_session``.
R11 — blocking call in the event loop
    A program-wide fixpoint propagates "performs blocking I/O or sleep"
    through resolvable calls; any call site inside an ``async def``
    whose transitive target blocks (``time.sleep``, sync sockets,
    ``subprocess``, builtin ``open``/``input``) stalls every task on the
    loop.  ``while True`` loops whose body cannot suspend are flagged
    for the same reason.
R12 — lost task / lost exception
    A coroutine called and discarded as a bare expression statement
    never runs; ``create_task``/``ensure_future`` whose handle is
    neither stored, awaited, cancelled, nor given a done-callback loses
    the task's exception (and, under load, the task itself to the
    garbage collector).
R13 — lock-and-queue discipline
    Sync ``with lock:`` held across an await serializes the whole loop;
    an ``asyncio.Queue()`` without ``maxsize`` is an unbounded buffer
    that turns backpressure into memory growth; a future created but
    never resolved or handed off strands its awaiter.
R14 — cross-task aliasing
    A mutable object passed into two concurrently-live tasks (twice
    into ``create_task``/``gather``, or from outside a spawn loop) is
    shared state with no owner; bound-method receivers and
    lock/queue-typed arguments — the sanctioned sharing channels — are
    exempt.

Everything is stdlib-``ast``; the analysis never imports or runs the
code it inspects.  The runtime counterpart is
:mod:`repro.service.sanitizer` (``REPRO_ASYNC_SANITIZE=1``), which
perturbs and replays real interleavings that these rules reason about
statically.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.callgraph import ModuleInfo, Program
from repro.lint.violations import Violation

#: Rule codes computed by this pass, in report order.
ASYNC_CODES = ("R10", "R11", "R12", "R13", "R14")

#: Method names that mutate their receiver (container discipline); the
#: consuming-but-coordinating asyncio primitives (``get``, ``get_nowait``,
#: ``task_done``, ``acquire``/``release``, ``cancel``) are deliberately
#: absent — a single-consumer worker loop draining its own queue is the
#: sanctioned pattern, not a hazard.
_MUTATING_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend", "insert",
    "pop", "popitem", "put", "put_nowait", "remove", "reverse",
    "setdefault", "sort", "update",
})

#: Fully-qualified callables that block the event loop when called.
_BLOCKING_CALLS = frozenset({
    "time.sleep",
    "socket.socket", "socket.create_connection", "socket.getaddrinfo",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "os.system", "os.popen", "os.waitpid",
    "urllib.request.urlopen",
    "requests.get", "requests.post", "requests.put", "requests.delete",
    "requests.head", "requests.request",
    "open", "input",
})

#: Task-spawning callables (last dotted component).
_SPAWN_TAILS = frozenset({"create_task", "ensure_future"})

#: Constructors whose result is a lock-like synchronization primitive.
_LOCK_FACTORY_TAILS = frozenset({
    "Lock", "RLock", "Semaphore", "BoundedSemaphore", "Condition",
})

#: Name fragments that mark a variable/attribute as lock-like.
_LOCKISH_FRAGMENTS = ("lock", "sem", "mutex", "cond")

#: Queue constructors (unbounded-queue check + R14 exemption).
_QUEUE_FACTORY_TAILS = frozenset({"Queue", "LifoQueue", "PriorityQueue"})

#: Methods that resolve a future.
_FUTURE_RESOLVERS = frozenset({"set_result", "set_exception", "cancel"})


def _dotted(node: ast.AST) -> str | None:
    """Render a ``Name``/``Attribute`` chain as ``"a.b.c"``, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _is_lockish_name(dotted: str) -> bool:
    tail = dotted.rpartition(".")[2].lower()
    return any(fragment in tail for fragment in _LOCKISH_FRAGMENTS)


def _walk_own(fndef: ast.AST):
    """Walk a function body without descending into nested ``def``s.

    Nested functions are analyzed as frames of their own; counting their
    bodies into the enclosing frame would double-report and mis-scope.
    """
    stack: list[ast.AST] = list(ast.iter_child_nodes(fndef))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _contains_await(node: ast.AST) -> bool:
    return any(isinstance(sub, (ast.Await, ast.AsyncFor, ast.AsyncWith))
               for sub in _walk_own(node)) or isinstance(
                   node, (ast.Await, ast.AsyncFor, ast.AsyncWith))


# ====================================================================== #
# Shared-location access extraction (R10)                                #
# ====================================================================== #

Loc = tuple[str, str]  # (root name, first attribute)


def _attr_loc(expr: ast.AST, roots: frozenset[str],
              alias: dict[str, Loc]) -> Loc | None:
    """The tracked location an attribute chain refers to, if any.

    ``self.sessions[...]`` and ``self.sessions.pop`` both map to
    ``("self", "sessions")`` — one abstract cell per top-level attribute
    of a root.  Bare roots (``writer.write(...)``) are untracked: a root
    used only through its own methods is single-owner by construction
    here, and tracking it drowns the signal (every ``await
    writer.drain()`` would alias every ``writer.write``).
    """
    attrs: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        attrs.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    if node.id in alias and not attrs:
        return alias[node.id]
    if node.id in alias:
        return alias[node.id]
    if node.id in roots and attrs:
        return (node.id, attrs[-1])
    return None


@dataclass
class _Cell:
    """Merged abstract state of one shared location."""

    kinds: set[str] = field(default_factory=set)
    read_node: ast.AST | None = None
    read_lock: str | None = None
    armed: tuple[ast.AST, str | None] | None = None

    def copy(self) -> "_Cell":
        return _Cell(set(self.kinds), self.read_node, self.read_lock,
                     self.armed)


State = dict[Loc, _Cell]


def _copy_state(state: State) -> State:
    return {loc: cell.copy() for loc, cell in state.items()}


def _merge_states(*states: State) -> State:
    out: State = {}
    for state in states:
        for loc, cell in state.items():
            into = out.get(loc)
            if into is None:
                out[loc] = cell.copy()
                continue
            into.kinds |= cell.kinds
            if into.read_node is None:
                into.read_node = cell.read_node
                into.read_lock = cell.read_lock
            if into.armed is None:
                into.armed = cell.armed
    return out


@dataclass
class _Summary:
    """Which self attributes a method (transitively) reads and writes."""

    reads: set[str] = field(default_factory=set)
    writes: set[str] = field(default_factory=set)
    calls_self: set[str] = field(default_factory=set)


def _method_summary(fndef: ast.FunctionDef | ast.AsyncFunctionDef
                    ) -> _Summary:
    """Direct (non-transitive) self-attribute access sets of one method."""
    args = fndef.args.posonlyargs + fndef.args.args
    if not args:
        return _Summary()
    self_name = args[0].arg
    roots = frozenset({self_name})
    summary = _Summary()
    for node in _walk_own(fndef):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                if (isinstance(func.value, ast.Name)
                        and func.value.id == self_name):
                    summary.calls_self.add(func.attr)
                    continue
                loc = _attr_loc(func.value, roots, {})
                if loc is not None:
                    if func.attr in _MUTATING_METHODS:
                        summary.writes.add(loc[1])
                    else:
                        summary.reads.add(loc[1])
        elif isinstance(node, ast.Attribute):
            loc = _attr_loc(node, roots, {})
            if loc is None:
                continue
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                summary.writes.add(loc[1])
            else:
                summary.reads.add(loc[1])
        elif isinstance(node, (ast.Subscript,)):
            loc = _attr_loc(node.value, roots, {})
            if loc is not None and isinstance(node.ctx, (ast.Store, ast.Del)):
                summary.writes.add(loc[1])
        elif isinstance(node, ast.AugAssign):
            loc = _attr_loc(node.target, roots, {})
            if loc is not None:
                summary.reads.add(loc[1])
                summary.writes.add(loc[1])
    return summary


def _class_summaries(module: ModuleInfo) -> dict[str, dict[str, _Summary]]:
    """Per class: the self-access summary of every method, to a fixpoint.

    The fixpoint folds ``self._helper()`` call chains into the caller's
    sets, so ``_handle_close`` "reads ``sessions``" through
    ``_session`` even though the subscript lives two frames down.
    """
    out: dict[str, dict[str, _Summary]] = {}
    for class_name, classdef in module.classes.items():
        methods: dict[str, _Summary] = {}
        for item in classdef.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods[item.name] = _method_summary(item)
        for _ in range(len(methods) + 1):
            changed = False
            for summary in methods.values():
                for callee in summary.calls_self:
                    target = methods.get(callee)
                    if target is None:
                        continue
                    if not (target.reads <= summary.reads
                            and target.writes <= summary.writes):
                        summary.reads |= target.reads
                        summary.writes |= target.writes
                        changed = True
            if not changed:
                break
        out[class_name] = methods
    return out


class _InterleaveScan:
    """The R10 abstract interpreter for one ``async def`` frame."""

    def __init__(self, path: str, fndef: ast.AsyncFunctionDef,
                 summaries: dict[str, _Summary] | None) -> None:
        self.path = path
        self.fndef = fndef
        params = [a.arg for a in (fndef.args.posonlyargs + fndef.args.args
                                  + fndef.args.kwonlyargs)]
        self.roots = frozenset(params)
        self.self_name = params[0] if params and summaries else None
        self.summaries = summaries or {}
        self.alias: dict[str, Loc] = {}
        self.lock: str | None = None
        self.violations: list[Violation] = []
        self._emitted: set[tuple[Loc, int]] = set()

    # -- events --------------------------------------------------------- #
    def _read(self, state: State, loc: Loc, node: ast.AST) -> None:
        cell = state.setdefault(loc, _Cell())
        cell.kinds = {"read"}
        cell.read_node = node
        cell.read_lock = self.lock
        cell.armed = None

    def _write(self, state: State, loc: Loc, node: ast.AST) -> None:
        cell = state.setdefault(loc, _Cell())
        if cell.armed is not None:
            read_node, read_lock = cell.armed
            same_lock = (read_lock is not None and read_lock == self.lock)
            key = (loc, node.lineno)
            if not same_lock and key not in self._emitted:
                self._emitted.add(key)
                root, attr = loc
                read_line = getattr(read_node, "lineno", node.lineno)
                self.violations.append(Violation(
                    self.path, node.lineno, node.col_offset, "R10",
                    f"`{root}.{attr}` is read (line {read_line}) and "
                    "mutated after an intervening await with no common "
                    "lock; another task can interleave at the suspension "
                    "point — re-check state after awaiting, mutate before "
                    "the await, or hold one `async with` lock across both "
                    "accesses",
                ))
        cell.kinds = {"write"}
        cell.armed = None

    def _await_event(self, state: State) -> None:
        for cell in state.values():
            if "read" in cell.kinds and cell.armed is None:
                cell.armed = (cell.read_node, cell.read_lock)

    # -- expression scanning -------------------------------------------- #
    def _apply_summary(self, state: State, method: str,
                       node: ast.AST) -> None:
        summary = self.summaries.get(method)
        if summary is None:
            return
        for attr in sorted(summary.reads):
            self._read(state, (self.self_name, attr), node)
        for attr in sorted(summary.writes):
            self._write(state, (self.self_name, attr), node)

    def _scan_expr(self, state: State, node: ast.AST | None) -> None:
        if node is None or isinstance(node, (ast.FunctionDef,
                                             ast.AsyncFunctionDef,
                                             ast.Lambda)):
            return
        if isinstance(node, ast.Call):
            func = node.func
            for arg in node.args:
                self._scan_expr(state, arg)
            for keyword in node.keywords:
                self._scan_expr(state, keyword.value)
            if isinstance(func, ast.Attribute):
                if (self.self_name is not None
                        and isinstance(func.value, ast.Name)
                        and func.value.id == self.self_name
                        and func.attr in self.summaries):
                    self._apply_summary(state, func.attr, node)
                    return
                loc = _attr_loc(func.value, self.roots, self.alias)
                if loc is not None:
                    if func.attr in _MUTATING_METHODS:
                        self._write(state, loc, node)
                    else:
                        self._read(state, loc, func)
                    return
                self._scan_expr(state, func.value)
            return
        if isinstance(node, ast.Attribute):
            loc = _attr_loc(node, self.roots, self.alias)
            if loc is not None:
                if isinstance(node.ctx, (ast.Store, ast.Del)):
                    self._write(state, loc, node)
                else:
                    self._read(state, loc, node)
                return
            self._scan_expr(state, node.value)
            return
        if isinstance(node, ast.Subscript):
            loc = _attr_loc(node.value, self.roots, self.alias)
            if loc is not None:
                if isinstance(node.ctx, (ast.Store, ast.Del)):
                    self._write(state, loc, node)
                else:
                    self._read(state, loc, node)
            else:
                self._scan_expr(state, node.value)
            self._scan_expr(state, node.slice)
            return
        for child in ast.iter_child_nodes(node):
            self._scan_expr(state, child)

    def _scan_target(self, state: State, target: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._scan_target(state, element)
            return
        if isinstance(target, ast.Starred):
            self._scan_target(state, target.value)
            return
        if isinstance(target, ast.Attribute):
            loc = _attr_loc(target, self.roots, self.alias)
            if loc is not None:
                self._write(state, loc, target)
            else:
                self._scan_expr(state, target.value)
            return
        if isinstance(target, ast.Subscript):
            loc = _attr_loc(target.value, self.roots, self.alias)
            if loc is not None:
                self._write(state, loc, target)
            else:
                self._scan_expr(state, target.value)
            self._scan_expr(state, target.slice)

    def _maybe_await(self, state: State, *exprs: ast.AST | None) -> None:
        for expr in exprs:
            if expr is not None and any(
                isinstance(sub, ast.Await)
                for sub in ast.walk(expr)
            ):
                self._await_event(state)
                return

    # -- statement walking ---------------------------------------------- #
    def run(self) -> list[Violation]:
        self._run_block(self.fndef.body, {})
        return self.violations

    def _run_block(self, stmts: list[ast.stmt],
                   state: State) -> tuple[State, bool]:
        for index, stmt in enumerate(stmts):
            state, terminated = self._run_stmt(state, stmt)
            if terminated:
                return state, True
        return state, False

    def _run_stmt(self, state: State,
                  stmt: ast.stmt) -> tuple[State, bool]:
        if isinstance(stmt, ast.Assign):
            self._scan_expr(state, stmt.value)
            self._maybe_await(state, stmt.value)
            for target in stmt.targets:
                self._scan_target(state, target)
            if len(stmt.targets) == 1 and isinstance(stmt.targets[0],
                                                     ast.Name):
                name = stmt.targets[0].id
                loc = _attr_loc(stmt.value, self.roots, self.alias)
                if loc is not None and isinstance(stmt.value, ast.Attribute):
                    self.alias[name] = loc
                else:
                    self.alias.pop(name, None)
            return state, False
        if isinstance(stmt, ast.AnnAssign):
            self._scan_expr(state, stmt.value)
            self._maybe_await(state, stmt.value)
            if stmt.value is not None:
                self._scan_target(state, stmt.target)
            return state, False
        if isinstance(stmt, ast.AugAssign):
            self._scan_expr(state, stmt.value)
            loc = _attr_loc(stmt.target, self.roots, self.alias)
            if loc is None and isinstance(stmt.target, ast.Subscript):
                loc = _attr_loc(stmt.target.value, self.roots, self.alias)
            self._maybe_await(state, stmt.value)
            if loc is not None:
                self._read(state, loc, stmt.target)
                self._write(state, loc, stmt.target)
            return state, False
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._scan_target(state, target)
            return state, False
        if isinstance(stmt, (ast.Expr, ast.Assert)):
            value = stmt.value if isinstance(stmt, ast.Expr) else stmt.test
            self._scan_expr(state, value)
            self._maybe_await(state, value)
            return state, False
        if isinstance(stmt, ast.Return):
            self._scan_expr(state, stmt.value)
            self._maybe_await(state, stmt.value)
            return state, True
        if isinstance(stmt, ast.Raise):
            self._scan_expr(state, stmt.exc)
            return state, True
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return state, True
        if isinstance(stmt, ast.If):
            self._scan_expr(state, stmt.test)
            self._maybe_await(state, stmt.test)
            body_state, body_term = self._run_block(stmt.body,
                                                    _copy_state(state))
            else_state, else_term = self._run_block(stmt.orelse,
                                                    _copy_state(state))
            if body_term and else_term:
                return state, True
            if body_term:
                return else_state, False
            if else_term:
                return body_state, False
            return _merge_states(body_state, else_state), False
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_expr(state, stmt.iter)
            if isinstance(stmt, ast.AsyncFor):
                self._await_event(state)
            else:
                self._maybe_await(state, stmt.iter)
            if isinstance(stmt.target, ast.Name):
                self.alias.pop(stmt.target.id, None)
            once, _ = self._run_block(stmt.body, _copy_state(state))
            if isinstance(stmt, ast.AsyncFor):
                self._await_event(once)
            twice, _ = self._run_block(stmt.body, _copy_state(once))
            merged = _merge_states(state, once, twice)
            merged, _ = self._run_block(stmt.orelse, merged)
            return merged, False
        if isinstance(stmt, ast.While):
            self._scan_expr(state, stmt.test)
            self._maybe_await(state, stmt.test)
            once, _ = self._run_block(stmt.body, _copy_state(state))
            self._scan_expr(once, stmt.test)
            twice, _ = self._run_block(stmt.body, _copy_state(once))
            merged = _merge_states(state, once, twice)
            merged, _ = self._run_block(stmt.orelse, merged)
            return merged, False
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            lock_tag: str | None = None
            for item in stmt.items:
                self._scan_expr(state, item.context_expr)
                name = _dotted(item.context_expr)
                if (isinstance(stmt, ast.AsyncWith) and name is not None
                        and _is_lockish_name(name)):
                    lock_tag = name
            if isinstance(stmt, ast.AsyncWith):
                self._await_event(state)
            previous = self.lock
            if lock_tag is not None:
                self.lock = lock_tag
            state, terminated = self._run_block(stmt.body, state)
            self.lock = previous
            if isinstance(stmt, ast.AsyncWith):
                self._await_event(state)
            return state, terminated
        if isinstance(stmt, ast.Try):
            body_state, body_term = self._run_block(stmt.body,
                                                    _copy_state(state))
            entry = _merge_states(state, body_state)
            branches: list[State] = [] if body_term else [body_state]
            for handler in stmt.handlers:
                handler_state, handler_term = self._run_block(
                    handler.body, _copy_state(entry))
                if not handler_term:
                    branches.append(handler_state)
            if stmt.orelse and not body_term:
                else_state, else_term = self._run_block(
                    stmt.orelse, _copy_state(body_state))
                branches = [b for b in branches if b is not body_state]
                if not else_term:
                    branches.append(else_state)
            terminated = not branches
            merged = _merge_states(*branches) if branches else entry
            if stmt.finalbody:
                merged, final_term = self._run_block(stmt.finalbody, merged)
                terminated = terminated or final_term
            return merged, terminated
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return state, False
        # Remaining simple statements (Pass, Import, Global, Nonlocal...).
        return state, False


# ====================================================================== #
# R11 — blocking reachability                                            #
# ====================================================================== #

def _callee_full_names(program: Program, module: ModuleInfo,
                       class_name: str | None, call: ast.Call
                       ) -> list[str]:
    """Fully-qualified program functions a call site may enter."""
    dotted = _dotted(call.func)
    if dotted is None:
        return []
    head, _, rest = dotted.partition(".")
    if (class_name is not None and head == "self" and rest
            and "." not in rest):
        qualname = f"{class_name}.{rest}"
        if qualname in module.functions:
            return [f"{module.name}.{qualname}"]
        return []
    resolved = module.resolve(dotted)
    out = []
    if resolved in _full_function_index(program):
        out.append(resolved)
    # A resolved class name means a constructor call: enter __init__.
    init = f"{resolved}.__init__"
    if init in _full_function_index(program):
        out.append(init)
    return out


def _full_function_index(program: Program) -> dict[str, tuple[ModuleInfo,
                                                              ast.AST]]:
    index = getattr(program, "_async_fn_index", None)
    if index is None:
        index = {}
        for info in program.modules.values():
            for qualname, fndef in info.functions.items():
                index[f"{info.name}.{qualname}"] = (info, fndef)
        program._async_fn_index = index
    return index


def _blocking_map(program: Program) -> dict[str, tuple[str, str | None]]:
    """Fixpoint map: function full name -> (blocking op, via callee).

    ``via`` is ``None`` for a direct call, else the full name of the
    callee the blocking op is reached through (one hop recorded, enough
    for an actionable message).
    """
    cached = getattr(program, "_async_blocking_map", None)
    if cached is not None:
        return cached
    index = _full_function_index(program)
    blocking: dict[str, tuple[str, str | None]] = {}
    # Seed: direct blocking calls.
    for full, (info, fndef) in index.items():
        class_name = full[len(info.name) + 1:].rpartition(".")[0] or None
        for node in _walk_own(fndef):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            resolved = info.resolve(dotted)
            if resolved in _BLOCKING_CALLS or dotted in _BLOCKING_CALLS:
                blocking.setdefault(full, (resolved, None))
    # Propagate through resolvable calls, bounded like compute_summaries.
    for _ in range(5):
        changed = False
        for full, (info, fndef) in index.items():
            if full in blocking:
                continue
            class_name = full[len(info.name) + 1:].rpartition(".")[0] or None
            for node in _walk_own(fndef):
                if not isinstance(node, ast.Call):
                    continue
                for callee in _callee_full_names(program, info, class_name,
                                                 node):
                    if callee in blocking and callee != full:
                        blocking[full] = (blocking[callee][0], callee)
                        changed = True
                        break
                if full in blocking:
                    break
        if not changed:
            break
    program._async_blocking_map = blocking
    return blocking


def _check_r11(path: str, program: Program, module: ModuleInfo,
               class_name: str | None,
               fndef: ast.AsyncFunctionDef) -> list[Violation]:
    out: list[Violation] = []
    blocking = _blocking_map(program)
    for node in _walk_own(fndef):
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            resolved = module.resolve(dotted)
            if resolved in _BLOCKING_CALLS or dotted in _BLOCKING_CALLS:
                op = resolved if resolved in _BLOCKING_CALLS else dotted
                out.append(Violation(
                    path, node.lineno, node.col_offset, "R11",
                    f"blocking `{op}()` inside async `{fndef.name}` stalls "
                    "the whole event loop; use the asyncio equivalent or "
                    "run_in_executor",
                ))
                continue
            for callee in _callee_full_names(program, module, class_name,
                                             node):
                found = blocking.get(callee)
                if found is not None:
                    op, _via = found
                    short = callee.rpartition(".")[2]
                    out.append(Violation(
                        path, node.lineno, node.col_offset, "R11",
                        f"call to `{short}` reaches blocking `{op}()` from "
                        f"async `{fndef.name}`; the event loop stalls for "
                        "its full duration — use the asyncio equivalent or "
                        "run_in_executor",
                    ))
                    break
        elif isinstance(node, ast.While):
            test = node.test
            is_const_true = (isinstance(test, ast.Constant)
                             and bool(test.value))
            if is_const_true and not _contains_await(node):
                out.append(Violation(
                    path, node.lineno, node.col_offset, "R11",
                    f"`while True` without an await inside async "
                    f"`{fndef.name}` can spin forever without yielding; "
                    "await inside the loop or move the work off the loop",
                ))
    return out


# ====================================================================== #
# R12 — lost task / lost exception                                       #
# ====================================================================== #

def _async_function_index(program: Program) -> set[str]:
    index = getattr(program, "_async_def_index", None)
    if index is None:
        index = {
            full
            for full, (_info, fndef) in _full_function_index(program).items()
            if isinstance(fndef, ast.AsyncFunctionDef)
        }
        program._async_def_index = index
    return index


def _check_r12(path: str, program: Program, module: ModuleInfo,
               class_name: str | None,
               fndef: ast.AsyncFunctionDef) -> list[Violation]:
    out: list[Violation] = []
    async_defs = _async_function_index(program)
    for node in _walk_own(fndef):
        if not isinstance(node, ast.Expr) or not isinstance(node.value,
                                                            ast.Call):
            continue
        call = node.value
        dotted = _dotted(call.func)
        if dotted is None:
            continue
        tail = dotted.rpartition(".")[2]
        if tail in _SPAWN_TAILS:
            out.append(Violation(
                path, node.lineno, node.col_offset, "R12",
                f"`{tail}` handle is dropped; keep a reference and await "
                "or cancel it (or add_done_callback) so the task cannot "
                "be garbage-collected and its exception cannot vanish",
            ))
            continue
        for callee in _callee_full_names(program, module, class_name, call):
            if callee in async_defs:
                short = callee.rpartition(".")[2]
                out.append(Violation(
                    path, node.lineno, node.col_offset, "R12",
                    f"coroutine `{short}(...)` is never awaited; the call "
                    "builds a coroutine object and discards it — nothing "
                    "runs and exceptions are lost",
                ))
                break
    # create_task assigned to a name that is then never used.
    for node in _walk_own(fndef):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)):
            continue
        dotted = _dotted(node.value.func)
        if dotted is None or dotted.rpartition(".")[2] not in _SPAWN_TAILS:
            continue
        name = node.targets[0].id
        in_assign = {id(sub) for sub in ast.walk(node)}
        used = any(
            isinstance(sub, ast.Name) and sub.id == name
            and isinstance(sub.ctx, ast.Load) and id(sub) not in in_assign
            for sub in _walk_own(fndef)
        )
        if not used:
            out.append(Violation(
                path, node.lineno, node.col_offset, "R12",
                f"task handle `{name}` is never awaited, cancelled, or "
                "given a done-callback; its exception is silently lost",
            ))
    return out


# ====================================================================== #
# R13 — lock-and-queue discipline                                        #
# ====================================================================== #

def _lock_aliases(scope: ast.AST) -> set[str]:
    """Names bound to lock-like constructor calls within ``scope``."""
    out: set[str] = set()
    for node in ast.walk(scope):
        if (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)):
            dotted = _dotted(node.value.func)
            if dotted is not None and \
                    dotted.rpartition(".")[2] in _LOCK_FACTORY_TAILS:
                out.add(node.targets[0].id)
    return out


def _queue_aliases(scope: ast.AST) -> set[str]:
    """Names bound to asyncio queue constructor calls within ``scope``."""
    out: set[str] = set()
    for node in ast.walk(scope):
        if (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)):
            dotted = _dotted(node.value.func)
            if dotted is not None and \
                    dotted.rpartition(".")[2] in _QUEUE_FACTORY_TAILS:
                out.add(node.targets[0].id)
    return out


def _is_lockish_expr(expr: ast.AST, aliases: set[str]) -> bool:
    dotted = _dotted(expr)
    if dotted is None:
        return False
    head = dotted.partition(".")[0]
    return _is_lockish_name(dotted) or dotted in aliases or head in aliases


def _check_r13_module(path: str, module: ModuleInfo) -> list[Violation]:
    """Module-wide R13 checks (queue bounds, stranded futures)."""
    out: list[Violation] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted is None:
            continue
        head, _, tail = dotted.rpartition(".")
        if tail in _QUEUE_FACTORY_TAILS and head in {"asyncio", "", "queues",
                                                     "asyncio.queues"}:
            # ``queue.Queue`` (threading) has different discipline; only
            # the asyncio constructors are judged here.
            resolved = module.resolve(dotted)
            if not resolved.startswith("asyncio"):
                continue
            maxsize = None
            if node.args:
                maxsize = node.args[0]
            for keyword in node.keywords:
                if keyword.arg == "maxsize":
                    maxsize = keyword.value
            unbounded = maxsize is None or (
                isinstance(maxsize, ast.Constant) and maxsize.value == 0
            )
            if unbounded:
                out.append(Violation(
                    path, node.lineno, node.col_offset, "R13",
                    f"unbounded `{dotted}()`; give it a maxsize so a slow "
                    "consumer surfaces as backpressure instead of "
                    "unbounded memory growth",
                ))
    # Stranded futures: created, awaited maybe, but never resolved or
    # handed to anything that could resolve it.
    for qualname, fndef in module.functions.items():
        out.extend(_check_r13_futures(path, fndef))
    return out


def _check_r13_futures(path: str, fndef: ast.AST) -> list[Violation]:
    out: list[Violation] = []
    for node in _walk_own(fndef):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)):
            continue
        func = node.value.func
        # ``loop.create_future()`` chains through a call
        # (``get_running_loop().create_future()``), so judge by the
        # final attribute, not a resolvable dotted name.
        if isinstance(func, ast.Attribute):
            tail = func.attr
        else:
            dotted = _dotted(func)
            tail = dotted.rpartition(".")[2] if dotted else ""
        if tail not in {"create_future", "Future"}:
            continue
        name = node.targets[0].id
        in_assign = {id(sub) for sub in ast.walk(node)}
        # ``await fut`` consumes the future without resolving it; those
        # Name occurrences must not count as a hand-off.
        awaiting = {
            id(sub.value) for sub in _walk_own(fndef)
            if isinstance(sub, ast.Await) and isinstance(sub.value, ast.Name)
        }

        def mentions(tree: ast.AST) -> bool:
            return any(
                isinstance(inner, ast.Name) and inner.id == name
                and id(inner) not in awaiting
                for inner in ast.walk(tree)
            )

        resolved = False
        escaped = False
        for sub in _walk_own(fndef):
            if isinstance(sub, ast.Call):
                if (isinstance(sub.func, ast.Attribute)
                        and isinstance(sub.func.value, ast.Name)
                        and sub.func.value.id == name
                        and sub.func.attr in _FUTURE_RESOLVERS):
                    resolved = True
                for arg in list(sub.args) + [k.value for k in sub.keywords]:
                    if mentions(arg):
                        escaped = True
            elif isinstance(sub, (ast.Return, ast.Yield)):
                if sub.value is not None and mentions(sub.value):
                    escaped = True
            elif (isinstance(sub, ast.Assign) and id(sub) not in in_assign
                  and mentions(sub.value)):
                escaped = True
        if not resolved and not escaped:
            out.append(Violation(
                path, node.lineno, node.col_offset, "R13",
                f"future `{name}` is never resolved (set_result/"
                "set_exception/cancel) nor handed off; anything awaiting "
                "it hangs forever",
            ))
    return out


def _check_r13(path: str, module: ModuleInfo, class_name: str | None,
               fndef: ast.AsyncFunctionDef,
               module_locks: set[str]) -> list[Violation]:
    out: list[Violation] = []
    aliases = module_locks | _lock_aliases(fndef)
    for node in _walk_own(fndef):
        if isinstance(node, ast.With):
            held = [item for item in node.items
                    if _is_lockish_expr(item.context_expr, aliases)]
            if held and _contains_await(node):
                name = _dotted(held[0].context_expr) or "lock"
                out.append(Violation(
                    path, node.lineno, node.col_offset, "R13",
                    f"sync `with {name}:` held across an await blocks "
                    "every other task on the loop; use `async with` on an "
                    "asyncio lock",
                ))
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute) and func.attr == "acquire"
                    and _is_lockish_expr(func.value, aliases)):
                awaited = any(
                    isinstance(sub, ast.Await)
                    and isinstance(sub.value, ast.Call)
                    and sub.value is node
                    for sub in _walk_own(fndef)
                )
                if not awaited:
                    name = _dotted(func.value) or "lock"
                    out.append(Violation(
                        path, node.lineno, node.col_offset, "R13",
                        f"`{name}.acquire()` without await in an async "
                        "function; use `async with {0}:` (or await the "
                        "acquire) so the loop is never blocked".format(name),
                    ))
    return out


# ====================================================================== #
# R14 — cross-task aliasing                                              #
# ====================================================================== #

def _spawn_payload_roots(expr: ast.AST, skip: set[str]) -> set[str]:
    """Shared roots of a spawned coroutine expression.

    Bound-method receivers (``service._respond(line)`` — the receiver is
    the *owner* running the task) and comprehension targets are
    excluded; what remains are plain names and ``self.attr`` chains that
    the new task would alias with its siblings.
    """
    roots: set[str] = set()

    def visit(node: ast.AST, comp_targets: frozenset[str]) -> None:
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                pass  # the callee name is not a payload
            elif isinstance(func, ast.Attribute):
                # Skip the receiver chain entirely; a bound method's
                # self is not "escaping" into the task.
                if not isinstance(func.value, (ast.Name, ast.Attribute)):
                    visit(func.value, comp_targets)
            else:
                visit(func, comp_targets)
            for arg in node.args:
                visit(arg, comp_targets)
            for keyword in node.keywords:
                visit(keyword.value, comp_targets)
            return
        if isinstance(node, ast.Attribute):
            dotted = _dotted(node)
            if dotted is not None:
                head, _, rest = dotted.partition(".")
                if head == "self" and rest:
                    roots.add(f"self.{rest.partition('.')[0]}")
                return
            visit(node.value, comp_targets)
            return
        if isinstance(node, ast.Name):
            if node.id not in skip and node.id not in comp_targets:
                roots.add(node.id)
            return
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            targets = set(comp_targets)
            for gen in node.generators:
                for sub in ast.walk(gen.target):
                    if isinstance(sub, ast.Name):
                        targets.add(sub.id)
                visit(gen.iter, frozenset(targets))
            if isinstance(node, ast.DictComp):
                visit(node.key, frozenset(targets))
                visit(node.value, frozenset(targets))
            else:
                visit(node.elt, frozenset(targets))
            return
        if isinstance(node, ast.Starred):
            visit(node.value, comp_targets)
            return
        for child in ast.iter_child_nodes(node):
            visit(child, comp_targets)

    visit(expr, frozenset())
    return roots


def _parent_map(fndef: ast.AST) -> dict[int, ast.AST]:
    parents: dict[int, ast.AST] = {}
    for node in _walk_own(fndef):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def _loop_fresh_names(loop: ast.For | ast.While | ast.AsyncFor) -> set[str]:
    fresh: set[str] = set()
    if isinstance(loop, (ast.For, ast.AsyncFor)):
        for sub in ast.walk(loop.target):
            if isinstance(sub, ast.Name):
                fresh.add(sub.id)
    for stmt in loop.body:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
                fresh.add(sub.id)
    return fresh


def _check_r14(path: str, module: ModuleInfo, class_name: str | None,
               fndef: ast.AsyncFunctionDef,
               module_locks: set[str]) -> list[Violation]:
    skip = (module_locks | _lock_aliases(fndef) | _queue_aliases(fndef))
    parents = _parent_map(fndef)
    out: list[Violation] = []
    # root -> the payload expression that first carried it (two args of
    # one gather are distinct payloads, so each is its own spawn site).
    seen_roots: dict[str, ast.AST] = {}
    for node in _walk_own(fndef):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted is None:
            continue
        tail = dotted.rpartition(".")[2]
        if tail in _SPAWN_TAILS:
            payloads = node.args[:1]
        elif tail == "gather":
            payloads = list(node.args)
        else:
            continue
        in_loop_spawn = tail in _SPAWN_TAILS
        loop_fresh: set[str] | None = None
        if in_loop_spawn:
            cursor = parents.get(id(node))
            while cursor is not None:
                if isinstance(cursor, (ast.For, ast.While, ast.AsyncFor)):
                    names = _loop_fresh_names(cursor)
                    loop_fresh = (names if loop_fresh is None
                                  else loop_fresh & names)
                cursor = parents.get(id(cursor))
        for payload in payloads:
            roots = _spawn_payload_roots(payload, skip)
            for root in sorted(roots):
                previous = seen_roots.get(root)
                if previous is not None and previous is not payload:
                    out.append(Violation(
                        path, node.lineno, node.col_offset, "R14",
                        f"mutable `{root}` escapes into a second "
                        "concurrently-live task; give each task its own "
                        "copy or route sharing through a queue/lock",
                    ))
                elif loop_fresh is not None and root not in loop_fresh:
                    out.append(Violation(
                        path, node.lineno, node.col_offset, "R14",
                        f"task spawned in a loop captures `{root}` from "
                        "outside the loop; every iteration's task aliases "
                        "the same object — pass per-iteration state or "
                        "use a queue",
                    ))
                seen_roots.setdefault(root, payload)
    return out


# ====================================================================== #
# Entry points                                                           #
# ====================================================================== #

def _async_frames(module: ModuleInfo):
    """Yield ``(class_name, fndef)`` for every async def in the module.

    Nested async defs (connection writer loops, test scenarios) are
    frames of their own; the enclosing class is attached only for direct
    methods, where ``self`` summaries are meaningful.
    """
    method_ids = {
        id(fndef): qualname.rpartition(".")[0] or None
        for qualname, fndef in module.functions.items()
    }
    for node in ast.walk(module.tree):
        if isinstance(node, ast.AsyncFunctionDef):
            yield method_ids.get(id(node)), node


def analyze_module(program: Program,
                   module: ModuleInfo) -> dict[str, list[Violation]]:
    """All R10-R14 findings for one module, keyed by rule code."""
    path = module.path
    out: dict[str, list[Violation]] = {code: [] for code in ASYNC_CODES}
    has_async = any(isinstance(node, ast.AsyncFunctionDef)
                    for node in ast.walk(module.tree))
    summaries = _class_summaries(module) if has_async else {}
    module_locks = _lock_aliases(module.tree)
    if has_async:
        out["R13"].extend(_check_r13_module(path, module))
    for class_name, fndef in _async_frames(module):
        class_summaries = summaries.get(class_name) if class_name else None
        out["R10"].extend(
            _InterleaveScan(path, fndef, class_summaries).run())
        out["R11"].extend(
            _check_r11(path, program, module, class_name, fndef))
        out["R12"].extend(
            _check_r12(path, program, module, class_name, fndef))
        out["R13"].extend(
            _check_r13(path, module, class_name, fndef, module_locks))
        out["R14"].extend(
            _check_r14(path, module, class_name, fndef, module_locks))
    return out


def violations_for(ctx, code: str) -> list[Violation]:
    """Findings of one async rule for a runner ``RuleContext``.

    Mirrors :func:`repro.lint.flow.violations_for`: the module analysis
    runs once and is cached on the program (under a tuple key, so it
    cannot collide with the RNG-flow cache's path keys), and a context
    without a program gets a private single-module one.
    """
    program = ctx.program
    if program is None:
        program = Program.from_sources({ctx.path: (ctx.tree, ctx.source)})
    module = program.module_for(ctx.path)
    if module is None:
        module = ModuleInfo.build(ctx.path, ctx.tree)
        program.by_path[ctx.path] = module
        program.modules.setdefault(module.name, module)
    key = ("async", ctx.path)
    cached = program.flow_cache.get(key)
    if cached is None:
        cached = analyze_module(program, module)
        program.flow_cache[key] = cached
    return cached[code]
