"""Massively parallel computation (MPC) application of the sparsifier.

Section 3's opening also names "the massively parallel computation (MPC)
model (an abstraction of MapReduce-style frameworks, cf. [4, 31])" as a
setting where the sparsifier applies.  This package provides an MPC
simulator with per-machine memory enforcement and an O(1)-round
(1+ε)-matching algorithm for bounded-β graphs: shuffle edges by
endpoint, sample Δ per vertex locally, gather the O(n·Δ)-edge sparsifier
onto one machine (it fits precisely *because* of the sparsifier's size
bound, while the input graph does not), and match there.
"""

from repro.mpc.simulator import MPCSimulator, MachineOverflowError
from repro.mpc.matching import MPCResult, mpc_approx_matching

__all__ = [
    "MPCResult",
    "MPCSimulator",
    "MachineOverflowError",
    "mpc_approx_matching",
]
