"""A minimal MPC (MapReduce-style) round simulator.

Model (cf. [4, 31]): M machines, each with a local memory of S words; the
input is partitioned arbitrarily across machines; computation proceeds
in synchronous rounds, and between rounds machines exchange messages,
subject to every machine's *incoming data plus retained state* fitting
in S.  Complexity = number of rounds, with per-round load tracked.

The simulator executes rounds as Python callables over machine-local
state and **enforces the memory cap**: any machine whose state exceeds
its word budget raises :class:`MachineOverflowError`.  This is what
makes the E14 experiment meaningful — the raw graph genuinely cannot be
centralized, the sparsifier can.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable


class MachineOverflowError(RuntimeError):
    """A machine's local state exceeded its memory budget."""


def _words(state: Any) -> int:
    """Approximate word size of machine state: counts scalars/pairs."""
    if state is None:
        return 0
    if isinstance(state, (int, float, str)):
        return 1
    if isinstance(state, tuple):
        return len(state)
    if isinstance(state, (list, set, frozenset)):
        return sum(_words(item) for item in state)
    if isinstance(state, dict):
        return sum(1 + _words(v) for v in state.values())
    return 1


@dataclass
class MPCSimulator:
    """M machines with S-word memories, executing synchronous rounds.

    Attributes
    ----------
    num_machines:
        M.
    memory_per_machine:
        S, in words (an edge costs 2 words).
    rounds_executed:
        Total rounds run so far.
    max_load_seen:
        Largest machine state observed at any round boundary.
    """

    num_machines: int
    memory_per_machine: int
    rounds_executed: int = 0
    max_load_seen: int = 0
    _states: list[Any] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_machines < 1:
            raise ValueError("need at least one machine")
        if self.memory_per_machine < 1:
            raise ValueError("memory budget must be positive")
        self._states = [None] * self.num_machines

    # ------------------------------------------------------------------ #
    def load(self, machine: int, state: Any) -> None:
        """Install a machine's initial state (the input partition)."""
        self._check(machine, state)
        self._states[machine] = state

    def state(self, machine: int) -> Any:
        """Read a machine's current state."""
        return self._states[machine]

    def _check(self, machine: int, state: Any) -> None:
        size = _words(state)
        self.max_load_seen = max(self.max_load_seen, size)
        if size > self.memory_per_machine:
            raise MachineOverflowError(
                f"machine {machine} holds {size} words "
                f"> budget {self.memory_per_machine}"
            )

    # ------------------------------------------------------------------ #
    def round(
        self,
        compute: Callable[[int, Any], list[tuple[int, Any]]],
    ) -> None:
        """Execute one synchronous round.

        ``compute(machine_id, state)`` returns a list of
        ``(destination_machine, message)`` pairs; the new state of each
        machine is the list of messages it received.  Memory is checked
        on every post-round state.
        """
        outboxes: list[list[Any]] = [[] for _ in range(self.num_machines)]
        for m in range(self.num_machines):
            for dst, message in compute(m, self._states[m]):
                if not 0 <= dst < self.num_machines:
                    raise ValueError(f"message to unknown machine {dst}")
                outboxes[dst].append(message)
        for m in range(self.num_machines):
            self._check(m, outboxes[m])
            self._states[m] = outboxes[m]
        self.rounds_executed += 1
