"""O(1)-round MPC (1+ε)-approximate matching for bounded-β graphs.

Protocol (three rounds on top of the input partition):

1. **Shuffle by endpoint** — each machine routes every edge (u, v) it
   holds to the machines owning u and v (vertices are range-partitioned).
   After the round, machine k holds the full adjacency of its vertices.
2. **Local sampling** — each machine marks Δ random incident edges per
   owned vertex (exactly G_Δ's marking; per-vertex RNGs keep
   Observation 2.9's independence) and routes the marks to the
   coordinator (machine 0).
3. **Coordinator matching** — machine 0 now holds G_Δ, which fits its
   memory because |E(G_Δ)| ≤ n·Δ (and ≤ 2·|MCM|·(Δ+β), Obs 2.10) even
   when the input's m does not.  It computes the matching offline.

The memory story is the whole point: with S = Θ(n·Δ) words the input
graph overflows any single machine for dense inputs, but the sparsifier
never does — the simulator enforces both facts at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.delta import DeltaPolicy
from repro.graphs.adjacency import AdjacencyArrayGraph
from repro.graphs.builder import from_edges
from repro.instrument.rng import resolve_rng
from repro.matching.blossom import mcm_exact
from repro.matching.matching import Matching
from repro.mpc.simulator import MPCSimulator


@dataclass(frozen=True)
class MPCResult:
    """Outcome of an MPC matching run.

    Attributes
    ----------
    matching:
        The computed matching (valid in the input graph).
    rounds:
        MPC rounds executed (shuffle + sample + gather = 3).
    max_load:
        Largest machine state seen, in words.
    memory_per_machine:
        The enforced budget S.
    delta:
        Δ used.
    """

    matching: Matching
    rounds: int
    max_load: int
    memory_per_machine: int
    delta: int


def _owner(v: int, num_vertices: int, num_machines: int) -> int:
    """Range partition: vertex v is owned by machine ⌊v·M/n⌋."""
    return min(num_machines - 1, v * num_machines // max(1, num_vertices))


def mpc_approx_matching(
    graph: AdjacencyArrayGraph,
    beta: int,
    epsilon: float,
    num_machines: int,
    memory_per_machine: int | None = None,
    rng: np.random.Generator | int | None = None,
    policy: DeltaPolicy | None = None,
    *,
    seed: int | None = None,
) -> MPCResult:
    """Run the three-round MPC matching protocol.

    Parameters
    ----------
    graph:
        Input graph; its edges are dealt round-robin across machines as
        the initial (arbitrary) partition.
    beta, epsilon:
        Structure and quality parameters.
    num_machines:
        M.
    memory_per_machine:
        S in words; default 8·(n·Δ + n), comfortably fitting the
        sparsifier plus routing overhead while typically far below 2m
        for dense inputs.
    rng, seed:
        Uniform randomness keywords — a generator via ``rng=`` or an
        integer via ``seed=`` (not both).

    Raises
    ------
    MachineOverflowError
        If any machine (including the coordinator) would exceed S — in
        particular if you ask it to centralize the *raw* graph instead.
    """
    gen = resolve_rng(seed=seed, rng=rng, owner="mpc_approx_matching")
    pol = policy or DeltaPolicy.practical()
    n = graph.num_vertices
    delta = pol.delta(beta, epsilon, n)
    if memory_per_machine is None:
        memory_per_machine = 8 * (n * delta + n)
    sim = MPCSimulator(num_machines, memory_per_machine)

    # Input partition: deal edges round-robin.
    edges = list(graph.edges())
    partitions: list[list[tuple[int, int]]] = [[] for _ in range(num_machines)]
    for i, e in enumerate(edges):
        partitions[i % num_machines].append(e)
    for m in range(num_machines):
        sim.load(m, partitions[m])

    # Round 1: shuffle by endpoint.
    def shuffle(machine: int, state):
        out = []
        for u, v in state or []:
            out.append((_owner(u, n, num_machines), ("adj", u, v)))
            out.append((_owner(v, n, num_machines), ("adj", v, u)))
        return out

    sim.round(shuffle)

    # Round 2: per-vertex sampling; marks go to the coordinator.
    vertex_rngs = gen.spawn(n)

    def sample(machine: int, state):
        adjacency: dict[int, list[int]] = {}
        for tag, v, u in state or []:
            adjacency.setdefault(v, []).append(u)
        out = []
        for v, nbrs in adjacency.items():
            k = min(delta, len(nbrs))
            picks = vertex_rngs[v].choice(len(nbrs), size=k, replace=False)
            for i in picks:
                u = nbrs[int(i)]
                out.append((0, ("edge", min(v, u), max(v, u))))
        return out

    sim.round(sample)

    # Round 3: coordinator deduplicates and matches locally; we model the
    # final "publish" as the coordinator keeping the matching.
    def gather(machine: int, state):
        if machine != 0:
            return []
        sparsifier_edges = sorted({(u, v) for tag, u, v in state or []})
        # Local computation happens within the machine; re-emit the edges
        # to itself so the post-round memory check covers them.
        return [(0, ("edge", u, v)) for u, v in sparsifier_edges]

    sim.round(gather)
    sparsifier_edges = sorted({(u, v) for tag, u, v in sim.state(0)})
    sparsifier = from_edges(n, sparsifier_edges)
    matching = mcm_exact(sparsifier)

    return MPCResult(
        matching=matching,
        rounds=sim.rounds_executed,
        max_load=sim.max_load_seen,
        memory_per_machine=memory_per_machine,
        delta=delta,
    )
