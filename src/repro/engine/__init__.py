"""Parallel experiment engine (see :mod:`repro.engine.core`).

Fan independent trials — or whole experiments — out over a process
pool, with determinism guaranteed by spawning per-trial RNGs from the
root seed before dispatch and merging worker-side counters losslessly
in task order.  ``workers=1`` is the exact in-process serial path.
"""

from repro.engine.core import (
    TrialTask,
    WorkerSpec,
    execute,
    fanout,
    resolve_workers,
)
from repro.engine.tasks import run_registry_experiment

__all__ = [
    "TrialTask",
    "WorkerSpec",
    "execute",
    "fanout",
    "resolve_workers",
    "run_registry_experiment",
]
