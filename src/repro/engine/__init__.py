"""Parallel experiment engine (see :mod:`repro.engine.core`).

Fan independent trials — or whole experiments — out over a process
pool, with determinism guaranteed by spawning per-trial RNGs from the
root seed before dispatch and merging worker-side counters losslessly
in task order.  ``workers=1`` is the exact in-process serial path.

The engine is fault tolerant: failed tasks are retried deterministically
from their captured :class:`~repro.instrument.rng.RngSpec`
(:class:`RetryPolicy`), dead pools are respawned with only unfinished
tasks re-enqueued, completed trials can be journaled to a checkpoint
(:mod:`repro.engine.checkpoint`), and all of it is testable via
deterministic chaos injection (:mod:`repro.engine.faults`,
``REPRO_FAULTS``).
"""

from repro.engine.checkpoint import Checkpoint, CheckpointMismatch
from repro.engine.core import (
    RetryPolicy,
    TaskTimeoutError,
    TrialTask,
    WorkerSpec,
    execute,
    fanout,
    resolve_workers,
)
from repro.engine.faults import Fault, FaultInjected, FaultPlan, FaultTimeout
from repro.engine.tasks import run_registry_experiment

__all__ = [
    "Checkpoint",
    "CheckpointMismatch",
    "Fault",
    "FaultInjected",
    "FaultPlan",
    "FaultTimeout",
    "RetryPolicy",
    "TaskTimeoutError",
    "TrialTask",
    "WorkerSpec",
    "execute",
    "fanout",
    "resolve_workers",
    "run_registry_experiment",
]
