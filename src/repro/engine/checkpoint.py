"""Partial-result checkpointing for the experiment engine.

A long sweep that dies at trial 90/100 should not owe the user 89
re-executions: :func:`repro.engine.core.execute` can journal every
completed task to a checkpoint file and, on a later run over the *same*
task bag, skip straight past the journaled ones — results, per-task
counter snapshots, and RNG fingerprints all restored, so the resumed
run's merged table is byte-identical to an uninterrupted one.

Format — a JSONL journal, append-only so a kill mid-run loses at most
the record being written:

* line 1: a header ``{"format": "repro-checkpoint-v1", "run_key": ...,
  "tasks": N}``;
* one line per completed task: ``{"index": i, "payload": <base64>}``
  where the payload is the pickled ``(value, metrics_snapshot,
  fingerprint)`` outcome triple.

The ``run_key`` is a stable digest of the task bag — each task's
function identity, argument reprs, and RNG stream spec.  Opening a
checkpoint written for a *different* bag raises
:class:`CheckpointMismatch` rather than silently splicing unrelated
results; a truncated trailing line (the kill) is ignored.

Task values must be picklable — already guaranteed, since every value
crossed (or could cross) a process boundary on the pool path.
"""

from __future__ import annotations

import base64
import json
import pickle
from dataclasses import dataclass
from hashlib import sha256
from pathlib import Path
from typing import IO, Any

FORMAT = "repro-checkpoint-v1"


class CheckpointMismatch(RuntimeError):
    """The checkpoint on disk was written for a different task bag."""


def run_key_for(signatures: list[tuple]) -> str:
    """Stable digest of a task bag from per-task signature tuples.

    Each signature is ``(module, qualname, repr(args), repr(kwargs
    items), spec)`` as built by the engine; the key is the SHA-256 of
    their joined reprs.  Reprs (not pickles) keep the key stable across
    interpreter runs for the scalar/spec payloads the pickling contract
    prescribes.
    """
    digest = sha256()
    for signature in signatures:
        digest.update(repr(signature).encode())
        digest.update(b"\x00")
    return digest.hexdigest()


@dataclass
class Checkpoint:
    """An open checkpoint journal (see module docstring).

    Use :meth:`open` to create-or-resume, :meth:`record` after each
    completed task, and :meth:`close` (or a ``finally`` block in the
    engine) to release the file handle.  ``completed`` maps task index
    to its restored ``(value, metrics_snapshot, fingerprint)`` triple.
    """

    path: Path
    run_key: str
    total: int
    completed: dict[int, tuple]
    _handle: IO[str] | None = None

    @classmethod
    def open(cls, path: str | Path, run_key: str, total: int) -> "Checkpoint":
        """Open ``path`` for the given task bag, loading prior records.

        A missing file starts a fresh journal; an existing one must
        carry the same ``run_key`` and task count or
        :class:`CheckpointMismatch` is raised.  Unparseable trailing
        lines (a kill mid-write) are dropped; duplicate indices keep the
        later record.
        """
        path = Path(path)
        completed: dict[int, tuple] = {}
        fresh = not path.exists()
        if not fresh:
            lines = path.read_text().splitlines()
            if not lines:
                fresh = True
            else:
                try:
                    header = json.loads(lines[0])
                except json.JSONDecodeError as exc:
                    raise CheckpointMismatch(
                        f"{path}: not a checkpoint file (bad header)"
                    ) from exc
                if header.get("format") != FORMAT:
                    raise CheckpointMismatch(
                        f"{path}: unknown checkpoint format "
                        f"{header.get('format')!r}"
                    )
                if header.get("run_key") != run_key or (
                    header.get("tasks") != total
                ):
                    raise CheckpointMismatch(
                        f"{path}: checkpoint was written for a different "
                        "task bag (run key or task count mismatch); "
                        "delete it or point --checkpoint elsewhere"
                    )
                for line in lines[1:]:
                    try:
                        record = json.loads(line)
                        index = int(record["index"])
                        payload = pickle.loads(
                            base64.b64decode(record["payload"])
                        )
                    except Exception:
                        # A truncated tail is the expected signature of a
                        # kill mid-append; everything before it is intact.
                        continue
                    if 0 <= index < total:
                        completed[index] = payload
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = path.open("a")
        checkpoint = cls(
            path=path, run_key=run_key, total=total,
            completed=completed, _handle=handle,
        )
        if fresh:
            handle.write(json.dumps(
                {"format": FORMAT, "run_key": run_key, "tasks": total}
            ) + "\n")
            handle.flush()
        return checkpoint

    def record(self, index: int, payload: tuple) -> None:
        """Journal one completed task's outcome triple (flushed at once)."""
        if self._handle is None:
            raise ValueError("checkpoint is closed")
        self.completed[index] = payload
        encoded = base64.b64encode(pickle.dumps(payload)).decode("ascii")
        self._handle.write(
            json.dumps({"index": index, "payload": encoded}) + "\n"
        )
        self._handle.flush()

    def close(self) -> None:
        """Release the journal file handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def restore_metrics(snapshot: Any) -> Any:
    """Pass-through documented hook for restored metric snapshots.

    Checkpoints store worker counter state as plain ``snapshot()``
    dicts; :meth:`repro.instrument.counters.CounterSet.merge` accepts
    those directly, so restoration is the identity — kept as a named
    seam so the format can evolve without touching the engine.
    """
    return snapshot


__all__ = [
    "FORMAT",
    "Checkpoint",
    "CheckpointMismatch",
    "restore_metrics",
    "run_key_for",
]
