"""Deterministic chaos/fault injection for the experiment engine.

Fault tolerance that is only exercised by real outages is untested fault
tolerance.  This module lets tests and CI *inject* the failures the
engine's retry machinery (:func:`repro.engine.core.execute`) must absorb
— crashed tasks, slow tasks, hung tasks, dead worker processes — in a
way that is **reproducible**: whether a given task fails is decided by a
seeded hash of the task's index, not by a clock or a live random source,
so the same spec string produces the same failure pattern at any worker
count, on any machine, on every run.

The plan is activated either explicitly (``execute(..., faults=plan)``)
or ambiently via the environment::

    REPRO_FAULTS="crash:0.2,delay:0.1" repro-experiments e1 --workers 4

Spec grammar (comma-separated clauses)::

    <kind>:<probability>[x<duration>]   e.g.  crash:0.2   delay:0.1x0.05
    <kind>@<task-index>[x<duration>]    e.g.  crash@3     hang@5x2.0
    seed=<int>        salt for the per-task hash (default 0)
    attempts=<int>    attempts on which faults fire (default 1: first only)

Kinds:

``crash``
    The task raises :class:`FaultInjected` before running.
``timeout``
    The task raises :class:`FaultTimeout` before running (simulates a
    task the caller's timeout would have killed).
``delay``
    The task sleeps ``duration`` seconds (default 0.01) and then runs
    normally — exercises ordering under skew, never fails.
``hang``
    The task sleeps ``duration`` seconds (default 30) before running —
    long enough to trip a configured per-task timeout.  On the serial
    path, where an in-process task cannot be preempted, it degrades to
    ``timeout`` so tests still terminate.
``die``
    The worker process exits hard (``os._exit``), breaking the pool —
    exercises pool respawn.  On the serial path it degrades to ``crash``
    (exiting would kill the caller, not a worker).

Faults fire only on attempts below ``attempts`` (default: the first
attempt only), so a bounded retry budget always reaches a clean run and
chaos-mode output stays byte-identical to a fault-free run.
"""

from __future__ import annotations

import hashlib
import os
import re
import time
from dataclasses import dataclass

#: Environment variable holding the ambient fault spec.
FAULTS_ENV = "REPRO_FAULTS"

#: Recognized fault kinds.
KINDS = frozenset({"crash", "timeout", "delay", "hang", "die"})

#: Default sleep lengths for the time-based kinds (seconds).
DEFAULT_DURATIONS = {"delay": 0.01, "hang": 30.0}

_CLAUSE = re.compile(
    r"^(?P<kind>[a-z]+)"
    r"(?:@(?P<index>\d+)|:(?P<prob>[0-9.]+))?"
    r"(?:x(?P<duration>[0-9.]+))?$"
)


class FaultInjected(RuntimeError):
    """An injected fault fired (the 'crash'/'die' family).

    Engine retry logic treats it like any other task failure; tests
    match on it to distinguish injected failures from real bugs.
    """


class FaultTimeout(FaultInjected):
    """An injected fault simulating a task the timeout would have killed."""


@dataclass(frozen=True)
class Fault:
    """One concrete fault directive for one task attempt.

    Produced by :meth:`FaultPlan.decide` in the parent (so the decision
    is identical for every worker count) and shipped to wherever the
    task runs; :meth:`apply` performs the failure there.
    """

    kind: str
    duration: float = 0.0
    task_index: int = -1

    def apply(self) -> None:
        """Perform the fault: raise, sleep, or kill the process.

        ``delay``/``hang`` return after sleeping (the task then runs
        normally); ``crash``/``timeout`` raise; ``die`` never returns.
        """
        if self.kind == "crash":
            raise FaultInjected(
                f"injected crash in task {self.task_index}"
            )
        if self.kind == "timeout":
            raise FaultTimeout(
                f"injected timeout in task {self.task_index}"
            )
        if self.kind in ("delay", "hang"):
            time.sleep(self.duration)
            return
        if self.kind == "die":  # pragma: no cover - kills the process
            os._exit(13)
        raise ValueError(f"unknown fault kind {self.kind!r}")

    def degraded_for_serial(self) -> "Fault":
        """The serial-path equivalent of this fault.

        ``die`` becomes ``crash`` and ``hang`` becomes ``timeout``:
        in-process execution can neither kill a worker nor be preempted,
        so the engine substitutes the failure mode with the same retry
        semantics.  Other kinds pass through unchanged.
        """
        if self.kind == "die":
            return Fault("crash", 0.0, self.task_index)
        if self.kind == "hang":
            return Fault("timeout", 0.0, self.task_index)
        return self


@dataclass(frozen=True)
class FaultRule:
    """One parsed spec clause: a kind plus its trigger and duration.

    Either ``index`` (targeted: fire on exactly that task) or
    ``probability`` (stochastic: fire on tasks selected by seeded hash)
    is set, never both.
    """

    kind: str
    probability: float | None = None
    index: int | None = None
    duration: float | None = None

    def __post_init__(self) -> None:
        """Validate the kind and the trigger combination."""
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(KINDS)}"
            )
        if (self.probability is None) == (self.index is None):
            raise ValueError(
                f"fault rule {self.kind!r} needs exactly one of a "
                "probability (kind:p) or a task index (kind@i)"
            )
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )


def _hash_unit(salt: int, position: int, kind: str, index: int) -> float:
    """Deterministic uniform-[0,1) value for one (rule, task) pair.

    SHA-256 over a stable string — no clocks, no global RNG state — so
    the fault pattern is a pure function of (spec, task index).
    """
    digest = hashlib.sha256(
        f"{salt}:{position}:{kind}:{index}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class FaultPlan:
    """A parsed fault-injection plan: which tasks fail, and how.

    An empty plan (the default) injects nothing — pass
    ``faults=FaultPlan()`` to :func:`~repro.engine.core.execute` to
    explicitly disable ambient ``REPRO_FAULTS`` injection in a test.
    """

    rules: tuple[FaultRule, ...] = ()
    salt: int = 0
    max_attempt: int = 1

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``REPRO_FAULTS`` spec string (see module docstring)."""
        rules: list[FaultRule] = []
        salt = 0
        max_attempt = 1
        for raw in spec.split(","):
            clause = raw.strip()
            if not clause:
                continue
            if clause.startswith("seed="):
                salt = int(clause[len("seed="):])
                continue
            if clause.startswith("attempts="):
                max_attempt = int(clause[len("attempts="):])
                continue
            match = _CLAUSE.match(clause)
            if match is None:
                raise ValueError(f"unparseable fault clause {clause!r}")
            duration = match["duration"]
            rules.append(FaultRule(
                kind=match["kind"],
                probability=float(match["prob"]) if match["prob"] else None,
                index=int(match["index"]) if match["index"] else None,
                duration=float(duration) if duration else None,
            ))
        return cls(rules=tuple(rules), salt=salt, max_attempt=max_attempt)

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        """The ambient plan from ``REPRO_FAULTS``, or None when unset."""
        spec = os.environ.get(FAULTS_ENV, "").strip()
        return cls.parse(spec) if spec else None

    def decide(self, index: int, attempt: int) -> Fault | None:
        """The fault (if any) for task ``index`` on attempt ``attempt``.

        Pure and deterministic: targeted rules match their index,
        stochastic rules compare the seeded task hash against their
        probability.  The first matching rule wins (clause order in the
        spec is the priority order).  Attempts at or beyond
        ``max_attempt`` never fault, which is what guarantees retries
        converge.
        """
        if attempt >= self.max_attempt:
            return None
        for position, rule in enumerate(self.rules):
            if rule.index is not None:
                if rule.index != index:
                    continue
            elif _hash_unit(self.salt, position, rule.kind, index) >= (
                rule.probability or 0.0
            ):
                continue
            duration = rule.duration
            if duration is None:
                duration = DEFAULT_DURATIONS.get(rule.kind, 0.0)
            return Fault(kind=rule.kind, duration=duration, task_index=index)
        return None


__all__ = [
    "DEFAULT_DURATIONS",
    "FAULTS_ENV",
    "Fault",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "FaultTimeout",
    "KINDS",
]
