"""The parallel experiment engine: deterministic, fault-tolerant fan-out.

Every experiment in this package is a bag of *independent trials* — build
a sparsifier, run a pipeline, replay an update stream — whose results are
then folded into one table.  :func:`execute` runs such a bag either
in-process (``workers=1``, byte-identical to the historical serial path)
or across a :class:`concurrent.futures.ProcessPoolExecutor`, under three
invariants that make the two paths indistinguishable except for
wall-clock time:

**RNG discipline.**  Tasks never derive randomness from worker state.
The caller spawns one child generator per trial from the root seed
*before* dispatch (:func:`repro.instrument.rng.spawn_rngs` — numpy's
spawn-key mechanism, so child k is the same stream no matter which
process eventually runs it) and attaches it to the
:class:`TrialTask`.  Results are therefore identical for any worker
count.

**Ordering.**  Results are returned (and worker-side counters merged
into the parent) in task-submission order regardless of completion
order, so downstream folds see a deterministic sequence.

**Pickling contract.**  A task's ``fn`` must be an importable
module-level function, and its arguments must be cheap to ship: send the
*generator spec and seed*, not the built graph, and rebuild (memoized)
inside the worker.  A large object genuinely shared by every task can be
broadcast once per worker via ``context=`` instead of once per task.
(Rule R3 of ``repro.lint`` enforces the module-level requirement
statically: lambdas and nested functions would either fail to pickle or,
worse, close over ``Generator`` state and break worker-count
independence.)

On top of those, the engine is **fault tolerant** (see
``docs/ENGINE.md`` "Fault tolerance & chaos testing"):

* a failed task is retried up to :attr:`RetryPolicy.max_retries` times
  with exponential backoff, each retry re-deriving the task's generator
  from the :class:`~repro.instrument.rng.RngSpec` captured at submission
  — so a retried trial replays *the same stream from the start* and the
  final results stay byte-identical to a failure-free run;
* a hung task (pool path only — an in-process call cannot be preempted)
  is detected via :attr:`RetryPolicy.timeout`, its pool torn down and
  respawned, and only unfinished tasks re-enqueued;
* a dead worker (``BrokenProcessPool``) likewise triggers a respawn;
  after :attr:`RetryPolicy.max_pool_respawns` teardowns the engine
  degrades gracefully to serial in-process execution for the remainder;
* completed tasks can be journaled to a ``checkpoint`` file
  (:mod:`repro.engine.checkpoint`) so an interrupted sweep resumes from
  its completed trials with counters and fingerprints intact;
* failures themselves can be *injected* deterministically for tests and
  CI via :mod:`repro.engine.faults` (``REPRO_FAULTS``).
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable, Literal, Sequence, TypeAlias

import numpy as np

from repro.engine.checkpoint import Checkpoint, run_key_for
from repro.engine.faults import Fault, FaultPlan
from repro.instrument.counters import CounterSet
from repro.instrument.rng import (
    RngFingerprint,
    RngSpec,
    SanitizedGenerator,
    resolve_rng,
    rng_from_spec,
    rng_sanitize_enabled,
    rng_spec,
    sanitize_rng,
    spawn_rngs,
    spec_stream_id,
)

WorkerSpec: TypeAlias = int | Literal["auto"]


class TaskTimeoutError(TimeoutError):
    """A task exceeded the per-task timeout and its retry budget."""


def resolve_workers(workers: WorkerSpec) -> int:
    """Turn a ``--workers`` style spec into a concrete process count.

    ``"auto"`` means one worker per available CPU (never less than 1);
    integers pass through after validation.
    """
    if workers == "auto":
        return max(1, os.cpu_count() or 1)
    count = int(workers)
    if count < 1:
        raise ValueError(f"workers must be >= 1 or 'auto', got {workers!r}")
    return count


def _env_float(name: str) -> float | None:
    raw = os.environ.get(name, "").strip()
    return float(raw) if raw else None


@dataclass(frozen=True)
class RetryPolicy:
    """How :func:`execute` responds to task and pool failures.

    Attributes
    ----------
    max_retries:
        Extra attempts per task after the first (so a task runs at most
        ``max_retries + 1`` times).  Retries re-derive the task's
        generator from its captured :class:`RngSpec`, so a retried trial
        draws the identical stream a clean run would have.
    timeout:
        Per-task wall-clock budget in seconds, enforced on the pool path
        (an in-process task cannot be preempted, so ``workers=1`` runs
        ignore it).  A timed-out task costs one pool respawn: the hung
        worker cannot be reclaimed individually.
    backoff, backoff_factor, max_backoff:
        Exponential backoff between retries of one task:
        ``min(backoff * backoff_factor**k, max_backoff)`` seconds after
        failure ``k``.  ``backoff=0`` disables sleeping (tests).
    max_pool_respawns:
        Pool teardowns (worker death or task timeout) tolerated before
        the engine degrades to serial in-process execution for the
        remaining tasks.
    """

    max_retries: int = 2
    timeout: float | None = None
    backoff: float = 0.02
    backoff_factor: float = 2.0
    max_backoff: float = 1.0
    max_pool_respawns: int = 3

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """Build a policy from ``REPRO_RETRIES`` / ``REPRO_TASK_TIMEOUT``
        / ``REPRO_RETRY_BACKOFF`` / ``REPRO_POOL_RESPAWNS`` (unset
        variables keep the defaults)."""
        kwargs: dict[str, Any] = {}
        retries = os.environ.get("REPRO_RETRIES", "").strip()
        if retries:
            kwargs["max_retries"] = int(retries)
        timeout = _env_float("REPRO_TASK_TIMEOUT")
        if timeout is not None:
            kwargs["timeout"] = timeout
        backoff = _env_float("REPRO_RETRY_BACKOFF")
        if backoff is not None:
            kwargs["backoff"] = backoff
        respawns = os.environ.get("REPRO_POOL_RESPAWNS", "").strip()
        if respawns:
            kwargs["max_pool_respawns"] = int(respawns)
        return cls(**kwargs)

    def backoff_for(self, failure_index: int) -> float:
        """Seconds to sleep after the ``failure_index``-th failure (0-based)."""
        if self.backoff <= 0:
            return 0.0
        return min(
            self.backoff * self.backoff_factor ** failure_index,
            self.max_backoff,
        )


@dataclass(frozen=True)
class TrialTask:
    """One unit of independent work for :func:`execute`.

    Attributes
    ----------
    fn:
        Module-level function to call (must be picklable by reference).
    args, kwargs:
        Positional/keyword payload.  Everything here crosses a process
        boundary when ``workers > 1`` — ship generator specs and seeds,
        not built graphs.
    rng:
        Pre-spawned child generator, passed to ``fn`` as the ``rng``
        keyword.  Spawn it from the root seed *before* building the task
        (see :func:`fanout`) so results are worker-count independent.
        Hand it over unconsumed: the engine captures its
        :class:`~repro.instrument.rng.RngSpec` at submission and replays
        the stream from the start on every retry.
    wants_context:
        If true, ``fn`` receives the broadcast ``context`` object (sent
        once per worker, not once per task) as a ``context`` keyword.
    wants_metrics:
        If true, ``fn`` receives a fresh
        :class:`~repro.instrument.counters.CounterSet` as a ``metrics``
        keyword; the engine merges it into the parent's set after the
        task completes, losslessly and in task order.  Each retry gets a
        fresh set, so a failed attempt contributes nothing.
    """

    fn: Callable[..., Any]
    args: tuple[Any, ...] = ()
    kwargs: dict[str, Any] = field(default_factory=dict)
    rng: np.random.Generator | None = None
    wants_context: bool = False
    wants_metrics: bool = False


def fanout(
    fn: Callable[..., Any],
    rng: np.random.Generator | int | None = None,
    kwargs_list: Sequence[dict] = (),
    *,
    seed: int | None = None,
    **task_options: Any,
) -> list[TrialTask]:
    """Build one :class:`TrialTask` per kwargs dict, each with its own
    child generator spawned from the root generator in list order.

    Randomness follows the uniform convention: pass ``rng=`` (the root
    :class:`numpy.random.Generator` to spawn from) or ``seed=`` (an
    integer root seed), not both.

    This is the standard way experiments turn a trial loop into a task
    list: the spawn sequence is exactly the one the old inline loop
    produced (numpy spawn keys are consumed left to right), so tables
    stay byte-identical to the serial implementation.
    """
    root = resolve_rng(seed=seed, rng=rng, owner="fanout")
    children = spawn_rngs(root, len(kwargs_list))
    return [
        TrialTask(fn=fn, kwargs=dict(kwargs), rng=child, **task_options)
        for kwargs, child in zip(kwargs_list, children)
    ]


_WORKER_CONTEXT: Any = None


def _init_worker(context: Any) -> None:
    """Pool initializer: stash the broadcast context in the worker."""
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context


def _run_task(
    task: TrialTask, context: Any, fault: Fault | None = None
) -> tuple[Any, CounterSet | None, RngFingerprint | None]:
    if fault is not None:
        fault.apply()  # crash/timeout raise; delay/hang sleep then run
    kwargs = dict(task.kwargs)
    if task.rng is not None:
        kwargs["rng"] = task.rng
    if task.wants_context:
        kwargs["context"] = context
    metrics: CounterSet | None = None
    if task.wants_metrics:
        metrics = CounterSet()
        kwargs["metrics"] = metrics
    value = task.fn(*task.args, **kwargs)
    fingerprint = (task.rng.fingerprint()
                   if isinstance(task.rng, SanitizedGenerator) else None)
    return value, metrics, fingerprint


def _pool_entry(
    payload: tuple[TrialTask, Fault | None],
) -> tuple[Any, CounterSet | None, RngFingerprint | None]:
    task, fault = payload
    return _run_task(task, _WORKER_CONTEXT, fault)


def _task_signature(task: TrialTask, spec: RngSpec | None) -> tuple:
    """Stable identity of one task for the checkpoint run key."""
    rng_identity: Any
    if spec is not None:
        rng_identity = spec
    elif task.rng is not None:
        rng_identity = "live-rng"  # no SeedSequence: position not capturable
    else:
        rng_identity = None
    return (
        getattr(task.fn, "__module__", "?"),
        getattr(task.fn, "__qualname__", repr(task.fn)),
        repr(task.args),
        repr(sorted(task.kwargs.items())),
        rng_identity,
        task.wants_context,
        task.wants_metrics,
    )


def _capture_spec(task: TrialTask) -> RngSpec | None:
    """The task generator's stream spec, or None when not capturable."""
    if task.rng is None:
        return None
    try:
        return rng_spec(task.rng)
    except ValueError:
        # A generator built from raw bit-generator state has no stable
        # identity; retries will reuse the live object (best effort).
        return None


def execute(
    tasks: Iterable[TrialTask],
    *,
    workers: WorkerSpec = 1,
    metrics: CounterSet | None = None,
    context: Any = None,
    fingerprints: list[RngFingerprint | None] | None = None,
    retry: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    checkpoint: str | os.PathLike | None = None,
) -> list[Any]:
    """Run every task and return their results in task order.

    Parameters
    ----------
    tasks:
        The independent work items.
    workers:
        Process count or ``"auto"``.  ``workers=1`` runs everything
        in-process with no executor, pickling, or subprocess involved —
        the exact historical serial path.
    metrics:
        Parent :class:`~repro.instrument.counters.CounterSet`; each
        task flagged ``wants_metrics`` contributes its worker-side
        counts via :meth:`CounterSet.merge`, in task order, only after
        the whole bag has succeeded (a failed bag leaves the parent set
        untouched).
    context:
        Optional object broadcast once per worker (via the pool
        initializer) to every task flagged ``wants_context`` — use for
        a graph shared by all trials instead of shipping it per task.
    fingerprints:
        Optional out-list.  Under ``REPRO_RNG_SANITIZE=1`` the engine
        wraps every task generator in a
        :class:`~repro.instrument.rng.SanitizedGenerator` and appends
        one :class:`~repro.instrument.rng.RngFingerprint` (or ``None``
        for rng-less tasks) per task, in task order — the sequence is
        identical for every worker count, which is what the equivalence
        tests assert.
    retry:
        Failure policy; defaults to :meth:`RetryPolicy.from_env` (which
        is the stock policy unless ``REPRO_RETRIES`` etc. are set).
        Retried attempts re-derive the task generator from the
        :class:`~repro.instrument.rng.RngSpec` captured at submission,
        so results are byte-identical to a failure-free run as long as
        task generators arrive unconsumed (which :func:`fanout`
        guarantees).
    faults:
        Deterministic fault-injection plan
        (:class:`~repro.engine.faults.FaultPlan`); defaults to the
        ambient ``REPRO_FAULTS`` spec, if any.  Pass an empty
        ``FaultPlan()`` to shield a call from ambient chaos.
    checkpoint:
        Optional journal path (:mod:`repro.engine.checkpoint`).
        Completed tasks are appended as they finish; a rerun over the
        same bag skips them and merges their stored counters and
        fingerprints as if they had just run.

    Under ``REPRO_RNG_SANITIZE=1`` the collected fingerprints are also
    checked for stream races (two tasks drawing from one spawn-key
    stream) via :func:`repro.contracts.check_stream_fingerprints`, and
    each task's successful attempt is checked to have drawn from the
    stream assigned at submission
    (:func:`repro.contracts.check_replay_fingerprints` — the guarantee
    that retries replayed the right stream), raising
    :class:`~repro.contracts.ContractViolation` on a hit.

    Returns
    -------
    list:
        ``fn`` return values, one per task, in submission order.
    """
    task_list = list(tasks)
    sanitize = rng_sanitize_enabled()
    if sanitize:
        task_list = [
            replace(task, rng=sanitize_rng(task.rng))
            if task.rng is not None else task
            for task in task_list
        ]
    count = resolve_workers(workers)
    if retry is None:
        retry = RetryPolicy.from_env()
    if faults is None:
        faults = FaultPlan.from_env()
    n = len(task_list)
    specs = [_capture_spec(task) for task in task_list]

    outcomes: list[tuple | None] = [None] * n
    done = [False] * n
    attempts = [0] * n

    ckpt: Checkpoint | None = None
    if checkpoint is not None:
        run_key = run_key_for(
            [_task_signature(t, s) for t, s in zip(task_list, specs)]
        )
        ckpt = Checkpoint.open(checkpoint, run_key=run_key, total=n)
        for index, payload in ckpt.completed.items():
            outcomes[index] = payload
            done[index] = True

    def task_for_attempt(index: int) -> TrialTask:
        task = task_list[index]
        if attempts[index] > 0 and specs[index] is not None:
            # Replay the task's stream from the start: rng_from_spec
            # honors the sanitizer setting, so fingerprints stay faithful.
            task = replace(task, rng=rng_from_spec(specs[index]))
        return task

    def fault_for(index: int) -> Fault | None:
        if faults is None:
            return None
        return faults.decide(index, attempts[index])

    def record(index: int, outcome: tuple) -> None:
        outcomes[index] = outcome
        done[index] = True
        if ckpt is not None:
            value, task_metrics, fingerprint = outcome
            snapshot = (task_metrics.snapshot()
                        if isinstance(task_metrics, CounterSet)
                        else task_metrics)
            ckpt.record(index, (value, snapshot, fingerprint))

    def note_failure(index: int, exc: BaseException) -> None:
        """Charge one failed attempt; re-raise when the budget is spent."""
        attempts[index] += 1
        if attempts[index] > retry.max_retries:
            raise exc

    def run_serial(index: int) -> None:
        while True:
            fault = fault_for(index)
            if fault is not None:
                fault = fault.degraded_for_serial()
            try:
                outcome = _run_task(task_for_attempt(index), context, fault)
            except Exception as exc:
                note_failure(index, exc)
                delay = retry.backoff_for(attempts[index] - 1)
                if delay:
                    time.sleep(delay)
                continue
            record(index, outcome)
            return

    def run_pool() -> None:
        respawns = 0
        pool: ProcessPoolExecutor | None = ProcessPoolExecutor(
            max_workers=min(count, n),
            initializer=_init_worker,
            initargs=(context,),
        )
        try:
            while True:
                unfinished = [i for i in range(n) if not done[i]]
                if not unfinished:
                    return
                futures: dict[int, concurrent.futures.Future] = {}
                teardown = False
                charged: set[int] = set()
                try:
                    for i in unfinished:
                        futures[i] = pool.submit(
                            _pool_entry, (task_for_attempt(i), fault_for(i))
                        )
                except BrokenExecutor:
                    teardown = True
                if not teardown:
                    for i in sorted(futures):
                        future = futures[i]
                        try:
                            outcome = future.result(timeout=retry.timeout)
                        except concurrent.futures.TimeoutError:
                            # The worker is stuck; it cannot be reclaimed
                            # individually — tear the pool down.
                            note_failure(i, TaskTimeoutError(
                                f"task {i} exceeded the per-task timeout "
                                f"of {retry.timeout}s "
                                f"({retry.max_retries + 1} attempts)"
                            ))
                            charged.add(i)
                            teardown = True
                            break
                        except BrokenExecutor:
                            teardown = True
                            break
                        except Exception as exc:
                            note_failure(i, exc)
                            charged.add(i)
                            delay = retry.backoff_for(attempts[i] - 1)
                            if delay:
                                time.sleep(delay)
                        else:
                            record(i, outcome)
                if not teardown:
                    continue  # healthy pool; resubmit any retried tasks
                # Harvest results that finished before the teardown so
                # completed work is never re-executed.
                for j, future in futures.items():
                    if done[j] or not future.done():
                        continue
                    try:
                        outcome = future.result(timeout=0)
                    except Exception:
                        continue
                    record(j, outcome)
                # Every submitted-but-unfinished task pays one attempt
                # (clearing single-shot injected faults); termination is
                # guaranteed by the respawn cap, so no exhaustion raise.
                for j in futures:
                    if not done[j] and j not in charged:
                        attempts[j] += 1
                respawns += 1
                pool.shutdown(wait=False, cancel_futures=True)
                pool = None
                if respawns > retry.max_pool_respawns:
                    # Graceful degradation: finish the bag in-process.
                    for i in range(n):
                        if not done[i]:
                            run_serial(i)
                    return
                pool = ProcessPoolExecutor(
                    max_workers=min(count, len(
                        [i for i in range(n) if not done[i]]
                    )),
                    initializer=_init_worker,
                    initargs=(context,),
                )
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)

    try:
        if count == 1 or n <= 1:
            for i in range(n):
                if not done[i]:
                    run_serial(i)
        else:
            run_pool()
    finally:
        if ckpt is not None:
            ckpt.close()

    results: list[Any] = []
    collected: list[RngFingerprint | None] = []
    for outcome in outcomes:
        assert outcome is not None  # every index recorded above
        value, task_metrics, fingerprint = outcome
        if metrics is not None and task_metrics is not None:
            metrics.merge(task_metrics)
        results.append(value)
        collected.append(fingerprint)
    if sanitize:
        # Imported lazily: contracts pulls in the graph/matching stack,
        # which the engine does not otherwise depend on.
        from repro.contracts import (
            check_replay_fingerprints,
            check_stream_fingerprints,
        )

        check_stream_fingerprints(collected)
        check_replay_fingerprints(
            collected,
            [spec_stream_id(spec) if spec is not None else None
             for spec in specs],
        )
    if fingerprints is not None:
        fingerprints.extend(collected)
    return results
