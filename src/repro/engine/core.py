"""The parallel experiment engine: deterministic fan-out over processes.

Every experiment in this package is a bag of *independent trials* — build
a sparsifier, run a pipeline, replay an update stream — whose results are
then folded into one table.  :func:`execute` runs such a bag either
in-process (``workers=1``, byte-identical to the historical serial path)
or across a :class:`concurrent.futures.ProcessPoolExecutor`, under three
invariants that make the two paths indistinguishable except for
wall-clock time:

**RNG discipline.**  Tasks never derive randomness from worker state.
The caller spawns one child generator per trial from the root seed
*before* dispatch (:func:`repro.instrument.rng.spawn_rngs` — numpy's
spawn-key mechanism, so child k is the same stream no matter which
process eventually runs it) and attaches it to the
:class:`TrialTask`.  Results are therefore identical for any worker
count.

**Ordering.**  Results come back in task-submission order
(``ProcessPoolExecutor.map`` semantics), and worker-side counters are
merged into the parent in that same order, so downstream folds see a
deterministic sequence.

**Pickling contract.**  A task's ``fn`` must be an importable
module-level function, and its arguments must be cheap to ship: send the
*generator spec and seed*, not the built graph, and rebuild (memoized)
inside the worker.  A large object genuinely shared by every task can be
broadcast once per worker via ``context=`` instead of once per task.
(Rule R3 of ``repro.lint`` enforces the module-level requirement
statically: lambdas and nested functions would either fail to pickle or,
worse, close over ``Generator`` state and break worker-count
independence.)
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable, Literal, Sequence, TypeAlias

import numpy as np

from repro.instrument.counters import CounterSet
from repro.instrument.rng import (
    RngFingerprint,
    SanitizedGenerator,
    resolve_rng,
    rng_sanitize_enabled,
    sanitize_rng,
    spawn_rngs,
)

WorkerSpec: TypeAlias = int | Literal["auto"]


def resolve_workers(workers: WorkerSpec) -> int:
    """Turn a ``--workers`` style spec into a concrete process count.

    ``"auto"`` means one worker per available CPU (never less than 1);
    integers pass through after validation.
    """
    if workers == "auto":
        return max(1, os.cpu_count() or 1)
    count = int(workers)
    if count < 1:
        raise ValueError(f"workers must be >= 1 or 'auto', got {workers!r}")
    return count


@dataclass(frozen=True)
class TrialTask:
    """One unit of independent work for :func:`execute`.

    Attributes
    ----------
    fn:
        Module-level function to call (must be picklable by reference).
    args, kwargs:
        Positional/keyword payload.  Everything here crosses a process
        boundary when ``workers > 1`` — ship generator specs and seeds,
        not built graphs.
    rng:
        Pre-spawned child generator, passed to ``fn`` as the ``rng``
        keyword.  Spawn it from the root seed *before* building the task
        (see :func:`fanout`) so results are worker-count independent.
    wants_context:
        If true, ``fn`` receives the broadcast ``context`` object (sent
        once per worker, not once per task) as a ``context`` keyword.
    wants_metrics:
        If true, ``fn`` receives a fresh
        :class:`~repro.instrument.counters.CounterSet` as a ``metrics``
        keyword; the engine merges it into the parent's set after the
        task completes, losslessly and in task order.
    """

    fn: Callable[..., Any]
    args: tuple[Any, ...] = ()
    kwargs: dict[str, Any] = field(default_factory=dict)
    rng: np.random.Generator | None = None
    wants_context: bool = False
    wants_metrics: bool = False


def fanout(
    fn: Callable[..., Any],
    rng: np.random.Generator | int | None = None,
    kwargs_list: Sequence[dict] = (),
    *,
    seed: int | None = None,
    **task_options: Any,
) -> list[TrialTask]:
    """Build one :class:`TrialTask` per kwargs dict, each with its own
    child generator spawned from the root generator in list order.

    Randomness follows the uniform convention: pass ``rng=`` (the root
    :class:`numpy.random.Generator` to spawn from) or ``seed=`` (an
    integer root seed), not both.

    This is the standard way experiments turn a trial loop into a task
    list: the spawn sequence is exactly the one the old inline loop
    produced (numpy spawn keys are consumed left to right), so tables
    stay byte-identical to the serial implementation.
    """
    root = resolve_rng(seed=seed, rng=rng, owner="fanout")
    children = spawn_rngs(root, len(kwargs_list))
    return [
        TrialTask(fn=fn, kwargs=dict(kwargs), rng=child, **task_options)
        for kwargs, child in zip(kwargs_list, children)
    ]


_WORKER_CONTEXT: Any = None


def _init_worker(context: Any) -> None:
    """Pool initializer: stash the broadcast context in the worker."""
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context


def _run_task(
    task: TrialTask, context: Any
) -> tuple[Any, CounterSet | None, RngFingerprint | None]:
    kwargs = dict(task.kwargs)
    if task.rng is not None:
        kwargs["rng"] = task.rng
    if task.wants_context:
        kwargs["context"] = context
    metrics: CounterSet | None = None
    if task.wants_metrics:
        metrics = CounterSet()
        kwargs["metrics"] = metrics
    value = task.fn(*task.args, **kwargs)
    fingerprint = (task.rng.fingerprint()
                   if isinstance(task.rng, SanitizedGenerator) else None)
    return value, metrics, fingerprint


def _pool_entry(
    task: TrialTask,
) -> tuple[Any, CounterSet | None, RngFingerprint | None]:
    return _run_task(task, _WORKER_CONTEXT)


def execute(
    tasks: Iterable[TrialTask],
    *,
    workers: WorkerSpec = 1,
    metrics: CounterSet | None = None,
    context: Any = None,
    fingerprints: list[RngFingerprint | None] | None = None,
) -> list[Any]:
    """Run every task and return their results in task order.

    Parameters
    ----------
    tasks:
        The independent work items.
    workers:
        Process count or ``"auto"``.  ``workers=1`` runs everything
        in-process with no executor, pickling, or subprocess involved —
        the exact historical serial path.
    metrics:
        Parent :class:`~repro.instrument.counters.CounterSet`; each
        task flagged ``wants_metrics`` contributes its worker-side
        counts via :meth:`CounterSet.merge`, in task order.
    context:
        Optional object broadcast once per worker (via the pool
        initializer) to every task flagged ``wants_context`` — use for
        a graph shared by all trials instead of shipping it per task.
    fingerprints:
        Optional out-list.  Under ``REPRO_RNG_SANITIZE=1`` the engine
        wraps every task generator in a
        :class:`~repro.instrument.rng.SanitizedGenerator` and appends
        one :class:`~repro.instrument.rng.RngFingerprint` (or ``None``
        for rng-less tasks) per task, in task order — the sequence is
        identical for every worker count, which is what the equivalence
        tests assert.

    Under ``REPRO_RNG_SANITIZE=1`` the collected fingerprints are also
    checked for stream races (two tasks drawing from one spawn-key
    stream) via
    :func:`repro.contracts.check_stream_fingerprints`, raising
    :class:`~repro.contracts.ContractViolation` on a hit.

    Returns
    -------
    list:
        ``fn`` return values, one per task, in submission order.
    """
    task_list = list(tasks)
    sanitize = rng_sanitize_enabled()
    if sanitize:
        task_list = [
            replace(task, rng=sanitize_rng(task.rng))
            if task.rng is not None else task
            for task in task_list
        ]
    count = resolve_workers(workers)
    if count == 1 or len(task_list) <= 1:
        outcomes = [_run_task(task, context) for task in task_list]
    else:
        with ProcessPoolExecutor(
            max_workers=min(count, len(task_list)),
            initializer=_init_worker,
            initargs=(context,),
        ) as pool:
            outcomes = list(pool.map(_pool_entry, task_list))
    results: list[Any] = []
    collected: list[RngFingerprint | None] = []
    for value, task_metrics, fingerprint in outcomes:
        if metrics is not None and task_metrics is not None:
            metrics.merge(task_metrics)
        results.append(value)
        collected.append(fingerprint)
    if sanitize:
        # Imported lazily: contracts pulls in the graph/matching stack,
        # which the engine does not otherwise depend on.
        from repro.contracts import check_stream_fingerprints

        check_stream_fingerprints(collected)
    if fingerprints is not None:
        fingerprints.extend(collected)
    return results
