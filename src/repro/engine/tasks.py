"""Generic picklable task functions for the engine.

Experiment-specific trial functions live next to their experiment (they
need the experiment's builders); this module hosts the cross-cutting
ones, chiefly the whole-experiment dispatch used by ``repro-experiments
all --workers N``.
"""

from __future__ import annotations

from typing import Any


def run_registry_experiment(
    key: str, seed: int = 0, params: dict[str, Any] | None = None
):
    """Run one registered experiment end to end and return its table.

    The registry is resolved inside the worker (import by name keeps the
    task payload tiny); ``params`` are forwarded to the experiment's
    ``run(**params)`` verbatim.  Tables are plain dataclasses of python
    lists, so they travel back over the pool unchanged.
    """
    from repro.experiments import REGISTRY

    return REGISTRY[key](seed=seed, **(params or {}))
