"""Generic picklable task functions for the engine.

Experiment-specific trial functions live next to their experiment (they
need the experiment's builders); this module hosts the cross-cutting
ones, chiefly the whole-experiment dispatch used by ``repro-experiments
all --workers N``.
"""

from __future__ import annotations

import inspect
from typing import Any


def run_registry_experiment(
    key: str,
    seed: int = 0,
    params: dict[str, Any] | None = None,
    checkpoint: str | None = None,
):
    """Run one registered experiment end to end and return its table.

    The registry is resolved inside the worker (import by name keeps the
    task payload tiny); ``params`` are forwarded to the experiment's
    ``run(**params)`` verbatim.  Tables are plain dataclasses of python
    lists, so they travel back over the pool unchanged.

    ``checkpoint`` is forwarded only to experiments whose ``run``
    accepts one (the engine-backed drivers), so a per-experiment resume
    journal can ride along a ``repro-experiments all`` sweep without
    breaking the drivers that do not checkpoint.
    """
    from repro.experiments import REGISTRY

    fn = REGISTRY[key]
    kwargs = dict(params or {})
    if checkpoint is not None and (
        "checkpoint" in inspect.signature(fn).parameters
    ):
        kwargs["checkpoint"] = checkpoint
    return fn(seed=seed, **kwargs)
