"""E9 — Theorem 3.3: sublinear message complexity.

On densifying clique unions, the end-to-end message total of the
distributed pipeline grows like n·poly(β/ε)·(rounds), while the input
size 2m grows quadratically in the clique size — so messages / 2m falls
toward 0.  The paper calls out how rare sublinear-message distributed
algorithms are; this table is the reproduction of that headline.
"""

from __future__ import annotations

import numpy as np

from repro.core.delta import DeltaPolicy
from repro.distributed.pipeline import distributed_baseline_matching
from repro.experiments.tables import Table
from repro.graphs.generators.cliques import clique_union


def run(
    clique_sizes: tuple[int, ...] = (40, 80, 160),
    num_cliques: int = 4,
    epsilon: float = 0.34,
    seed: int = 0,
    constant: float = 0.6,
) -> Table:
    """Produce the E9 table; see module docstring."""
    rng = np.random.default_rng(seed)
    policy = DeltaPolicy(constant=constant)
    table = Table(
        title="E9  Theorem 3.3: sublinear message complexity",
        headers=["n", "m", "messages", "2m", "msg frac", "bits"],
        notes=["paper: messages = T(n) * O(n * (beta/eps) log(1/eps)) "
               "independent of m; fraction should fall as the graph densifies",
               "pipeline: sparsify + Solomon + randomized maximal matching"],
    )
    for size in clique_sizes:
        graph = clique_union(num_cliques, size)
        rep = distributed_baseline_matching(graph, beta=1, epsilon=epsilon,
                                            rng=rng.spawn(1)[0], policy=policy)
        table.add_row(
            graph.num_vertices, graph.num_edges, rep.messages,
            2 * graph.num_edges, rep.messages / (2 * graph.num_edges), rep.bits,
        )
    # The §3.2 unicast-vs-broadcast contrast on the sparsifier round alone.
    from repro.distributed.network import SyncNetwork
    from repro.distributed.sparsify_round import (
        BroadcastSparsifierProtocol,
        SparsifierProtocol,
    )

    contrast_graph = clique_union(num_cliques, clique_sizes[-1])
    delta = policy.delta(1, epsilon, contrast_graph.num_vertices)
    for label, proto in (("unicast round", SparsifierProtocol(delta, rng=rng.spawn(1)[0])),
                         ("broadcast round", BroadcastSparsifierProtocol(delta, rng=rng.spawn(1)[0]))):
        net = SyncNetwork(contrast_graph)
        net.run(proto, max_rounds=3)
        table.add_row(
            f"[{label}] {contrast_graph.num_vertices}",
            contrast_graph.num_edges,
            net.metrics.value("messages"),
            2 * contrast_graph.num_edges,
            net.metrics.value("messages") / (2 * contrast_graph.num_edges),
            net.metrics.value("bits"),
        )
    table.notes.append(
        "last two rows: the one-round sparsifier alone, unicast (1-bit "
        "messages along marks) vs broadcast (port lists to all neighbors)"
    )
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run())
