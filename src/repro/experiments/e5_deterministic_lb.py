"""E5 — Lemma 2.13: deterministic marking gives ratio ≥ n/(2Δ).

Plays the adversary game against the canonical deterministic marker
("mark your first Δ adjacency entries") on the adversarially ordered
clique, and contrasts it with the randomized sparsifier at the same Δ on
the same instance.  Paper prediction: deterministic ratio ≈ n/(2Δ);
randomized ratio ≈ 1.
"""

from __future__ import annotations

import numpy as np

from repro.core.lower_bounds import run_deterministic_lower_bound
from repro.core.sparsifier import build_sparsifier
from repro.experiments.tables import Table
from repro.graphs.generators.cliques import clique
from repro.matching.blossom import mcm_exact


def run(
    sizes: tuple[int, ...] = (40, 80, 160),
    deltas: tuple[int, ...] = (4, 8),
    seed: int = 0,
) -> Table:
    """Produce the E5 table; see module docstring."""
    rng = np.random.default_rng(seed)
    table = Table(
        title="E5  Lemma 2.13: deterministic marking fails; random succeeds",
        headers=["n", "delta", "det ratio", "paper bound n/(2d)",
                 "random ratio (same delta)"],
        notes=["paper: any deterministic G_d construction has ratio >= n/(2*delta)",
               "random column: the Theorem 2.1 sparsifier on the same clique"],
    )
    for n in sizes:
        g = clique(n)
        opt = mcm_exact(g).size
        for delta in deltas:
            det = run_deterministic_lower_bound(n, delta)
            res = build_sparsifier(g, delta, rng=rng.spawn(1)[0])
            sp_opt = mcm_exact(res.subgraph).size
            rand_ratio = opt / sp_opt if sp_opt else float("inf")
            table.add_row(n, delta, det.ratio, det.paper_bound, rand_ratio)
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run())
