"""E2 — Observation 2.10: |E(G_Δ)| ≤ 2·|MCM(G)|·(Δ + β).

Across the standard families, measure the sparsifier's edge count against
both the output-sensitive bound and the naive n·Δ bound.
"""

from __future__ import annotations

import numpy as np

from repro.core.delta import DeltaPolicy
from repro.core.sparsifier import build_sparsifier
from repro.experiments.families import standard_families
from repro.experiments.tables import Table
from repro.matching.blossom import mcm_exact


def run(epsilon: float = 0.3, scale: int = 1, seed: int = 0) -> Table:
    """Produce the E2 table; see module docstring."""
    rng = np.random.default_rng(seed)
    policy = DeltaPolicy()
    table = Table(
        title="E2  Observation 2.10: sparsifier size bound",
        headers=["family", "n", "delta", "|E(G_d)|",
                 "2|MCM|(d+beta)", "n*delta", "bound holds"],
        notes=["paper: |E(G_d)| <= 2*|MCM|*(delta+beta), deterministically"],
    )
    for family in standard_families(scale):
        graph = family.build(int(rng.integers(2**31)))
        opt = mcm_exact(graph).size
        delta = policy.delta(family.beta, epsilon, graph.num_vertices)
        res = build_sparsifier(graph, delta, rng=rng.spawn(1)[0])
        bound = 2 * opt * (delta + family.beta)
        table.add_row(
            family.name, graph.num_vertices, delta, res.subgraph.num_edges,
            bound, graph.num_vertices * delta, res.subgraph.num_edges <= bound,
        )
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run())
