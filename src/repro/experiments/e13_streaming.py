"""E13 — streaming application (§3 opening): one pass, O(n·Δ) memory.

The paper notes the sparsifier applies in the streaming model [3].  The
per-vertex reservoir pass stores Σ min(Δ, deg) ≤ n·Δ edge slots — versus
m for storing the stream — and yields (1+ε) quality on bounded-β inputs,
beating the classic one-pass greedy 2-approximation.  The table sweeps a
densifying family: memory saturates while m explodes, and quality stays
at 1+ε.
"""

from __future__ import annotations

import numpy as np

from repro.core.delta import DeltaPolicy
from repro.experiments.e8_distributed import trap_graph
from repro.experiments.tables import Table
from repro.matching.blossom import mcm_exact
from repro.streaming.matching import (
    streaming_approx_matching,
    streaming_greedy_matching,
)
from repro.streaming.stream import EdgeStream


def run(
    clique_sizes: tuple[int, ...] = (20, 40, 80, 160),
    num_cliques: int = 3,
    epsilon: float = 0.3,
    seed: int = 0,
    constant: float = 0.6,
) -> Table:
    """Produce the E13 table; see module docstring."""
    rng = np.random.default_rng(seed)
    policy = DeltaPolicy(constant=constant)
    table = Table(
        title="E13  Streaming (sec. 3 opening): one-pass (1+eps) vs greedy",
        headers=["n", "m (stream)", "memory", "mem frac", "ours ratio",
                 "greedy ratio", "passes"],
        notes=["memory = occupied reservoir slots <= n*delta; "
               "storing the stream costs m",
               "greedy = classic one-pass maximal matching (2-approx)",
               f"eps = {epsilon}, beta = 2 (clique unions + P4 traps), "
               "random arrival order"],
    )
    for size in clique_sizes:
        graph = trap_graph(num_cliques, size, num_paths=2 * size)
        opt = mcm_exact(graph).size
        stream = EdgeStream.from_graph(graph, rng=rng.spawn(1)[0])
        ours = streaming_approx_matching(stream, beta=2, epsilon=epsilon,
                                         rng=rng.spawn(1)[0], policy=policy)
        greedy = streaming_greedy_matching(
            EdgeStream.from_graph(graph, rng=rng.spawn(1)[0])
        )
        table.add_row(
            graph.num_vertices, len(stream), ours.memory,
            ours.memory / len(stream),
            opt / ours.matching.size if ours.matching.size else float("inf"),
            opt / greedy.matching.size if greedy.matching.size else float("inf"),
            ours.passes,
        )
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run())
