"""E7 — Theorem 3.1: sequential (1+ε)-matching in sublinear probes.

Two sweeps:

* **Densification** (the headline): fix n, grow m by fusing the vertex
  set into fewer, larger cliques.  The probe count stays ~n·Δ while 2m
  explodes — the probe fraction falls toward 0, certifying sublinearity.
* **Scaling**: grow n at fixed clique size; probes grow linearly in n
  (the O(n·β/ε²·log(1/ε)) shape) and the achieved ratio stays ≤ 1+ε.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.tables import Table
from repro.graphs.generators.cliques import clique_union
from repro.instrument.timers import Timer
from repro.matching.blossom import mcm_exact
from repro.sequential.assadi_solomon import as19_maximal_matching
from repro.sequential.pipeline import approximate_matching


def run(epsilon: float = 0.3, seed: int = 0, scale: int = 1) -> Table:
    """Produce the E7 table; see module docstring."""
    rng = np.random.default_rng(seed)
    table = Table(
        title="E7  Theorem 3.1: sublinear-probe sequential (1+eps)-matching",
        headers=["sweep", "n", "m", "probes", "2m", "probe frac",
                 "ratio", "time (s)"],
        notes=["paper: probes = O(n*delta), sublinear in m for dense graphs; "
               "ratio <= 1+eps w.h.p.",
               f"eps = {epsilon}, beta = 1 (clique unions)"],
    )
    base = 480 * scale
    densify = [(base // s, s) for s in (10, 20, 40, 80, 160) if base // s >= 1]
    for num_cliques, size in densify:
        graph = clique_union(num_cliques, size)
        opt = mcm_exact(graph).size
        with Timer() as t:
            result = approximate_matching(graph, beta=1, epsilon=epsilon,
                                          rng=rng.spawn(1)[0])
        ratio = opt / result.matching.size if result.matching.size else float("inf")
        table.add_row(
            "densify", graph.num_vertices, graph.num_edges, result.probes,
            2 * graph.num_edges, result.probes / (2 * graph.num_edges),
            ratio, t.elapsed,
        )
    for num_cliques in (2 * scale, 4 * scale, 8 * scale, 16 * scale):
        graph = clique_union(num_cliques, 60)
        opt = mcm_exact(graph).size
        with Timer() as t:
            result = approximate_matching(graph, beta=1, epsilon=epsilon,
                                          rng=rng.spawn(1)[0])
        ratio = opt / result.matching.size if result.matching.size else float("inf")
        table.add_row(
            "scale-n", graph.num_vertices, graph.num_edges, result.probes,
            2 * graph.num_edges, result.probes / (2 * graph.num_edges),
            ratio, t.elapsed,
        )
    # The [8] baseline the paper improves on: O(n log n beta) probes,
    # factor 2 (maximal matching).  On trap-laden instances its quality
    # cap shows (it cannot fix length-3 augmenting paths), while the
    # sparsifier pipeline stays at 1+eps; both are probe-sublinear.
    from repro.experiments.e8_distributed import trap_graph

    for size in (40, 80):
        graph = trap_graph(max(1, base // (2 * size)), size,
                           num_paths=2 * size)
        opt = mcm_exact(graph).size
        with Timer() as t:
            baseline = as19_maximal_matching(graph, beta=2,
                                             rng=rng.spawn(1)[0])
        size_got = baseline.matching.size
        table.add_row(
            "AS19 [8]", graph.num_vertices, graph.num_edges, baseline.probes,
            2 * graph.num_edges, baseline.probes / (2 * graph.num_edges),
            opt / size_got if size_got else float("inf"), t.elapsed,
        )
        with Timer() as t:
            result = approximate_matching(graph, beta=2, epsilon=epsilon,
                                          rng=rng.spawn(1)[0])
        ratio = (opt / result.matching.size
                 if result.matching.size else float("inf"))
        table.add_row(
            "ours@trap", graph.num_vertices, graph.num_edges, result.probes,
            2 * graph.num_edges, result.probes / (2 * graph.num_edges),
            ratio, t.elapsed,
        )
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run())
