"""E7 — Theorem 3.1: sequential (1+ε)-matching in sublinear probes.

Two sweeps:

* **Densification** (the headline): fix n, grow m by fusing the vertex
  set into fewer, larger cliques.  The probe count stays ~n·Δ while 2m
  explodes — the probe fraction falls toward 0, certifying sublinearity.
* **Scaling**: grow n at fixed clique size; probes grow linearly in n
  (the O(n·β/ε²·log(1/ε)) shape) and the achieved ratio stays ≤ 1+ε.

Rows are independent pipeline runs, so they execute through
:mod:`repro.engine`; each worker charges its probes to a task-local
counter which the parent merges losslessly
(:meth:`~repro.instrument.counters.CounterSet.merge`), keeping the
whole-table probe total — the sublinearity certificate — exact for any
worker count.  (Per-row wall-clock times are measured inside the worker
and are the one column that legitimately varies run to run.)
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.engine.core import TrialTask, execute
from repro.experiments.tables import Table
from repro.graphs.generators.cliques import clique_union
from repro.instrument.counters import CounterSet
from repro.instrument.rng import spawn_rngs
from repro.instrument.timers import Timer
from repro.matching.blossom import mcm_exact
from repro.sequential.assadi_solomon import as19_maximal_matching
from repro.sequential.pipeline import approximate_matching


@lru_cache(maxsize=16)
def _graph_for(kind: str, args: tuple):
    """Worker-side graph rebuild (memoized per process)."""
    if kind == "clique_union":
        return clique_union(*args)
    from repro.experiments.e8_distributed import trap_graph

    return trap_graph(*args)


def _pipeline_row(
    sweep: str, kind: str, args: tuple, beta: int, epsilon: float,
    *, rng, metrics,
) -> tuple:
    """One sparsify-then-match run; returns a finished table row."""
    graph = _graph_for(kind, args)
    opt = mcm_exact(graph).size
    with Timer() as t:
        result = approximate_matching(graph, beta=beta, epsilon=epsilon,
                                      rng=rng)
    metrics["probes"].add(result.probes)
    ratio = opt / result.matching.size if result.matching.size else float("inf")
    return (
        sweep, graph.num_vertices, graph.num_edges, result.probes,
        2 * graph.num_edges, result.probes / (2 * graph.num_edges),
        ratio, t.elapsed,
    )


def _as19_row(kind: str, args: tuple, beta: int, *, rng, metrics) -> tuple:
    """One run of the [8] baseline; returns a finished table row."""
    graph = _graph_for(kind, args)
    opt = mcm_exact(graph).size
    with Timer() as t:
        baseline = as19_maximal_matching(graph, beta=beta, rng=rng)
    metrics["probes"].add(baseline.probes)
    size_got = baseline.matching.size
    return (
        "AS19 [8]", graph.num_vertices, graph.num_edges, baseline.probes,
        2 * graph.num_edges, baseline.probes / (2 * graph.num_edges),
        opt / size_got if size_got else float("inf"), t.elapsed,
    )


def run(
    epsilon: float = 0.3,
    seed: int = 0,
    scale: int = 1,
    workers: int | str = 1,
    checkpoint: str | None = None,
) -> Table:
    """Produce the E7 table; see module docstring."""
    rng = np.random.default_rng(seed)
    table = Table(
        title="E7  Theorem 3.1: sublinear-probe sequential (1+eps)-matching",
        headers=["sweep", "n", "m", "probes", "2m", "probe frac",
                 "ratio", "time (s)"],
        notes=["paper: probes = O(n*delta), sublinear in m for dense graphs; "
               "ratio <= 1+eps w.h.p.",
               f"eps = {epsilon}, beta = 1 (clique unions)"],
    )
    base = 480 * scale
    # Assemble the task list in the exact order the old inline loops ran,
    # one child RNG per task, so the table matches the serial output.
    specs: list[tuple] = []
    densify = [(base // s, s) for s in (10, 20, 40, 80, 160) if base // s >= 1]
    for num_cliques, size in densify:
        specs.append((_pipeline_row,
                      {"sweep": "densify", "kind": "clique_union",
                       "args": (num_cliques, size), "beta": 1,
                       "epsilon": epsilon}))
    for num_cliques in (2 * scale, 4 * scale, 8 * scale, 16 * scale):
        specs.append((_pipeline_row,
                      {"sweep": "scale-n", "kind": "clique_union",
                       "args": (num_cliques, 60), "beta": 1,
                       "epsilon": epsilon}))
    # The [8] baseline the paper improves on: O(n log n beta) probes,
    # factor 2 (maximal matching).  On trap-laden instances its quality
    # cap shows (it cannot fix length-3 augmenting paths), while the
    # sparsifier pipeline stays at 1+eps; both are probe-sublinear.
    for size in (40, 80):
        trap_args = (max(1, base // (2 * size)), size, 2 * size)
        specs.append((_as19_row,
                      {"kind": "trap", "args": trap_args, "beta": 2}))
        specs.append((_pipeline_row,
                      {"sweep": "ours@trap", "kind": "trap",
                       "args": trap_args, "beta": 2, "epsilon": epsilon}))
    tasks = [
        TrialTask(fn=fn, kwargs=kwargs, rng=child, wants_metrics=True)
        for (fn, kwargs), child in zip(specs, spawn_rngs(rng, len(specs)))
    ]
    metrics = CounterSet()
    for row in execute(tasks, workers=workers, metrics=metrics,
                       checkpoint=checkpoint):
        table.add_row(*row)
    table.notes.append(
        f"total probes across all rows: {metrics.value('probes')}"
    )
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run())
