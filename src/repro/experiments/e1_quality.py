"""E1 — Theorem 2.1: G_Δ is a (1+ε)-matching sparsifier w.h.p.

For each bounded-β family and each ε, build G, compute |MCM(G)| exactly,
draw several independent sparsifiers, and report the worst and mean
observed ratio |MCM(G)|/|MCM(G_Δ)| plus the fraction of trials within
1+ε.  Paper prediction: all trials within 1+ε (with the paper's Δ
constant; the table uses the practical constant, which E11 calibrates).
"""

from __future__ import annotations

import numpy as np

from repro.core.delta import DeltaPolicy
from repro.core.sparsifier import build_sparsifier
from repro.experiments.families import standard_families
from repro.experiments.tables import Table
from repro.matching.blossom import mcm_exact


def run(
    epsilons: tuple[float, ...] = (0.5, 0.3, 0.15),
    trials: int = 5,
    scale: int = 1,
    seed: int = 0,
    constant: float | None = None,
) -> Table:
    """Produce the E1 table; see module docstring."""
    rng = np.random.default_rng(seed)
    # A leaner constant than the library default so that delta sits below
    # typical degrees and the trials are non-trivial; E11 sweeps it.
    policy = DeltaPolicy(constant=0.6 if constant is None else constant)
    table = Table(
        title="E1  Theorem 2.1: sparsifier approximation quality",
        headers=["family", "n", "m", "eps", "delta", "worst ratio",
                 "mean ratio", "within 1+eps"],
        notes=["paper: ratio <= 1+eps with high probability"],
    )
    for family in standard_families(scale):
        graph = family.build(int(rng.integers(2**31)))
        opt = mcm_exact(graph).size
        for eps in epsilons:
            delta = policy.delta(family.beta, eps, graph.num_vertices)
            ratios = []
            for _ in range(trials):
                res = build_sparsifier(graph, delta, rng=rng.spawn(1)[0])
                sp_opt = mcm_exact(res.subgraph).size
                ratios.append(opt / sp_opt if sp_opt else float("inf"))
            ok = sum(1 for r in ratios if r <= 1 + eps)
            table.add_row(
                family.name, graph.num_vertices, graph.num_edges, eps, delta,
                max(ratios), float(np.mean(ratios)), f"{ok}/{trials}",
            )
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run())
