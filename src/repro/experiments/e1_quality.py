"""E1 — Theorem 2.1: G_Δ is a (1+ε)-matching sparsifier w.h.p.

For each bounded-β family and each ε, build G, compute |MCM(G)| exactly,
draw several independent sparsifiers, and report the worst and mean
observed ratio |MCM(G)|/|MCM(G_Δ)| plus the fraction of trials within
1+ε.  Paper prediction: all trials within 1+ε (with the paper's Δ
constant; the table uses the practical constant, which E11 calibrates).

Trials are independent, so they run through :mod:`repro.engine`: the
parent spawns one child RNG per trial up front (same spawn sequence the
old inline loop consumed, so tables are byte-identical for any
``workers`` value) and each worker rebuilds its graph from the family
spec rather than receiving a pickled graph.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.core.delta import DeltaPolicy
from repro.core.sparsifier import build_sparsifier
from repro.engine.core import TrialTask, execute
from repro.experiments.families import standard_families
from repro.experiments.tables import Table
from repro.instrument.rng import spawn_rngs
from repro.matching.blossom import mcm_exact


@lru_cache(maxsize=32)
def _family_graph(index: int, scale: int, graph_seed: int):
    """Rebuild (and memoize) a standard family's graph inside a worker."""
    return standard_families(scale)[index].build(graph_seed)


def _sparsifier_trial(
    family_index: int, scale: int, graph_seed: int, delta: int, *, rng
) -> int:
    """One trial: build G_Δ and return |MCM(G_Δ)| (opt lives in the parent)."""
    graph = _family_graph(family_index, scale, graph_seed)
    res = build_sparsifier(graph, delta, rng=rng)
    return mcm_exact(res.subgraph).size


def run(
    epsilons: tuple[float, ...] = (0.5, 0.3, 0.15),
    trials: int = 5,
    scale: int = 1,
    seed: int = 0,
    constant: float | None = None,
    workers: int | str = 1,
    checkpoint: str | None = None,
) -> Table:
    """Produce the E1 table; see module docstring."""
    rng = np.random.default_rng(seed)
    # A leaner constant than the library default so that delta sits below
    # typical degrees and the trials are non-trivial; E11 sweeps it.
    policy = DeltaPolicy(constant=0.6 if constant is None else constant)
    table = Table(
        title="E1  Theorem 2.1: sparsifier approximation quality",
        headers=["family", "n", "m", "eps", "delta", "worst ratio",
                 "mean ratio", "within 1+eps"],
        notes=["paper: ratio <= 1+eps with high probability"],
    )
    tasks: list[TrialTask] = []
    groups = []  # (family, graph, opt, eps, delta), one per trials-batch
    for index, family in enumerate(standard_families(scale)):
        graph_seed = int(rng.integers(2**31))
        graph = family.build(graph_seed)
        opt = mcm_exact(graph).size
        for eps in epsilons:
            delta = policy.delta(family.beta, eps, graph.num_vertices)
            for child in spawn_rngs(rng, trials):
                tasks.append(TrialTask(
                    fn=_sparsifier_trial,
                    kwargs={"family_index": index, "scale": scale,
                            "graph_seed": graph_seed, "delta": delta},
                    rng=child,
                ))
            groups.append((family, graph, opt, eps, delta))
    sizes = execute(tasks, workers=workers, checkpoint=checkpoint)
    for i, (family, graph, opt, eps, delta) in enumerate(groups):
        batch = sizes[i * trials:(i + 1) * trials]
        ratios = [opt / s if s else float("inf") for s in batch]
        ok = sum(1 for r in ratios if r <= 1 + eps)
        table.add_row(
            family.name, graph.num_vertices, graph.num_edges, eps, delta,
            max(ratios), float(np.mean(ratios)), f"{ok}/{trials}",
        )
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run())
