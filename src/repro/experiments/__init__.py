"""Experiment harnesses E1–E12 (DESIGN.md §5).

The paper is purely theoretical — it has no tables or figures — so the
reproduction targets are its quantitative claims.  Each ``eN_*`` module
exposes ``run(**params) -> Table`` producing the paper-vs-measured table
for one claim; the ``benchmarks/bench_eN_*.py`` files time the hot
operations with pytest-benchmark and print these tables, and
``repro-experiments eN`` regenerates any of them from the command line.
"""

from repro.experiments.tables import Table
from repro.experiments import (
    e1_quality,
    e2_size_bound,
    e3_arboricity,
    e4_mcm_lower_bound,
    e5_deterministic_lb,
    e6_exactness_lb,
    e7_sequential,
    e8_distributed,
    e9_messages,
    e10_dynamic,
    e11_ablations,
    e12_output_sensitive,
    e13_streaming,
    e14_mpc,
    e15_dynamic_distributed,
    e16_scale,
    e17_adaptive_separation,
)

REGISTRY = {
    "e1": e1_quality.run,
    "e2": e2_size_bound.run,
    "e3": e3_arboricity.run,
    "e4": e4_mcm_lower_bound.run,
    "e5": e5_deterministic_lb.run,
    "e6": e6_exactness_lb.run,
    "e7": e7_sequential.run,
    "e8": e8_distributed.run,
    "e9": e9_messages.run,
    "e10": e10_dynamic.run,
    "e11": e11_ablations.run,
    "e12": e12_output_sensitive.run,
    "e13": e13_streaming.run,
    "e14": e14_mpc.run,
    "e15": e15_dynamic_distributed.run,
    "e16": e16_scale.run,
    "e17": e17_adaptive_separation.run,
}

__all__ = ["REGISTRY", "Table"]
