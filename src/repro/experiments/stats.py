"""Statistical helpers for the experiment harnesses.

Theorem 2.1 is a *with-high-probability* statement; single-run tables
can only spot-check it.  :func:`wilson_interval` turns k-successes-of-n
trials into a confidence interval on the true success probability, and
:func:`replicate_quality` runs the sparsifier many times to report the
estimated failure rate with that interval — the statistically honest
form of experiment E1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.sparsifier import build_sparsifier
from repro.graphs.adjacency import AdjacencyArrayGraph
from repro.instrument.rng import derive_rng
from repro.matching.blossom import mcm_exact


def wilson_interval(successes: int, trials: int, z: float = 1.96) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation near 0/1 — exactly where
    whp-style claims live.

    Returns
    -------
    (low, high):
        The confidence bounds; (0.0, 1.0) when ``trials`` is 0.
    """
    if trials < 0 or successes < 0 or successes > trials:
        raise ValueError("need 0 <= successes <= trials")
    if trials == 0:
        return (0.0, 1.0)
    p = successes / trials
    denom = 1 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    margin = (z / denom) * math.sqrt(
        p * (1 - p) / trials + z * z / (4 * trials * trials)
    )
    return (max(0.0, center - margin), min(1.0, center + margin))


@dataclass(frozen=True)
class QualityReplication:
    """Outcome of a multi-trial sparsifier quality replication.

    Attributes
    ----------
    trials, successes:
        Trials run and trials achieving ratio ≤ 1+ε.
    worst_ratio:
        Worst observed ratio across trials.
    confidence_low, confidence_high:
        Wilson 95% interval on the true success probability.
    """

    trials: int
    successes: int
    worst_ratio: float
    confidence_low: float
    confidence_high: float


def replicate_quality(
    graph: AdjacencyArrayGraph,
    delta: int,
    epsilon: float,
    trials: int,
    rng: int | np.random.Generator | None = None,
) -> QualityReplication:
    """Estimate P[G_Δ is a (1+ε)-sparsifier] with a Wilson interval."""
    if trials < 1:
        raise ValueError("need at least one trial")
    gen = derive_rng(rng)
    opt = mcm_exact(graph).size
    successes = 0
    worst = 1.0
    for _ in range(trials):
        res = build_sparsifier(graph, delta, rng=gen.spawn(1)[0],
                               sampler="vectorized")
        got = mcm_exact(res.subgraph).size
        ratio = opt / got if got else float("inf")
        worst = max(worst, ratio)
        if ratio <= 1.0 + epsilon:
            successes += 1
    low, high = wilson_interval(successes, trials)
    return QualityReplication(
        trials=trials,
        successes=successes,
        worst_ratio=worst,
        confidence_low=low,
        confidence_high=high,
    )
