"""Statistical helpers for the experiment harnesses.

Theorem 2.1 is a *with-high-probability* statement; single-run tables
can only spot-check it.  :func:`wilson_interval` turns k-successes-of-n
trials into a confidence interval on the true success probability, and
:func:`replicate_quality` runs the sparsifier many times to report the
estimated failure rate with that interval — the statistically honest
form of experiment E1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.sparsifier import build_sparsifier
from repro.engine.core import TrialTask, execute
from repro.graphs.adjacency import AdjacencyArrayGraph
from repro.instrument.rng import resolve_rng, spawn_rngs
from repro.matching.blossom import mcm_exact


def wilson_interval(successes: int, trials: int, z: float = 1.96) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation near 0/1 — exactly where
    whp-style claims live.

    Returns
    -------
    (low, high):
        The confidence bounds; (0.0, 1.0) when ``trials`` is 0.
    """
    if trials < 0 or successes < 0 or successes > trials:
        raise ValueError("need 0 <= successes <= trials")
    if trials == 0:
        return (0.0, 1.0)
    p = successes / trials
    denom = 1 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    margin = (z / denom) * math.sqrt(
        p * (1 - p) / trials + z * z / (4 * trials * trials)
    )
    return (max(0.0, center - margin), min(1.0, center + margin))


@dataclass(frozen=True)
class QualityReplication:
    """Outcome of a multi-trial sparsifier quality replication.

    Attributes
    ----------
    trials, successes:
        Trials run and trials achieving ratio ≤ 1+ε.
    worst_ratio:
        Worst observed ratio across trials.
    confidence_low, confidence_high:
        Wilson 95% interval on the true success probability.
    """

    trials: int
    successes: int
    worst_ratio: float
    confidence_low: float
    confidence_high: float


def _replication_trial(delta: int, *, context, rng) -> int:
    """One replication trial: |MCM(G_Δ)| on the broadcast graph.

    ``context`` is the input graph, shipped once per worker by the
    engine rather than once per task.
    """
    res = build_sparsifier(context, delta, rng=rng, sampler="vectorized")
    return mcm_exact(res.subgraph).size


def replicate_quality(
    graph: AdjacencyArrayGraph,
    delta: int,
    epsilon: float,
    trials: int,
    rng: np.random.Generator | int | None = None,
    *,
    seed: int | None = None,
    workers: int | str = 1,
) -> QualityReplication:
    """Estimate P[G_Δ is a (1+ε)-sparsifier] with a Wilson interval.

    Trials are embarrassingly parallel: per-trial generators are
    spawned from the root before dispatch (so the estimate is identical
    for any ``workers`` value) and fanned out through
    :mod:`repro.engine`.

    Parameters
    ----------
    graph, delta, epsilon, trials:
        Instance, sparsifier parameter, quality target, replication count.
    rng, seed:
        Uniform randomness keywords — pass an existing generator via
        ``rng=`` or an integer via ``seed=`` (not both).
    workers:
        Process count or ``"auto"`` for the trial fan-out.
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    gen = resolve_rng(seed=seed, rng=rng, owner="replicate_quality")
    opt = mcm_exact(graph).size
    tasks = [
        TrialTask(fn=_replication_trial, kwargs={"delta": delta},
                  rng=child, wants_context=True)
        for child in spawn_rngs(gen, trials)
    ]
    successes = 0
    worst = 1.0
    for got in execute(tasks, workers=workers, context=graph):
        ratio = opt / got if got else float("inf")
        worst = max(worst, ratio)
        if ratio <= 1.0 + epsilon:
            successes += 1
    low, high = wilson_interval(successes, trials)
    return QualityReplication(
        trials=trials,
        successes=successes,
        worst_ratio=worst,
        confidence_low=low,
        confidence_high=high,
    )
