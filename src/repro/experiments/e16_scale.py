"""E16 — wall-clock scale run: the sparsifier pays off on real inputs.

E7 certifies sublinearity in the probe model; this experiment shows it
in seconds.  Fixed n, densifying clique unions up to ~700k edges; the
pipeline is the bulk vectorized sampler (same marking law as
Theorem 2.1's, see :mod:`repro.core.sparsifier`) plus greedy matching on
the sparsifier.  Compared against greedy run directly on the full
graph — the *cheapest possible* full-input algorithm.  Expected shape:
pipeline time ~flat in m (it is ~n·Δ work), full-graph time linear in m,
with both achieving (1+ε)-grade quality on this family; the crossover
sits where m ≳ n·Δ.
"""

from __future__ import annotations

import numpy as np

from repro.core.sparsifier import build_sparsifier
from repro.experiments.tables import Table
from repro.graphs.builder import from_edges
from repro.instrument.timers import Timer
from repro.matching.greedy import greedy_maximal_matching


def big_clique_union(num_cliques: int, clique_size: int):
    """Vectorized clique-union generator for large instances."""
    idx = np.arange(clique_size, dtype=np.int64)
    u, v = np.meshgrid(idx, idx, indexing="ij")
    mask = u < v
    base = np.column_stack((u[mask], v[mask]))
    blocks = np.vstack([base + i * clique_size for i in range(num_cliques)])
    return from_edges(num_cliques * clique_size, blocks)


def run(
    total_vertices: int = 9000,
    clique_sizes: tuple[int, ...] = (30, 60, 100, 150),
    delta: int = 10,
    seed: int = 0,
) -> Table:
    """Produce the E16 table; see module docstring."""
    rng = np.random.default_rng(seed)
    table = Table(
        title="E16  Scale: wall-clock sparsify+match vs full-graph greedy",
        headers=["n", "m", "t sparsify (s)", "t match (s)", "t pipeline (s)",
                 "t full greedy (s)", "ours ratio", "full ratio"],
        notes=[f"fixed n = {total_vertices}, delta = {delta}; known optimum "
               "= n/2 (even cliques)",
               "pipeline time should stay ~flat while full-graph time "
               "grows with m"],
    )
    for size in clique_sizes:
        num_cliques = total_vertices // size
        graph = big_clique_union(num_cliques, size)
        opt = graph.num_vertices // 2  # even cliques: perfect matching
        with Timer() as t_sp:
            res = build_sparsifier(graph, delta, rng=rng.spawn(1)[0],
                                   sampler="vectorized",
                                   materialize_marks=False)
        with Timer() as t_match:
            ours = greedy_maximal_matching(res.subgraph)
        with Timer() as t_full:
            full = greedy_maximal_matching(graph)
        table.add_row(
            graph.num_vertices, graph.num_edges,
            t_sp.elapsed, t_match.elapsed, t_sp.elapsed + t_match.elapsed,
            t_full.elapsed,
            opt / ours.size if ours.size else float("inf"),
            opt / full.size if full.size else float("inf"),
        )
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run())
