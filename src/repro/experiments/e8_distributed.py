"""E8 — Theorem 3.2: distributed (1+ε)-matching vs the (2+ε) baseline.

Runs the full four-stage pipeline and the maximal-matching-only baseline
on the same networks and compares approximation ratios and round counts.
Paper predictions: rounds essentially independent of n (the log*-type
term is replaced by our O(log n) randomized stand-in — DESIGN.md §4(2)),
and ratio ≤ 1+ε for ours vs up to 2 for the baseline.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.pipeline import (
    distributed_approx_matching,
    distributed_baseline_matching,
)
from repro.engine.core import TrialTask, execute
from repro.experiments.tables import Table
from repro.graphs.builder import from_edges
from repro.graphs.generators.cliques import clique_union
from repro.instrument.rng import rng_from_spec, rng_spec, spawn_rngs
from repro.matching.blossom import mcm_exact


def trap_graph(num_cliques: int, clique_size: int, num_paths: int):
    """Clique union plus disjoint P4 components ("augmenting-path traps").

    A maximal matching can take each P4's middle edge (1 edge instead of
    the optimal 2), so maximal-matching baselines lose up to a factor
    ~4/3 here while a single length-3 augmenting-path phase repairs it.
    β = 2 (the paths) — still a bounded-β instance.
    """
    base = clique_union(num_cliques, clique_size)
    edges = list(base.edges())
    n = base.num_vertices
    for _ in range(num_paths):
        a = n
        edges.extend([(a, a + 1), (a + 1, a + 2), (a + 2, a + 3)])
        n += 4
    return from_edges(n, edges)


def _pair_row(
    num_cliques: int, clique_size: int, num_paths: int, epsilon: float,
    spec_ours, spec_base,
) -> tuple:
    """Run ours + baseline on one network; returns a finished table row.

    The two pipelines take pre-spawned streams shipped as
    :class:`~repro.instrument.rng.RngSpec` records (rebuilt here inside
    the worker — rule R8) whose spawn order matches the historical
    serial loop: ours first, then the baseline.
    """
    graph = trap_graph(num_cliques, clique_size, num_paths=num_paths)
    opt = mcm_exact(graph).size
    ours = distributed_approx_matching(graph, beta=2, epsilon=epsilon,
                                       rng=rng_from_spec(spec_ours))
    base = distributed_baseline_matching(graph, beta=2, epsilon=epsilon,
                                         rng=rng_from_spec(spec_base))
    ours_ratio = opt / ours.matching.size if ours.matching.size else float("inf")
    base_ratio = opt / base.matching.size if base.matching.size else float("inf")
    return (
        graph.num_vertices, graph.num_edges, ours.rounds, base.rounds,
        ours_ratio, base_ratio, ours.improvement_iterations,
    )


def run(
    sizes: tuple[int, ...] = (3, 6, 12),
    clique_size: int = 20,
    epsilon: float = 0.34,
    seed: int = 0,
    workers: int | str = 1,
    checkpoint: str | None = None,
) -> Table:
    """Produce the E8 table; see module docstring."""
    rng = np.random.default_rng(seed)
    table = Table(
        title="E8  Theorem 3.2: distributed rounds & quality vs (2+eps) baseline",
        headers=["n", "m", "ours rounds", "base rounds", "ours ratio",
                 "base ratio", "improve iters"],
        notes=["paper: ours (1+eps) in (beta/eps)^O(1/eps) + O~(small) rounds; "
               "baseline [16,17] achieves only 2+eps",
               f"eps = {epsilon}; clique unions + P4 traps, beta = 2"],
    )
    children = spawn_rngs(rng, 2 * len(sizes))
    tasks = [
        TrialTask(
            fn=_pair_row,
            kwargs={"num_cliques": k, "clique_size": clique_size,
                    "num_paths": 5 * k, "epsilon": epsilon,
                    "spec_ours": rng_spec(children[2 * i]),
                    "spec_base": rng_spec(children[2 * i + 1])},
        )
        for i, k in enumerate(sizes)
    ]
    for row in execute(tasks, workers=workers, checkpoint=checkpoint):
        table.add_row(*row)
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run())
