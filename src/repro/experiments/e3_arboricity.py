"""E3 — Observation 2.12: arboricity(G_Δ) ≤ 2Δ.

Measured through a certified sandwich: degeneracy (upper bound on
arboricity) and the density-ratio lower bound.  The paper's bound holds
whenever even the upper bound is below 2Δ.
"""

from __future__ import annotations

import numpy as np

from repro.core.delta import DeltaPolicy
from repro.core.sparsifier import build_sparsifier
from repro.experiments.families import standard_families
from repro.experiments.tables import Table
from repro.graphs.arboricity import arboricity_lower_bound, arboricity_upper_bound


def run(epsilon: float = 0.3, scale: int = 1, seed: int = 0) -> Table:
    """Produce the E3 table; see module docstring."""
    rng = np.random.default_rng(seed)
    policy = DeltaPolicy()
    table = Table(
        title="E3  Observation 2.12: sparsifier arboricity <= 2*delta",
        headers=["family", "delta", "2*delta", "arboricity lower",
                 "arboricity upper", "bound holds"],
        notes=["paper: arboricity(G_d) <= 2*delta, deterministically",
               "upper = degeneracy; lower = density ratio (Def 2.11)"],
    )
    for family in standard_families(scale):
        graph = family.build(int(rng.integers(2**31)))
        delta = policy.delta(family.beta, epsilon, graph.num_vertices)
        res = build_sparsifier(graph, delta, rng=rng.spawn(1)[0])
        low = arboricity_lower_bound(res.subgraph)
        high = arboricity_upper_bound(res.subgraph)
        table.add_row(family.name, delta, 2 * delta, low, high, high <= 2 * delta)
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run())
