"""E15 — dynamic distributed model (§3 opening): maintain G_Δ cheaply.

Sweep densifying topologies under an oblivious churn stream; measure the
worst per-update message count (paper shape: ≤ ~4Δ + O(1), independent
of n and m), the largest processor memory (low local memory), and the
quality of the maintained sparsifier at the end of the stream.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.dynamic_network import DynamicDistributedSparsifier
from repro.dynamic.adversaries import ObliviousAdversary
from repro.experiments.tables import Table
from repro.graphs.generators.cliques import clique_union
from repro.matching.blossom import mcm_exact


def run(
    clique_sizes: tuple[int, ...] = (10, 20, 40),
    num_cliques: int = 4,
    steps: int = 800,
    delta: int = 8,
    seed: int = 0,
) -> Table:
    """Produce the E15 table; see module docstring."""
    rng = np.random.default_rng(seed)
    table = Table(
        title="E15  Dynamic distributed (sec. 3): maintaining G_d under churn",
        headers=["n", "m (final)", "max msgs/update", "4*delta+2",
                 "max local memory", "ratio"],
        notes=["paper shape: O(delta) 1-bit messages per topology change, "
               "low local memory, quality (1+eps) at every step "
               "(oblivious adversary)",
               f"delta = {delta}, {steps} churn events after warm-up"],
    )
    for size in clique_sizes:
        host = clique_union(num_cliques, size)
        universe = list(host.edges())
        net = DynamicDistributedSparsifier(host.num_vertices, delta,
                                           rng=rng.spawn(1)[0])
        adv = ObliviousAdversary(universe, 0.5, rng=rng.spawn(1)[0])
        adv.preload(universe)
        for u, v in universe:
            net.insert(u, v)
        net.messages_per_update.clear()
        for upd in adv.stream(steps):
            net.update(upd.op, upd.u, upd.v)
        live = net.graph.snapshot()
        opt = mcm_exact(live).size
        got = mcm_exact(net.sparsifier()).size
        table.add_row(
            host.num_vertices, live.num_edges,
            net.max_messages_per_update(), 4 * delta + 2,
            net.max_local_memory(),
            opt / got if got else float("inf"),
        )
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run())
