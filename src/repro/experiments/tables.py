"""Minimal fixed-width table rendering for experiment output."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np


@dataclass
class Table:
    """A titled table of experiment results.

    Attributes
    ----------
    title:
        Table caption (includes the paper claim it reproduces).
    headers:
        Column names.
    rows:
        Row values; rendered via ``str`` with floats shown to 4 sig figs.
    notes:
        Free-text footnotes (e.g. the paper-predicted values).
    """

    title: str
    headers: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        """Append a row (must match the header count)."""
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells, expected {len(self.headers)}"
            )
        self.rows.append(list(values))

    @staticmethod
    def _fmt(value: Any) -> str:
        if isinstance(value, (bool, np.bool_)):
            return "yes" if value else "no"
        if isinstance(value, (np.integer,)):
            return str(int(value))
        if isinstance(value, np.floating):
            value = float(value)
        if isinstance(value, float):
            if value != value:  # NaN
                return "nan"
            if value == float("inf"):
                return "inf"
            return f"{value:.4g}"
        return str(value)

    def render(self) -> str:
        """Render to an aligned plain-text block."""
        cells = [[self._fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
            for i, h in enumerate(self.headers)
        ]
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """Render as a GitHub-flavored Markdown table."""
        cells = [[self._fmt(v) for v in row] for row in self.rows]
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in cells:
            lines.append("| " + " | ".join(row) + " |")
        if self.notes:
            lines.append("")
            for note in self.notes:
                lines.append(f"*{note}*")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
