"""E17 — why Theorem 3.5 exists: adaptivity breaks the oblivious scheme.

Section 3.3 motivates its windowed-rebuild algorithm by noting that the
simple scheme (maintain G_Δ incrementally, match on top —
:class:`~repro.dynamic.oblivious.ObliviousDynamicMatching`) is only safe
against an *oblivious* adversary: once the adversary can observe the
output matching, the maintained marks' randomness is no longer
independent of the update sequence and the Theorem 2.1 argument
collapses.  Theorem 3.5's algorithm avoids this by never exposing
in-flight randomness.

This experiment runs both algorithms against both adversaries on the
same universes and reports the worst observed approximation ratio over
each stream.  Paper prediction: all cells ≲ 1+ε except
(oblivious scheme × adaptive adversary), which degrades.
"""

from __future__ import annotations

import numpy as np

from repro.dynamic.adversaries import AdaptiveAdversary, ObliviousAdversary
from repro.dynamic.lazy_rebuild import LazyRebuildMatching
from repro.dynamic.oblivious import ObliviousDynamicMatching
from repro.engine.core import TrialTask, execute
from repro.experiments.tables import Table
from repro.graphs.generators.cliques import clique_union
from repro.instrument.rng import rng_from_spec, rng_spec, spawn_rngs
from repro.matching.blossom import mcm_exact

_ALGORITHMS = {
    "Thm 3.5 (windowed rebuild)": LazyRebuildMatching,
    "oblivious scheme (sec. 3.3 warm-up)": ObliviousDynamicMatching,
}


def _worst_ratio(alg, adversary, steps: int, probe_every: int = 100) -> float:
    worst = 1.0
    for step in range(steps):
        upd = adversary.next_update()
        if upd is None:
            break
        alg.update(upd.op, upd.u, upd.v)
        if step % probe_every == probe_every - 1:
            opt = mcm_exact(alg.graph.snapshot()).size
            got = alg.matching.size
            worst = max(worst, opt / got if got else float("inf"))
    return worst


def _stream_trial(
    alg_name: str, adv_kind: str, clique_size: int, num_cliques: int,
    steps: int, epsilon: float, spec_alg, spec_adv,
) -> float:
    """One full update-stream trial; returns its worst observed ratio.

    The host universe is rebuilt in the worker (deterministic, tiny);
    the algorithm's and the adversary's streams arrive as
    :class:`~repro.instrument.rng.RngSpec` records (rule R8) spawned by
    the parent in the historical order (algorithm first, adversary
    second), so the replayed streams match the serial implementation.
    """
    host = clique_union(num_cliques, clique_size)
    universe = list(host.edges())
    n = host.num_vertices
    rng_adv = rng_from_spec(spec_adv)
    alg = _ALGORITHMS[alg_name](n, 1, epsilon, rng=rng_from_spec(spec_alg))
    if adv_kind == "adaptive":
        adversary = AdaptiveAdversary(
            universe, observe=lambda: alg.matching,
            attack_probability=0.6, rng=rng_adv)
    else:
        adversary = ObliviousAdversary(universe, 0.5, rng=rng_adv)
    adversary.preload(universe)
    for u, v in universe:
        alg.insert(u, v)
    return _worst_ratio(alg, adversary, steps)


def run(
    clique_size: int = 16,
    num_cliques: int = 4,
    steps: int = 800,
    epsilon: float = 0.4,
    trials: int = 3,
    seed: int = 0,
    workers: int | str = 1,
    checkpoint: str | None = None,
) -> Table:
    """Produce the E17 table; see module docstring."""
    rng = np.random.default_rng(seed)
    host = clique_union(num_cliques, clique_size)
    n = host.num_vertices
    table = Table(
        title="E17  Adaptive adversary: Theorem 3.5 vs the oblivious scheme",
        headers=["algorithm", "adversary", "worst ratio (max over trials)",
                 "within 1+eps"],
        notes=["paper (sec. 3.3): the oblivious scheme's guarantee breaks "
               "once the adversary observes the matching; Theorem 3.5's "
               "does not",
               f"n = {n}, {steps} updates, eps = {epsilon}, "
               f"{trials} trials per cell"],
    )
    cells = [(alg_name, adv_kind)
             for alg_name in _ALGORITHMS
             for adv_kind in ("oblivious", "adaptive")]
    tasks: list[TrialTask] = []
    for alg_name, adv_kind in cells:
        for _ in range(trials):
            rng_alg, rng_adv = spawn_rngs(rng, 2)
            tasks.append(TrialTask(
                fn=_stream_trial,
                kwargs={"alg_name": alg_name, "adv_kind": adv_kind,
                        "clique_size": clique_size,
                        "num_cliques": num_cliques, "steps": steps,
                        "epsilon": epsilon,
                        "spec_alg": rng_spec(rng_alg),
                        "spec_adv": rng_spec(rng_adv)},
            ))
    ratios = execute(tasks, workers=workers, checkpoint=checkpoint)
    for i, (alg_name, adv_kind) in enumerate(cells):
        worst = max([1.0] + ratios[i * trials:(i + 1) * trials])
        table.add_row(alg_name, adv_kind, worst, worst <= 1 + epsilon)
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run())
