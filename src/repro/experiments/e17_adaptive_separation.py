"""E17 — why Theorem 3.5 exists: adaptivity breaks the oblivious scheme.

Section 3.3 motivates its windowed-rebuild algorithm by noting that the
simple scheme (maintain G_Δ incrementally, match on top —
:class:`~repro.dynamic.oblivious.ObliviousDynamicMatching`) is only safe
against an *oblivious* adversary: once the adversary can observe the
output matching, the maintained marks' randomness is no longer
independent of the update sequence and the Theorem 2.1 argument
collapses.  Theorem 3.5's algorithm avoids this by never exposing
in-flight randomness.

This experiment runs both algorithms against both adversaries on the
same universes and reports the worst observed approximation ratio over
each stream.  Paper prediction: all cells ≲ 1+ε except
(oblivious scheme × adaptive adversary), which degrades.
"""

from __future__ import annotations

import numpy as np

from repro.dynamic.adversaries import AdaptiveAdversary, ObliviousAdversary
from repro.dynamic.lazy_rebuild import LazyRebuildMatching
from repro.dynamic.oblivious import ObliviousDynamicMatching
from repro.experiments.tables import Table
from repro.graphs.generators.cliques import clique_union
from repro.matching.blossom import mcm_exact


def _worst_ratio(alg, adversary, steps: int, probe_every: int = 100) -> float:
    worst = 1.0
    for step in range(steps):
        upd = adversary.next_update()
        if upd is None:
            break
        alg.update(upd.op, upd.u, upd.v)
        if step % probe_every == probe_every - 1:
            opt = mcm_exact(alg.graph.snapshot()).size
            got = alg.matching.size
            worst = max(worst, opt / got if got else float("inf"))
    return worst


def run(
    clique_size: int = 16,
    num_cliques: int = 4,
    steps: int = 800,
    epsilon: float = 0.4,
    trials: int = 3,
    seed: int = 0,
) -> Table:
    """Produce the E17 table; see module docstring."""
    rng = np.random.default_rng(seed)
    host = clique_union(num_cliques, clique_size)
    universe = list(host.edges())
    n = host.num_vertices
    table = Table(
        title="E17  Adaptive adversary: Theorem 3.5 vs the oblivious scheme",
        headers=["algorithm", "adversary", "worst ratio (max over trials)",
                 "within 1+eps"],
        notes=["paper (sec. 3.3): the oblivious scheme's guarantee breaks "
               "once the adversary observes the matching; Theorem 3.5's "
               "does not",
               f"n = {n}, {steps} updates, eps = {epsilon}, "
               f"{trials} trials per cell"],
    )
    algorithms = [("Thm 3.5 (windowed rebuild)", LazyRebuildMatching),
                  ("oblivious scheme (sec. 3.3 warm-up)",
                   ObliviousDynamicMatching)]
    for alg_name, alg_cls in algorithms:
        for adv_kind in ("oblivious", "adaptive"):
            worst = 1.0
            for _ in range(trials):
                alg = alg_cls(n, 1, epsilon, rng=rng.spawn(1)[0])
                if adv_kind == "adaptive":
                    adversary = AdaptiveAdversary(
                        universe, observe=lambda a=alg: a.matching,
                        attack_probability=0.6, rng=rng.spawn(1)[0])
                else:
                    adversary = ObliviousAdversary(universe, 0.5,
                                                   rng=rng.spawn(1)[0])
                adversary.preload(universe)
                for u, v in universe:
                    alg.insert(u, v)
                worst = max(worst, _worst_ratio(alg, adversary, steps))
            table.add_row(alg_name, adv_kind, worst, worst <= 1 + epsilon)
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run())
