"""E10 — Theorem 3.5: dynamic update cost and adaptive-adversary quality.

Panel A (cost): over clique-union universes of growing clique size (so
density grows with n), run an oblivious update stream through our
windowed-rebuild matcher and the deterministic maximal-matching baseline
(Barenboim–Maimon surrogate).  Measured: maximum per-update work.  Paper
prediction: ours stays ~flat in n (O((β/ε³)·log(1/ε)) chunks), the
baseline's neighbor scans grow with density.

Panel B (adaptivity): run the adaptive adversary (which observes the
output matching and deletes matched edges) and report the approximation
ratio our algorithm maintains.  Paper prediction: still ≤ ~1+ε — the
rare adaptive-adversary-safe randomized dynamic matcher.
"""

from __future__ import annotations

import numpy as np

from repro.dynamic.adversaries import AdaptiveAdversary, ObliviousAdversary
from repro.dynamic.baseline import DynamicMaximalMatching
from repro.dynamic.lazy_rebuild import LazyRebuildMatching
from repro.experiments.tables import Table
from repro.graphs.generators.cliques import clique_union
from repro.matching.blossom import mcm_exact


def _drive(alg, adversary, steps: int) -> None:
    for _ in range(steps):
        upd = adversary.next_update()
        if upd is None:
            break
        alg.update(upd.op, upd.u, upd.v)


def run(
    clique_sizes: tuple[int, ...] = (10, 20, 40, 80),
    num_cliques: int = 4,
    steps: int = 1200,
    epsilon: float = 0.4,
    seed: int = 0,
    constant: float = 0.5,
) -> Table:
    """Produce the E10 table; see module docstring."""
    from repro.core.delta import DeltaPolicy

    policy = DeltaPolicy(constant=constant)
    rng = np.random.default_rng(seed)
    table = Table(
        title="E10  Theorem 3.5: dynamic update work and adaptive safety",
        headers=["universe n", "adversary", "ours max work", "base max work",
                 "ours ratio", "base ratio"],
        notes=["paper: ours O((beta/eps^3)log(1/eps)) worst-case work per "
               "update (chunks), independent of n; baseline [14] is 2-approx "
               "with update cost growing with density",
               "work units: ours = rebuild chunks; baseline = neighbor scans",
               f"{steps} updates per row, eps = {epsilon}"],
    )
    for size in clique_sizes:
        host = clique_union(num_cliques, size)
        universe = list(host.edges())
        n = host.num_vertices
        for kind in ("oblivious", "adaptive"):
            ours = LazyRebuildMatching(n, beta=1, epsilon=epsilon,
                                       rng=rng.spawn(1)[0], policy=policy)
            base = DynamicMaximalMatching(n)
            # Warm up: densify to the full host so update costs are
            # measured at realistic density, then measure `steps` further
            # updates (the warmup is excluded from the work statistics).
            def _warmup(adversary):
                adversary.preload(universe)
                for (a, b) in universe:
                    ours.insert(a, b)
                    base.insert(a, b)
                ours.work_log.clear()
                base.work_log.clear()

            if kind == "oblivious":
                adv_obl = ObliviousAdversary(universe, 0.5, rng=rng.spawn(1)[0])
                _warmup(adv_obl)
                stream = adv_obl.stream(steps)
                for upd in stream:
                    ours.update(upd.op, upd.u, upd.v)
                base_stream = stream
            else:
                adv = AdaptiveAdversary(universe, observe=lambda: ours.matching,
                                        attack_probability=0.4,
                                        rng=rng.spawn(1)[0])
                _warmup(adv)
                applied = []
                for _ in range(steps):
                    upd = adv.next_update()
                    if upd is None:
                        break
                    ours.update(upd.op, upd.u, upd.v)
                    applied.append(upd)
                base_stream = applied
            for upd in base_stream:
                base.update(upd.op, upd.u, upd.v)
            snapshot = ours.graph.snapshot()
            opt = mcm_exact(snapshot).size
            ours_size = ours.matching.size
            base_size = base.matching.size
            table.add_row(
                n, kind, ours.max_work_per_update(), base.max_work_per_update(),
                opt / ours_size if ours_size else float("inf"),
                opt / base_size if base_size else float("inf"),
            )
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run())
