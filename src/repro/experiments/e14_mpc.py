"""E14 — MPC application (§3 opening): O(1) rounds, sparsifier-sized loads.

The paper notes the sparsifier applies in the MPC model [4, 31].  The
three-round protocol shuffles edges by endpoint, samples Δ per vertex,
and gathers G_Δ onto a coordinator.  The table's point: the
coordinator's load is ~|E(G_Δ)| words, while gathering the *raw* graph
would cost ~2m words — an overflow for dense inputs at the same budget.
"""

from __future__ import annotations

import numpy as np

from repro.core.delta import DeltaPolicy
from repro.experiments.tables import Table
from repro.graphs.generators.cliques import clique_union
from repro.matching.blossom import mcm_exact
from repro.mpc.matching import mpc_approx_matching


def run(
    clique_sizes: tuple[int, ...] = (30, 60, 120),
    num_cliques: int = 4,
    num_machines: int = 8,
    epsilon: float = 0.3,
    seed: int = 0,
    constant: float = 0.6,
) -> Table:
    """Produce the E14 table; see module docstring."""
    rng = np.random.default_rng(seed)
    policy = DeltaPolicy(constant=constant)
    table = Table(
        title="E14  MPC (sec. 3 opening): 3 rounds, coordinator holds only G_d",
        headers=["n", "m", "rounds", "max load (words)", "budget S",
                 "raw gather (words)", "ratio"],
        notes=["raw gather = 3*2m words: centralizing the input graph, "
               "which overflows S on the dense rows",
               f"{num_machines} machines, eps = {epsilon}, beta = 1"],
    )
    for size in clique_sizes:
        graph = clique_union(num_cliques, size)
        opt = mcm_exact(graph).size
        result = mpc_approx_matching(graph, beta=1, epsilon=epsilon,
                                     num_machines=num_machines,
                                     rng=rng.spawn(1)[0], policy=policy)
        ratio = (opt / result.matching.size
                 if result.matching.size else float("inf"))
        table.add_row(
            graph.num_vertices, graph.num_edges, result.rounds,
            result.max_load, result.memory_per_machine,
            3 * 2 * graph.num_edges, ratio,
        )
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run())
