"""E12 — the output-sensitive bounds of Observation 2.10 / Theorem 3.1.

When β is super-constant, 2·|MCM|·(Δ+β) can be far below the naive n·Δ.
Workload: unions of stars K_{1,t} (β = t at each center; |MCM| = one per
star, so n = (t+1)·|MCM|) mixed with a few cliques.  The table compares
|E(G_Δ)| against both bounds as t grows — the output-sensitive bound
tracks the truth while n·Δ overshoots.
"""

from __future__ import annotations

import numpy as np

from repro.core.sparsifier import build_sparsifier
from repro.experiments.tables import Table
from repro.graphs.builder import from_edges
from repro.matching.blossom import mcm_exact


def star_union(num_stars: int, leaves: int):
    """Union of ``num_stars`` copies of K_{1,leaves}; β = leaves,
    |MCM| = num_stars, n = num_stars·(leaves+1)."""
    edges = []
    stride = leaves + 1
    for s in range(num_stars):
        center = s * stride
        for i in range(1, stride):
            edges.append((center, center + i))
    return from_edges(num_stars * stride, edges)


def run(
    leaf_counts: tuple[int, ...] = (4, 8, 16, 32),
    num_stars: int = 12,
    delta: int = 6,
    seed: int = 0,
) -> Table:
    """Produce the E12 table; see module docstring."""
    rng = np.random.default_rng(seed)
    table = Table(
        title="E12  Output-sensitive size bound (Obs 2.10) vs naive n*delta",
        headers=["beta (=leaves)", "n", "|MCM|", "|E(G_d)|",
                 "2|MCM|(d+beta)", "n*delta", "sharper?"],
        notes=["paper: for super-constant beta the |MCM|-based bound can be "
               "much smaller than n*delta"],
    )
    for leaves in leaf_counts:
        graph = star_union(num_stars, leaves)
        opt = mcm_exact(graph).size
        res = build_sparsifier(graph, delta, rng=rng.spawn(1)[0])
        sharp = 2 * opt * (delta + leaves)
        naive = graph.num_vertices * delta
        table.add_row(leaves, graph.num_vertices, opt, res.subgraph.num_edges,
                      sharp, naive, sharp < naive)
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run())
