"""E4 — Lemma 2.2: |MCM(G)| ≥ n'/(β+2) (n' = non-isolated vertices).

The structural lemma the whole high-probability argument rests on
(it feeds the union bound in Equation (4)).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.families import standard_families
from repro.experiments.tables import Table
from repro.matching.blossom import mcm_exact


def run(scale: int = 1, seed: int = 0) -> Table:
    """Produce the E4 table; see module docstring."""
    rng = np.random.default_rng(seed)
    table = Table(
        title="E4  Lemma 2.2: |MCM| >= n'/(beta+2)",
        headers=["family", "n'", "beta", "|MCM|", "n'/(beta+2)", "holds"],
        notes=["paper: every graph without isolated vertices satisfies the bound"],
    )
    for family in standard_families(scale):
        graph = family.build(int(rng.integers(2**31)))
        n_prime = graph.non_isolated_count()
        opt = mcm_exact(graph).size
        bound = n_prime / (family.beta + 2)
        table.add_row(family.name, n_prime, family.beta, opt, bound, opt >= bound)
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run())
