"""E11 — Ablations of the design choices DESIGN.md §6 calls out.

(a) **Δ constant**: sweep the multiplier c in Δ = c·(β/ε)·ln(24/ε); the
    paper proves c = 20 suffices — how small can c go in practice?
(b) **Union vs mutual marking**: Theorem 2.1 keeps an edge if *either*
    endpoint marks it; Solomon's bounded-arboricity sparsifier keeps it
    only if *both* do.  Section 3.2 explains why the mutual trick fails
    on bounded-β graphs — this panel measures the failure on a clique,
    for both deterministic (first-Δ ports) and randomized mutual marks.
(c) **Randomized vs deterministic marking** is experiment E5.
"""

from __future__ import annotations

import numpy as np

from repro.core.delta import DeltaPolicy
from repro.core.sparsifier import build_sparsifier
from repro.experiments.tables import Table
from repro.graphs.builder import from_edges
from repro.graphs.generators.cliques import clique, clique_union
from repro.instrument.rng import derive_rng
from repro.matching.blossom import mcm_exact


def _mutual_sparsifier(graph, delta, rng=None):
    """Keep edges marked by both endpoints.

    With ``rng`` the marks are random; without, each vertex marks its
    first Δ adjacency entries (Solomon's "arbitrary marks", which §3.2
    says is fine for bounded arboricity but fails for bounded β).
    """
    gen = derive_rng(rng) if rng is not None else None
    marks = []
    for v in range(graph.num_vertices):
        nbrs = graph.neighbors_array(v)
        k = min(delta, nbrs.size)
        if gen is None:
            chosen = nbrs[:k]
        else:
            chosen = gen.choice(nbrs, size=k, replace=False) if k else []
        marks.append({int(u) for u in chosen})
    edges = [
        (v, u)
        for v in range(graph.num_vertices)
        for u in marks[v]
        if v < u and v in marks[u]
    ]
    return from_edges(graph.num_vertices, edges)


def run(
    constants: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0),
    epsilon: float = 0.3,
    trials: int = 5,
    seed: int = 0,
) -> Table:
    """Produce the E11 table; see module docstring."""
    rng = np.random.default_rng(seed)
    table = Table(
        title="E11  Ablations: delta constant; union vs mutual marking",
        headers=["panel", "setting", "delta", "worst ratio", "mean ratio"],
        notes=["paper constant is 20 (Claim 2.7); the library default is 2",
               "mutual marking caps the degree but destroys matchings on "
               "bounded-beta graphs (Section 3.2)"],
    )
    # Panel (a): constant sweep on a dense clique union.
    graph = clique_union(4, 60)
    opt = mcm_exact(graph).size
    for c in constants:
        delta = DeltaPolicy(constant=c).delta(1, epsilon, graph.num_vertices)
        ratios = []
        for _ in range(trials):
            res = build_sparsifier(graph, delta, rng=rng.spawn(1)[0])
            size = mcm_exact(res.subgraph).size
            ratios.append(opt / size if size else float("inf"))
        table.add_row("a: constant", f"c={c}", delta, max(ratios),
                      float(np.mean(ratios)))
    # Panel (a2): where does union marking actually break?  Fixed tiny Δ.
    for delta in (1, 2, 3):
        ratios = []
        for _ in range(trials):
            res = build_sparsifier(graph, delta, rng=rng.spawn(1)[0])
            size = mcm_exact(res.subgraph).size
            ratios.append(opt / size if size else float("inf"))
        table.add_row("a2: tiny delta", f"delta={delta}", delta, max(ratios),
                      float(np.mean(ratios)))
    # Panel (b): union vs mutual marking on one clique.
    kn = clique(120)
    opt_kn = mcm_exact(kn).size
    delta = DeltaPolicy().delta(1, epsilon, kn.num_vertices)
    union_res = build_sparsifier(kn, delta, rng=rng.spawn(1)[0])
    union_size = mcm_exact(union_res.subgraph).size
    table.add_row("b: marking", "union (ours)", delta,
                  opt_kn / union_size if union_size else float("inf"),
                  opt_kn / union_size if union_size else float("inf"))
    for label, marks_rng in (("mutual random", rng.spawn(1)[0]),
                             ("mutual first-D (det.)", None)):
        mutual = _mutual_sparsifier(kn, delta, marks_rng)
        msize = mcm_exact(mutual).size
        mratio = opt_kn / msize if msize else float("inf")
        table.add_row("b: marking", label, delta, mratio, mratio)
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run())
