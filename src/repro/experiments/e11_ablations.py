"""E11 — Ablations of the design choices DESIGN.md §6 calls out.

(a) **Δ constant**: sweep the multiplier c in Δ = c·(β/ε)·ln(24/ε); the
    paper proves c = 20 suffices — how small can c go in practice?
(b) **Union vs mutual marking**: Theorem 2.1 keeps an edge if *either*
    endpoint marks it; Solomon's bounded-arboricity sparsifier keeps it
    only if *both* do.  Section 3.2 explains why the mutual trick fails
    on bounded-β graphs — this panel measures the failure on a clique,
    for both deterministic (first-Δ ports) and randomized mutual marks.
(c) **Randomized vs deterministic marking** is experiment E5.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.core.delta import DeltaPolicy
from repro.core.sparsifier import build_sparsifier
from repro.engine.core import TrialTask, execute
from repro.experiments.tables import Table
from repro.graphs.builder import from_edges
from repro.graphs.generators.cliques import clique, clique_union
from repro.instrument.rng import resolve_rng, spawn_rngs
from repro.matching.blossom import mcm_exact


def _mutual_sparsifier(graph, delta, rng=None):
    """Keep edges marked by both endpoints.

    With ``rng`` the marks are random; without, each vertex marks its
    first Δ adjacency entries (Solomon's "arbitrary marks", which §3.2
    says is fine for bounded arboricity but fails for bounded β).
    """
    gen = resolve_rng(rng=rng) if rng is not None else None
    marks = []
    for v in range(graph.num_vertices):
        nbrs = graph.neighbors_array(v)
        k = min(delta, nbrs.size)
        if gen is None:
            chosen = nbrs[:k]
        else:
            chosen = gen.choice(nbrs, size=k, replace=False) if k else []
        marks.append({int(u) for u in chosen})
    edges = [
        (v, u)
        for v in range(graph.num_vertices)
        for u in marks[v]
        if v < u and v in marks[u]
    ]
    return from_edges(graph.num_vertices, edges)


@lru_cache(maxsize=4)
def _panel_graph(num_cliques: int, clique_size: int):
    """Worker-side rebuild of the panel (a) clique union (memoized)."""
    return clique_union(num_cliques, clique_size)


def _panel_trial(num_cliques: int, clique_size: int, delta: int, *, rng) -> int:
    """One panel (a)/(a2) trial: |MCM(G_Δ)| on the shared clique union."""
    graph = _panel_graph(num_cliques, clique_size)
    res = build_sparsifier(graph, delta, rng=rng)
    return mcm_exact(res.subgraph).size


def run(
    constants: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0),
    epsilon: float = 0.3,
    trials: int = 5,
    seed: int = 0,
    workers: int | str = 1,
    checkpoint: str | None = None,
) -> Table:
    """Produce the E11 table; see module docstring."""
    rng = np.random.default_rng(seed)
    table = Table(
        title="E11  Ablations: delta constant; union vs mutual marking",
        headers=["panel", "setting", "delta", "worst ratio", "mean ratio"],
        notes=["paper constant is 20 (Claim 2.7); the library default is 2",
               "mutual marking caps the degree but destroys matchings on "
               "bounded-beta graphs (Section 3.2)"],
    )
    # Panels (a)/(a2): independent sparsifier trials on one dense clique
    # union, fanned out through the engine (child RNGs spawned in the
    # order the old inline loops consumed them).
    graph = clique_union(4, 60)
    opt = mcm_exact(graph).size
    groups: list[tuple[str, str, int]] = []
    tasks: list[TrialTask] = []
    panel_a = [("a: constant", f"c={c}",
                DeltaPolicy(constant=c).delta(1, epsilon, graph.num_vertices))
               for c in constants]
    panel_a2 = [("a2: tiny delta", f"delta={d}", d) for d in (1, 2, 3)]
    for panel, setting, delta in panel_a + panel_a2:
        for child in spawn_rngs(rng, trials):
            tasks.append(TrialTask(
                fn=_panel_trial,
                kwargs={"num_cliques": 4, "clique_size": 60, "delta": delta},
                rng=child,
            ))
        groups.append((panel, setting, delta))
    sizes = execute(tasks, workers=workers, checkpoint=checkpoint)
    for i, (panel, setting, delta) in enumerate(groups):
        batch = sizes[i * trials:(i + 1) * trials]
        ratios = [opt / s if s else float("inf") for s in batch]
        table.add_row(panel, setting, delta, max(ratios),
                      float(np.mean(ratios)))
    # Panel (b): union vs mutual marking on one clique.
    kn = clique(120)
    opt_kn = mcm_exact(kn).size
    delta = DeltaPolicy().delta(1, epsilon, kn.num_vertices)
    union_res = build_sparsifier(kn, delta, rng=rng.spawn(1)[0])
    union_size = mcm_exact(union_res.subgraph).size
    table.add_row("b: marking", "union (ours)", delta,
                  opt_kn / union_size if union_size else float("inf"),
                  opt_kn / union_size if union_size else float("inf"))
    for label, marks_rng in (("mutual random", rng.spawn(1)[0]),
                             ("mutual first-D (det.)", None)):
        mutual = _mutual_sparsifier(kn, delta, marks_rng)
        msize = mcm_exact(mutual).size
        mratio = opt_kn / msize if msize else float("inf")
        table.add_row("b: marking", label, delta, mratio, mratio)
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run())
