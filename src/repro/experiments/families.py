"""Shared workload definitions for the experiments.

A *family* bundles a generator with its certified neighborhood
independence number β (known from the construction; spot-checked exactly
in tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.graphs.adjacency import AdjacencyArrayGraph
from repro.graphs.generators import (
    bounded_diversity_graph,
    claw_free_complement,
    clique_union,
    random_line_graph,
    unit_disk_graph,
)


@dataclass(frozen=True)
class Family:
    """A named workload with its β certificate."""

    name: str
    beta: int
    build: Callable[[int], AdjacencyArrayGraph]  # seed -> graph


def standard_families(scale: int = 1) -> list[Family]:
    """The four bounded-β families used across experiments.

    ``scale`` multiplies instance sizes (1 = quick; 2–3 = thorough).
    """
    s = scale
    return [
        Family(
            "clique-union(β=1)",
            1,
            lambda seed, s=s: clique_union(4 * s, 60),
        ),
        Family(
            "line-graph(β≤2)",
            2,
            lambda seed, s=s: random_line_graph(24 * s, 0.6, seed=seed),
        ),
        Family(
            "unit-disk(β≤5)",
            5,
            lambda seed, s=s: unit_disk_graph(250 * s, 3.0, seed=seed)[0],
        ),
        Family(
            "diversity(β≤3)",
            3,
            lambda seed, s=s: bounded_diversity_graph(16 * s, 20, 3, seed=seed),
        ),
        Family(
            "claw-free(β≤2)",
            2,
            lambda seed, s=s: claw_free_complement(120 * s, seed=seed),
        ),
    ]
