"""E6 — Observation 2.14: exact MCM preservation needs Δ = Ω(n).

On the two-odd-cliques-plus-bridge instance, the unique-MCM bridge edge
survives into G_Δ with probability exactly 1 − (1 − 2Δ/n)² ≤ 4Δ/n
(Equation (5)).  The table overlays the closed form, the 4Δ/n bound, and
the empirical survival frequency.
"""

from __future__ import annotations

from repro.core.lower_bounds import (
    empirical_exact_preservation,
    exact_preservation_probability,
)
from repro.experiments.tables import Table


def run(
    half: int = 101,
    deltas: tuple[int, ...] = (1, 2, 5, 10, 25, 50),
    trials: int = 200,
    seed: int = 0,
) -> Table:
    """Produce the E6 table; see module docstring."""
    n = 2 * half
    table = Table(
        title="E6  Observation 2.14: probability of preserving the exact MCM",
        headers=["n", "delta", "closed form 1-(1-2d/n)^2", "bound 4d/n",
                 "empirical"],
        notes=[f"instance: two K_{half} plus one bridge; exact MCM requires "
               "the bridge (Eq. 5)",
               f"{trials} trials per row"],
    )
    for delta in deltas:
        closed = exact_preservation_probability(half, delta)
        empirical = empirical_exact_preservation(half, delta, trials, seed=seed)
        table.add_row(n, delta, closed, min(1.0, 4 * delta / n), empirical)
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run())
