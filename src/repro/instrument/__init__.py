"""Instrumentation: counters, deterministic RNG plumbing, and timers.

Every quantitative claim in the paper is either a *count* (probes,
messages, rounds, work units) or a *ratio* (approximation factors).  This
package provides the shared counting and randomness infrastructure so that
experiments are reproducible bit-for-bit given a seed.

The deprecated ``derive_rng`` shim is intentionally *not* re-exported
here: the only remaining spelling is ``repro.instrument.rng.derive_rng``
(a warning-emitting alias for pre-1.3 callers), and a lint-suite test
asserts no module in the package references it.
"""

from repro.instrument.counters import Counter, CounterSet
from repro.instrument.rng import (
    RngFingerprint,
    RngSpec,
    SanitizedGenerator,
    resolve_rng,
    rng_from_spec,
    rng_sanitize_enabled,
    rng_spec,
    sanitize_rng,
    spawn_rngs,
    stream_id,
)
from repro.instrument.timers import Timer
from repro.instrument.workmeter import (
    WorkMeter,
    work_audit_enabled,
)

__all__ = [
    "Counter",
    "CounterSet",
    "RngFingerprint",
    "RngSpec",
    "SanitizedGenerator",
    "Timer",
    "WorkMeter",
    "resolve_rng",
    "rng_from_spec",
    "rng_sanitize_enabled",
    "rng_spec",
    "sanitize_rng",
    "spawn_rngs",
    "stream_id",
    "work_audit_enabled",
]
