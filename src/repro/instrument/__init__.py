"""Instrumentation: counters, deterministic RNG plumbing, and timers.

Every quantitative claim in the paper is either a *count* (probes,
messages, rounds, work units) or a *ratio* (approximation factors).  This
package provides the shared counting and randomness infrastructure so that
experiments are reproducible bit-for-bit given a seed.
"""

from repro.instrument.counters import Counter, CounterSet
from repro.instrument.rng import (
    RngFingerprint,
    RngSpec,
    SanitizedGenerator,
    derive_rng,
    resolve_rng,
    rng_from_spec,
    rng_sanitize_enabled,
    rng_spec,
    sanitize_rng,
    spawn_rngs,
    stream_id,
)
from repro.instrument.timers import Timer

__all__ = [
    "Counter",
    "CounterSet",
    "RngFingerprint",
    "RngSpec",
    "SanitizedGenerator",
    "Timer",
    "derive_rng",
    "resolve_rng",
    "rng_from_spec",
    "rng_sanitize_enabled",
    "rng_spec",
    "sanitize_rng",
    "spawn_rngs",
    "stream_id",
]
