"""Deterministic randomness plumbing.

All randomized components (the sparsifier, the distributed protocols, the
adversaries) accept a :class:`numpy.random.Generator`.  These helpers
derive independent child generators from a root seed so that

* experiments are reproducible given one integer seed, and
* per-vertex random choices are genuinely independent, which the proof of
  Theorem 2.1 relies on (Observation 2.9).
"""

from __future__ import annotations

import numpy as np


def derive_rng(seed_or_rng: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed_or_rng``.

    Accepts ``None`` (fresh OS entropy), an integer seed, or an existing
    generator (returned unchanged so callers can thread one generator
    through a pipeline).
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def spawn_rngs(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Uses :meth:`numpy.random.Generator.spawn`, which is the supported way
    to fork independent streams from one generator.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return rng.spawn(count)
